//! # DFX — a simulated multi-FPGA appliance for transformer text generation
//!
//! This crate is the façade of the DFX workspace, a full reproduction of
//! *"DFX: A Low-latency Multi-FPGA Appliance for Accelerating
//! Transformer-based Text Generation"* (MICRO 2022) as a cycle-approximate
//! software simulator. It re-exports the public API of every subsystem:
//!
//! - [`num`] — IEEE 754 half-precision arithmetic and the special-function
//!   units (GELU lookup table, exponential, reciprocal, rsqrt).
//! - [`model`] — GPT-2 configurations, synthetic weights and the
//!   precision-generic reference implementation.
//! - [`isa`] — the DFX instruction set and the program builder that lowers
//!   GPT-2 inference onto it.
//! - [`hw`] — hardware substrate models: HBM, DDR, DMA with the zigzag
//!   tiling scheme, the Aurora ring network, FPGA resources, power, and
//!   the per-device [`MemoryModel`](hw::MemoryModel) capacity model
//!   (weight-shard residency + K/V bytes per token) the serving stack
//!   admits against.
//! - [`core`] — the DFX compute core: scheduler, scoreboard, matrix and
//!   vector processing units, functional executor and timing engine.
//! - [`baseline`] — calibrated analytic GPU (4×V100 / Megatron-LM) and TPU
//!   baselines used by the paper's evaluation.
//! - [`sim`] — the multi-FPGA cluster and appliance API plus the
//!   experiment harnesses (latency, breakdown, throughput, energy, cost,
//!   accuracy).
//! - [`serve`] — the unified [`Backend`](serve::Backend) trait over
//!   DFX/GPU/TPU (single requests, coalesced batches, token-granular
//!   [`ContinuousStepper`](serve::ContinuousStepper)s and the
//!   [`memory`](serve::Backend::memory) capacity capability) and the
//!   request-serving engine (schedulers — size-and-timeout
//!   [`Batching`](serve::Batching), token-boundary, memory- and
//!   prefill-aware [`ContinuousBatching`](serve::ContinuousBatching)
//!   with chunked prefill — arrival processes, tail-latency reports),
//!   plus the cluster tier: a deterministic
//!   [`ClusterRouter`](serve::ClusterRouter) over N replica engines
//!   with pluggable [`Placement`](serve::Placement) policies, session
//!   affinity, and prefill/decode disaggregation over a modelled
//!   [`LinkModel`](hw::LinkModel), and the observability layer
//!   ([`serve::telemetry`]): Prometheus-format metrics, per-request
//!   lifecycle traces with Chrome trace-event export, TTFT/ITL
//!   percentiles and per-request energy attribution.
//!
//! `ARCHITECTURE.md` at the repository root maps the paper's sections,
//! figures and tables onto these crates and the `reproduce` ids that
//! regenerate them.
//!
//! ## Quickstart
//!
//! ```
//! use dfx::model::GptConfig;
//! use dfx::sim::Appliance;
//!
//! # fn main() -> Result<(), dfx::sim::SimError> {
//! // A 4-FPGA appliance running the 1.5B-parameter GPT-2 (timing mode).
//! let appliance = Appliance::timing_only(GptConfig::gpt2_1_5b(), 4)?;
//! let report = appliance.generate_timed(64, 64)?;
//! println!("latency: {:.1} ms", report.total_latency_ms());
//! # Ok(())
//! # }
//! ```
//!
//! ## Serving a request stream
//!
//! Every platform implements [`serve::Backend`]; the engine pushes a
//! seeded arrival process through any of them and reports tail latency.
//! Swap the queue discipline with
//! [`with_scheduler`](serve::ServingEngine::with_scheduler):
//! [`serve::Batching`] coalesces requests into static padded batches,
//! [`serve::ContinuousBatching`] admits requests into a *running* batch
//! at token boundaries (members exit the moment they finish), and
//! [`serve::ShortestJobFirst`] trades mean sojourn for worst-case —
//! plain SJF can starve long requests under sustained load;
//! [`ShortestJobFirst::with_aging`](serve::ShortestJobFirst::with_aging)
//! bounds that:
//!
//! ```
//! use dfx::model::{GptConfig, Workload};
//! use dfx::serve::{ArrivalProcess, ServingEngine};
//! use dfx::sim::Appliance;
//!
//! # fn main() -> Result<(), dfx::sim::SimError> {
//! let appliance = Appliance::timing_only(GptConfig::tiny(), 2)?;
//! let stream = vec![Workload::new(8, 8); 16];
//! let poisson = ArrivalProcess::Poisson { rate_per_s: 10.0, seed: 7 };
//! let report = ServingEngine::new(&appliance).run(&stream, &poisson)?;
//! println!("p99 sojourn: {:.1} ms", report.p99_sojourn_ms);
//! # Ok(())
//! # }
//! ```
//!
//! ## The HBM/KV memory budget
//!
//! Each device's HBM holds the weight shard plus every live request's
//! K/V attention state (paper §IV-B), so multi-request admission is
//! capacity-bounded: every member claims `input + output` tokens of
//! K/V ([`hw::MemoryModel`], brokered by [`sim::KvPool`] inside the
//! incremental executor), and the continuous-batching disciplines keep
//! the joint claim within [`Backend::memory`](serve::Backend::memory)'s
//! budget. [`ContinuousBatching::with_prefill_chunk`](serve::ContinuousBatching::with_prefill_chunk)
//! additionally splits admission prefills into token-budgeted chunks
//! interleaved with decode (Sarathi/TGI style), bounding the decode
//! stall running members feel:
//!
//! ```
//! use dfx::model::GptConfig;
//! use dfx::sim::Appliance;
//!
//! # fn main() -> Result<(), dfx::sim::SimError> {
//! let appliance = Appliance::timing_only(GptConfig::gpt2_1_5b(), 4)?;
//! let memory = appliance.memory_model();
//! // ~0.7 GiB weight shard, 72 KiB of K/V per token, ~105k tokens of
//! // K/V budget per device.
//! assert_eq!(memory.kv_bytes_per_token, 73_728);
//! assert!(memory.max_resident_tokens() > 100_000);
//! # Ok(())
//! # }
//! ```
//!
//! ## Routing across a cluster of replicas
//!
//! A fleet puts a [`ClusterRouter`](serve::ClusterRouter) in front of
//! independent replica engines and picks a replica per request through
//! a [`Placement`](serve::Placement) policy — round-robin,
//! least-outstanding, K/V-load-aware
//! ([`LeastKvLoaded`](serve::LeastKvLoaded)), or session-affine
//! ([`SessionAffinity`](serve::SessionAffinity), which keeps a
//! session's shared-prefix cache warm on one replica). Replicas may be
//! heterogeneous (different shard widths per replica), and a
//! [`DisaggregatedCluster`](serve::DisaggregatedCluster) splits
//! prefill from decode with the K/V handoff costed over an
//! [`hw::LinkModel`]. The report pools percentiles across replicas —
//! never averages them — and carries a Jain balance index:
//!
//! ```
//! use dfx::model::GptConfig;
//! use dfx::serve::{ArrivalProcess, Backend, ClusterRouter, RoundRobin};
//! use dfx::serve::chatbot_mix;
//! use dfx::sim::Appliance;
//!
//! # fn main() -> Result<(), dfx::sim::SimError> {
//! let a = Appliance::timing_only(GptConfig::tiny(), 1)?;
//! let b = Appliance::timing_only(GptConfig::tiny(), 1)?;
//! let mut router = ClusterRouter::uniform(
//!     vec![&a as &dyn Backend, &b as &dyn Backend],
//!     Box::new(RoundRobin::new()),
//! )?;
//! let stream = chatbot_mix(8, 128);
//! let poisson = ArrivalProcess::Poisson { rate_per_s: 20.0, seed: 7 };
//! let report = router.run(&stream, &poisson)?;
//! assert_eq!(report.total_requests, 8);
//! assert_eq!(report.balance_index, 1.0); // round-robin splits 4:4
//! # Ok(())
//! # }
//! ```
//!
//! ## Observability
//!
//! Every run can be traced and scraped. [`run_traced`](serve::ServingEngine::run_traced)
//! returns the usual [`ServiceReport`](serve::ServiceReport) — now with
//! first-class TTFT/ITL percentiles and energy — plus a
//! [`RunTrace`](serve::RunTrace) of per-request lifecycle spans that
//! exports as Chrome trace-event JSON; a
//! [`MetricsRegistry`](serve::MetricsRegistry) renders counters, gauges
//! and log-bucketed histograms in Prometheus text exposition format.
//! All timestamps are simulated, so both dumps are bit-identical across
//! runs:
//!
//! ```
//! use dfx::serve::telemetry::{validate_prometheus, Labels, MetricsRegistry};
//!
//! let mut reg = MetricsRegistry::new();
//! let labels = Labels::new().with("backend", "dfx").with("discipline", "continuous");
//! reg.counter("dfx_requests_total", "Requests retired.", &labels, 96);
//! reg.gauge("dfx_p99_ttft_ms", "p99 time to first token.", &labels, 41.5);
//! reg.observe("dfx_request_ttft_ms", "Per-request TTFT.", &labels, 12.0);
//!
//! let text = reg.render();
//! assert!(text.contains("# TYPE dfx_requests_total counter"));
//! assert!(text.contains(r#"dfx_requests_total{backend="dfx",discipline="continuous"} 96"#));
//! // The exposition validates line by line (CI runs this on real dumps).
//! assert!(validate_prometheus(&text).is_ok());
//! ```
//!
//! See `examples/` for end-to-end scenarios, `crates/bench` for the
//! harness that regenerates every table and figure of the paper, and
//! `ARCHITECTURE.md` for the full paper-section ↔ crate map.

pub use dfx_baseline as baseline;
pub use dfx_core as core;
pub use dfx_hw as hw;
pub use dfx_isa as isa;
pub use dfx_model as model;
pub use dfx_num as num;
pub use dfx_serve as serve;
pub use dfx_sim as sim;

//! Horizontal scaling: N DFX appliances behind one shared queue.
//!
//! The paper scales one appliance *up* (more FPGAs per model instance,
//! Fig 18); a datacenter also scales *out* by replicating appliances
//! behind a load balancer. This example holds the arrival stream fixed
//! and grows the pool, showing tail latency collapse once capacity
//! clears the offered load — and the utilization/goodput trade the
//! operator actually tunes.
//!
//! ```sh
//! cargo run --release --example multi_appliance
//! ```

use dfx::model::{GptConfig, Workload};
use dfx::serve::{ArrivalProcess, Backend, ServingEngine};
use dfx::sim::Appliance;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = GptConfig::gpt2_1_5b();
    // Four identical 4-FPGA appliances; pools reuse references.
    let appliances: Vec<Appliance> = (0..4)
        .map(|_| Appliance::timing_only(cfg.clone(), 4))
        .collect::<Result<_, _>>()?;

    let stream = vec![Workload::chatbot(); 300];
    // One appliance serves a 64:64 request in ~0.91 s (capacity ~1.1
    // req/s); 2.2 req/s is twice that — saturating for one, the knee for
    // two, comfortable for three or four.
    let arrivals = ArrivalProcess::Poisson {
        rate_per_s: 2.2,
        seed: 0xD0C5,
    };

    println!(
        "300 chatbot requests at 2.2 req/s on a growing pool of {}\n",
        appliances[0].name()
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "appliances", "p50 ms", "p99 ms", "mean queue", "util %", "goodput t/s"
    );
    for n in 1..=appliances.len() {
        let pool = ServingEngine::pool(
            appliances
                .iter()
                .take(n)
                .map(|a| a as &dyn Backend)
                .collect(),
        )?
        .run(&stream, &arrivals)?;
        println!(
            "{:>10} {:>12.0} {:>12.0} {:>12.1} {:>12.1} {:>12.1}",
            n,
            pool.p50_sojourn_ms,
            pool.p99_sojourn_ms,
            pool.mean_queue_depth,
            100.0 * pool.utilization,
            pool.goodput_tps
        );
    }
    println!(
        "\nOne appliance is saturated (queue grows without bound over the run); two are\n\
         still above the knee; three clear the offered load and p99 drops to roughly\n\
         the per-request latency, after which extra appliances only buy idle capacity."
    );
    Ok(())
}

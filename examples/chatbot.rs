//! Chatbot serving: the paper's headline datacenter scenario.
//!
//! A dialogue service sends ~64 context tokens and expects ~64 generated
//! tokens per turn (paper §II-A). This example sizes the full 1.5B model
//! on the 4-FPGA DFX appliance against the 4xV100 GPU appliance: latency
//! per turn, sustained throughput, energy per token and the Table II
//! cost-effectiveness.
//!
//! ```sh
//! cargo run --release --example chatbot
//! ```

use dfx::baseline::GpuModel;
use dfx::model::{GptConfig, Workload};
use dfx::sim::{Appliance, CostComparison};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = GptConfig::gpt2_1_5b();
    let turns = [
        Workload::new(32, 32),
        Workload::new(64, 64),
        Workload::new(96, 48),
        Workload::new(48, 96),
    ];

    let dfx = Appliance::timing_only(cfg.clone(), 4)?;
    let gpu = GpuModel::new(cfg, 4);

    println!("GPT-2 1.5B chatbot turns - DFX (4x U280) vs GPU appliance (4x V100)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>9} {:>14} {:>14}",
        "turn", "DFX ms", "GPU ms", "speedup", "DFX tok/s", "GPU tok/s"
    );
    for w in turns {
        let d = dfx.generate_timed(w.input_len, w.output_len)?;
        let g = gpu.run(w);
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>8.2}x {:>14.1} {:>14.2}",
            w.to_string(),
            d.total_latency_ms(),
            g.total_ms(),
            g.total_ms() / d.total_latency_ms(),
            d.tokens_per_second(),
            g.tokens_per_second(w),
        );
    }

    // The representative 64:64 point drives the cost analysis (Table II).
    let w = Workload::chatbot();
    let d = dfx.generate_timed(w.input_len, w.output_len)?;
    let g = gpu.run(w);
    println!("\nenergy at {w}:");
    println!(
        "  DFX: {:>6.1} W appliance power, {:.3} tokens/J",
        d.power_w(),
        d.tokens_per_joule()
    );
    println!(
        "  GPU: {:>6.1} W appliance power, {:.3} tokens/J",
        g.power_w,
        g.tokens_per_joule(w)
    );

    let cost = CostComparison::from_throughput(g.tokens_per_second(w), d.tokens_per_second());
    println!("\ncost-effectiveness (accelerator retail prices):");
    println!(
        "  GPU appliance: {:>8.1} tokens/s per M$  (${:.0})",
        cost.gpu.tokens_per_second_per_million_usd(),
        cost.gpu.total_cost_usd()
    );
    println!(
        "  DFX          : {:>8.1} tokens/s per M$  (${:.0})",
        cost.dfx.tokens_per_second_per_million_usd(),
        cost.dfx.total_cost_usd()
    );
    println!(
        "  advantage    : {:.2}x (paper reports 8.21x)",
        cost.dfx_advantage()
    );
    Ok(())
}

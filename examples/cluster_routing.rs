//! Cluster routing: placement policy on a heterogeneous replica fleet,
//! session-affine prefix caching, and prefill/decode disaggregation.
//!
//! `multi_appliance.rs` scales one shared queue *out*; real fleets
//! instead put a router in front of independent replica engines and
//! choose a replica per request. This example runs the cluster tier on
//! a deliberately lopsided fleet — one 2-FPGA replica next to two
//! 1-FPGA replicas — where round-robin's blindness to capacity shows
//! up directly in the tail, then demonstrates the two specialised
//! topologies: session affinity on paged replicas (warm prefix cache)
//! and a prefill pool feeding a decode pool over a modelled 100 Gb/s
//! link.
//!
//! ```sh
//! cargo run --release --example cluster_routing
//! ```

use dfx::hw::LinkModel;
use dfx::model::{GptConfig, Workload};
use dfx::serve::{
    chatbot_mix, ArrivalProcess, Backend, ClusterRouter, ContinuousBatching, DecodeOnly,
    DisaggregatedCluster, LeastKvLoaded, LeastOutstanding, Placement, RoundRobin, SessionAffinity,
};
use dfx::sim::{Appliance, PagedKvConfig, PreemptionPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = GptConfig::gpt2_345m();

    // --- 1. Placement on a heterogeneous fleet -----------------------
    // One wide replica and two narrow ones: the 2-FPGA replica serves
    // roughly twice as fast, but round-robin still hands each replica
    // a third of the stream.
    let wide = Appliance::timing_only(cfg.clone(), 2)?;
    let narrow_a = Appliance::timing_only(cfg.clone(), 1)?;
    let narrow_b = Appliance::timing_only(cfg.clone(), 1)?;
    let mix = chatbot_mix(48, cfg.max_seq_len);
    let arrivals = ArrivalProcess::Poisson {
        rate_per_s: 3.0,
        seed: 0xD0C5,
    };

    println!(
        "48 chatbot-mix requests at 3.0 req/s on [2-FPGA, 1-FPGA, 1-FPGA] {} replicas\n",
        cfg.name
    );
    println!(
        "{:>18} {:>10} {:>10} {:>12} {:>14}",
        "placement", "p50 ms", "p99 ms", "goodput t/s", "dispatched"
    );
    let placements: Vec<Box<dyn Placement>> = vec![
        Box::new(RoundRobin::new()),
        Box::new(LeastOutstanding),
        Box::new(LeastKvLoaded),
    ];
    for placement in placements {
        let mut router = ClusterRouter::new(
            vec![
                vec![&wide as &dyn Backend],
                vec![&narrow_a as &dyn Backend],
                vec![&narrow_b as &dyn Backend],
            ],
            placement,
        )?
        .with_scheduler_factory(|| Box::new(ContinuousBatching::new(4)));
        let report = router.run(&mix, &arrivals)?;
        let counts: Vec<usize> = report.replicas.iter().map(|r| r.dispatched).collect();
        println!(
            "{:>18} {:>10.0} {:>10.0} {:>12.1} {:>14}",
            report.placement,
            report.p50_sojourn_ms,
            report.p99_sojourn_ms,
            report.goodput_tps,
            format!("{counts:?}"),
        );
    }

    // --- 2. Session affinity on paged replicas -----------------------
    // A 64-token system prompt shared by one session: pinning the
    // session computes it once; spraying recomputes it per replica.
    let prefix = 64usize;
    let paged: Vec<Appliance> = (0..2)
        .map(|_| {
            Appliance::timing_only(cfg.clone(), 1)?.with_kv_paging(
                PagedKvConfig::new(16)
                    .with_policy(PreemptionPolicy::Retain)
                    .with_shared_prefix(prefix),
            )
        })
        .collect::<Result<_, _>>()?;
    let session_stream = vec![Workload::new(prefix + 32, 16); 16];
    let sessions = vec![Some(1u64); session_stream.len()];
    println!("\nOne 16-request session, {prefix}-token shared prompt, 2 paged replicas:");
    for placement in [
        Box::new(RoundRobin::new()) as Box<dyn Placement>,
        Box::new(SessionAffinity::new(Box::new(RoundRobin::new()))),
    ] {
        let servers: Vec<&dyn Backend> = paged.iter().map(|a| a as &dyn Backend).collect();
        let report = ClusterRouter::uniform(servers, placement)?
            .with_scheduler_factory(|| Box::new(ContinuousBatching::new(4)))
            .run_sessions(&session_stream, &sessions, &arrivals)?;
        let paging = report.paging.expect("paged replicas report paging stats");
        println!(
            "  {:>30}: {} prefix tokens hit, {} computed ({:.0}% hit rate)",
            report.placement,
            paging.prefix_hit_tokens,
            paging.prefix_computed_tokens,
            100.0 * paging.hit_rate(),
        );
    }

    // --- 3. Prefill/decode disaggregation ----------------------------
    // The wide replica prefills every context; a DecodeOnly-wrapped
    // narrow replica decodes, with each request's K/V cache handed
    // over a 100 Gb/s link in between.
    let decode_backend = DecodeOnly::new(&narrow_a as &dyn Backend);
    let prefill = ClusterRouter::uniform(vec![&wide as &dyn Backend], Box::new(RoundRobin::new()))?
        .with_scheduler_factory(|| Box::new(ContinuousBatching::new(4)));
    let decode = ClusterRouter::uniform(
        vec![&decode_backend as &dyn Backend],
        Box::new(RoundRobin::new()),
    )?
    .with_scheduler_factory(|| Box::new(ContinuousBatching::new(4)));
    let report =
        DisaggregatedCluster::new(prefill, decode, LinkModel::qsfp28()).run(&mix, &arrivals)?;
    let transfer = report.transfer.expect("disaggregated runs report transfer");
    println!(
        "\nDisaggregated (1 prefill + 1 decode): p99 {:.0} ms, {} K/V transfers, \
         {:.1} MiB moved, {:.3} ms mean link time",
        report.p99_sojourn_ms,
        transfer.transfers,
        transfer.bytes as f64 / (1 << 20) as f64,
        transfer.mean_ms,
    );
    Ok(())
}

//! Observability tour: production telemetry out of a simulated run.
//!
//! Runs a continuous-batching sweep on the DFX appliance, prints the
//! top-line serving metrics a production dashboard would page on —
//! TTFT (time to first token), ITL (inter-token latency) and energy —
//! then exports the same run in both wire formats: a Prometheus text
//! exposition (`observability_metrics.prom`) and a Chrome trace-event
//! JSON (`observability_trace.json`) you can open at `chrome://tracing`
//! or <https://ui.perfetto.dev>. Everything is simulated time, so both
//! files are bit-identical across runs.
//!
//! ```sh
//! cargo run --release --example observability
//! ```

use dfx::model::GptConfig;
use dfx::serve::telemetry::{self, Labels, MetricsRegistry};
use dfx::serve::{chatbot_mix, ArrivalProcess, Backend, ContinuousBatching, ServingEngine};
use dfx::sim::Appliance;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = GptConfig::gpt2_345m();
    let dfx = Appliance::timing_only(cfg.clone(), 2)?;
    let stream = chatbot_mix(96, cfg.max_seq_len);

    println!(
        "96 chatbot requests on {}, continuous batching, rate sweep\n",
        Backend::name(&dfx)
    );
    println!(
        "{:>9}  {:>9} {:>9}  {:>9} {:>9}  {:>9} {:>10}",
        "rate/s", "p50 ttft", "p99 ttft", "p50 itl", "p99 itl", "energy J", "J/token"
    );

    let mut registry = MetricsRegistry::new();
    let mut last_trace = None;
    for rate_per_s in [0.5, 1.0, 2.0, 4.0] {
        let arrivals = ArrivalProcess::Poisson {
            rate_per_s,
            seed: 0x5EED,
        };
        let (report, trace) = ServingEngine::new(&dfx)
            .with_scheduler(Box::new(ContinuousBatching::new(8)))
            .run_traced(&stream, &arrivals)?;

        let energy = report.energy_j.unwrap_or(0.0);
        let tokens: usize = report
            .responses
            .iter()
            .map(|r| r.request.workload.output_len)
            .sum();
        println!(
            "{rate_per_s:>9.2}  {:>9.1} {:>9.1}  {:>9.2} {:>9.2}  {energy:>9.1} {:>10.3}",
            report.p50_ttft_ms,
            report.p99_ttft_ms,
            report.p50_itl_ms,
            report.p99_itl_ms,
            energy / tokens.max(1) as f64,
        );

        // Every sweep point lands in one registry, distinguished by a
        // rate label — exactly how a scrape endpoint would slice it.
        let labels = Labels::new().with("rate_per_s", &format!("{rate_per_s}"));
        telemetry::record_service_report(&mut registry, &report, &labels);
        last_trace = Some(trace);
    }

    let metrics = registry.render();
    let samples = telemetry::validate_prometheus(&metrics).map_err(dfx::sim::SimError::Service)?;
    std::fs::write("observability_metrics.prom", &metrics)?;
    println!("\nwrote observability_metrics.prom ({samples} samples)");

    if let Some(trace) = last_trace {
        trace.validate().map_err(dfx::sim::SimError::Service)?;
        let json = trace.to_chrome_json();
        std::fs::write("observability_trace.json", &json)?;
        println!(
            "wrote observability_trace.json ({} requests; open it at chrome://tracing)",
            trace.requests.len()
        );
    }
    Ok(())
}

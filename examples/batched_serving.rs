//! Batched serving: the latency/throughput trade-off of §III-A, live.
//!
//! A `Batching` scheduler (max batch size + max-wait timeout) coalesces
//! queued requests into one backend invocation. The GPU appliance wins
//! goodput from batching because its batch-1 decode is kernel-overhead
//! bound; DFX starts at its latency floor, so batching buys it little —
//! which is exactly why the paper ships a batch-1 appliance.
//!
//! ```sh
//! cargo run --release --example batched_serving
//! ```

use dfx::baseline::GpuModel;
use dfx::model::GptConfig;
use dfx::serve::{chatbot_mix, ArrivalProcess, Backend, Batching, ServingEngine};
use dfx::sim::Appliance;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = GptConfig::gpt2_345m();
    let dfx = Appliance::timing_only(cfg.clone(), 1)?;
    let gpu = GpuModel::new(cfg.clone(), 1);

    let stream = chatbot_mix(120, cfg.max_seq_len);
    // A rate past the GPU appliance's batch-1 capacity (~0.4 req/s) but
    // within reach of its batched capacity.
    let arrivals = ArrivalProcess::Poisson {
        rate_per_s: 1.0,
        seed: 0x5EED,
    };
    const MAX_WAIT_MS: f64 = 500.0;

    println!(
        "120 chatbot requests at 1.0 req/s, Batching scheduler ({} ms window)\n",
        MAX_WAIT_MS
    );
    println!(
        "{:>9} {:>10} {:>11} {:>11} {:>12} {:>15} {:>11}",
        "appliance", "max batch", "p50 ms", "p99 ms", "util %", "goodput tok/s", "mean batch"
    );
    for (label, backend) in [("DFX", &dfx as &dyn Backend), ("GPU", &gpu)] {
        for max_batch in [1usize, 2, 4, 8] {
            let mut engine = ServingEngine::new(backend)
                .with_scheduler(Box::new(Batching::new(max_batch, MAX_WAIT_MS)));
            let r = engine.run(&stream, &arrivals)?;
            println!(
                "{label:>9} {max_batch:>10} {:>11.0} {:>11.0} {:>12.1} {:>15.1} {:>11.2}",
                r.p50_sojourn_ms,
                r.p99_sojourn_ms,
                100.0 * r.utilization,
                r.goodput_tps,
                r.mean_batch_size(),
            );
        }
    }
    println!(
        "\nBatching rescues the saturated GPU appliance: goodput climbs with the batch\n\
         while every member pays the batch's padded latency plus the wait for batch-mates.\n\
         DFX at max batch 1 is the paper's design point - already interactive at this rate."
    );
    Ok(())
}

//! Continuous batching: token-boundary scheduling, live.
//!
//! Static batching (`Batching`) coalesces queued requests into padded
//! units: every member waits for the batch to form and then for its
//! longest batch-mate to finish. Continuous batching
//! (`ContinuousBatching`) schedules at *token* boundaries instead —
//! requests join a running batch between decode steps (paying only
//! their own prefill) and leave the moment they have their tokens. The
//! same saturated stream runs here under batch-1 FIFO, static batching
//! and continuous batching on both appliances.
//!
//! ```sh
//! cargo run --release --example continuous_batching
//! ```

use dfx::baseline::GpuModel;
use dfx::model::GptConfig;
use dfx::serve::{
    chatbot_mix, ArrivalProcess, Backend, Batching, ContinuousBatching, Fifo, Scheduler,
    ServingEngine,
};
use dfx::sim::Appliance;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = GptConfig::gpt2_345m();
    let dfx = Appliance::timing_only(cfg.clone(), 1)?;
    let gpu = GpuModel::new(cfg.clone(), 1);

    let stream = chatbot_mix(120, cfg.max_seq_len);
    // A rate past the GPU appliance's batch-1 capacity (~0.4 req/s) but
    // within reach of its batched capacity.
    let arrivals = ArrivalProcess::Poisson {
        rate_per_s: 1.0,
        seed: 0x5EED,
    };
    const MAX_BATCH: usize = 8;
    const MAX_WAIT_MS: f64 = 500.0;

    println!(
        "120 chatbot requests at 1.0 req/s, max batch {MAX_BATCH} \
         (static window {MAX_WAIT_MS} ms)\n"
    );
    println!(
        "{:>9} {:>12} {:>11} {:>11} {:>12} {:>15}",
        "appliance", "discipline", "p50 ms", "p99 ms", "util %", "goodput tok/s"
    );
    for (label, backend) in [("DFX", &dfx as &dyn Backend), ("GPU", &gpu)] {
        let disciplines: [(&str, Box<dyn Scheduler>); 3] = [
            ("batch-1", Box::new(Fifo)),
            ("static", Box::new(Batching::new(MAX_BATCH, MAX_WAIT_MS))),
            ("continuous", Box::new(ContinuousBatching::new(MAX_BATCH))),
        ];
        for (name, scheduler) in disciplines {
            let r = ServingEngine::new(backend)
                .with_scheduler(scheduler)
                .run(&stream, &arrivals)?;
            println!(
                "{label:>9} {name:>12} {:>11.0} {:>11.0} {:>12.1} {:>15.1}",
                r.p50_sojourn_ms,
                r.p99_sojourn_ms,
                100.0 * r.utilization,
                r.goodput_tps,
            );
        }
    }
    println!(
        "\nContinuous batching keeps the static discipline's goodput without its sojourn:\n\
         nobody waits for a batch to form, nobody pads to the longest batch-mate — the\n\
         frontier modern serving stacks (Orca, vLLM, TGI) hold a batch-1 design against."
    );
    Ok(())
}

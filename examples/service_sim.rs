//! Datacenter service simulation: request streams on one DFX appliance.
//!
//! The paper motivates DFX with datacenter text-generation services that
//! run *non-batched* requests (SIII-A: gathering user inputs into batches
//! adds latency, so "current datacenters prefer to run the model without
//! fully gathering the input"). This example pushes a Poisson stream of
//! chatbot requests through one 4-FPGA 1.5B appliance and one GPU
//! appliance, and reports tail latency - the service-level view of the
//! per-request speedups.
//!
//! ```sh
//! cargo run --release --example service_sim
//! ```

use dfx::baseline::GpuModel;
use dfx::model::{GptConfig, Workload};
use dfx::sim::Appliance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Exponential inter-arrival sample (Poisson process).
fn exp_sample(rng: &mut StdRng, rate_per_s: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() / rate_per_s
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = GptConfig::gpt2_1_5b();
    let dfx = Appliance::timing_only(cfg.clone(), 4)?;
    let gpu = GpuModel::new(cfg, 4);

    // Chatbot-style requests with some size variety.
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let n_requests = 200;
    let requests: Vec<Workload> = (0..n_requests)
        .map(|_| {
            let input = *[32usize, 48, 64, 96]
                .as_slice()
                .get(rng.gen_range(0..4))
                .unwrap();
            let output = *[16usize, 32, 64, 96]
                .as_slice()
                .get(rng.gen_range(0..4))
                .unwrap();
            Workload::new(input, output)
        })
        .collect();

    // Pre-compute service times once per distinct workload.
    let mut service = std::collections::HashMap::new();
    for w in &requests {
        service.entry(*w).or_insert_with(|| {
            let d = dfx
                .generate_timed(w.input_len, w.output_len)
                .expect("valid workload")
                .total_latency_ms();
            let g = gpu.run(*w).total_ms();
            (d, g)
        });
    }

    println!("200 chatbot requests, Poisson arrivals, single appliance, FIFO queue\n");
    println!(
        "{:>12} {:>14} {:>14} {:>14} {:>14}",
        "arrival/s", "DFX p50 ms", "DFX p99 ms", "GPU p50 ms", "GPU p99 ms"
    );
    for rate in [0.25f64, 0.5, 1.0, 2.0] {
        // Shared arrival trace for a fair comparison.
        let mut t = 0.0;
        let arrivals: Vec<f64> = (0..n_requests)
            .map(|_| {
                t += exp_sample(&mut rng, rate);
                t * 1e3 // ms
            })
            .collect();

        let run = |pick: fn(&(f64, f64)) -> f64| -> Vec<f64> {
            let mut free_at = 0.0f64;
            let mut sojourn: Vec<f64> = arrivals
                .iter()
                .zip(&requests)
                .map(|(&arr, w)| {
                    let start = free_at.max(arr);
                    let svc = pick(&service[w]);
                    free_at = start + svc;
                    free_at - arr
                })
                .collect();
            sojourn.sort_by(|a, b| a.partial_cmp(b).unwrap());
            sojourn
        };

        let d = run(|s| s.0);
        let g = run(|s| s.1);
        println!(
            "{:>12.2} {:>14.0} {:>14.0} {:>14.0} {:>14.0}",
            rate,
            percentile(&d, 0.5),
            percentile(&d, 0.99),
            percentile(&g, 0.5),
            percentile(&g, 0.99),
        );
    }
    println!(
        "\nAt low load the gap equals the per-request speedup; as load approaches the GPU\n\
         appliance's capacity its queue explodes while DFX still serves interactively -\n\
         the paper's throughput advantage translated into tail latency."
    );
    Ok(())
}

//! Datacenter service simulation: the same Poisson request stream on a
//! DFX appliance and on the GPU appliance, through `dfx::serve`.
//!
//! The paper motivates DFX with datacenter text-generation services that
//! run *non-batched* requests (§III-A), so tail latency under load — not
//! per-request speed — is the user-visible metric.
//!
//! ```sh
//! cargo run --release --example service_sim
//! ```

use dfx::baseline::GpuModel;
use dfx::model::GptConfig;
use dfx::serve::{chatbot_mix, ArrivalProcess, ServingEngine};
use dfx::sim::Appliance;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = GptConfig::gpt2_1_5b();
    let dfx = Appliance::timing_only(cfg.clone(), 4)?;
    let gpu = GpuModel::new(cfg.clone(), 4);

    let stream = chatbot_mix(200, cfg.max_seq_len);
    let mut dfx_engine = ServingEngine::new(&dfx);
    let mut gpu_engine = ServingEngine::new(&gpu);

    println!("200 chatbot requests, Poisson arrivals, single appliance, FIFO queue\n");
    println!(
        "{:>12} {:>14} {:>14} {:>14} {:>14}",
        "arrival/s", "DFX p50 ms", "DFX p99 ms", "GPU p50 ms", "GPU p99 ms"
    );
    for rate_per_s in [0.25, 0.5, 1.0, 2.0] {
        // Shared seed: both appliances see the identical arrival trace.
        let arrivals = ArrivalProcess::Poisson {
            rate_per_s,
            seed: 0x5EED,
        };
        let d = dfx_engine.run(&stream, &arrivals)?;
        let g = gpu_engine.run(&stream, &arrivals)?;
        println!(
            "{:>12.2} {:>14.0} {:>14.0} {:>14.0} {:>14.0}",
            rate_per_s, d.p50_sojourn_ms, d.p99_sojourn_ms, g.p50_sojourn_ms, g.p99_sojourn_ms
        );
    }
    println!(
        "\nAt low load the gap equals the per-request speedup; as load approaches the GPU\n\
         appliance's capacity its queue explodes while DFX still serves interactively -\n\
         the paper's throughput advantage translated into tail latency."
    );
    Ok(())
}

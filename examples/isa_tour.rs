//! A tour of the DFX instruction set.
//!
//! Compiles one token step of GPT-2 onto the custom ISA and shows what
//! the hardware actually executes: the embedding fetch, a decoder layer
//! with its Value-first transpose-hiding order, the per-head attention
//! sequence, the four ring synchronisations, and the LM head with its
//! fused argmax. Also reports the binary encoding footprint the host
//! transfers to the instruction buffers.
//!
//! ```sh
//! cargo run --release --example isa_tour
//! ```

use dfx::isa::{encode_program, ParallelConfig, ProgramBuilder};
use dfx::model::GptConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = GptConfig::tiny();
    let builder = ProgramBuilder::new(cfg.clone(), ParallelConfig::new(0, 2))
        .map_err(std::io::Error::other)?;

    // Token step 3 (context of 4 after this step), with the LM head.
    let program = builder.token_step(3, true);
    program
        .validate()
        .map_err(|e| std::io::Error::other(e.to_string()))?;

    println!(
        "model {} on core 0 of 2 | token position 3 | {} instructions\n",
        cfg.name,
        program.len()
    );

    println!("--- first 48 instructions -------------------------------------");
    for line in program.disassemble().lines().take(48) {
        println!("{line}");
    }

    println!("\n--- instruction mix --------------------------------------------");
    for (class, count) in program.class_histogram() {
        println!("  {class:<10} {count:>5}");
    }
    println!();
    for (class, count) in program.op_class_histogram() {
        println!("  {:<22} {count:>5}", class.name());
    }

    let encoded = encode_program(&program);
    println!(
        "\nbinary stream: {} bytes ({:.1} B/instruction)",
        encoded.len(),
        encoded.len() as f64 / program.len() as f64
    );
    println!(
        "ring synchronisations in this step: {}",
        program
            .op_class_histogram()
            .get(&dfx::isa::OpClass::Sync)
            .copied()
            .unwrap_or(0)
    );
    Ok(())
}

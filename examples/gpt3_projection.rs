//! Projection: scaling DFX to GPT-3-class models.
//!
//! The paper argues its GPT-2 acceleration strategies "are applicable to
//! GPT-3 because it has the same model structure but with a larger size"
//! (SII-A), and that the appliance scales by adding FPGA cards (SVI).
//! This example tests that claim in simulation: GPT-3 6.7B and 13B on
//! growing rings, with the HBM capacity check deciding the minimum
//! cluster per model.
//!
//! ```sh
//! cargo run --release --example gpt3_projection
//! ```

use dfx::model::GptConfig;
use dfx::sim::{Appliance, SimError};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for cfg in [GptConfig::gpt3_6_7b(), GptConfig::gpt3_13b()] {
        println!(
            "\n{} ({:.1}B parameters, {} layers, {} heads of {}):",
            cfg.name,
            cfg.num_parameters() as f64 / 1e9,
            cfg.num_layers,
            cfg.num_heads,
            cfg.head_dim()
        );
        println!(
            "{:>6} {:>14} {:>12} {:>12}",
            "FPGAs", "fits HBM?", "[64:64] ms", "tokens/s"
        );
        for fpgas in [1usize, 2, 4, 8] {
            if cfg.num_heads % fpgas != 0 {
                continue;
            }
            match Appliance::timing_only(cfg.clone(), fpgas) {
                Ok(appliance) => {
                    let run = appliance.generate_timed(64, 64)?;
                    println!(
                        "{fpgas:>6} {:>14} {:>12.1} {:>12.2}",
                        "yes",
                        run.total_latency_ms(),
                        run.tokens_per_second()
                    );
                }
                Err(SimError::Partition(m)) if m.contains("HBM") => {
                    println!("{fpgas:>6} {:>14} {:>12} {:>12}", "no (HBM)", "-", "-");
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
    println!(
        "\nWeights alone are 13.4 GB (6.7B) and 25.6 GB (13B) in FP16; each U280 holds 8 GB \
         of HBM,\nso the ring must grow with the model - the same argument the paper makes \
         for model\nparallelism on GPT-2 1.5B."
    );
    Ok(())
}

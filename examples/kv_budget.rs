//! K/V budget walkthrough: how HBM capacity governs continuous
//! batching on the DFX appliance.
//!
//! Each U280 holds the model's weight shard *and* every live request's
//! K/V attention state in its 8 GiB of HBM (paper §IV-B). This example
//! walks the memory subsystem bottom-up: the per-device `MemoryModel`,
//! the `KvPool` admission arithmetic on the incremental executor, and
//! the serving-level consequence — a capacity-capped appliance serving
//! the same backlog with a smaller live batch, and chunked prefill
//! bounding the decode stall admissions inject.
//!
//! ```sh
//! cargo run --release --example kv_budget
//! ```

use dfx::model::{GptConfig, Workload};
use dfx::serve::{ArrivalProcess, Backend, ContinuousBatching, ServingEngine};
use dfx::sim::Appliance;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = GptConfig::gpt2_1_5b();
    let dfx = Appliance::timing_only(cfg.clone(), 4)?;

    // 1. The capacity model: what one device holds.
    let m = dfx.memory_model();
    println!("{} per device:", Backend::name(&dfx));
    println!(
        "  HBM capacity        {:>10.1} GiB",
        m.capacity_bytes as f64 / (1u64 << 30) as f64
    );
    println!(
        "  weight shard        {:>10.1} MiB",
        m.weight_bytes as f64 / (1u64 << 20) as f64
    );
    println!(
        "  K/V per token       {:>10.1} KiB",
        m.kv_bytes_per_token as f64 / 1024.0
    );
    println!(
        "  K/V budget          {:>10} tokens",
        m.max_resident_tokens()
    );

    // 2. Admission arithmetic on the incremental executor: every member
    //    reserves its full input+output claim; over-budget admissions
    //    fail instead of silently over-committing.
    let w = Workload::chatbot(); // [64:64] = 128-token claim
    let claim = (w.input_len + w.output_len) as u64;
    let three_claims = dfx
        .memory_model()
        .with_capacity(m.weight_bytes + 3 * claim * m.kv_bytes_per_token);
    println!(
        "\nA what-if device with room for 3 claims ({} tokens):",
        three_claims.max_resident_tokens()
    );
    let capped =
        Appliance::timing_only(cfg.clone(), 4)?.with_hbm_capacity(three_claims.capacity_bytes)?;
    let mut batch = capped.batch_state();
    for id in 0..3 {
        batch.admit(id, w)?;
        println!(
            "  admit #{id}: committed {:>3} tokens, free {:>3}",
            batch.kv().committed_tokens(),
            batch.kv().free_tokens()
        );
    }
    let refused = batch.admit(3, w).unwrap_err();
    println!("  admit #3 refused: {refused}");
    while batch.live() > 0 {
        batch.step_token()?;
    }
    println!(
        "  after retirement: committed {} tokens (claims released in full)",
        batch.kv().committed_tokens()
    );

    // 3. The serving consequence: the same saturating backlog on capped
    //    vs full HBM — capacity, not the scheduler, bounds the batch —
    //    and chunked prefill cutting the stall running members feel.
    let stream = vec![w; 64];
    let backlog = ArrivalProcess::Trace(vec![0.0; 64]);
    println!("\n64-request backlog, continuous max batch 16:");
    println!(
        "{:>24} {:>15} {:>12} {:>15} {:>18}",
        "appliance", "peak live batch", "p99 s", "goodput tok/s", "p99 token gap ms"
    );
    let show = |label: &str, appliance: &Appliance, chunk: Option<usize>| {
        let mut discipline = ContinuousBatching::new(16);
        if let Some(c) = chunk {
            discipline = discipline.with_prefill_chunk(c);
        }
        let r = ServingEngine::new(appliance)
            .with_scheduler(Box::new(discipline))
            .run(&stream, &backlog)
            .expect("valid stream");
        println!(
            "{label:>24} {:>15} {:>12.1} {:>15.1} {:>18.0}",
            r.peak_live_batch,
            r.p99_sojourn_ms / 1e3,
            r.goodput_tps,
            r.p99_token_gap_ms,
        );
    };
    show("3-claim HBM", &capped, None);
    show("8 GiB HBM", &dfx, None);
    show("8 GiB + chunk 16", &dfx, Some(16));

    println!(
        "\nCapacity bounds the live batch (and with it goodput); chunked prefill keeps the\n\
         batch full while bounding the decode stall each admission injects — the two layers\n\
         the serving stack needs before HBM-heavy features (longer contexts, >4-FPGA\n\
         sharding) can land."
    );
    Ok(())
}

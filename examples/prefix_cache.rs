//! Shared-system-prompt chatbot serving on the paged K/V allocator.
//!
//! A chatbot fleet typically prepends the same system prompt to every
//! conversation. With max-claim reservation each request recomputes
//! that prefix and holds private K/V for it; with the paged allocator
//! ([`dfx::sim::BlockPool`]) the prefix's whole blocks live once in a
//! ref-counted cache — later requests attach them instead of
//! recomputing, skipping both the prefill work and the K/V bytes.
//!
//! This example walks a small chatbot mix through the batch engine at a
//! tight HBM capacity, printing block occupancy as members join and
//! retire, then compares reserved vs paged vs paged+prefix end to end
//! and reports the cache hit rate.
//!
//! ```sh
//! cargo run --release --example prefix_cache
//! ```

use dfx::model::{GptConfig, Workload};
use dfx::serve::{chatbot_mix, ArrivalProcess, ContinuousBatching, ServingEngine};
use dfx::sim::{Appliance, PagedKvConfig, PreemptionPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = GptConfig::gpt2_345m();
    let system_prompt = 32; // tokens every conversation starts with
    let block_tokens = 16;

    // A capacity tight enough that the allocator matters: room for
    // ~4 concurrent 128-token chatbot claims next to the weight shard.
    let base = Appliance::timing_only(cfg.clone(), 1)?;
    let memory = base.memory_model();
    let capacity = memory.weight_bytes + 4 * 128 * memory.kv_bytes_per_token;
    let capped = || -> Result<Appliance, Box<dyn std::error::Error>> {
        Ok(Appliance::timing_only(cfg.clone(), 1)?.with_hbm_capacity(capacity)?)
    };

    // --- 1. Block occupancy, member by member -------------------------
    let paging = PagedKvConfig::new(block_tokens)
        .with_policy(PreemptionPolicy::Retain)
        .with_shared_prefix(system_prompt);
    let appliance = capped()?.with_kv_paging(paging)?;
    let mut batch = appliance.batch_state();
    let pool_blocks = batch.kv().paged().unwrap().total_blocks();
    println!(
        "paged pool: {pool_blocks} blocks of {block_tokens} tokens, {system_prompt}-token \
         shared system prompt\n"
    );
    println!(
        "{:<28} {:>6} {:>7} {:>7} {:>9}",
        "event", "live", "free", "cached", "hit toks"
    );
    let occupancy = |batch: &dfx::sim::BatchState, event: &str| {
        let kv = batch.kv();
        let pool = kv.paged().unwrap();
        let stats = pool.stats();
        println!(
            "{:<28} {:>6} {:>7} {:>7} {:>9}",
            event,
            pool.live(),
            pool.free_blocks(),
            pool.cached_blocks(),
            stats.prefix_hit_tokens,
        );
    };
    let conversations = [
        Workload::new(48, 16),
        Workload::new(64, 24),
        Workload::new(48, 8),
        Workload::new(96, 16),
    ];
    for (id, w) in conversations.iter().enumerate() {
        batch.admit(id as u64, *w)?;
        occupancy(&batch, &format!("admit #{id} {w}"));
    }
    while batch.live() > 0 {
        batch.step_token()?;
        for m in batch.retire() {
            occupancy(&batch, &format!("retire #{} ({} tokens)", m.id, m.tokens));
        }
    }
    occupancy(&batch, "drained (prefix stays cached)");
    let stats = batch.paging_stats().unwrap();
    println!(
        "\nprefix cache: {} prompt tokens attached from cache, {} computed -> {:.0}% hit rate\n",
        stats.prefix_hit_tokens,
        stats.prefix_computed_tokens,
        stats.hit_rate() * 100.0
    );

    // --- 2. Reserved vs paged vs paged+prefix, end to end -------------
    let mix = chatbot_mix(48, cfg.max_seq_len);
    let backlog = ArrivalProcess::Trace(vec![0.0; mix.len()]);
    let run = |appliance: &Appliance| {
        ServingEngine::new(appliance)
            .with_scheduler(Box::new(ContinuousBatching::new(8)))
            .run(&mix, &backlog)
    };
    println!(
        "{:<16} {:>10} {:>14} {:>9} {:>9}",
        "allocator", "peak batch", "goodput tok/s", "preempt", "hit rate"
    );
    let retain = PagedKvConfig::new(block_tokens).with_policy(PreemptionPolicy::Retain);
    let setups = [
        ("reserved", None),
        ("paged", Some(retain)),
        (
            "paged+prefix",
            Some(retain.with_shared_prefix(system_prompt)),
        ),
    ];
    let mut baseline = 0.0;
    for (label, paging) in setups {
        let appliance = match paging {
            Some(p) => capped()?.with_kv_paging(p)?,
            None => capped()?,
        };
        let report = run(&appliance)?;
        let hit = report
            .paging
            .map_or("-".to_string(), |s| format!("{:.0}%", s.hit_rate() * 100.0));
        let preempt = report
            .paging
            .map_or("-".to_string(), |s| s.preemptions.to_string());
        let vs = if baseline == 0.0 {
            baseline = report.goodput_tps;
            String::new()
        } else {
            format!(
                "  ({:+.1}% vs reserved)",
                100.0 * (report.goodput_tps / baseline - 1.0)
            )
        };
        println!(
            "{:<16} {:>10} {:>14.1} {:>9} {:>9}{vs}",
            label, report.peak_live_batch, report.goodput_tps, preempt, hit
        );
    }
    Ok(())
}

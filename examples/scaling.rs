//! Scalability: how DFX throughput grows with cluster size.
//!
//! Reproduces the Fig 18 experiment and extends it beyond the paper: the
//! 345M model from 1 to 8 FPGAs at the 64:64 chatbot workload, with the
//! latency breakdown showing why scaling is sublinear (LayerNorm and
//! residual are not parallelised, and every extra hop lengthens the ring
//! synchronisation - paper SVII-B).
//!
//! ```sh
//! cargo run --release --example scaling
//! ```

use dfx::isa::OpClass;
use dfx::model::GptConfig;
use dfx::sim::Appliance;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = GptConfig::gpt2_345m();
    println!("GPT-2 345M at [64:64], growing the FPGA ring\n");
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>8} {:>8}",
        "FPGAs", "latency ms", "tokens/s", "scaling", "sync %", "SA %"
    );
    let mut prev: Option<f64> = None;
    for fpgas in [1usize, 2, 4, 8] {
        let appliance = Appliance::timing_only(cfg.clone(), fpgas)?;
        let run = appliance.generate_timed(64, 64)?;
        let tps = run.tokens_per_second();
        let breakdown = run.breakdown();
        let shares = breakdown.fig15_shares();
        let share = |class: OpClass| {
            shares
                .iter()
                .find(|(c, _)| *c == class)
                .map(|(_, s)| *s)
                .unwrap_or(0.0)
        };
        println!(
            "{:>6} {:>12.1} {:>12.2} {:>9} {:>7.1}% {:>7.1}%",
            fpgas,
            run.total_latency_ms(),
            tps,
            prev.map_or("-".to_string(), |p| format!("{:.2}x", tps / p)),
            share(OpClass::Sync),
            share(OpClass::SelfAttention),
        );
        prev = Some(tps);
    }
    println!(
        "\nThroughput grows ~1.5x per doubling (paper: 1.57x and 1.42x) while the \
         synchronisation\nshare climbs - the paper's explanation for sublinear scaling."
    );
    Ok(())
}

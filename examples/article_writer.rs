//! Topic-to-essay generation: long outputs from a short topic prompt.
//!
//! OpenAI's article-writing use case takes up to 50 input tokens and
//! produces up to 150+ output tokens (paper §II-A) - the generation-heavy
//! regime where DFX's matrix-vector dataflow dominates the GPU. This
//! example sweeps output length at a fixed 32-token topic across all
//! three models and shows where the crossover sits.
//!
//! ```sh
//! cargo run --release --example article_writer
//! ```

use dfx::baseline::GpuModel;
use dfx::model::{GptConfig, Workload};
use dfx::sim::Appliance;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let setups = [
        (GptConfig::gpt2_345m(), 1usize),
        (GptConfig::gpt2_774m(), 2),
        (GptConfig::gpt2_1_5b(), 4),
    ];
    let outputs = [1usize, 4, 16, 64, 150, 256];

    for (cfg, devices) in setups {
        let dfx = Appliance::timing_only(cfg.clone(), devices)?;
        let gpu = GpuModel::new(cfg.clone(), devices);
        println!(
            "\n{} on {} device(s) - topic of 32 tokens, growing essay length",
            cfg.name, devices
        );
        println!(
            "{:<10} {:>12} {:>12} {:>10}",
            "[in:out]", "DFX ms", "GPU ms", "speedup"
        );
        for out in outputs {
            let w = Workload::new(32, out);
            let d = dfx.generate_timed(w.input_len, w.output_len)?;
            let g = gpu.run(w);
            let speedup = g.total_ms() / d.total_latency_ms();
            let marker = if speedup >= 1.0 {
                "DFX wins"
            } else {
                "GPU wins"
            };
            println!(
                "{:<10} {:>12.1} {:>12.1} {:>9.2}x  {marker}",
                w.to_string(),
                d.total_latency_ms(),
                g.total_ms(),
                speedup,
            );
        }
    }
    println!(
        "\nThe paper's rule of thumb holds: once outputs exceed ~a quarter of the input \
         length,\nDFX is ahead, and the gap widens to ~10x at [32:256] on the 1.5B model."
    );
    Ok(())
}

//! Quickstart: generate text on a functionally simulated DFX cluster.
//!
//! Builds a test-scale GPT-2, partitions it across two simulated FPGAs,
//! runs end-to-end text generation bit-level (FP16 MAC trees, GELU LUT,
//! ring all-gathers) and prints the text together with the modelled
//! latency.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dfx::model::{Gpt2Model, GptConfig, GptWeights, Tokenizer};
use dfx::num::F16;
use dfx::sim::Appliance;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A test-scale model with deterministic synthetic weights.
    let cfg = GptConfig::tiny();
    let weights32 = GptWeights::synthetic(&cfg);
    let weights16 = weights32.cast::<F16>();
    let tokenizer = Tokenizer::new(cfg.vocab_size);

    // 2. A functional 2-FPGA appliance.
    let mut appliance = Appliance::functional(weights16.clone(), 2)?;

    // 3. Generate.
    let prompt = "hello my name is";
    let input = tokenizer.encode(prompt);
    let run = appliance.generate(&input, 8)?;
    let text = tokenizer.decode(&run.tokens);

    println!("prompt      : {prompt}");
    println!("continuation: {text}");
    println!();
    println!(
        "simulated latency: {:.3} ms  (summarization {:.3} ms + generation {:.3} ms)",
        run.timed.total_latency_ms(),
        run.timed.summarization_ms(),
        run.timed.generation_ms(),
    );
    println!(
        "throughput       : {:.1} tokens/s",
        run.timed.tokens_per_second()
    );
    println!();
    println!("latency breakdown (decoder classes):");
    for (class, share) in run.timed.breakdown().fig15_shares() {
        println!("  {:<22} {share:5.1} %", class.name());
    }

    // 4. Sanity: the reference model produces the same tokens.
    let reference = Gpt2Model::new(weights16);
    let expect = reference.generate(&input, 8);
    assert_eq!(
        run.tokens, expect.tokens,
        "cluster must match the reference"
    );
    println!("\nverified: 2-FPGA cluster output matches the single-model reference");
    Ok(())
}

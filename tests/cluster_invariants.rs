//! Property-based tests of the `ClusterRouter` routing invariants.
//!
//! The same closed-form `UnitBackend` as `serving_invariants.rs` keeps
//! service times trivial (integer milliseconds, exact in f64), so the
//! properties stress the *router* — assignment, sub-stream replay,
//! report pooling — not the cycle model. The pinned invariants:
//!
//! 1. **Conservation** — every submitted request appears exactly once
//!    in the cluster report, under any placement (including a seeded
//!    random one) and any open-loop arrival process.
//! 2. **Causality** — no response starts before its arrival, and every
//!    response's replica index is the one the placement chose.
//! 3. **Determinism** — identical seeds reproduce the whole
//!    `ClusterReport` bit for bit.
//! 4. **Single-replica equivalence** — a cluster of one replica is the
//!    bare `ServingEngine` run, bit-identical responses and all.
//! 5. **Round-robin fairness** — dispatch counts never differ by more
//!    than one, so the Jain balance index is ~1.
//! 6. **Checkpoint equivalence** — load-aware routing through
//!    incremental engine checkpoints produces a report bit-identical
//!    to the O(n²) full-replay reference
//!    ([`with_full_replay`](ClusterRouter::with_full_replay)), declines
//!    and all.
//!
//! Plus the session-affinity prefix-hit regression: with a shared
//! system prompt on paged replicas, pinning a session strictly
//! out-hits spraying it, and the cluster's pooled `PagingStats` equal
//! the per-replica sums.
//!
//! The property blocks deliberately carry no explicit case count: the
//! vendored proptest honours `PROPTEST_CASES`, which CI raises for
//! this suite.

use dfx::model::{GptConfig, Workload};
use dfx::serve::{
    ArrivalProcess, Backend, ClusterRouter, ContinuousBatching, ContinuousStepper, Placement,
    ReplicaSnapshot, RoundRobin, RoutedRequest, RunReport, ServingEngine, SessionAffinity,
    StepEvent,
};
use dfx::sim::{Appliance, PagedKvConfig, PreemptionPolicy, SimError};
use proptest::prelude::*;

/// Closed-form backend: `input + output` ms per request, with a
/// matching token-granular stepper (see `serving_invariants.rs`).
struct UnitBackend;

struct UnitStepper {
    members: Vec<(u64, Workload, usize)>,
}

impl ContinuousStepper for UnitStepper {
    fn admit(&mut self, id: u64, workload: Workload) -> Result<StepEvent, SimError> {
        dfx::serve::validate_workload(workload)?;
        self.members.push((id, workload, 0));
        Ok(StepEvent {
            ms: workload.input_len as f64,
            live: self.members.len(),
            finished: vec![],
            prefilling: vec![],
        })
    }

    fn step_token(&mut self) -> Result<StepEvent, SimError> {
        if self.members.is_empty() {
            return Err(SimError::InvalidRequest("no live members".into()));
        }
        let mut finished = Vec::new();
        let mut i = 0;
        while i < self.members.len() {
            self.members[i].2 += 1;
            if self.members[i].2 == self.members[i].1.output_len {
                finished.push(self.members.remove(i).0);
            } else {
                i += 1;
            }
        }
        Ok(StepEvent {
            ms: 1.0,
            live: self.members.len(),
            finished,
            prefilling: vec![],
        })
    }

    fn live(&self) -> usize {
        self.members.len()
    }
}

impl Backend for UnitBackend {
    fn name(&self) -> String {
        "unit".into()
    }
    fn device_count(&self) -> usize {
        1
    }
    fn nominal_power_w(&self) -> Option<f64> {
        None
    }
    fn serve(&self, w: Workload) -> Result<RunReport, SimError> {
        dfx::serve::validate_workload(w)?;
        Ok(RunReport {
            backend: self.name(),
            workload: w,
            summarization_ms: w.input_len as f64,
            generation_ms: w.output_len as f64,
            devices: 1,
            power_w: None,
        })
    }
    fn continuous(&self) -> Option<Box<dyn ContinuousStepper + '_>> {
        Some(Box::new(UnitStepper {
            members: Vec::new(),
        }))
    }
}

/// A deterministic "adversarial" placement: a seeded LCG picks any
/// replica, ignoring load entirely. If the router's bookkeeping
/// survives this, it survives every well-behaved policy.
struct SeededRandom {
    state: u64,
}

impl Placement for SeededRandom {
    fn name(&self) -> String {
        "seeded-random".into()
    }
    fn place(&mut self, _request: &RoutedRequest, replicas: &[ReplicaSnapshot]) -> usize {
        // Knuth's MMIX LCG constants; high bits for the draw.
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.state >> 33) as usize) % replicas.len()
    }
}

fn arb_workloads() -> impl Strategy<Value = Vec<Workload>> {
    proptest::collection::vec((1usize..64, 1usize..64), 1..32)
        .prop_map(|v| v.into_iter().map(|(i, o)| Workload::new(i, o)).collect())
}

proptest! {
    /// Conservation and causality under an adversarial placement:
    /// every request served exactly once, with its own workload, never
    /// before it arrived, on the replica the placement chose.
    #[test]
    fn random_placement_conserves_requests_and_causality(
        workloads in arb_workloads(),
        rate_per_s in 0.5f64..200.0,
        seed in any::<u64>(),
        lcg_seed in any::<u64>(),
        replicas in 1usize..5,
    ) {
        let backends: Vec<UnitBackend> = (0..replicas).map(|_| UnitBackend).collect();
        let servers: Vec<&dyn Backend> = backends.iter().map(|b| b as &dyn Backend).collect();
        let arrivals = ArrivalProcess::Poisson { rate_per_s, seed };
        let report = ClusterRouter::uniform(servers, Box::new(SeededRandom { state: lcg_seed }))
            .unwrap()
            .run(&workloads, &arrivals)
            .unwrap();

        prop_assert_eq!(report.total_requests, workloads.len());
        prop_assert_eq!(report.responses.len(), workloads.len());
        let ids: Vec<u64> = report.responses.iter().map(|r| r.request.id).collect();
        prop_assert_eq!(ids, (0..workloads.len() as u64).collect::<Vec<_>>());
        let dispatched: usize = report.replicas.iter().map(|r| r.dispatched).sum();
        prop_assert_eq!(dispatched, workloads.len());
        for r in &report.responses {
            prop_assert!(r.start_ms >= r.request.arrival_ms,
                "request {} started {} before its arrival {}",
                r.request.id, r.start_ms, r.request.arrival_ms);
            prop_assert!(r.server < replicas);
            prop_assert_eq!(r.request.workload, workloads[r.request.id as usize]);
        }
        prop_assert!(report.p50_sojourn_ms <= report.p95_sojourn_ms);
        prop_assert!(report.p95_sojourn_ms <= report.p99_sojourn_ms);
        prop_assert!(report.balance_index > 0.0 && report.balance_index <= 1.0 + 1e-12);
    }

    /// Identical seeds reproduce the whole cluster report bit for bit,
    /// for both a load-blind and a load-aware placement (the latter
    /// exercises the incremental re-simulation path).
    #[test]
    fn seeded_cluster_runs_are_reproducible(
        workloads in arb_workloads(),
        rate_per_s in 0.5f64..200.0,
        seed in any::<u64>(),
        replicas in 1usize..4,
        load_aware in any::<bool>(),
    ) {
        let backends: Vec<UnitBackend> = (0..replicas).map(|_| UnitBackend).collect();
        let arrivals = ArrivalProcess::Poisson { rate_per_s, seed };
        let run = || {
            let servers: Vec<&dyn Backend> =
                backends.iter().map(|b| b as &dyn Backend).collect();
            let placement: Box<dyn Placement> = if load_aware {
                Box::new(dfx::serve::LeastOutstanding)
            } else {
                Box::new(RoundRobin::new())
            };
            ClusterRouter::uniform(servers, placement)
                .unwrap()
                .run(&workloads, &arrivals)
                .unwrap()
        };
        prop_assert_eq!(run(), run());
    }

    /// A cluster of one replica is the bare engine: the replica's
    /// inner report equals `ServingEngine::run` bit for bit, and the
    /// cluster-level responses and percentiles match it.
    #[test]
    fn single_replica_cluster_is_bit_identical_to_bare_engine(
        workloads in arb_workloads(),
        rate_per_s in 0.5f64..200.0,
        seed in any::<u64>(),
        max_batch in 1usize..5,
    ) {
        let arrivals = ArrivalProcess::Poisson { rate_per_s, seed };
        let bare = ServingEngine::new(&UnitBackend)
            .with_scheduler(Box::new(ContinuousBatching::new(max_batch)))
            .run(&workloads, &arrivals)
            .unwrap();
        let cluster = ClusterRouter::uniform(
                vec![&UnitBackend as &dyn Backend],
                Box::new(RoundRobin::new()),
            )
            .unwrap()
            .with_scheduler_factory(move || Box::new(ContinuousBatching::new(max_batch)))
            .run(&workloads, &arrivals)
            .unwrap();

        let inner = cluster.replicas[0].report.as_ref().unwrap();
        prop_assert_eq!(inner, &bare);
        // The engine reports completion order; the cluster re-keys to
        // ascending global id. Same responses, documented order.
        let mut bare_by_id = bare.responses.clone();
        bare_by_id.sort_by_key(|r| r.request.id);
        prop_assert_eq!(&cluster.responses, &bare_by_id);
        prop_assert_eq!(cluster.p50_sojourn_ms, bare.p50_sojourn_ms);
        prop_assert_eq!(cluster.p95_sojourn_ms, bare.p95_sojourn_ms);
        prop_assert_eq!(cluster.p99_sojourn_ms, bare.p99_sojourn_ms);
        prop_assert_eq!(cluster.makespan_ms, bare.makespan_ms);
        prop_assert_eq!(cluster.goodput_tps, bare.goodput_tps);
        prop_assert_eq!(cluster.balance_index, 1.0);
    }

    /// Round-robin dispatch counts never differ by more than one,
    /// whatever the stream or pacing.
    #[test]
    fn round_robin_dispatch_counts_differ_by_at_most_one(
        workloads in arb_workloads(),
        rate_per_s in 0.5f64..200.0,
        seed in any::<u64>(),
        replicas in 1usize..6,
    ) {
        let backends: Vec<UnitBackend> = (0..replicas).map(|_| UnitBackend).collect();
        let servers: Vec<&dyn Backend> = backends.iter().map(|b| b as &dyn Backend).collect();
        let arrivals = ArrivalProcess::Poisson { rate_per_s, seed };
        let report = ClusterRouter::uniform(servers, Box::new(RoundRobin::new()))
            .unwrap()
            .run(&workloads, &arrivals)
            .unwrap();
        let counts: Vec<usize> = report.replicas.iter().map(|r| r.dispatched).collect();
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        prop_assert!(max - min <= 1, "round-robin dispatch skew: {:?}", counts);
    }

    /// Checkpoint equivalence: routing through incremental engine
    /// checkpoints (the default for load-aware placements) produces a
    /// `ClusterReport` bit-identical to the O(n²) full-replay
    /// reference, for both load signals. Memory-bound replicas make
    /// `LeastKvLoaded` read real K/V claims and push the scheduler
    /// into saturation declines, exercising the stalled-stream replay
    /// fallback as well as the streamed admission accounting.
    #[test]
    fn incremental_checkpoints_match_full_replay(
        workloads in arb_workloads(),
        rate_per_s in 0.5f64..200.0,
        seed in any::<u64>(),
        replicas in 1usize..4,
        max_batch in 1usize..5,
        kv_aware in any::<bool>(),
    ) {
        // Budget fits any single arb workload (≤ 126 tokens) but not
        // every pair, so declines genuinely occur under load.
        let backends: Vec<Appliance> = (0..replicas)
            .map(|_| {
                let base = Appliance::timing_only(GptConfig::tiny(), 1).unwrap();
                let m = base.memory_model();
                let capacity = m.weight_bytes + 160 * m.kv_bytes_per_token;
                base.with_hbm_capacity(capacity).unwrap()
            })
            .collect();
        let arrivals = ArrivalProcess::Poisson { rate_per_s, seed };
        let run = |full_replay: bool| {
            let servers: Vec<&dyn Backend> =
                backends.iter().map(|b| b as &dyn Backend).collect();
            let placement: Box<dyn Placement> = if kv_aware {
                Box::new(dfx::serve::LeastKvLoaded)
            } else {
                Box::new(dfx::serve::LeastOutstanding)
            };
            let mut router = ClusterRouter::uniform(servers, placement)
                .unwrap()
                .with_scheduler_factory(move || Box::new(ContinuousBatching::new(max_batch)));
            if full_replay {
                router = router.with_full_replay();
            }
            router.run(&workloads, &arrivals).unwrap()
        };
        prop_assert_eq!(run(false), run(true));
    }
}

/// Session-affinity prefix-hit regression: two paged replicas behind a
/// shared system prompt, one session of identical requests. Pinning
/// the session computes the prompt once and hits it `n-1` times;
/// spraying round-robin computes it once *per replica*, so affinity
/// strictly out-hits it. The cluster's pooled `PagingStats` must be
/// the exact per-replica sums in both runs.
#[test]
fn session_affinity_out_hits_round_robin_and_paging_totals_are_sums() {
    let cfg = GptConfig::tiny();
    let prefix = 16usize;
    let paged: Vec<Appliance> = (0..2)
        .map(|_| {
            Appliance::timing_only(cfg.clone(), 1)
                .unwrap()
                .with_kv_paging(
                    PagedKvConfig::new(8)
                        .with_policy(PreemptionPolicy::Retain)
                        .with_shared_prefix(prefix),
                )
                .unwrap()
        })
        .collect();
    let stream = vec![Workload::new(prefix + 8, 4); 10];
    let sessions = vec![Some(3u64); stream.len()];
    let arrivals = ArrivalProcess::Poisson {
        rate_per_s: 20.0,
        seed: 11,
    };
    let run = |placement: Box<dyn Placement>| {
        let servers: Vec<&dyn Backend> = paged.iter().map(|a| a as &dyn Backend).collect();
        ClusterRouter::uniform(servers, placement)
            .unwrap()
            .with_scheduler_factory(|| Box::new(ContinuousBatching::new(4)))
            .run_sessions(&stream, &sessions, &arrivals)
            .unwrap()
    };
    let sprayed = run(Box::new(RoundRobin::new()));
    let pinned = run(Box::new(SessionAffinity::new(Box::new(RoundRobin::new()))));

    // Affinity routes the whole session to one replica.
    let pinned_counts: Vec<usize> = pinned.replicas.iter().map(|r| r.dispatched).collect();
    assert!(
        pinned_counts.contains(&stream.len()),
        "session split across replicas: {pinned_counts:?}"
    );

    let (s, p) = (sprayed.paging.unwrap(), pinned.paging.unwrap());
    assert_eq!(p.prefix_computed_tokens, prefix);
    assert_eq!(s.prefix_computed_tokens, 2 * prefix);
    assert!(
        p.prefix_hit_tokens > s.prefix_hit_tokens,
        "affinity hits {} !> round-robin hits {}",
        p.prefix_hit_tokens,
        s.prefix_hit_tokens
    );

    // Pooled paging counters are the exact per-replica sums.
    for report in [&sprayed, &pinned] {
        let pooled = report.paging.unwrap();
        let mut hit = 0usize;
        let mut computed = 0usize;
        let mut preemptions = 0usize;
        for r in &report.replicas {
            if let Some(stats) = r.report.as_ref().and_then(|rep| rep.paging) {
                hit += stats.prefix_hit_tokens;
                computed += stats.prefix_computed_tokens;
                preemptions += stats.preemptions;
            }
        }
        assert_eq!(pooled.prefix_hit_tokens, hit);
        assert_eq!(pooled.prefix_computed_tokens, computed);
        assert_eq!(pooled.preemptions, preemptions);
    }
}

/// The routing invariants hold end to end on real cycle-model
/// appliances: deterministic, conserving, causal.
#[test]
fn cluster_invariants_hold_on_real_appliances() {
    let appliances: Vec<Appliance> = (0..3)
        .map(|_| Appliance::timing_only(GptConfig::tiny(), 1).unwrap())
        .collect();
    let workloads: Vec<Workload> = (0..12)
        .map(|i| Workload::new(4 + i % 3, 2 + i % 4))
        .collect();
    let arrivals = ArrivalProcess::Poisson {
        rate_per_s: 5.0,
        seed: 42,
    };
    let run = || {
        let servers: Vec<&dyn Backend> = appliances.iter().map(|a| a as &dyn Backend).collect();
        ClusterRouter::uniform(servers, Box::new(dfx::serve::LeastKvLoaded))
            .unwrap()
            .with_scheduler_factory(|| Box::new(ContinuousBatching::new(3)))
            .run(&workloads, &arrivals)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "real-backend cluster runs must be deterministic");
    assert_eq!(a.responses.len(), workloads.len());
    for r in &a.responses {
        assert!(r.start_ms >= r.request.arrival_ms);
        assert!(r.finish_ms > r.start_ms);
        assert!(r.server < 3);
    }
}

//! Allocator invariant suite for the paged K/V subsystem.
//!
//! Pins the [`BlockPool`] block-table allocator and its prefix cache
//! with three kinds of guarantees:
//!
//! 1. **Allocator invariants** (property tests): under random
//!    admit/write/evict/restore/release interleavings the pool never
//!    over-commits — free + cached + owned always equals the total
//!    block count — releases free exactly what each member held, and
//!    prefix ref-counts never go negative or leak once every sharer
//!    has retired.
//! 2. **Reserved-fallback equivalence**: with paging enabled but
//!    memory slack (or a covering block size at bounded capacity, with
//!    the prefix cache off), the paged engine's serving / batching /
//!    continuous / memory behaviour is bit-identical to the reserved
//!    [`dfx::sim::KvPool`] engine — same responses, same timings, same
//!    token timelines.
//! 3. **Preemption and cancellation semantics** (deterministic): both
//!    recompute and retain preemption complete every member with its
//!    exact requested output; a member cancelled mid-prefill releases
//!    its K/V whole on both backings.
//!
//! The property blocks deliberately carry no explicit case count: the
//! vendored proptest honours `PROPTEST_CASES`, which CI raises for
//! this suite.

use dfx::hw::MemoryModel;
use dfx::model::{GptConfig, Workload};
use dfx::serve::{
    chatbot_mix, ArrivalProcess, Batching, ContinuousBatching, Fifo, Scheduler, ServiceReport,
    ServingEngine,
};
use dfx::sim::{
    Appliance, BatchState, BlockPool, PagedKvConfig, PreemptionPolicy, Prefix, SimError,
    TokenStepOutcome,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// 1. Allocator invariants under random interleavings
// ---------------------------------------------------------------------

/// One random allocator operation: an opcode, a member selector and a
/// token amount, interpreted modulo whatever is currently legal.
type Op = (u8, usize, usize);

/// Drives a [`BlockPool`] through a random op sequence, asserting the
/// structural invariants after every operation, and returns the ids
/// still live at the end.
fn drive(pool: &mut BlockPool, ops: &[Op]) -> Result<Vec<u64>, TestCaseError> {
    let total = pool.total_blocks();
    let capacity_tokens = total * pool.block_tokens();
    let mut next_id = 0u64;
    let mut live: Vec<u64> = Vec::new();
    for &(op, sel, amount) in ops {
        match op {
            // Admit, every third attempt sharing the common prefix.
            0 => {
                let claim = 1 + amount % (capacity_tokens + 2);
                let first_write = amount % (claim + 1);
                let prefix = (sel % 3 == 0).then_some(Prefix {
                    key: 0,
                    tokens: 1 + sel % (claim.max(2) - 1).max(1),
                });
                if pool.admit(next_id, claim, first_write, prefix).is_ok() {
                    live.push(next_id);
                }
                next_id += 1;
            }
            // Grow a live member by a few positions.
            1 if !live.is_empty() => {
                let id = live[sel % live.len()];
                let _ = pool.write(id, 1 + amount % (2 * pool.block_tokens()));
            }
            // Preempt a live member (frees owned blocks, derefs shared).
            2 if !live.is_empty() => {
                let id = live[sel % live.len()];
                pool.evict(id).expect("live members always evictable");
            }
            // Re-attach cached prefix blocks after an eviction.
            3 if !live.is_empty() => {
                let id = live[sel % live.len()];
                let _ = pool.attach_cached_prefix(id, 1 + amount % capacity_tokens.max(1));
            }
            // Restore swapped-in positions without compute accounting.
            4 if !live.is_empty() => {
                let id = live[sel % live.len()];
                let _ = pool.restore(id, 1 + amount % pool.block_tokens());
            }
            // Release: must free exactly the blocks the member held.
            5 if !live.is_empty() => {
                let id = live.remove(sel % live.len());
                let held = pool
                    .lease_blocks(id)
                    .map_or(0, |(owned, shared)| owned + shared);
                let free_before = pool.free_blocks();
                let freed = pool.release(id);
                prop_assert_eq!(freed, held, "release must return every held block");
                prop_assert!(
                    pool.free_blocks() >= free_before,
                    "release can only grow the free list"
                );
            }
            _ => {}
        }
        pool.assert_invariants();
        prop_assert_eq!(pool.total_blocks(), total, "capacity is constant");
    }
    Ok(live)
}

proptest! {
    /// Block conservation, exact frees and ref-count soundness under
    /// random interleavings, across block sizes and pool sizes.
    #[test]
    fn block_pool_never_overcommits_under_random_interleavings(
        ops in proptest::collection::vec((0u8..6, 0usize..64, 0usize..96), 1..120),
        block_tokens in 1usize..9,
        pool_blocks in 1usize..14,
    ) {
        let memory = MemoryModel::new((pool_blocks * block_tokens) as u64 + 1, 1, 1);
        let mut pool = BlockPool::new(memory, block_tokens);
        let total = pool.total_blocks();
        let live = drive(&mut pool, &ops)?;

        // Drain every survivor: all blocks must come back as free or
        // idle cache entries, with no ref-count left behind.
        for id in live {
            pool.release(id);
        }
        pool.assert_invariants();
        prop_assert_eq!(
            pool.free_blocks() + pool.cached_blocks(),
            total,
            "after every member retires, every block is free or idle cache"
        );
        prop_assert_eq!(
            pool.cached_idle_blocks(),
            pool.cached_blocks(),
            "no sharer left, so no cached block may keep a reference"
        );
        prop_assert_eq!(pool.live(), 0);
        prop_assert_eq!(pool.used_tokens(), 0);
    }
}

// ---------------------------------------------------------------------
// 2. Reserved-fallback equivalence
// ---------------------------------------------------------------------

fn smoke_cfg() -> GptConfig {
    GptConfig::new("kv-paging-smoke", 64, 2, 2, 512, 640)
}

/// Field-wise report equality, ignoring the backend label (the paged
/// appliance advertises its block size) and the paging stats (absent
/// on the reserved backing by construction).
fn assert_reports_identical(a: &ServiceReport, b: &ServiceReport, what: &str) {
    assert_eq!(a.responses, b.responses, "{what}: responses diverged");
    assert_eq!(a.makespan_ms, b.makespan_ms, "{what}: makespan diverged");
    assert_eq!(a.p50_sojourn_ms, b.p50_sojourn_ms, "{what}: p50 diverged");
    assert_eq!(a.p99_sojourn_ms, b.p99_sojourn_ms, "{what}: p99 diverged");
    assert_eq!(a.goodput_tps, b.goodput_tps, "{what}: goodput diverged");
    assert_eq!(
        a.peak_live_batch, b.peak_live_batch,
        "{what}: peak live batch diverged"
    );
    assert_eq!(
        a.p99_token_gap_ms, b.p99_token_gap_ms,
        "{what}: token gap diverged"
    );
}

/// With the default 8 GiB of HBM (memory never binds at chatbot scale)
/// and the prefix cache off, enabling paging changes *nothing*: the
/// serving (FIFO), batching, continuous and chunked-continuous rows
/// are bit-identical to the reserved engine, at a small and at a
/// covering block size.
#[test]
fn paged_engine_is_bit_identical_to_reserved_when_memory_never_binds() {
    let cfg = smoke_cfg();
    let mix = chatbot_mix(24, cfg.max_seq_len);
    let arrivals = ArrivalProcess::Poisson {
        rate_per_s: 50.0,
        seed: 0x5EED,
    };
    type MakeScheduler = fn() -> Box<dyn Scheduler>;
    let schedulers: Vec<(&str, MakeScheduler)> = vec![
        ("serving/fifo", || Box::new(Fifo)),
        ("batching", || Box::new(Batching::new(4, 40.0))),
        ("continuous", || Box::new(ContinuousBatching::new(4))),
        ("continuous/chunked", || {
            Box::new(ContinuousBatching::new(4).with_prefill_chunk(8))
        }),
    ];
    let reserved = Appliance::timing_only(cfg.clone(), 1).unwrap();
    for block_tokens in [16, 512] {
        let paged = Appliance::timing_only(cfg.clone(), 1)
            .unwrap()
            .with_kv_paging(PagedKvConfig::new(block_tokens))
            .unwrap();
        for (what, scheduler) in &schedulers {
            let a = ServingEngine::new(&reserved)
                .with_scheduler(scheduler())
                .run(&mix, &arrivals)
                .unwrap();
            let b = ServingEngine::new(&paged)
                .with_scheduler(scheduler())
                .run(&mix, &arrivals)
                .unwrap();
            assert_reports_identical(&a, &b, &format!("{what} (block {block_tokens})"));
        }
    }
}

/// At a *bounded* capacity, a block size that covers the whole uniform
/// claim (one block per member) makes paged admission degenerate to
/// max-claim reservation: the memory-experiment capacity rows are
/// bit-identical too.
#[test]
fn covering_block_size_is_bit_identical_at_bounded_capacity() {
    let cfg = smoke_cfg();
    let point = Workload::new(cfg.max_seq_len / 2, cfg.max_seq_len / 4);
    let claim_tokens = point.input_len + point.output_len;
    let memory = Appliance::timing_only(cfg.clone(), 1)
        .unwrap()
        .memory_model();
    let stream = vec![point; 8];
    let backlog = ArrivalProcess::Trace(vec![0.0; stream.len()]);
    for claims in [2u64, 3] {
        let capacity =
            memory.weight_bytes + claims * claim_tokens as u64 * memory.kv_bytes_per_token;
        let reserved = Appliance::timing_only(cfg.clone(), 1)
            .unwrap()
            .with_hbm_capacity(capacity)
            .unwrap();
        let paged = Appliance::timing_only(cfg.clone(), 1)
            .unwrap()
            .with_hbm_capacity(capacity)
            .unwrap()
            .with_kv_paging(PagedKvConfig::new(claim_tokens))
            .unwrap();
        let run = |appliance: &Appliance| {
            ServingEngine::new(appliance)
                .with_scheduler(Box::new(ContinuousBatching::new(4)))
                .run(&stream, &backlog)
                .unwrap()
        };
        assert_reports_identical(&run(&reserved), &run(&paged), &format!("{claims} claims"));
    }
}

proptest! {
    /// Token-timeline equivalence at the [`BatchState`] level: the same
    /// admit/step interleaving on the reserved backing and on a paged
    /// backing with ample capacity produces bit-identical
    /// [`TokenStepOutcome`]s — same milliseconds, same batch sizes,
    /// same finish order.
    #[test]
    fn paged_token_timelines_match_reserved_step_for_step(
        workloads in proptest::collection::vec((1usize..24, 1usize..12), 1..6),
        block_tokens in 1usize..40,
        admit_gap in 0usize..3,
    ) {
        let cfg = GptConfig::tiny();
        let reserved = Appliance::timing_only(cfg.clone(), 2).unwrap();
        let paged = Appliance::timing_only(cfg, 2)
            .unwrap()
            .with_kv_paging(PagedKvConfig::new(block_tokens))
            .unwrap();
        let run = |appliance: &Appliance| -> Vec<TokenStepOutcome> {
            let mut batch = appliance.batch_state();
            let mut timeline = Vec::new();
            let mut queue = workloads.iter();
            let mut id = 0u64;
            loop {
                for _ in 0..=admit_gap {
                    if let Some(&(input, output)) = queue.next() {
                        batch.admit(id, Workload::new(input, output)).unwrap();
                        id += 1;
                    }
                }
                if batch.live() == 0 {
                    break;
                }
                timeline.push(batch.step_token().unwrap());
                if batch.live() == 0 && queue.len() == 0 {
                    break;
                }
            }
            timeline
        };
        prop_assert_eq!(run(&reserved), run(&paged));
    }
}

// ---------------------------------------------------------------------
// 3. Preemption, prefix sharing and cancellation semantics
// ---------------------------------------------------------------------

/// A tiny appliance whose HBM holds `tokens` K/V positions next to the
/// weight shard.
fn tight_appliance(tokens: u64, paging: Option<PagedKvConfig>) -> Appliance {
    let cfg = GptConfig::tiny();
    let base = Appliance::timing_only(cfg.clone(), 2).unwrap();
    let memory = base.memory_model();
    let capacity = memory.weight_bytes + tokens * memory.kv_bytes_per_token;
    let capped = Appliance::timing_only(cfg, 2)
        .unwrap()
        .with_hbm_capacity(capacity)
        .unwrap();
    match paging {
        Some(p) => capped.with_kv_paging(p).unwrap(),
        None => capped,
    }
}

/// Steps the batch to completion, asserting the pool invariants at
/// every token boundary, and returns the per-member retired token
/// counts in retirement order.
fn drain(batch: &mut BatchState) -> Vec<(u64, usize)> {
    let mut retired: Vec<(u64, usize)> = batch
        .retire()
        .into_iter()
        .map(|m| (m.id, m.tokens))
        .collect();
    while batch.live() > 0 {
        batch.step_token().unwrap();
        if let Some(pool) = batch.kv().paged() {
            pool.assert_invariants();
        }
        retired.extend(batch.retire().into_iter().map(|m| (m.id, m.tokens)));
    }
    retired
}

/// Two members whose combined growth exhausts a pool that fits both
/// prompts: recompute preemption must fire at least once and still
/// complete both members with their exact requested output.
#[test]
fn recompute_preemption_completes_every_member_exactly() {
    let appliance = tight_appliance(64, Some(PagedKvConfig::new(4)));
    let mut batch = appliance.batch_state();
    batch.admit(0, Workload::new(20, 30)).unwrap();
    batch.admit(1, Workload::new(20, 30)).unwrap();
    let mut retired = drain(&mut batch);
    retired.sort_unstable();
    assert_eq!(retired, vec![(0, 30), (1, 30)]);
    let stats = batch.paging_stats().unwrap();
    assert!(stats.preemptions >= 1, "growth past 64 tokens must preempt");
    assert_eq!(stats.swap_outs, 0, "recompute never swaps");
}

/// The same exhaustion under the retain policy: the victim parks, swaps
/// back in when room frees, and both members still finish exactly.
#[test]
fn retain_preemption_swaps_out_and_still_completes_exactly() {
    let appliance = tight_appliance(
        64,
        Some(PagedKvConfig::new(4).with_policy(PreemptionPolicy::Retain)),
    );
    let mut batch = appliance.batch_state();
    batch.admit(0, Workload::new(20, 30)).unwrap();
    batch.admit(1, Workload::new(20, 30)).unwrap();
    let mut retired = drain(&mut batch);
    retired.sort_unstable();
    assert_eq!(retired, vec![(0, 30), (1, 30)]);
    let stats = batch.paging_stats().unwrap();
    assert!(stats.swap_outs >= 1, "growth past 64 tokens must swap out");
}

/// A shared system prompt makes the second member's admission cheaper:
/// its cached prefix blocks are attached, not recomputed.
#[test]
fn shared_prefix_skips_recomputing_cached_prompt_blocks() {
    let appliance = tight_appliance(256, Some(PagedKvConfig::new(4).with_shared_prefix(16)));
    let mut batch = appliance.batch_state();
    let first = batch.admit(0, Workload::new(24, 4)).unwrap();
    let second = batch.admit(1, Workload::new(24, 4)).unwrap();
    assert!(
        second.prefill_ms < first.prefill_ms,
        "cached prefix must shorten the second prefill ({} !< {})",
        second.prefill_ms,
        first.prefill_ms
    );
    let stats = batch.paging_stats().unwrap();
    assert_eq!(stats.prefix_hit_tokens, 16, "whole shared blocks re-used");
    let retired = drain(&mut batch);
    assert_eq!(retired.len(), 2);
}

/// Paged admission is block-granular: a second member fits by its
/// prompt where max-claim reservation has no room left, while a claim
/// that cannot fit even a solo member is still rejected outright.
#[test]
fn paged_admission_is_strictly_more_admissive_than_reservation() {
    let reserved = tight_appliance(64, None);
    let mut batch = reserved.batch_state();
    batch.admit(0, Workload::new(20, 30)).unwrap();
    assert!(
        matches!(
            batch.admit(1, Workload::new(20, 30)),
            Err(SimError::Memory(_))
        ),
        "reserved: 2 x 50-token claims exceed 64 tokens"
    );

    let paged = tight_appliance(64, Some(PagedKvConfig::new(4)));
    let mut batch = paged.batch_state();
    batch.admit(0, Workload::new(20, 30)).unwrap();
    batch
        .admit(1, Workload::new(20, 30))
        .expect("paged: both 20-token prompts fit in 16 blocks");
    assert!(
        matches!(
            batch.admit(2, Workload::new(40, 30)),
            Err(SimError::Memory(_))
        ),
        "a 70-token claim can never fit 64 tokens solo"
    );
}

/// The early-cancel regression (chunked prefill retired between
/// chunks): on both backings the member's whole K/V comes back in one
/// release, and its id is immediately reusable.
#[test]
fn cancel_mid_prefill_releases_the_whole_claim_on_both_backings() {
    for paging in [None, Some(PagedKvConfig::new(4))] {
        let backing = if paging.is_some() {
            "paged"
        } else {
            "reserved"
        };
        let appliance = tight_appliance(64, paging);
        let mut batch = appliance.batch_state();
        batch.set_prefill_chunk(Some(4));
        let outcome = batch.admit(0, Workload::new(20, 8)).unwrap();
        assert!(
            outcome.pending_prefill > 0,
            "{backing}: the chunk budget must leave prefill pending"
        );
        let free_mid = batch.kv().free_tokens();
        let cancelled = batch.cancel(0).unwrap();
        assert_eq!(cancelled.tokens, 0, "{backing}: no token produced yet");
        assert!(
            batch.kv().free_tokens() > free_mid,
            "{backing}: cancel must free the claim"
        );
        assert_eq!(batch.live(), 0, "{backing}: the member is gone");
        assert_eq!(batch.kv().used_tokens(), 0, "{backing}: no K/V left behind");
        // The id is free again, and the batch runs on untroubled.
        batch.set_prefill_chunk(None);
        batch.admit(0, Workload::new(8, 2)).unwrap();
        let retired = drain(&mut batch);
        assert_eq!(retired, vec![(0, 2)], "{backing}: reuse after cancel");
    }
}

proptest! {
    /// Chunked prefill composed with paging is token-identical to the
    /// unchunked paged engine: every member retires with exactly its
    /// requested output regardless of chunk budget, block size or a
    /// pool tight enough to preempt.
    #[test]
    fn chunked_and_unchunked_paged_prefill_are_token_identical(
        workloads in proptest::collection::vec((2usize..20, 1usize..10), 1..5),
        chunk in 1usize..16,
        block_tokens in 1usize..8,
        pool_tokens in 48u64..128,
    ) {
        let run = |chunk: Option<usize>| -> Vec<(u64, usize)> {
            let appliance =
                tight_appliance(pool_tokens, Some(PagedKvConfig::new(block_tokens)));
            let mut batch = appliance.batch_state();
            let total_blocks = batch.kv().paged().unwrap().total_blocks();
            batch.set_prefill_chunk(chunk);
            // Admit the same member set on both sides: a chunked admit
            // writes a smaller first chunk than an unchunked one, so
            // only admissions whose *whole prompt* fits next to the
            // prompts already admitted are attempted — the remaining
            // failure mode (a solo-unfit claim) depends only on the
            // claim and rejects identically regardless of chunking.
            let mut prompt_blocks = 0usize;
            for (i, &(input, output)) in workloads.iter().enumerate() {
                let need = input.div_ceil(block_tokens);
                if prompt_blocks + need > total_blocks {
                    continue;
                }
                if batch.admit(i as u64, Workload::new(input, output)).is_ok() {
                    prompt_blocks += need;
                }
            }
            let mut retired = drain(&mut batch);
            retired.sort_unstable();
            retired
        };
        prop_assert_eq!(run(Some(chunk)), run(None));
    }
}

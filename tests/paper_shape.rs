//! Integration: the paper's headline *shapes* must hold in the timing
//! simulation. These assertions use reduced workloads so they stay fast
//! in debug builds; the full grids live in the `reproduce` harness.

use dfx::baseline::GpuModel;
use dfx::isa::OpClass;
use dfx::model::{GptConfig, Workload};
use dfx::sim::Appliance;

#[test]
fn headline_32_4_setup_is_finite_positive_and_stable() {
    // The quickstart's headline configuration: GPT-2 1.5B on a 4-FPGA
    // appliance at the [32:4] workload. The timing simulation is
    // deterministic, so two runs of the same appliance must agree bit
    // for bit, and every reported quantity must be a positive finite
    // number.
    let appliance = Appliance::timing_only(GptConfig::gpt2_1_5b(), 4).unwrap();
    let first = appliance.generate_timed(32, 4).unwrap();
    let second = appliance.generate_timed(32, 4).unwrap();

    let total = first.total_latency_ms();
    assert!(total.is_finite() && total > 0.0, "total latency: {total}");

    let summ = first.summarization_ms();
    let gen = first.generation_ms();
    assert!(summ.is_finite() && summ > 0.0, "summarization: {summ}");
    assert!(gen.is_finite() && gen > 0.0, "generation: {gen}");
    assert!(
        (summ + gen) <= total + 1e-9,
        "stages exceed total: {summ} + {gen} > {total}"
    );

    let tps = first.tokens_per_second();
    assert!(tps.is_finite() && tps > 0.0, "tokens/s: {tps}");

    assert_eq!(
        first.total_latency_ms().to_bits(),
        second.total_latency_ms().to_bits(),
        "timing must be deterministic across runs: {} vs {}",
        first.total_latency_ms(),
        second.total_latency_ms()
    );
    assert_eq!(
        first.generation_ms().to_bits(),
        second.generation_ms().to_bits(),
        "generation stage must be deterministic across runs"
    );
}

#[test]
fn dfx_latency_is_linear_in_tokens() {
    // The matrix-vector dataflow processes every token at near-constant
    // cost: doubling output tokens should roughly double generation time.
    let a = Appliance::timing_only(GptConfig::gpt2_345m(), 1).unwrap();
    let r4 = a.generate_timed(16, 4).unwrap();
    let r8 = a.generate_timed(16, 8).unwrap();
    // Generation stage with 3 vs 7 steps of similar per-step cost.
    let per_step_4 = r4.generation_ms() / 3.0;
    let per_step_8 = r8.generation_ms() / 7.0;
    let ratio = per_step_8 / per_step_4;
    assert!(
        (0.9..1.2).contains(&ratio),
        "per-step cost should be ~constant: {per_step_4} vs {per_step_8}"
    );
}

#[test]
fn gpu_wins_summarization_dfx_wins_generation() {
    // The crossover of Fig 14 at reduced scale: [128:1] favours the GPU,
    // [32:64] favours DFX by a wide margin on the 1.5B model.
    let cfg = GptConfig::gpt2_1_5b();
    let dfx = Appliance::timing_only(cfg.clone(), 4).unwrap();
    let gpu = GpuModel::new(cfg, 4);

    let d_summ = dfx.generate_timed(128, 1).unwrap().total_latency_ms();
    let g_summ = gpu.run(Workload::new(128, 1)).total_ms();
    assert!(
        g_summ < d_summ,
        "GPU should win [128:1]: {g_summ} vs {d_summ}"
    );

    let d_gen = dfx.generate_timed(32, 64).unwrap().total_latency_ms();
    let g_gen = gpu.run(Workload::new(32, 64)).total_ms();
    assert!(
        g_gen > 4.0 * d_gen,
        "DFX should win [32:64] by >4x: GPU {g_gen} vs DFX {d_gen}"
    );
}

#[test]
fn speedup_grows_with_model_size() {
    // Fig 14: average speedup rises 3.20x -> 4.46x -> 5.58x with model
    // size. Check the ordering at one representative point.
    let w = Workload::new(32, 16);
    let mut speedups = Vec::new();
    for (cfg, devices) in [
        (GptConfig::gpt2_345m(), 1usize),
        (GptConfig::gpt2_774m(), 2),
        (GptConfig::gpt2_1_5b(), 4),
    ] {
        let d = Appliance::timing_only(cfg.clone(), devices)
            .unwrap()
            .generate_timed(w.input_len, w.output_len)
            .unwrap()
            .total_latency_ms();
        let g = GpuModel::new(cfg, devices).run(w).total_ms();
        speedups.push(g / d);
    }
    assert!(
        speedups[0] < speedups[2],
        "speedup should grow with model size: {speedups:?}"
    );
    assert!(speedups[2] > 3.0, "1.5B speedup too small: {speedups:?}");
}

#[test]
fn sync_share_grows_with_cluster_size() {
    // Fig 15/18: synchronisation is absent at 1 FPGA and grows with the
    // ring (the paper's explanation for sublinear scaling).
    let cfg = GptConfig::gpt2_345m();
    let share = |fpgas: usize| {
        let run = Appliance::timing_only(cfg.clone(), fpgas)
            .unwrap()
            .generate_timed(8, 4)
            .unwrap();
        run.breakdown()
            .fig15_shares()
            .iter()
            .find(|(c, _)| *c == OpClass::Sync)
            .map(|(_, s)| *s)
            .unwrap()
    };
    let s1 = share(1);
    let s2 = share(2);
    let s4 = share(4);
    assert_eq!(s1, 0.0);
    assert!(s2 > 0.0);
    assert!(s4 > s2, "sync share must grow with hops: {s2} vs {s4}");
}

#[test]
fn dfx_throughput_scales_sublinearly_but_monotonically() {
    let cfg = GptConfig::gpt2_345m();
    let tps = |fpgas: usize| {
        Appliance::timing_only(cfg.clone(), fpgas)
            .unwrap()
            .generate_timed(16, 16)
            .unwrap()
            .tokens_per_second()
    };
    let t1 = tps(1);
    let t2 = tps(2);
    let t4 = tps(4);
    assert!(t2 > t1 && t4 > t2, "monotone scaling: {t1} {t2} {t4}");
    assert!(t4 < 4.0 * t1, "scaling must be sublinear: {t1} vs {t4}");
}

#[test]
fn energy_efficiency_favors_dfx_at_chatbot_workload() {
    let cfg = GptConfig::gpt2_1_5b();
    let w = Workload::new(32, 16);
    let d = Appliance::timing_only(cfg.clone(), 4)
        .unwrap()
        .generate_timed(w.input_len, w.output_len)
        .unwrap();
    let g = GpuModel::new(cfg, 4).run(w);
    assert!(
        d.tokens_per_joule() > 2.0 * g.tokens_per_joule(w),
        "DFX {} tok/J vs GPU {} tok/J",
        d.tokens_per_joule(),
        g.tokens_per_joule(w)
    );
}

//! Property-based tests of the `ServingEngine` discrete-event invariants.
//!
//! A synthetic closed-form backend keeps service times trivial so the
//! properties stress the *engine* (queueing, scheduling, bookkeeping),
//! not the cycle model; one case runs against a real tiny `Appliance` to
//! tie the trait boundary together.

use dfx::model::{GptConfig, Workload};
use dfx::serve::{ArrivalProcess, Backend, RunReport, ServingEngine};
use dfx::sim::SimError;
use proptest::prelude::*;

/// Closed-form backend: `input + output` ms per request.
struct UnitBackend;

impl Backend for UnitBackend {
    fn name(&self) -> String {
        "unit".into()
    }
    fn device_count(&self) -> usize {
        1
    }
    fn nominal_power_w(&self) -> Option<f64> {
        None
    }
    fn serve(&self, w: Workload) -> Result<RunReport, SimError> {
        dfx::serve::validate_workload(w)?;
        Ok(RunReport {
            backend: self.name(),
            workload: w,
            summarization_ms: w.input_len as f64,
            generation_ms: w.output_len as f64,
            devices: 1,
            power_w: None,
        })
    }
}

fn arb_workloads() -> impl Strategy<Value = Vec<Workload>> {
    proptest::collection::vec((1usize..64, 1usize..64), 1..40)
        .prop_map(|v| v.into_iter().map(|(i, o)| Workload::new(i, o)).collect())
}

fn arb_arrivals() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        (0.5f64..200.0, any::<u64>())
            .prop_map(|(rate_per_s, seed)| { ArrivalProcess::Poisson { rate_per_s, seed } }),
        (1usize..6, 0.0f64..50.0).prop_map(|(clients, think_time_ms)| {
            ArrivalProcess::ClosedLoop {
                clients,
                think_time_ms,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every submitted request appears exactly once, and none starts
    /// before it arrived — under any arrival process and pool size.
    #[test]
    fn conservation_and_causality(
        workloads in arb_workloads(),
        arrivals in arb_arrivals(),
        servers in 1usize..4,
    ) {
        let backends: Vec<UnitBackend> = (0..servers).map(|_| UnitBackend).collect();
        let report = ServingEngine::pool(backends.iter().map(|b| b as &dyn Backend).collect())
            .unwrap()
            .run(&workloads, &arrivals)
            .unwrap();

        prop_assert_eq!(report.responses.len(), workloads.len());
        let mut ids: Vec<u64> = report.responses.iter().map(|r| r.request.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..workloads.len() as u64).collect::<Vec<_>>());
        for r in &report.responses {
            prop_assert!(r.start_ms >= r.request.arrival_ms,
                "request {} started {} before its arrival {}",
                r.request.id, r.start_ms, r.request.arrival_ms);
            prop_assert!(r.server < servers);
            prop_assert_eq!(r.request.workload, workloads[r.request.id as usize]);
            let expect = (r.request.workload.input_len + r.request.workload.output_len) as f64;
            prop_assert!((r.service_ms() - expect).abs() < 1e-9);
        }
        prop_assert!(report.utilization > 0.0 && report.utilization <= 1.0 + 1e-12);
        prop_assert!(report.p50_sojourn_ms <= report.p95_sojourn_ms);
        prop_assert!(report.p95_sojourn_ms <= report.p99_sojourn_ms);
    }

    /// FIFO never reorders: dispatch order equals arrival order (ids are
    /// assigned in arrival order for open-loop processes), and start
    /// times are monotone in it.
    #[test]
    fn fifo_never_reorders(
        workloads in arb_workloads(),
        rate_per_s in 0.5f64..200.0,
        seed in any::<u64>(),
        servers in 1usize..4,
    ) {
        let arrivals = ArrivalProcess::Poisson { rate_per_s, seed };
        let backends: Vec<UnitBackend> = (0..servers).map(|_| UnitBackend).collect();
        let report = ServingEngine::pool(backends.iter().map(|b| b as &dyn Backend).collect())
            .unwrap()
            .run(&workloads, &arrivals)
            .unwrap();
        let ids: Vec<u64> = report.responses.iter().map(|r| r.request.id).collect();
        prop_assert!(ids.windows(2).all(|w| w[0] < w[1]), "FIFO reordered: {:?}", ids);
        let starts: Vec<f64> = report.responses.iter().map(|r| r.start_ms).collect();
        prop_assert!(starts.windows(2).all(|w| w[0] <= w[1]), "starts not monotone: {:?}", starts);
    }

    /// Identical seeds reproduce identical reports; different seeds make
    /// different arrival traces.
    #[test]
    fn seeded_runs_are_reproducible(
        workloads in arb_workloads(),
        rate_per_s in 0.5f64..200.0,
        seed in any::<u64>(),
    ) {
        let arrivals = ArrivalProcess::Poisson { rate_per_s, seed };
        let a = ServingEngine::new(&UnitBackend).run(&workloads, &arrivals).unwrap();
        let b = ServingEngine::new(&UnitBackend).run(&workloads, &arrivals).unwrap();
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The `Batching` discipline conserves requests, and — whenever a
    /// server is free (guaranteed here by a pool as large as the
    /// stream) — no request's dispatch is delayed past the scheduler's
    /// `max_wait_ms` window.
    #[test]
    fn batching_conserves_and_never_waits_past_the_timeout(
        workloads in proptest::collection::vec((1usize..64, 1usize..64), 1..12)
            .prop_map(|v| v.into_iter().map(|(i, o)| Workload::new(i, o)).collect::<Vec<_>>()),
        rate_per_s in 0.5f64..200.0,
        seed in any::<u64>(),
        max_batch in 1usize..6,
        max_wait_ms in 0.0f64..100.0,
    ) {
        let arrivals = ArrivalProcess::Poisson { rate_per_s, seed };
        let backends: Vec<UnitBackend> = workloads.iter().map(|_| UnitBackend).collect();
        let report = ServingEngine::pool(backends.iter().map(|b| b as &dyn Backend).collect())
            .unwrap()
            .with_scheduler(Box::new(dfx::serve::Batching::new(max_batch, max_wait_ms)))
            .run(&workloads, &arrivals)
            .unwrap();

        prop_assert_eq!(report.responses.len(), workloads.len());
        let mut ids: Vec<u64> = report.responses.iter().map(|r| r.request.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..workloads.len() as u64).collect::<Vec<_>>());
        for r in &report.responses {
            prop_assert!(r.start_ms >= r.request.arrival_ms);
            prop_assert!(
                r.wait_ms() <= max_wait_ms + 1e-9,
                "request {} waited {} ms past a {} ms window with a free server",
                r.request.id, r.wait_ms(), max_wait_ms
            );
        }
        // Dispatches never exceed requests, and coalescing never exceeds
        // the configured batch size on average.
        prop_assert!(report.dispatches >= 1 && report.dispatches <= workloads.len());
        prop_assert!(report.mean_batch_size() <= max_batch as f64 + 1e-12);
    }

    /// `Batching` with `max_batch == 1` is exactly FIFO — same responses,
    /// same dispatch count — under any stream and arrival process.
    #[test]
    fn batching_with_max_batch_one_is_fifo(
        workloads in arb_workloads(),
        arrivals in arb_arrivals(),
        max_wait_ms in 0.0f64..500.0,
    ) {
        let fifo = ServingEngine::new(&UnitBackend).run(&workloads, &arrivals).unwrap();
        let batch1 = ServingEngine::new(&UnitBackend)
            .with_scheduler(Box::new(dfx::serve::Batching::new(1, max_wait_ms)))
            .run(&workloads, &arrivals)
            .unwrap();
        prop_assert_eq!(&fifo.responses, &batch1.responses);
        prop_assert_eq!(fifo.dispatches, batch1.dispatches);
    }
}

proptest! {
    // Fewer cases: these run the real cycle model per case.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A batch of one goes through the batched cost model bit-for-bit
    /// identically to the unbatched path, on the appliance and the GPU.
    #[test]
    fn batch_of_one_is_bit_identical_to_unbatched(
        input_len in 1usize..24,
        output_len in 1usize..16,
    ) {
        let w = Workload::new(input_len, output_len);
        let appliance = dfx::sim::Appliance::timing_only(GptConfig::tiny(), 2).unwrap();
        let batched = appliance.generate_batch_timed(&[w]).unwrap();
        let single = appliance.generate_timed(input_len, output_len).unwrap();
        prop_assert_eq!(batched.summarization, single.summarization);
        prop_assert_eq!(batched.generation, single.generation);
        prop_assert_eq!(batched.total_latency_ms(), single.total_latency_ms());

        let gpu = dfx::baseline::GpuModel::new(GptConfig::tiny(), 2);
        prop_assert_eq!(gpu.run_batch(&[w]), gpu.run(w));
    }

    /// Batch cost is monotone non-decreasing in batch size on both
    /// batched cost models.
    #[test]
    fn batch_cost_is_monotone_in_batch_size(
        input_len in 1usize..24,
        output_len in 1usize..16,
    ) {
        let w = Workload::new(input_len, output_len);
        let appliance = dfx::sim::Appliance::timing_only(GptConfig::tiny(), 2).unwrap();
        let gpu = dfx::baseline::GpuModel::new(GptConfig::tiny(), 2);
        let mut prev_dfx = 0.0;
        let mut prev_gpu = 0.0;
        for b in 1..=5 {
            let batch = vec![w; b];
            let dfx_ms = appliance.generate_batch_timed(&batch).unwrap().total_latency_ms();
            prop_assert!(dfx_ms >= prev_dfx, "DFX batch {} got cheaper: {} < {}", b, dfx_ms, prev_dfx);
            prev_dfx = dfx_ms;
            let gpu_ms = gpu.run_batch(&batch).total_ms();
            prop_assert!(gpu_ms >= prev_gpu, "GPU batch {} got cheaper: {} < {}", b, gpu_ms, prev_gpu);
            prev_gpu = gpu_ms;
        }
    }
}

/// The same invariants hold end to end with a real cycle-model backend.
#[test]
fn invariants_hold_on_a_real_appliance() {
    let appliance = dfx::sim::Appliance::timing_only(GptConfig::tiny(), 2).unwrap();
    let workloads: Vec<Workload> = (0..10)
        .map(|i| Workload::new(4 + i % 3, 2 + i % 4))
        .collect();
    let arrivals = ArrivalProcess::Poisson {
        rate_per_s: 2.0,
        seed: 42,
    };
    let a = ServingEngine::new(&appliance)
        .run(&workloads, &arrivals)
        .unwrap();
    let b = ServingEngine::new(&appliance)
        .run(&workloads, &arrivals)
        .unwrap();
    assert_eq!(a, b, "real-backend runs must be deterministic");
    assert_eq!(a.responses.len(), workloads.len());
    for r in &a.responses {
        assert!(r.start_ms >= r.request.arrival_ms);
        assert!(r.service_ms() > 0.0);
    }
}

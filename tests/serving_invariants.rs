//! Property-based tests of the `ServingEngine` discrete-event invariants.
//!
//! A synthetic closed-form backend keeps service times trivial so the
//! properties stress the *engine* (queueing, scheduling, bookkeeping),
//! not the cycle model; one case runs against a real tiny `Appliance` to
//! tie the trait boundary together.

use dfx::model::{GptConfig, Workload};
use dfx::serve::{
    ArrivalProcess, Backend, ContinuousBatching, ContinuousStepper, RunReport, ServingEngine,
    StepEvent,
};
use dfx::sim::SimError;
use proptest::prelude::*;

/// Closed-form backend: `input + output` ms per request. It exposes a
/// matching [`ContinuousStepper`] (prefill = `input_len` ms, 1 ms per
/// decoded token), so a solo member stepped to completion accumulates
/// exactly `serve`'s latency — in *integer* milliseconds, which f64
/// adds exactly in any order, making the continuous ≡ FIFO comparison
/// below bit-exact rather than approximate.
struct UnitBackend;

/// (id, workload, tokens emitted) per live member.
struct UnitStepper {
    members: Vec<(u64, Workload, usize)>,
}

impl ContinuousStepper for UnitStepper {
    fn admit(&mut self, id: u64, workload: Workload) -> Result<StepEvent, SimError> {
        dfx::serve::validate_workload(workload)?;
        self.members.push((id, workload, 0));
        Ok(StepEvent {
            ms: workload.input_len as f64,
            live: self.members.len(),
            finished: vec![],
            prefilling: vec![],
        })
    }

    fn step_token(&mut self) -> Result<StepEvent, SimError> {
        if self.members.is_empty() {
            return Err(SimError::InvalidRequest("no live members".into()));
        }
        let mut finished = Vec::new();
        let mut i = 0;
        while i < self.members.len() {
            self.members[i].2 += 1;
            if self.members[i].2 == self.members[i].1.output_len {
                finished.push(self.members.remove(i).0);
            } else {
                i += 1;
            }
        }
        Ok(StepEvent {
            ms: 1.0,
            live: self.members.len(),
            finished,
            prefilling: vec![],
        })
    }

    fn live(&self) -> usize {
        self.members.len()
    }
}

impl Backend for UnitBackend {
    fn name(&self) -> String {
        "unit".into()
    }
    fn device_count(&self) -> usize {
        1
    }
    fn nominal_power_w(&self) -> Option<f64> {
        None
    }
    fn serve(&self, w: Workload) -> Result<RunReport, SimError> {
        dfx::serve::validate_workload(w)?;
        Ok(RunReport {
            backend: self.name(),
            workload: w,
            summarization_ms: w.input_len as f64,
            generation_ms: w.output_len as f64,
            devices: 1,
            power_w: None,
        })
    }
    fn continuous(&self) -> Option<Box<dyn ContinuousStepper + '_>> {
        Some(Box::new(UnitStepper {
            members: Vec::new(),
        }))
    }
}

fn arb_workloads() -> impl Strategy<Value = Vec<Workload>> {
    proptest::collection::vec((1usize..64, 1usize..64), 1..40)
        .prop_map(|v| v.into_iter().map(|(i, o)| Workload::new(i, o)).collect())
}

fn arb_arrivals() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        (0.5f64..200.0, any::<u64>())
            .prop_map(|(rate_per_s, seed)| { ArrivalProcess::Poisson { rate_per_s, seed } }),
        (1usize..6, 0.0f64..50.0).prop_map(|(clients, think_time_ms)| {
            ArrivalProcess::ClosedLoop {
                clients,
                think_time_ms,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every submitted request appears exactly once, and none starts
    /// before it arrived — under any arrival process and pool size.
    #[test]
    fn conservation_and_causality(
        workloads in arb_workloads(),
        arrivals in arb_arrivals(),
        servers in 1usize..4,
    ) {
        let backends: Vec<UnitBackend> = (0..servers).map(|_| UnitBackend).collect();
        let report = ServingEngine::pool(backends.iter().map(|b| b as &dyn Backend).collect())
            .unwrap()
            .run(&workloads, &arrivals)
            .unwrap();

        prop_assert_eq!(report.responses.len(), workloads.len());
        let mut ids: Vec<u64> = report.responses.iter().map(|r| r.request.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..workloads.len() as u64).collect::<Vec<_>>());
        for r in &report.responses {
            prop_assert!(r.start_ms >= r.request.arrival_ms,
                "request {} started {} before its arrival {}",
                r.request.id, r.start_ms, r.request.arrival_ms);
            prop_assert!(r.server < servers);
            prop_assert_eq!(r.request.workload, workloads[r.request.id as usize]);
            let expect = (r.request.workload.input_len + r.request.workload.output_len) as f64;
            prop_assert!((r.service_ms() - expect).abs() < 1e-9);
        }
        prop_assert!(report.utilization > 0.0 && report.utilization <= 1.0 + 1e-12);
        prop_assert!(report.p50_sojourn_ms <= report.p95_sojourn_ms);
        prop_assert!(report.p95_sojourn_ms <= report.p99_sojourn_ms);
    }

    /// FIFO never reorders: dispatch order equals arrival order (ids are
    /// assigned in arrival order for open-loop processes), and start
    /// times are monotone in it.
    #[test]
    fn fifo_never_reorders(
        workloads in arb_workloads(),
        rate_per_s in 0.5f64..200.0,
        seed in any::<u64>(),
        servers in 1usize..4,
    ) {
        let arrivals = ArrivalProcess::Poisson { rate_per_s, seed };
        let backends: Vec<UnitBackend> = (0..servers).map(|_| UnitBackend).collect();
        let report = ServingEngine::pool(backends.iter().map(|b| b as &dyn Backend).collect())
            .unwrap()
            .run(&workloads, &arrivals)
            .unwrap();
        let ids: Vec<u64> = report.responses.iter().map(|r| r.request.id).collect();
        prop_assert!(ids.windows(2).all(|w| w[0] < w[1]), "FIFO reordered: {:?}", ids);
        let starts: Vec<f64> = report.responses.iter().map(|r| r.start_ms).collect();
        prop_assert!(starts.windows(2).all(|w| w[0] <= w[1]), "starts not monotone: {:?}", starts);
    }

    /// Identical seeds reproduce identical reports; different seeds make
    /// different arrival traces.
    #[test]
    fn seeded_runs_are_reproducible(
        workloads in arb_workloads(),
        rate_per_s in 0.5f64..200.0,
        seed in any::<u64>(),
    ) {
        let arrivals = ArrivalProcess::Poisson { rate_per_s, seed };
        let a = ServingEngine::new(&UnitBackend).run(&workloads, &arrivals).unwrap();
        let b = ServingEngine::new(&UnitBackend).run(&workloads, &arrivals).unwrap();
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The `Batching` discipline conserves requests, and — whenever a
    /// server is free (guaranteed here by a pool as large as the
    /// stream) — no request's dispatch is delayed past the scheduler's
    /// `max_wait_ms` window.
    #[test]
    fn batching_conserves_and_never_waits_past_the_timeout(
        workloads in proptest::collection::vec((1usize..64, 1usize..64), 1..12)
            .prop_map(|v| v.into_iter().map(|(i, o)| Workload::new(i, o)).collect::<Vec<_>>()),
        rate_per_s in 0.5f64..200.0,
        seed in any::<u64>(),
        max_batch in 1usize..6,
        max_wait_ms in 0.0f64..100.0,
    ) {
        let arrivals = ArrivalProcess::Poisson { rate_per_s, seed };
        let backends: Vec<UnitBackend> = workloads.iter().map(|_| UnitBackend).collect();
        let report = ServingEngine::pool(backends.iter().map(|b| b as &dyn Backend).collect())
            .unwrap()
            .with_scheduler(Box::new(dfx::serve::Batching::new(max_batch, max_wait_ms)))
            .run(&workloads, &arrivals)
            .unwrap();

        prop_assert_eq!(report.responses.len(), workloads.len());
        let mut ids: Vec<u64> = report.responses.iter().map(|r| r.request.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..workloads.len() as u64).collect::<Vec<_>>());
        for r in &report.responses {
            prop_assert!(r.start_ms >= r.request.arrival_ms);
            prop_assert!(
                r.wait_ms() <= max_wait_ms + 1e-9,
                "request {} waited {} ms past a {} ms window with a free server",
                r.request.id, r.wait_ms(), max_wait_ms
            );
        }
        // Dispatches never exceed requests, and coalescing never exceeds
        // the configured batch size on average.
        prop_assert!(report.dispatches >= 1 && report.dispatches <= workloads.len());
        prop_assert!(report.mean_batch_size() <= max_batch as f64 + 1e-12);
    }

    /// `Batching` with `max_batch == 1` is exactly FIFO — same responses,
    /// same dispatch count — under any stream and arrival process.
    #[test]
    fn batching_with_max_batch_one_is_fifo(
        workloads in arb_workloads(),
        arrivals in arb_arrivals(),
        max_wait_ms in 0.0f64..500.0,
    ) {
        let fifo = ServingEngine::new(&UnitBackend).run(&workloads, &arrivals).unwrap();
        let batch1 = ServingEngine::new(&UnitBackend)
            .with_scheduler(Box::new(dfx::serve::Batching::new(1, max_wait_ms)))
            .run(&workloads, &arrivals)
            .unwrap();
        prop_assert_eq!(&fifo.responses, &batch1.responses);
        prop_assert_eq!(fifo.dispatches, batch1.dispatches);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Continuous batching with `max_batch == 1` is exactly the FIFO
    /// single-dispatch path — same responses (starts, finishes,
    /// servers) and same service statistics, under any stream and
    /// arrival process. The UnitBackend's integer-millisecond costs add
    /// exactly in f64, so the comparison is bit-exact.
    #[test]
    fn continuous_with_max_batch_one_is_fifo(
        workloads in arb_workloads(),
        arrivals in arb_arrivals(),
    ) {
        let fifo = ServingEngine::new(&UnitBackend).run(&workloads, &arrivals).unwrap();
        let cont = ServingEngine::new(&UnitBackend)
            .with_scheduler(Box::new(ContinuousBatching::new(1)))
            .run(&workloads, &arrivals)
            .unwrap();
        prop_assert_eq!(&fifo.responses, &cont.responses);
        prop_assert_eq!(fifo.p50_sojourn_ms, cont.p50_sojourn_ms);
        prop_assert_eq!(fifo.p99_sojourn_ms, cont.p99_sojourn_ms);
        prop_assert_eq!(fifo.utilization, cont.utilization);
        prop_assert_eq!(fifo.makespan_ms, cont.makespan_ms);
        prop_assert_eq!(fifo.goodput_tps, cont.goodput_tps);
    }

    /// Admission causality and conservation on the token-boundary path:
    /// under a seeded Poisson mix every request is served exactly once,
    /// no member's prefill starts before its arrival, and a member
    /// never finishes before `output_len` decode milliseconds have
    /// passed since its start.
    #[test]
    fn continuous_admissions_respect_arrival_causality(
        workloads in arb_workloads(),
        rate_per_s in 0.5f64..200.0,
        seed in any::<u64>(),
        max_batch in 1usize..6,
        servers in 1usize..4,
    ) {
        let arrivals = ArrivalProcess::Poisson { rate_per_s, seed };
        let backends: Vec<UnitBackend> = (0..servers).map(|_| UnitBackend).collect();
        let report = ServingEngine::pool(backends.iter().map(|b| b as &dyn Backend).collect())
            .unwrap()
            .with_scheduler(Box::new(ContinuousBatching::new(max_batch)))
            .run(&workloads, &arrivals)
            .unwrap();

        prop_assert_eq!(report.responses.len(), workloads.len());
        let mut ids: Vec<u64> = report.responses.iter().map(|r| r.request.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..workloads.len() as u64).collect::<Vec<_>>());
        for r in &report.responses {
            prop_assert!(r.start_ms >= r.request.arrival_ms,
                "request {} started {} before its arrival {}",
                r.request.id, r.start_ms, r.request.arrival_ms);
            prop_assert!(r.server < servers);
            // At minimum its own prefill plus one ms per output token;
            // co-resident prefills can only stretch it.
            let floor = (r.request.workload.input_len + r.request.workload.output_len) as f64;
            prop_assert!(r.service_ms() >= floor - 1e-9,
                "request {} served in {} ms, below its {} ms floor",
                r.request.id, r.service_ms(), floor);
        }
        prop_assert!(report.utilization > 0.0 && report.utilization <= 1.0 + 1e-12);
        prop_assert!(report.p50_sojourn_ms <= report.p99_sojourn_ms);
        // Determinism: the token-boundary loop reproduces bit-for-bit.
        let again = ServingEngine::pool(backends.iter().map(|b| b as &dyn Backend).collect())
            .unwrap()
            .with_scheduler(Box::new(ContinuousBatching::new(max_batch)))
            .run(&workloads, &arrivals)
            .unwrap();
        prop_assert_eq!(report, again);
    }
}

proptest! {
    // Fewer cases: these run the real cycle model per case.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Early-exit conservation on the real appliance's incremental
    /// executor: however admissions interleave with decode steps, the
    /// total tokens produced (one per prefill, one per live member per
    /// step) equal the sum the members asked for, and every retired
    /// member carries exactly its own `output_len` — early exit stops
    /// members when they are done, it never truncates or pads.
    #[test]
    fn early_exit_conserves_tokens_against_the_sequential_sum(
        specs in proptest::collection::vec((1usize..24, 1usize..16), 1..6),
        stagger in 0usize..4,
    ) {
        let appliance = dfx::sim::Appliance::timing_only(GptConfig::tiny(), 2).unwrap();
        let mut batch = appliance.batch_state();
        let workloads: Vec<Workload> =
            specs.into_iter().map(|(i, o)| Workload::new(i, o)).collect();

        let mut tokens = 0usize;
        let mut queued = workloads.iter().enumerate().collect::<Vec<_>>();
        queued.reverse();
        while batch.live() > 0 || !queued.is_empty() {
            // Admit one member every `stagger` steps (all at once for 0).
            while let Some(&(id, w)) = queued.last() {
                batch.admit(id as u64, *w).unwrap();
                tokens += 1; // the prefill's first token
                queued.pop();
                if stagger > 0 {
                    break;
                }
            }
            for _ in 0..stagger.max(1) {
                if batch.live() == 0 {
                    break;
                }
                tokens += batch.step_token().unwrap().batch;
            }
        }
        let retired = batch.retire();
        prop_assert_eq!(retired.len(), workloads.len());
        for r in &retired {
            prop_assert_eq!(r.tokens, r.workload.output_len,
                "member {} produced {} of {} tokens", r.id, r.tokens, r.workload.output_len);
        }
        let expect: usize = workloads.iter().map(|w| w.output_len).sum();
        prop_assert_eq!(tokens, expect);
    }

    /// A batch of one goes through the batched cost model bit-for-bit
    /// identically to the unbatched path, on the appliance and the GPU.
    #[test]
    fn batch_of_one_is_bit_identical_to_unbatched(
        input_len in 1usize..24,
        output_len in 1usize..16,
    ) {
        let w = Workload::new(input_len, output_len);
        let appliance = dfx::sim::Appliance::timing_only(GptConfig::tiny(), 2).unwrap();
        let batched = appliance.generate_batch_timed(&[w]).unwrap();
        let single = appliance.generate_timed(input_len, output_len).unwrap();
        prop_assert_eq!(batched.summarization, single.summarization);
        prop_assert_eq!(batched.generation, single.generation);
        prop_assert_eq!(batched.total_latency_ms(), single.total_latency_ms());

        let gpu = dfx::baseline::GpuModel::new(GptConfig::tiny(), 2);
        prop_assert_eq!(gpu.run_batch(&[w]), gpu.run(w));
    }

    /// Batch cost is monotone non-decreasing in batch size on both
    /// batched cost models.
    #[test]
    fn batch_cost_is_monotone_in_batch_size(
        input_len in 1usize..24,
        output_len in 1usize..16,
    ) {
        let w = Workload::new(input_len, output_len);
        let appliance = dfx::sim::Appliance::timing_only(GptConfig::tiny(), 2).unwrap();
        let gpu = dfx::baseline::GpuModel::new(GptConfig::tiny(), 2);
        let mut prev_dfx = 0.0;
        let mut prev_gpu = 0.0;
        for b in 1..=5 {
            let batch = vec![w; b];
            let dfx_ms = appliance.generate_batch_timed(&batch).unwrap().total_latency_ms();
            prop_assert!(dfx_ms >= prev_dfx, "DFX batch {} got cheaper: {} < {}", b, dfx_ms, prev_dfx);
            prev_dfx = dfx_ms;
            let gpu_ms = gpu.run_batch(&batch).total_ms();
            prop_assert!(gpu_ms >= prev_gpu, "GPU batch {} got cheaper: {} < {}", b, gpu_ms, prev_gpu);
            prev_gpu = gpu_ms;
        }
    }
}

proptest! {
    // The K/V-conservation suite runs the real cycle model per case.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The `KvPool` never over-commits and frees exactly what it
    /// reserved, however admissions, early exits and chunked prefills
    /// interleave: at every step the committed claim stays within the
    /// budget, refused admissions leave the pool untouched, and once
    /// everything retires the pool is empty again.
    #[test]
    fn kv_pool_never_overcommits_and_frees_exactly_what_it_reserved(
        specs in proptest::collection::vec((1usize..24, 1usize..16), 1..8),
        budget_slack in 0u64..32,
        chunk_raw in 0usize..8,
    ) {
        // 0 means no chunk budget (whole-prefill admission).
        let chunk = (chunk_raw > 0).then_some(chunk_raw);
        let workloads: Vec<Workload> =
            specs.into_iter().map(|(i, o)| Workload::new(i, o)).collect();
        // A budget that fits the largest single claim plus some slack,
        // so admissions are refused at plausible points.
        let max_claim = workloads.iter().map(|w| w.input_len + w.output_len).max().unwrap() as u64;
        let probe = dfx::sim::Appliance::timing_only(GptConfig::tiny(), 2).unwrap();
        let m = probe.memory_model();
        let appliance = dfx::sim::Appliance::timing_only(GptConfig::tiny(), 2)
            .unwrap()
            .with_hbm_capacity(m.weight_bytes + (max_claim + budget_slack) * m.kv_bytes_per_token)
            .unwrap();
        let budget_tokens = (max_claim + budget_slack) as usize;

        let mut batch = appliance.batch_state();
        batch.set_prefill_chunk(chunk);
        let mut queued: Vec<(u64, Workload)> = workloads
            .iter()
            .enumerate()
            .map(|(i, &w)| (i as u64, w))
            .rev()
            .collect();
        let mut served = 0usize;
        while served < workloads.len() {
            // Admit from the queue until the pool refuses.
            while let Some(&(id, w)) = queued.last() {
                let committed_before = batch.kv().committed_tokens();
                match batch.admit(id, w) {
                    Ok(out) => {
                        // A member finishing at admission (output 1,
                        // whole prefill) releases its claim on the spot.
                        let expect = if out.finished {
                            committed_before
                        } else {
                            committed_before + w.input_len + w.output_len
                        };
                        prop_assert_eq!(batch.kv().committed_tokens(), expect);
                        queued.pop();
                    }
                    Err(dfx::sim::SimError::Memory(_)) => {
                        // A refusal must change nothing.
                        prop_assert_eq!(batch.kv().committed_tokens(), committed_before);
                        break;
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
                }
            }
            prop_assert!(batch.kv().committed_tokens() <= budget_tokens,
                "over-committed: {} of {}", batch.kv().committed_tokens(), budget_tokens);
            // Drain members that finished at admission, then step.
            served += batch.retire().len();
            if batch.live() > 0 {
                batch.step_token().unwrap();
                served += batch.retire().len();
            } else {
                prop_assert!(!queued.is_empty(), "live 0 with work unserved and queue empty");
            }
        }
        // Everything retired: every claim came back.
        prop_assert_eq!(batch.kv().committed_tokens(), 0);
        prop_assert_eq!(batch.kv().live(), 0);
    }

    /// Chunked prefill produces token-identical output to unchunked
    /// prefill: same per-member token counts, same total steps' token
    /// work, under any chunk budget and admission stagger.
    #[test]
    fn chunked_prefill_is_token_identical_to_unchunked(
        specs in proptest::collection::vec((1usize..24, 1usize..16), 1..6),
        chunk in 1usize..8,
        stagger in 0usize..4,
    ) {
        let appliance = dfx::sim::Appliance::timing_only(GptConfig::tiny(), 2).unwrap();
        let workloads: Vec<Workload> =
            specs.into_iter().map(|(i, o)| Workload::new(i, o)).collect();
        let run = |chunk: Option<usize>| {
            let mut batch = appliance.batch_state();
            batch.set_prefill_chunk(chunk);
            let mut tokens = 0usize;
            let mut queued: Vec<(usize, Workload)> =
                workloads.iter().copied().enumerate().rev().collect();
            while batch.live() > 0 || !queued.is_empty() {
                while let Some(&(id, w)) = queued.last() {
                    let out = batch.admit(id as u64, w).unwrap();
                    if out.pending_prefill == 0 {
                        tokens += 1; // whole prefill: first token now
                    }
                    queued.pop();
                    if stagger > 0 {
                        break;
                    }
                }
                for _ in 0..stagger.max(1) {
                    if batch.live() == 0 {
                        break;
                    }
                    let step = batch.step_token().unwrap();
                    tokens += step.batch + step.first_tokens.len();
                }
            }
            let mut retired: Vec<(u64, usize)> =
                batch.retire().iter().map(|r| (r.id, r.tokens)).collect();
            retired.sort_unstable();
            (retired, tokens)
        };
        let unchunked = run(None);
        let chunked = run(Some(chunk));
        prop_assert_eq!(&chunked.0, &unchunked.0, "per-member tokens differ");
        prop_assert_eq!(chunked.1, unchunked.1, "total token work differs");
        for (id, tokens) in &unchunked.0 {
            prop_assert_eq!(*tokens, workloads[*id as usize].output_len);
        }
    }
}

/// Token-boundary scheduling holds its invariants end to end on the
/// real cycle-model appliance: deterministic, causal, and equivalent to
/// FIFO at `max_batch == 1` (up to float accumulation order — the
/// cycle model sums per-step milliseconds on the token path and
/// per-stage cycle totals on the dispatch path).
#[test]
fn continuous_invariants_hold_on_a_real_appliance() {
    let appliance = dfx::sim::Appliance::timing_only(GptConfig::tiny(), 2).unwrap();
    let workloads: Vec<Workload> = (0..10)
        .map(|i| Workload::new(4 + i % 3, 2 + i % 4))
        .collect();
    let arrivals = ArrivalProcess::Poisson {
        rate_per_s: 2.0,
        seed: 42,
    };
    let run = |max_batch: usize| {
        ServingEngine::new(&appliance)
            .with_scheduler(Box::new(ContinuousBatching::new(max_batch)))
            .run(&workloads, &arrivals)
            .unwrap()
    };
    let a = run(3);
    let b = run(3);
    assert_eq!(a, b, "continuous real-backend runs must be deterministic");
    assert_eq!(a.responses.len(), workloads.len());
    for r in &a.responses {
        assert!(r.start_ms >= r.request.arrival_ms);
        assert!(r.service_ms() > 0.0);
    }

    let fifo = ServingEngine::new(&appliance)
        .run(&workloads, &arrivals)
        .unwrap();
    let cont1 = run(1);
    assert_eq!(fifo.responses.len(), cont1.responses.len());
    for (f, c) in fifo.responses.iter().zip(&cont1.responses) {
        assert_eq!(f.request, c.request);
        assert!((f.start_ms - c.start_ms).abs() <= 1e-6 * f.start_ms.max(1.0));
        assert!((f.finish_ms - c.finish_ms).abs() <= 1e-6 * f.finish_ms.max(1.0));
    }
}

/// The same invariants hold end to end with a real cycle-model backend.
#[test]
fn invariants_hold_on_a_real_appliance() {
    let appliance = dfx::sim::Appliance::timing_only(GptConfig::tiny(), 2).unwrap();
    let workloads: Vec<Workload> = (0..10)
        .map(|i| Workload::new(4 + i % 3, 2 + i % 4))
        .collect();
    let arrivals = ArrivalProcess::Poisson {
        rate_per_s: 2.0,
        seed: 42,
    };
    let a = ServingEngine::new(&appliance)
        .run(&workloads, &arrivals)
        .unwrap();
    let b = ServingEngine::new(&appliance)
        .run(&workloads, &arrivals)
        .unwrap();
    assert_eq!(a, b, "real-backend runs must be deterministic");
    assert_eq!(a.responses.len(), workloads.len());
    for r in &a.responses {
        assert!(r.start_ms >= r.request.arrival_ms);
        assert!(r.service_ms() > 0.0);
    }
}

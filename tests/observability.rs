//! Property-based tests of the telemetry layer's conservation and
//! causality guarantees.
//!
//! The same closed-form backend as `serving_invariants.rs` (integer
//! service milliseconds, so f64 arithmetic is exact) drives
//! [`ServingEngine::run_traced`] under arbitrary workloads, arrival
//! processes and disciplines, and checks the tracing contract: tracing
//! never perturbs the run, every admitted request closes exactly one
//! terminal span, span times are monotone and causal, and both export
//! formats survive their own validators.

use dfx::model::Workload;
use dfx::serve::telemetry::{self, Json, Labels, MetricsRegistry};
use dfx::serve::{
    ArrivalProcess, Backend, ContinuousBatching, ContinuousStepper, RunReport, ServingEngine,
    StepEvent,
};
use dfx::sim::SimError;
use proptest::prelude::*;

/// Closed-form backend: `input + output` ms per request, a matching
/// stepper (prefill = `input_len` ms, 1 ms per decoded token) and a
/// 100 W power model so energy attribution is exercised end to end.
struct UnitBackend;

/// (id, workload, tokens emitted) per live member.
struct UnitStepper {
    members: Vec<(u64, Workload, usize)>,
}

impl ContinuousStepper for UnitStepper {
    fn admit(&mut self, id: u64, workload: Workload) -> Result<StepEvent, SimError> {
        dfx::serve::validate_workload(workload)?;
        self.members.push((id, workload, 0));
        Ok(StepEvent {
            ms: workload.input_len as f64,
            live: self.members.len(),
            finished: vec![],
            prefilling: vec![],
        })
    }

    fn step_token(&mut self) -> Result<StepEvent, SimError> {
        if self.members.is_empty() {
            return Err(SimError::InvalidRequest("no live members".into()));
        }
        let mut finished = Vec::new();
        let mut i = 0;
        while i < self.members.len() {
            self.members[i].2 += 1;
            if self.members[i].2 == self.members[i].1.output_len {
                finished.push(self.members.remove(i).0);
            } else {
                i += 1;
            }
        }
        Ok(StepEvent {
            ms: 1.0,
            live: self.members.len(),
            finished,
            prefilling: vec![],
        })
    }

    fn live(&self) -> usize {
        self.members.len()
    }
}

impl Backend for UnitBackend {
    fn name(&self) -> String {
        "unit".into()
    }
    fn device_count(&self) -> usize {
        1
    }
    fn nominal_power_w(&self) -> Option<f64> {
        Some(100.0)
    }
    fn serve(&self, w: Workload) -> Result<RunReport, SimError> {
        dfx::serve::validate_workload(w)?;
        Ok(RunReport {
            backend: self.name(),
            workload: w,
            summarization_ms: w.input_len as f64,
            generation_ms: w.output_len as f64,
            devices: 1,
            power_w: Some(100.0),
        })
    }
    fn continuous(&self) -> Option<Box<dyn ContinuousStepper + '_>> {
        Some(Box::new(UnitStepper {
            members: Vec::new(),
        }))
    }
}

fn arb_workloads() -> impl Strategy<Value = Vec<Workload>> {
    proptest::collection::vec((1usize..48, 1usize..48), 1..32)
        .prop_map(|v| v.into_iter().map(|(i, o)| Workload::new(i, o)).collect())
}

fn arb_arrivals() -> impl Strategy<Value = ArrivalProcess> {
    prop_oneof![
        (0.5f64..200.0, any::<u64>())
            .prop_map(|(rate_per_s, seed)| { ArrivalProcess::Poisson { rate_per_s, seed } }),
        (1usize..6, 0.0f64..50.0).prop_map(|(clients, think_time_ms)| {
            ArrivalProcess::ClosedLoop {
                clients,
                think_time_ms,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tracing contract on both paths: tracing does not perturb the
    /// report, and every admitted request closes exactly one terminal
    /// span whose boundaries are monotone and causal.
    #[test]
    fn traces_conserve_requests_and_respect_causality(
        workloads in arb_workloads(),
        arrivals in arb_arrivals(),
        max_batch in 1usize..6,
        continuous in any::<bool>(),
    ) {
        let build = || {
            let mut engine = ServingEngine::new(&UnitBackend);
            if continuous {
                engine = engine.with_scheduler(Box::new(ContinuousBatching::new(max_batch)));
            }
            engine
        };
        let plain = build().run(&workloads, &arrivals).unwrap();
        let (report, trace) = build().run_traced(&workloads, &arrivals).unwrap();
        prop_assert_eq!(&report, &plain, "tracing perturbed the run");

        // Conservation: one terminal span per admitted request, ids
        // exactly the submission indices.
        trace.validate().unwrap();
        prop_assert_eq!(trace.requests.len(), workloads.len());
        let ids: Vec<u64> = trace.requests.iter().map(|t| t.id).collect();
        prop_assert_eq!(ids, (0..workloads.len() as u64).collect::<Vec<u64>>());

        // Causality per span, against the matching response (responses
        // arrive in completion order; traces are sorted by id).
        let mut by_id = report.responses.clone();
        by_id.sort_by_key(|r| r.request.id);
        for (t, r) in trace.requests.iter().zip(by_id.iter()) {
            prop_assert_eq!(t.id, r.request.id);
            prop_assert!(t.arrival_ms <= t.start_ms);
            prop_assert!(t.start_ms <= t.finish_ms);
            prop_assert_eq!(t.finish_ms, r.finish_ms);
            if let Some(first) = t.first_token_ms {
                prop_assert!(first >= t.start_ms && first <= t.finish_ms);
                // Token boundaries are monotone; validate() checked, but
                // pin the count too. The engine emits one token at
                // prefill completion and one per decode step, and this
                // stepper decodes `output_len` steps, so each request
                // records exactly `output + 1` emission boundaries.
                prop_assert_eq!(t.token_ms.len(), t.output_tokens + 1);
            }
        }

        // Energy attribution partitions the pool total exactly (token
        // shares sum to one).
        let attributed: f64 = trace.requests.iter().filter_map(|t| t.energy_j).sum();
        let total = report.energy_j.unwrap();
        prop_assert!((attributed - total).abs() <= 1e-9 * total.max(1.0));

        // Both export formats survive their validators, and the Chrome
        // JSON round-trips through the vendored parser byte for byte.
        let json = trace.to_chrome_json();
        let parsed = Json::parse(&json).unwrap();
        prop_assert_eq!(parsed.render(), json);
        let mut reg = MetricsRegistry::new();
        telemetry::record_service_report(&mut reg, &report, &Labels::new());
        let samples = telemetry::validate_prometheus(&reg.render()).unwrap();
        prop_assert!(samples > 0);
    }
}

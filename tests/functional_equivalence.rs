//! Cross-crate integration: the simulated appliance must generate the
//! same tokens as the reference model, at every cluster size, and the
//! FP16 datapath must track the FP32 reference.

use dfx::model::{Gpt2Model, GptConfig, GptWeights};
use dfx::num::F16;
use dfx::sim::{Appliance, FunctionalCluster};

fn weights16(cfg: &GptConfig) -> GptWeights<F16> {
    GptWeights::synthetic(cfg).cast()
}

#[test]
fn all_cluster_sizes_agree_with_the_reference() {
    let cfg = GptConfig::tiny(); // 2 heads: clusters of 1 and 2
    let w = weights16(&cfg);
    let reference = Gpt2Model::new(w.clone());
    let input = [2u32, 7, 1, 8, 2, 8];
    let expect = reference.generate(&input, 6).tokens;

    for cores in [1usize, 2] {
        let mut cluster = FunctionalCluster::new(w.clone(), cores).unwrap();
        let got = cluster.generate(&input, 6).unwrap();
        assert_eq!(got, expect, "{cores}-core cluster diverged from reference");
    }
}

#[test]
fn four_core_cluster_agrees_on_a_four_head_model() {
    let cfg = GptConfig::new("four-head", 128, 4, 2, 256, 64);
    let w = weights16(&cfg);
    let reference = Gpt2Model::new(w.clone());
    let input = [5u32, 6, 7];
    let expect = reference.generate(&input, 4).tokens;
    let mut cluster = FunctionalCluster::new(w, 4).unwrap();
    assert_eq!(cluster.generate(&input, 4).unwrap(), expect);
}

#[test]
fn fp16_appliance_tracks_fp32_reference_tokens() {
    // The §VII-A property at integration level: the full FP16 pipeline
    // (MAC trees, GELU LUT, lowered softmax/LayerNorm) picks the same
    // greedy tokens as the FP32 reference on most prompts.
    let cfg = GptConfig::tiny();
    let w32 = GptWeights::synthetic(&cfg);
    let ref32 = Gpt2Model::new(w32.clone());
    let mut cluster = FunctionalCluster::new(w32.cast::<F16>(), 2).unwrap();

    let prompts: [&[u32]; 4] = [&[1, 2, 3], &[100, 50, 25], &[9, 9, 9, 9], &[400, 3, 77]];
    let mut agree = 0;
    for p in prompts {
        cluster.reset().unwrap();
        let got = cluster.generate(p, 1).unwrap()[0];
        let expect = ref32.generate(p, 1).tokens[0];
        if got == expect {
            agree += 1;
        }
    }
    assert!(agree >= 3, "FP16 agreed on only {agree}/4 prompts");
}

#[test]
fn functional_appliance_reports_both_tokens_and_timing() {
    let cfg = GptConfig::tiny();
    let mut appliance = Appliance::functional(weights16(&cfg), 2).unwrap();
    let run = appliance.generate(&[3, 4, 5], 4).unwrap();
    assert_eq!(run.tokens.len(), 4);
    assert!(run.timed.total_latency_ms() > 0.0);
    assert_eq!(run.timed.workload.input_len, 3);
    assert_eq!(run.timed.workload.output_len, 4);
}

#[test]
fn generation_extends_prefix_stable() {
    // Greedy decoding through the cluster is prefix-stable, like the
    // reference (same KV state evolution).
    let cfg = GptConfig::tiny();
    let w = weights16(&cfg);
    let mut c1 = FunctionalCluster::new(w.clone(), 2).unwrap();
    let mut c2 = FunctionalCluster::new(w, 2).unwrap();
    let long = c1.generate(&[11, 12, 13], 6).unwrap();
    let short = c2.generate(&[11, 12, 13], 3).unwrap();
    assert_eq!(&long[..3], &short[..]);
}

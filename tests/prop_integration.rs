//! Property-based integration tests: random model geometries through the
//! whole pipeline.

use dfx::isa::{decode_program, encode_program, ParallelConfig, ProgramBuilder};
use dfx::model::{Gpt2Model, GptConfig, GptWeights};
use dfx::num::F16;
use dfx::sim::FunctionalCluster;
use proptest::prelude::*;

/// Random tiny-but-legal model geometries (head_dim stays 32/64-ish so
/// programs remain small enough for debug-mode execution).
fn arb_config() -> impl Strategy<Value = GptConfig> {
    (1usize..=4, 1usize..=2, 6u8..=10).prop_map(|(heads, layers, vocab_pow)| {
        let emb = heads * 32;
        GptConfig::new(
            format!("prop-{heads}h-{layers}l"),
            emb,
            heads,
            layers,
            1usize << vocab_pow,
            64,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn programs_validate_and_roundtrip_for_random_geometry(cfg in arb_config(), pos in 0usize..16) {
        for cores in [1usize, cfg.num_heads] {
            let par = ParallelConfig::new(0, cores);
            let builder = ProgramBuilder::new(cfg.clone(), par).unwrap();
            let p = builder.token_step(pos, true);
            prop_assert!(p.validate().is_ok());
            let decoded = decode_program(encode_program(&p)).unwrap();
            prop_assert_eq!(p, decoded);
        }
    }

    #[test]
    fn random_models_generate_identically_across_cluster_sizes(cfg in arb_config()) {
        let w = GptWeights::synthetic(&cfg).cast::<F16>();
        let reference = Gpt2Model::new(w.clone());
        let input = [1u32, 2, 3];
        let expect = reference.generate(&input, 2).tokens;
        for cores in [1usize, cfg.num_heads] {
            let mut cluster = FunctionalCluster::new(w.clone(), cores).unwrap();
            let got = cluster.generate(&input, 2).unwrap();
            prop_assert_eq!(&got, &expect, "cores = {}", cores);
        }
    }
}

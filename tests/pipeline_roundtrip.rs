//! Integration: programs survive the full host pipeline — build, binary
//! encode, transfer (simulated), decode, execute — with identical
//! results.

use dfx::core::{CoreEvent, CoreWeights, FunctionalCore};
use dfx::isa::{decode_program, encode_program, regs, ParallelConfig, ProgramBuilder};
use dfx::model::{GptConfig, GptWeights};
use dfx::num::F16;

#[test]
fn encoded_programs_execute_identically_after_decode() {
    let cfg = GptConfig::tiny();
    let par = ParallelConfig::new(0, 1);
    let weights = GptWeights::synthetic(&cfg).cast::<F16>();
    let builder = ProgramBuilder::new(cfg, par).unwrap();

    let original = builder.token_step(0, true);
    let decoded = decode_program(encode_program(&original)).expect("decode");
    assert_eq!(original, decoded);

    let mut core_a = FunctionalCore::new(CoreWeights::partition(&weights, par));
    let mut core_b = FunctionalCore::new(CoreWeights::partition(&weights, par));
    core_a.begin_step(9);
    core_b.begin_step(9);
    let (_, ev_a) = core_a.run(&original, 0);
    let (_, ev_b) = core_b.run(&decoded, 0);
    assert_eq!(ev_a, CoreEvent::Done);
    assert_eq!(ev_b, CoreEvent::Done);
    assert_eq!(core_a.out_token(), core_b.out_token());
    // The whole architectural state agrees, not just the token.
    let hidden_a = core_a.vreg(regs::LM_HIDDEN);
    let hidden_b = core_b.vreg(regs::LM_HIDDEN);
    assert_eq!(hidden_a.len(), hidden_b.len());
    for (a, b) in hidden_a.iter().zip(hidden_b) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

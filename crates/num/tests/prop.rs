//! Property-based tests for the half-precision datapath.

use dfx_num::{reduce, F16};
use proptest::prelude::*;

/// Finite f32 values that stay within (or near) half range.
fn small_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        -1000.0f32..1000.0,
        -1.0f32..1.0,
        -6.5e4f32..6.5e4,
        Just(0.0f32),
        Just(-0.0f32),
    ]
}

fn small_f16() -> impl Strategy<Value = F16> {
    small_f32().prop_map(F16::from_f32)
}

proptest! {
    #[test]
    fn narrowing_is_within_half_ulp(x in small_f32()) {
        let h = F16::from_f32(x);
        prop_assume!(h.is_finite());
        let back = h.to_f64();
        // ULP of the result's binade (for normals); subnormal ULP is 2^-24.
        let exp = back.abs().log2().floor().max(-14.0);
        let ulp = 2f64.powf(exp - 10.0);
        prop_assert!(
            (back - f64::from(x)).abs() <= ulp / 2.0 + 1e-12,
            "x={x}, back={back}, ulp={ulp}"
        );
    }

    #[test]
    fn addition_commutes(a in small_f16(), b in small_f16()) {
        prop_assert_eq!((a + b).to_bits(), (b + a).to_bits());
    }

    #[test]
    fn multiplication_commutes(a in small_f16(), b in small_f16()) {
        prop_assert_eq!((a * b).to_bits(), (b * a).to_bits());
    }

    #[test]
    fn addition_matches_f64_rounded(a in small_f16(), b in small_f16()) {
        // The exact sum of two halves is representable in f64, so the
        // correctly rounded result is from_f64(exact).
        prop_assert_eq!(
            (a + b).to_bits(),
            F16::from_f64(a.to_f64() + b.to_f64()).to_bits()
        );
    }

    #[test]
    fn negation_is_involutive_and_flips_sign(a in small_f16()) {
        prop_assert_eq!((-(-a)).to_bits(), a.to_bits());
        if !a.is_zero() {
            prop_assert_ne!((-a).is_sign_negative(), a.is_sign_negative());
        }
    }

    #[test]
    fn tree_sum_error_is_bounded(xs in proptest::collection::vec(-4.0f32..4.0, 1..256)) {
        let halves: Vec<F16> = xs.iter().map(|&x| F16::from_f32(x)).collect();
        let exact: f64 = halves.iter().map(|h| h.to_f64()).sum();
        let got = reduce::tree_sum(&halves).to_f64();
        // Pairwise summation error bound: ~ceil(log2 n)+1 rounding steps,
        // each at most eps * running magnitude.
        let levels = (halves.len() as f64).log2().ceil() + 1.0;
        let mag: f64 = halves.iter().map(|h| h.to_f64().abs()).sum();
        let bound = levels * 2f64.powi(-11) * mag + 2f64.powi(-24);
        prop_assert!((got - exact).abs() <= bound.max(1e-3),
            "got {got}, exact {exact}, bound {bound}");
    }

    #[test]
    fn tree_sum_is_permutation_stable_for_nonnegative_inputs(
        mut xs in proptest::collection::vec(0.0f32..8.0, 1..64)
    ) {
        // Not bit-identical in general, but must stay within the same error
        // envelope after an arbitrary permutation (deterministic reversal
        // here keeps the test reproducible).
        let fwd: Vec<F16> = xs.iter().map(|&x| F16::from_f32(x)).collect();
        xs.reverse();
        let rev: Vec<F16> = xs.iter().map(|&x| F16::from_f32(x)).collect();
        let a = reduce::tree_sum(&fwd).to_f64();
        let b = reduce::tree_sum(&rev).to_f64();
        let mag: f64 = fwd.iter().map(|h| h.to_f64()).sum::<f64>().max(1.0);
        prop_assert!((a - b).abs() <= mag * 0.02, "fwd {a} vs rev {b}");
    }

    #[test]
    fn reduce_max_returns_a_true_maximum(xs in proptest::collection::vec(-100.0f32..100.0, 1..128)) {
        let halves: Vec<F16> = xs.iter().map(|&x| F16::from_f32(x)).collect();
        let (idx, val) = reduce::reduce_max(&halves).unwrap();
        prop_assert_eq!(halves[idx].to_bits(), val.to_bits());
        for h in &halves {
            prop_assert!(
                h.partial_cmp(&val) != Some(std::cmp::Ordering::Greater),
                "found {h} greater than reported max {val}"
            );
        }
    }

    #[test]
    fn total_cmp_agrees_with_partial_ord_on_numbers(a in small_f16(), b in small_f16()) {
        if let Some(ord) = a.partial_cmp(&b) {
            if !(a.is_zero() && b.is_zero()) {
                prop_assert_eq!(a.total_cmp(b), ord);
            }
        }
    }

    #[test]
    fn mac_tree_matches_f64_dot_within_bound(
        pairs in proptest::collection::vec((-2.0f32..2.0, -2.0f32..2.0), 1..=64)
    ) {
        let x: Vec<F16> = pairs.iter().map(|&(a, _)| F16::from_f32(a)).collect();
        let w: Vec<F16> = pairs.iter().map(|&(_, b)| F16::from_f32(b)).collect();
        let exact: f64 = x.iter().zip(&w).map(|(a, b)| a.to_f64() * b.to_f64()).sum();
        let got = reduce::mac_tree(&x, &w).to_f64();
        let mag: f64 = x.iter().zip(&w).map(|(a, b)| (a.to_f64() * b.to_f64()).abs()).sum();
        let bound = 8.0 * 2f64.powi(-11) * mag + 1e-3;
        prop_assert!((got - exact).abs() <= bound, "got {got} exact {exact} bound {bound}");
    }
}

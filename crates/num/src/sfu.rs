//! Special-function arithmetic mirroring the DFX SFUs (paper §V-C).
//!
//! The DFX core implements nonlinear functions with a mix of DSP operators,
//! combinational logic and lookup tables:
//!
//! - **GELU** (SFU_M): a 2048-entry lookup table over the input range
//!   [−8, 8] with linear interpolation between samples. The paper reports a
//!   mean-squared error of 0 at half precision over that range; outside the
//!   range the function saturates (GELU(x) ≈ 0 for x ≤ −8, GELU(x) ≈ x for
//!   x ≥ 8).
//! - **exp** (VFU, 4-cycle DSP pipeline), **recip** and **recip_sqrt**
//!   (SFU_V): modelled as the `f64`-accurate value rounded once to binary16.
//!
//! [`SfuMath`] bundles all of them so the functional executor carries one
//! immutable description of the nonlinear datapath.

use crate::f16::F16;

/// Number of samples in the hardware GELU lookup table.
pub const GELU_LUT_SAMPLES: usize = 2048;
/// Lower bound of the GELU table's input range.
pub const GELU_LUT_LO: f64 = -8.0;
/// Upper bound of the GELU table's input range.
pub const GELU_LUT_HI: f64 = 8.0;

/// The exact GELU with the tanh approximation used by GPT-2 (and by the
/// paper's equation in §V-C):
/// `0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³)))`.
pub fn gelu_exact(x: f64) -> f64 {
    let c = (2.0 / std::f64::consts::PI).sqrt();
    0.5 * x * (1.0 + (c * (x + 0.044_715 * x * x * x)).tanh())
}

/// The DFX GELU lookup table: 2048 uniformly spaced samples over [−8, 8]
/// with linear interpolation, evaluated at half precision.
///
/// # Examples
///
/// ```
/// use dfx_num::{F16, GeluLut};
///
/// let lut = GeluLut::new();
/// let y = lut.eval(F16::from_f32(1.0));
/// // GELU(1) ≈ 0.8412
/// assert!((y.to_f32() - 0.8412).abs() < 1e-3);
/// ```
#[derive(Clone)]
pub struct GeluLut {
    samples: Vec<f64>,
    step: f64,
}

impl GeluLut {
    /// Builds the table by sampling the exact tanh-form GELU, as the
    /// hardware's table is generated offline.
    pub fn new() -> Self {
        let step = (GELU_LUT_HI - GELU_LUT_LO) / (GELU_LUT_SAMPLES as f64 - 1.0);
        let samples = (0..GELU_LUT_SAMPLES)
            .map(|i| gelu_exact(GELU_LUT_LO + step * i as f64))
            .collect();
        GeluLut { samples, step }
    }

    /// Evaluates GELU on one half-precision input.
    ///
    /// Inputs outside [−8, 8] follow the saturation behaviour of the
    /// hardware: the slope of GELU converges to 0 on the left and 1 on the
    /// right at that range (paper §V-C), so the unit passes `0` and `x`
    /// through respectively. NaN propagates.
    pub fn eval(&self, x: F16) -> F16 {
        if x.is_nan() {
            return x;
        }
        let xf = x.to_f64();
        if xf <= GELU_LUT_LO {
            return F16::ZERO;
        }
        if xf >= GELU_LUT_HI {
            return x;
        }
        let pos = (xf - GELU_LUT_LO) / self.step;
        let idx = (pos.floor() as usize).min(GELU_LUT_SAMPLES - 2);
        let frac = pos - idx as f64;
        let y = self.samples[idx] * (1.0 - frac) + self.samples[idx + 1] * frac;
        F16::from_f64(y)
    }

    /// Mean-squared error of the table (including interpolation) against
    /// the exact GELU, measured at every representable half in [−8, 8] and
    /// quantised to half precision — the metric the paper reports as 0.
    pub fn mse_at_half_precision(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0u32;
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            if h.is_nan() || !h.is_finite() {
                continue;
            }
            let x = h.to_f64();
            if !(GELU_LUT_LO..=GELU_LUT_HI).contains(&x) {
                continue;
            }
            let approx = self.eval(h).to_f64();
            let exact = F16::from_f64(gelu_exact(x)).to_f64();
            let err = approx - exact;
            sum += err * err;
            n += 1;
        }
        sum / f64::from(n)
    }
}

impl Default for GeluLut {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for GeluLut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GeluLut")
            .field("samples", &self.samples.len())
            .field("range", &(GELU_LUT_LO, GELU_LUT_HI))
            .finish()
    }
}

/// Exponential, as computed by the VFU's DSP pipeline: `f64`-accurate and
/// rounded once to half precision.
#[inline]
pub fn exp(x: F16) -> F16 {
    F16::from_f64(x.to_f64().exp())
}

/// Reciprocal (`recip` vector instruction): used to replace division in
/// Softmax (paper §IV-C).
#[inline]
pub fn recip(x: F16) -> F16 {
    F16::from_f64(1.0 / x.to_f64())
}

/// Reciprocal square root (`recip_sqrt`): used for 1/σ in LayerNorm.
#[inline]
pub fn recip_sqrt(x: F16) -> F16 {
    F16::from_f64(1.0 / x.to_f64().sqrt())
}

/// The complete nonlinear datapath of one DFX core.
///
/// Owning this as a value (rather than using free functions for GELU)
/// mirrors the hardware, where the GELU table is a physical BRAM resource
/// of the core, and keeps the functional executor deterministic.
#[derive(Debug, Clone, Default)]
pub struct SfuMath {
    gelu: GeluLut,
}

impl SfuMath {
    /// Creates the datapath, building the GELU table.
    pub fn new() -> Self {
        Self::default()
    }

    /// GELU through the lookup table.
    #[inline]
    pub fn gelu(&self, x: F16) -> F16 {
        self.gelu.eval(x)
    }

    /// Exponential.
    #[inline]
    pub fn exp(&self, x: F16) -> F16 {
        exp(x)
    }

    /// Reciprocal.
    #[inline]
    pub fn recip(&self, x: F16) -> F16 {
        recip(x)
    }

    /// Reciprocal square root.
    #[inline]
    pub fn recip_sqrt(&self, x: F16) -> F16 {
        recip_sqrt(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gelu_known_values() {
        let lut = GeluLut::new();
        let cases = [
            (0.0f32, 0.0f64),
            (1.0, 0.841_192),
            (-1.0, -0.158_808),
            (2.0, 1.954_597),
            (-2.0, -0.045_402),
        ];
        for (x, want) in cases {
            let got = lut.eval(F16::from_f32(x)).to_f64();
            assert!(
                (got - want).abs() < 2e-3,
                "gelu({x}) = {got}, want ≈ {want}"
            );
        }
    }

    #[test]
    fn gelu_saturates_outside_range() {
        let lut = GeluLut::new();
        assert_eq!(lut.eval(F16::from_f32(-9.0)), F16::ZERO);
        assert_eq!(lut.eval(F16::from_f32(-100.0)), F16::ZERO);
        let x = F16::from_f32(12.5);
        assert_eq!(lut.eval(x), x);
        assert_eq!(lut.eval(F16::INFINITY), F16::INFINITY);
        assert!(lut.eval(F16::NAN).is_nan());
    }

    #[test]
    fn gelu_lut_mse_is_zero_at_half_precision_scale() {
        // The paper: "We sample 2048 inputs that achieve a mean squared
        // error of 0 in half-precision floating-point". At f16 granularity
        // the MSE must be below the squared ULP around |y| <= 8.
        let lut = GeluLut::new();
        let mse = lut.mse_at_half_precision();
        assert!(mse < 1e-5, "GELU LUT MSE too high: {mse}");
    }

    #[test]
    fn gelu_is_monotone_on_sampled_grid() {
        // GELU is monotone above ~ -0.75; the LUT+interp must preserve
        // monotonicity there (hardware property used for argmax stability).
        let lut = GeluLut::new();
        let mut prev = lut.eval(F16::from_f32(-0.7));
        let mut x = -0.7f32;
        while x < 8.2 {
            let y = lut.eval(F16::from_f32(x));
            assert!(
                y >= prev || (y - prev).abs() <= F16::EPSILON,
                "non-monotone at {x}"
            );
            prev = y;
            x += 0.013;
        }
    }

    #[test]
    fn exp_recip_rsqrt_match_f64_rounded() {
        for x in [0.5f32, 1.0, 2.0, 3.5, 7.9, 0.0625] {
            // Compare against the f64 function of the *quantised* input —
            // the unit sees the half-precision operand, not the literal.
            let h = F16::from_f32(x);
            let hx = h.to_f64();
            assert_eq!(exp(h), F16::from_f64(hx.exp()));
            assert_eq!(recip(h), F16::from_f64(1.0 / hx));
            assert_eq!(recip_sqrt(h), F16::from_f64(1.0 / hx.sqrt()));
        }
    }

    #[test]
    fn exp_of_masked_neg_infinity_is_zero() {
        // The masking path relies on exp(-inf) == 0 so masked attention
        // scores vanish after softmax.
        assert_eq!(exp(F16::NEG_INFINITY), F16::ZERO);
        assert_eq!(exp(F16::MIN), F16::ZERO, "exp(-65504) underflows to zero");
    }

    #[test]
    fn recip_handles_edge_cases() {
        assert_eq!(recip(F16::ZERO), F16::INFINITY);
        assert_eq!(recip(F16::INFINITY), F16::ZERO);
        assert!(recip_sqrt(F16::from_f32(-1.0)).is_nan());
    }
}

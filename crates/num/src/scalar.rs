//! Precision-generic scalar abstraction.
//!
//! The reference GPT-2 implementation in `dfx-model` is generic over the
//! element type so the same code can run in `f32` (golden reference), `f64`
//! or [`F16`] (the precision the GPU baseline and the DFX datapath use).
//! Accuracy experiments (paper §VII-A) compare these instantiations.

use crate::f16::F16;
use crate::sfu;

/// A floating-point scalar usable by the reference model.
///
/// This trait is sealed: the simulator's numerics are only meaningful for
/// the three concrete precisions provided here.
pub trait Scalar:
    Copy + Clone + std::fmt::Debug + PartialOrd + Send + Sync + private::Sealed
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Converts from `f64` (rounding as appropriate for the precision).
    fn from_f64(x: f64) -> Self;
    /// Converts to `f64` (exact for all three precisions).
    fn to_f64(self) -> f64;

    /// Addition.
    fn add(self, rhs: Self) -> Self;
    /// Subtraction.
    fn sub(self, rhs: Self) -> Self;
    /// Multiplication.
    fn mul(self, rhs: Self) -> Self;
    /// Exponential.
    fn exp(self) -> Self;
    /// Reciprocal.
    fn recip(self) -> Self;
    /// Reciprocal square root.
    fn recip_sqrt(self) -> Self;
    /// GELU activation (exact tanh form for wide types; callers that model
    /// the DFX lookup table use [`crate::GeluLut`] instead).
    fn gelu(self) -> Self;

    /// `maxNum` comparison used by argmax.
    fn max_num(self, rhs: Self) -> Self;
}

mod private {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
    impl Sealed for super::F16 {}
}

macro_rules! impl_scalar_for_native {
    ($t:ty) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;

            #[inline]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                f64::from(self)
            }
            #[inline]
            fn add(self, rhs: Self) -> Self {
                self + rhs
            }
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                self - rhs
            }
            #[inline]
            fn mul(self, rhs: Self) -> Self {
                self * rhs
            }
            #[inline]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline]
            fn recip(self) -> Self {
                1.0 / self
            }
            #[inline]
            fn recip_sqrt(self) -> Self {
                1.0 / self.sqrt()
            }
            #[inline]
            fn gelu(self) -> Self {
                sfu::gelu_exact(f64::from(self)) as $t
            }
            #[inline]
            fn max_num(self, rhs: Self) -> Self {
                if self.is_nan() {
                    rhs
                } else if rhs.is_nan() {
                    self
                } else if self >= rhs {
                    self
                } else {
                    rhs
                }
            }
        }
    };
}

impl_scalar_for_native!(f32);
impl_scalar_for_native!(f64);

impl Scalar for F16 {
    const ZERO: Self = F16::ZERO;
    const ONE: Self = F16::ONE;

    #[inline]
    fn from_f64(x: f64) -> Self {
        F16::from_f64(x)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        F16::to_f64(self)
    }
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self + rhs
    }
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self - rhs
    }
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }
    #[inline]
    fn exp(self) -> Self {
        sfu::exp(self)
    }
    #[inline]
    fn recip(self) -> Self {
        sfu::recip(self)
    }
    #[inline]
    fn recip_sqrt(self) -> Self {
        sfu::recip_sqrt(self)
    }
    #[inline]
    fn gelu(self) -> Self {
        F16::from_f64(sfu::gelu_exact(self.to_f64()))
    }
    #[inline]
    fn max_num(self, rhs: Self) -> Self {
        self.max(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_basic_ops<T: Scalar>() {
        let two = T::from_f64(2.0);
        let three = T::from_f64(3.0);
        assert_eq!(two.add(three).to_f64(), 5.0);
        assert_eq!(three.sub(two).to_f64(), 1.0);
        assert_eq!(two.mul(three).to_f64(), 6.0);
        assert_eq!(two.max_num(three).to_f64(), 3.0);
        assert!((T::from_f64(4.0).recip_sqrt().to_f64() - 0.5).abs() < 1e-3);
    }

    #[test]
    fn scalar_ops_consistent_across_precisions() {
        check_basic_ops::<f32>();
        check_basic_ops::<f64>();
        check_basic_ops::<F16>();
    }

    #[test]
    fn f16_scalar_gelu_close_to_f64_gelu() {
        for x in [-3.0, -1.0, 0.0, 0.5, 2.0] {
            let wide = <f64 as Scalar>::gelu(x);
            let narrow = <F16 as Scalar>::gelu(F16::from_f64(x)).to_f64();
            assert!((wide - narrow).abs() < 2e-3, "x={x}: {wide} vs {narrow}");
        }
    }
}

//! Reduction arithmetic with DFX adder-tree semantics.
//!
//! The matrix function unit (paper §V-C) feeds `d`-element products into a
//! balanced binary adder tree of depth `log2(d)`; every adder is an
//! individually rounding FP16 operator. Summation order therefore matters:
//! a pairwise tree produces different (usually *more* accurate) results
//! than a sequential accumulator. The functional executor uses these
//! routines so simulated numerics match the hardware's dataflow.

use crate::f16::F16;

/// Sums a slice with a balanced pairwise adder tree, padding the last level
/// with `+0.0` exactly like unfilled tree inputs in hardware.
///
/// An empty slice sums to positive zero.
///
/// # Examples
///
/// ```
/// use dfx_num::{F16, reduce::tree_sum};
///
/// let v: Vec<F16> = (1..=4).map(|i| F16::from_f32(i as f32)).collect();
/// assert_eq!(tree_sum(&v).to_f32(), 10.0);
/// ```
pub fn tree_sum(values: &[F16]) -> F16 {
    match values.len() {
        0 => F16::ZERO,
        1 => values[0],
        n if n <= 64 => {
            // Hardware-width fast path: reduce in a stack buffer.
            let mut buf = [F16::ZERO; 64];
            buf[..n].copy_from_slice(values);
            tree_reduce_in_place(&mut buf[..n])
        }
        _ => {
            let mut level: Vec<F16> = values.to_vec();
            tree_reduce_in_place(&mut level)
        }
    }
}

/// Pairwise reduction performed in place; an odd element at any level
/// pairs with an implicit +0 input, as unfilled tree ports do in hardware.
fn tree_reduce_in_place(level: &mut [F16]) -> F16 {
    let mut len = level.len();
    while len > 1 {
        let half = len / 2;
        for i in 0..half {
            level[i] = level[2 * i] + level[2 * i + 1];
        }
        if len % 2 == 1 {
            // Odd element pairs with an implicit +0 input.
            level[half] = level[len - 1] + F16::ZERO;
            len = half + 1;
        } else {
            len = half;
        }
    }
    level.first().copied().unwrap_or(F16::ZERO)
}

/// The `d`-input multiply-accumulate tree: elementwise FP16 products, then
/// [`tree_sum`]. This is one lane of the MFU for one tile row.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mac_tree(inputs: &[F16], weights: &[F16]) -> F16 {
    assert_eq!(
        inputs.len(),
        weights.len(),
        "MAC tree operands must have equal length"
    );
    let n = inputs.len();
    if n <= 64 {
        // Hardware width: products land in a stack buffer.
        let mut buf = [F16::ZERO; 64];
        for (b, (&x, &w)) in buf.iter_mut().zip(inputs.iter().zip(weights)) {
            *b = x * w;
        }
        tree_reduce_in_place(&mut buf[..n])
    } else {
        let mut products: Vec<F16> = inputs.iter().zip(weights).map(|(&x, &w)| x * w).collect();
        tree_reduce_in_place(&mut products)
    }
}

/// Sequential accumulation (the VPU `accum` instruction): left-to-right
/// with a single FP16 accumulator register.
pub fn accum(values: &[F16]) -> F16 {
    values.iter().copied().sum()
}

/// Parallel comparator tree returning the maximum value and the index of
/// its first occurrence (the SFU_M reduce-max unit, used for LM-head
/// argmax). NaN inputs lose against any number, mirroring `maxNum`.
///
/// Returns `None` for an empty slice.
pub fn reduce_max(values: &[F16]) -> Option<(usize, F16)> {
    let mut best: Option<(usize, F16)> = None;
    for (i, &v) in values.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        best = match best {
            None => Some((i, v)),
            Some((_, b)) if v > b => Some((i, v)),
            other => other,
        };
    }
    best.or_else(|| values.first().map(|&v| (0, v)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn halves(xs: &[f32]) -> Vec<F16> {
        xs.iter().map(|&x| F16::from_f32(x)).collect()
    }

    #[test]
    fn tree_sum_empty_and_singleton() {
        assert_eq!(tree_sum(&[]), F16::ZERO);
        assert_eq!(tree_sum(&[F16::from_f32(3.0)]).to_f32(), 3.0);
    }

    #[test]
    fn tree_sum_matches_exact_for_small_integers() {
        let v = halves(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(tree_sum(&v).to_f32(), 28.0);
    }

    #[test]
    fn tree_sum_is_more_accurate_than_sequential_on_adversarial_input() {
        // 1024 copies of 1.0: sequential accumulation stalls at 2048
        // (1 < ULP once the accumulator reaches 2048); the tree is exact.
        let v = vec![F16::ONE; 1024];
        assert_eq!(tree_sum(&v).to_f32(), 1024.0);
        assert_eq!(accum(&v).to_f32(), 1024.0); // still exact at 1024
        let v2 = vec![F16::ONE; 4096];
        assert_eq!(tree_sum(&v2).to_f32(), 4096.0);
        assert_eq!(
            accum(&v2).to_f32(),
            2048.0,
            "sequential FP16 accumulation saturates at 2048"
        );
    }

    #[test]
    fn mac_tree_matches_dot_product() {
        let x = halves(&[1.0, 2.0, 3.0, 4.0]);
        let w = halves(&[0.5, 0.25, 1.0, -1.0]);
        assert_eq!(
            mac_tree(&x, &w).to_f32(),
            1.0 * 0.5 + 2.0 * 0.25 + 3.0 - 4.0
        );
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mac_tree_rejects_mismatched_lengths() {
        let _ = mac_tree(&[F16::ONE], &[F16::ONE, F16::ONE]);
    }

    #[test]
    fn tree_sum_64_wide_matches_hardware_tile_width() {
        // d = 64 inputs, the MFU tree width.
        let v: Vec<F16> = (0..64).map(|i| F16::from_f32(i as f32 * 0.125)).collect();
        let exact: f64 = (0..64).map(|i| f64::from(i) * 0.125).sum();
        let got = tree_sum(&v).to_f64();
        assert!((got - exact).abs() <= 0.25, "got {got}, exact {exact}");
    }

    #[test]
    fn reduce_max_returns_first_index_of_max() {
        let v = halves(&[1.0, 7.0, 3.0, 7.0]);
        assert_eq!(reduce_max(&v), Some((1, F16::from_f32(7.0))));
        assert_eq!(reduce_max(&[]), None);
    }

    #[test]
    fn reduce_max_ignores_nan_and_handles_all_nan() {
        let v = vec![F16::NAN, F16::from_f32(2.0), F16::NAN];
        assert_eq!(reduce_max(&v).unwrap().0, 1);
        let all_nan = vec![F16::NAN, F16::NAN];
        // All-NaN input degrades to index 0 rather than losing the row.
        assert_eq!(reduce_max(&all_nan).unwrap().0, 0);
    }

    #[test]
    fn reduce_max_with_masked_scores() {
        // Masked positions hold -inf (closest representable to -inf); the
        // comparator must never pick them over a real score.
        let v = vec![F16::NEG_INFINITY, F16::from_f32(-3.0), F16::NEG_INFINITY];
        assert_eq!(reduce_max(&v), Some((1, F16::from_f32(-3.0))));
    }
}

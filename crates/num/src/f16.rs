//! IEEE 754 binary16 ("half precision") implemented from scratch.
//!
//! The DFX hardware computes exclusively in FP16 (1 sign, 5 exponent,
//! 10 mantissa bits — the paper, §VII-A, uses the Xilinx Floating-Point
//! Operator IP, which is IEEE 754 with round-to-nearest-even). This module
//! provides a bit-exact software model of that datapath: every arithmetic
//! operation computes the exact result in `f64` (which can represent the
//! exact sum/product of any two finite `F16` values) and then rounds once
//! to binary16 with round-to-nearest, ties-to-even.
//!
//! Division, square root and the transcendental helpers round the `f64`
//! result, which may in rare tie cases differ from a correctly rounded
//! binary16 operation by one unit in the last place; this matches the
//! "negligible approximation difference" the paper reports between its
//! FPGA operators and the GPU (§VII-A).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 16-bit IEEE 754 binary16 floating point number.
///
/// The in-memory representation is the raw bit pattern, so a `Vec<F16>`
/// has exactly the layout the DFX DMA streams to and from HBM.
///
/// # Examples
///
/// ```
/// use dfx_num::F16;
///
/// let a = F16::from_f32(1.5);
/// let b = F16::from_f32(2.25);
/// assert_eq!((a * b).to_f32(), 3.375);
/// assert_eq!(F16::from_f32(65504.0), F16::MAX);
/// ```
#[derive(Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
#[serde(transparent)]
pub struct F16(u16);

const SIGN_MASK: u16 = 0x8000;
const EXP_MASK: u16 = 0x7c00;
const MANT_MASK: u16 = 0x03ff;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: F16 = F16(0x8000);
    /// One.
    pub const ONE: F16 = F16(0x3c00);
    /// Negative one.
    pub const NEG_ONE: F16 = F16(0xbc00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7c00);
    /// Negative infinity. The DFX masking unit uses the closest
    /// representable value to −∞ for future-token masking; after softmax
    /// these positions become exactly zero.
    pub const NEG_INFINITY: F16 = F16(0xfc00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7e00);
    /// Largest finite value, 65504.
    pub const MAX: F16 = F16(0x7bff);
    /// Most negative finite value, −65504.
    pub const MIN: F16 = F16(0xfbff);
    /// Smallest positive normal value, 2⁻¹⁴.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value, 2⁻²⁴.
    pub const MIN_SUBNORMAL: F16 = F16(0x0001);
    /// Machine epsilon (difference between 1.0 and the next larger value), 2⁻¹⁰.
    pub const EPSILON: F16 = F16(0x1400);

    /// Creates a half from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to half precision with round-to-nearest-even.
    #[inline]
    pub fn from_f32(value: f32) -> Self {
        Self::from_f64(value as f64)
    }

    /// Converts an `f64` to half precision with round-to-nearest-even.
    ///
    /// This is the single rounding point used by all arithmetic in this
    /// module. `f64` holds the exact sum/product of any two finite halves,
    /// so `F16` add/sub/mul are correctly rounded.
    pub fn from_f64(value: f64) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 48) & 0x8000) as u16;
        let exp = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & 0x000f_ffff_ffff_ffff;

        if exp == 0x7ff {
            // Infinity or NaN; preserve NaN-ness with a quiet payload.
            return if frac == 0 {
                F16(sign | EXP_MASK)
            } else {
                F16(sign | 0x7e00 | ((frac >> 42) as u16 & 0x1ff))
            };
        }

        // Unbiased exponent of the f64 value (subnormal f64 inputs are far
        // below half's subnormal range and round to zero below).
        let unbiased = exp - 1023;
        if exp == 0 && frac == 0 {
            return F16(sign);
        }
        if unbiased >= 16 {
            // Overflows half range even before rounding (2^16 > 65504... but
            // values in [65504+16, 65536) would need unbiased 15 handling;
            // unbiased >= 16 is always infinity after RNE).
            return F16(sign | EXP_MASK);
        }
        if unbiased < -25 {
            // Below half of the smallest subnormal: rounds to zero.
            // (Exactly 2^-25 ties to even => zero, handled by general path
            // when unbiased == -25.)
            return F16(sign);
        }

        // Build a fixed-point magnitude: significand with implicit bit,
        // aligned so that bit 42 is the half ULP position for normals.
        // 53-bit significand of the f64 value:
        let sig64 = if exp == 0 { frac } else { frac | (1u64 << 52) };

        // Target: half normal numbers have form m * 2^(e-10) with
        // 1024 <= m <= 2047, e in [-14, 15]. Compute the real exponent and
        // shift the 53-bit significand so the integer part is the half
        // mantissa (with implicit bit) and the fraction is the round bits.
        let mut e_half = unbiased; // exponent of the leading bit
        let mut shift = 42i64; // sig64 >> shift leaves 11 integer bits (1 implicit + 10)
        if e_half < -14 {
            // Subnormal target: shift further right.
            shift += -14 - e_half;
            e_half = -14;
        }
        if shift >= 64 {
            return F16(sign);
        }

        let integer = sig64 >> shift;
        let remainder = sig64 & ((1u64 << shift) - 1);
        let half_point = 1u64 << (shift - 1);

        let mut mant = integer;
        // Round to nearest, ties to even.
        if remainder > half_point || (remainder == half_point && (mant & 1) == 1) {
            mant += 1;
        }

        // Renormalize after rounding.
        if mant >= 2048 {
            mant >>= 1;
            e_half += 1;
        }
        if mant >= 1024 {
            // Normal number.
            if e_half > 15 {
                return F16(sign | EXP_MASK);
            }
            let exp_field = ((e_half + 15) as u16) << 10;
            F16(sign | exp_field | (mant as u16 & MANT_MASK))
        } else {
            // Subnormal (or zero) result.
            F16(sign | mant as u16)
        }
    }

    /// Widens to `f32`. This conversion is exact.
    pub fn to_f32(self) -> f32 {
        let sign = u32::from(self.0 >> 15);
        let exp = u32::from((self.0 & EXP_MASK) >> 10);
        let mant = u32::from(self.0 & MANT_MASK);
        let bits = match (exp, mant) {
            (0, 0) => sign << 31,
            (0, m) => {
                // Subnormal: normalize. With p the position of the leading
                // one within the 10 mantissa bits, the value is
                // 2^(p-24) * (m / 2^p), so the f32 exponent field is p+103.
                let lz = m.leading_zeros() - 22; // zeros within the 10 mantissa bits
                let shift = lz + 1; // = 10 - p
                let normalized = (m << shift) & 0x3ff;
                let exp32 = 113 - shift; // = p + 103
                (sign << 31) | (exp32 << 23) | (normalized << 13)
            }
            (0x1f, 0) => (sign << 31) | 0x7f80_0000,
            (0x1f, m) => (sign << 31) | 0x7f80_0000 | 0x0040_0000 | (m << 13),
            (e, m) => (sign << 31) | ((e + 127 - 15) << 23) | (m << 13),
        };
        f32::from_bits(bits)
    }

    /// Widens to `f64`. This conversion is exact.
    #[inline]
    pub fn to_f64(self) -> f64 {
        f64::from(self.to_f32())
    }

    /// Returns `true` if this value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MANT_MASK) != 0
    }

    /// Returns `true` if this value is positive or negative infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & !SIGN_MASK) == EXP_MASK
    }

    /// Returns `true` if this value is neither infinite nor NaN.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// Returns `true` for subnormal values.
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & EXP_MASK) == 0 && (self.0 & MANT_MASK) != 0
    }

    /// Returns `true` if the sign bit is set (including −0 and NaN with sign).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        (self.0 & SIGN_MASK) != 0
    }

    /// Returns `true` if the value is zero (either sign).
    #[inline]
    pub fn is_zero(self) -> bool {
        (self.0 & !SIGN_MASK) == 0
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub fn abs(self) -> Self {
        F16(self.0 & !SIGN_MASK)
    }

    /// Fused semantics are *not* provided by the DFX MAC tree: each
    /// multiplier and adder rounds individually. `mul_add` here therefore
    /// rounds twice, exactly like the hardware (multiply DSP then adder DSP).
    #[inline]
    pub fn mul_add(self, mul: F16, add: F16) -> Self {
        (self * mul) + add
    }

    /// IEEE 754 `maxNum`: returns the larger value, preferring a number
    /// over NaN. Used by the reduce-max comparator tree in SFU_M.
    pub fn max(self, other: F16) -> Self {
        if self.is_nan() {
            return other;
        }
        if other.is_nan() {
            return self;
        }
        if self.to_f64() >= other.to_f64() {
            self
        } else {
            other
        }
    }

    /// IEEE 754 `minNum` analogue of [`F16::max`].
    pub fn min(self, other: F16) -> Self {
        if self.is_nan() {
            return other;
        }
        if other.is_nan() {
            return self;
        }
        if self.to_f64() <= other.to_f64() {
            self
        } else {
            other
        }
    }

    /// Square root, rounded from the `f64` result.
    pub fn sqrt(self) -> Self {
        F16::from_f64(self.to_f64().sqrt())
    }

    /// Total order on the bit patterns suitable for sorting test vectors:
    /// −NaN < −∞ < … < −0 < +0 < … < +∞ < +NaN.
    pub fn total_cmp(self, other: F16) -> Ordering {
        // Map each bit pattern to a monotone integer key: negative patterns
        // order by descending magnitude, below all non-negative patterns.
        fn key(x: F16) -> i32 {
            if x.0 & SIGN_MASK != 0 {
                -(i32::from(x.0 & !SIGN_MASK)) - 1
            } else {
                i32::from(x.0)
            }
        }
        key(self).cmp(&key(other))
    }
}

impl From<F16> for f32 {
    #[inline]
    fn from(x: F16) -> f32 {
        x.to_f32()
    }
}

impl From<F16> for f64 {
    #[inline]
    fn from(x: F16) -> f64 {
        x.to_f64()
    }
}

impl Add for F16 {
    type Output = F16;
    #[inline]
    fn add(self, rhs: F16) -> F16 {
        F16::from_f64(self.to_f64() + rhs.to_f64())
    }
}

impl Sub for F16 {
    type Output = F16;
    #[inline]
    fn sub(self, rhs: F16) -> F16 {
        F16::from_f64(self.to_f64() - rhs.to_f64())
    }
}

impl Mul for F16 {
    type Output = F16;
    #[inline]
    fn mul(self, rhs: F16) -> F16 {
        F16::from_f64(self.to_f64() * rhs.to_f64())
    }
}

impl Div for F16 {
    type Output = F16;
    #[inline]
    fn div(self, rhs: F16) -> F16 {
        F16::from_f64(self.to_f64() / rhs.to_f64())
    }
}

impl Neg for F16 {
    type Output = F16;
    #[inline]
    fn neg(self) -> F16 {
        F16(self.0 ^ SIGN_MASK)
    }
}

impl AddAssign for F16 {
    #[inline]
    fn add_assign(&mut self, rhs: F16) {
        *self = *self + rhs;
    }
}

impl SubAssign for F16 {
    #[inline]
    fn sub_assign(&mut self, rhs: F16) {
        *self = *self - rhs;
    }
}

impl MulAssign for F16 {
    #[inline]
    fn mul_assign(&mut self, rhs: F16) {
        *self = *self * rhs;
    }
}

impl DivAssign for F16 {
    #[inline]
    fn div_assign(&mut self, rhs: F16) {
        *self = *self / rhs;
    }
}

impl PartialEq for F16 {
    fn eq(&self, other: &F16) -> bool {
        if self.is_nan() || other.is_nan() {
            return false;
        }
        if self.is_zero() && other.is_zero() {
            return true;
        }
        self.0 == other.0
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &F16) -> Option<Ordering> {
        if self.is_nan() || other.is_nan() {
            return None;
        }
        self.to_f64().partial_cmp(&other.to_f64())
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl std::iter::Sum for F16 {
    /// Sequential left-to-right summation. The DFX adder tree uses pairwise
    /// reduction instead — see [`crate::reduce::tree_sum`] — so this is only
    /// appropriate for scalar accumulator semantics (the VPU `accum` op).
    fn sum<I: Iterator<Item = F16>>(iter: I) -> F16 {
        iter.fold(F16::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_ieee_bit_patterns() {
        assert_eq!(F16::ONE.to_bits(), 0x3c00);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 6.103_515_6e-5);
        assert_eq!(F16::MIN_SUBNORMAL.to_f32(), 5.960_464_5e-8);
        assert_eq!(F16::EPSILON.to_f32(), 0.000_976_562_5);
        assert!(F16::NAN.is_nan());
        assert!(F16::INFINITY.is_infinite());
        assert!(!F16::INFINITY.is_nan());
    }

    #[test]
    fn roundtrip_is_identity_for_all_bit_patterns() {
        // Exhaustive: every f16 widens to f32 and narrows back to the same
        // bits (NaNs must stay NaN; payload need not be preserved exactly,
        // but our implementation preserves the top payload bits).
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            let back = F16::from_f32(h.to_f32());
            if h.is_nan() {
                assert!(back.is_nan(), "bits {bits:#06x} lost NaN-ness");
            } else {
                assert_eq!(back.to_bits(), bits, "bits {bits:#06x} failed roundtrip");
            }
        }
    }

    #[test]
    fn widening_matches_reference_for_all_patterns() {
        // Cross-check our bit-level widening against an independent
        // computation via powers of two.
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                continue;
            }
            let sign = if bits & 0x8000 != 0 { -1.0f64 } else { 1.0 };
            let exp = (bits >> 10) & 0x1f;
            let mant = f64::from(bits & 0x3ff);
            let expected = match exp {
                0 => sign * mant * 2f64.powi(-24),
                0x1f => sign * f64::INFINITY,
                e => sign * (1.0 + mant / 1024.0) * 2f64.powi(i32::from(e) - 15),
            };
            assert_eq!(h.to_f64(), expected, "bits {bits:#06x}");
        }
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1 + eps/2 is a tie: rounds to even (1.0).
        let tie = 1.0 + (F16::EPSILON.to_f64() / 2.0);
        assert_eq!(F16::from_f64(tie), F16::ONE);
        // 1 + 1.5*eps is a tie between 1+eps and 1+2eps: rounds to 1+2eps (even).
        let tie2 = 1.0 + 1.5 * F16::EPSILON.to_f64();
        assert_eq!(
            F16::from_f64(tie2).to_bits(),
            F16::ONE.to_bits() + 2,
            "tie must round to even mantissa"
        );
        // Just above the tie rounds up.
        assert_eq!(F16::from_f64(tie + 1e-9).to_bits(), F16::ONE.to_bits() + 1);
    }

    #[test]
    fn overflow_saturates_to_infinity_per_rne() {
        assert_eq!(F16::from_f32(65504.0), F16::MAX);
        // Values below the midpoint to 65536 round to MAX...
        assert_eq!(F16::from_f32(65519.0), F16::MAX);
        // ...the midpoint and beyond round to infinity.
        assert_eq!(F16::from_f32(65520.0), F16::INFINITY);
        assert_eq!(F16::from_f32(1e9), F16::INFINITY);
        assert_eq!(F16::from_f32(-1e9), F16::NEG_INFINITY);
    }

    #[test]
    fn underflow_rounds_to_zero_or_subnormal() {
        let half_min_sub = F16::MIN_SUBNORMAL.to_f64() / 2.0;
        // Exactly half the smallest subnormal ties to even => zero.
        assert!(F16::from_f64(half_min_sub).is_zero());
        // Slightly above rounds up to the smallest subnormal.
        assert_eq!(F16::from_f64(half_min_sub * 1.0001), F16::MIN_SUBNORMAL);
        // Sign is preserved on underflow.
        assert!(F16::from_f64(-half_min_sub).is_sign_negative());
    }

    #[test]
    fn arithmetic_basics() {
        let a = F16::from_f32(1.5);
        let b = F16::from_f32(0.25);
        assert_eq!((a + b).to_f32(), 1.75);
        assert_eq!((a - b).to_f32(), 1.25);
        assert_eq!((a * b).to_f32(), 0.375);
        assert_eq!((a / b).to_f32(), 6.0);
        assert_eq!((-a).to_f32(), -1.5);
    }

    #[test]
    fn addition_is_correctly_rounded_vs_f64() {
        // Catastrophic-looking case: 2048 + 1 is not representable
        // (ULP at 2048 is 2); RNE gives 2048.
        let big = F16::from_f32(2048.0);
        let one = F16::ONE;
        assert_eq!(big + one, big);
        // 2048 + 3 = 2051 is a tie between 2050 (odd mantissa) and 2052
        // (even mantissa); RNE picks 2052.
        let three = F16::from_f32(3.0);
        assert_eq!((big + three).to_f32(), 2052.0);
    }

    #[test]
    fn special_value_propagation() {
        assert!((F16::NAN + F16::ONE).is_nan());
        assert!((F16::INFINITY - F16::INFINITY).is_nan());
        assert_eq!(F16::INFINITY + F16::ONE, F16::INFINITY);
        assert!((F16::ZERO / F16::ZERO).is_nan());
        assert_eq!(F16::ONE / F16::ZERO, F16::INFINITY);
        assert_eq!(F16::NEG_ONE / F16::ZERO, F16::NEG_INFINITY);
    }

    #[test]
    fn signed_zero_semantics() {
        assert_eq!(F16::ZERO, F16::NEG_ZERO);
        assert!(F16::NEG_ZERO.is_sign_negative());
        assert!((F16::NEG_ZERO + F16::ZERO).is_zero());
    }

    #[test]
    fn max_min_prefer_numbers_over_nan() {
        assert_eq!(F16::NAN.max(F16::ONE), F16::ONE);
        assert_eq!(F16::ONE.max(F16::NAN), F16::ONE);
        assert_eq!(F16::ONE.max(F16::NEG_ONE), F16::ONE);
        assert_eq!(F16::ONE.min(F16::NEG_ONE), F16::NEG_ONE);
        assert_eq!(
            F16::NEG_INFINITY.max(F16::MIN),
            F16::MIN,
            "masked -inf loses against any finite score"
        );
    }

    #[test]
    fn total_cmp_orders_negative_before_positive() {
        let mut v = [
            F16::ONE,
            F16::NEG_INFINITY,
            F16::ZERO,
            F16::NEG_ONE,
            F16::INFINITY,
            F16::NEG_ZERO,
        ];
        v.sort_by(|a, b| a.total_cmp(*b));
        let floats: Vec<f32> = v.iter().map(|x| x.to_f32()).collect();
        assert_eq!(
            floats,
            vec![f32::NEG_INFINITY, -1.0, -0.0, 0.0, 1.0, f32::INFINITY]
        );
    }

    #[test]
    fn narrowing_from_f32_matches_narrowing_via_f64_exhaustively() {
        // f32 -> f16 must equal f64 -> f16 for every f32 obtained by
        // widening a half and nudging by one f32 ULP (regression guard on
        // the shared rounding path).
        for bits in (0..=u16::MAX).step_by(7) {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                continue;
            }
            let f = h.to_f32();
            for delta in [-1i32, 0, 1] {
                let nudged = f32::from_bits((f.to_bits() as i32 + delta) as u32);
                if nudged.is_nan() {
                    continue;
                }
                assert_eq!(
                    F16::from_f32(nudged).to_bits(),
                    F16::from_f64(f64::from(nudged)).to_bits(),
                    "f32 {nudged} (from half bits {bits:#06x} delta {delta})"
                );
            }
        }
    }
}

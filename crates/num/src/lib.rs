//! # dfx-num — numerics of the DFX datapath
//!
//! IEEE 754 half precision implemented from scratch, plus the
//! special-function approximations of the DFX compute core (MICRO 2022):
//! the 2048-entry linearly interpolated GELU lookup table, exponential,
//! reciprocal and reciprocal square root, and the adder-tree reduction
//! semantics of the matrix function unit.
//!
//! The whole simulated appliance computes in [`F16`]; `dfx-model`'s golden
//! reference uses the [`Scalar`] abstraction to run the same model in
//! `f32`/`f64` for accuracy comparisons.
//!
//! ```
//! use dfx_num::{F16, reduce};
//!
//! let x: Vec<F16> = (0..64).map(|i| F16::from_f32(i as f32 / 64.0)).collect();
//! let w = vec![F16::from_f32(0.5); 64];
//! let dot = reduce::mac_tree(&x, &w);
//! assert!((dot.to_f32() - 15.75).abs() < 0.1);
//! ```

#![warn(missing_docs)]

mod f16;
pub mod reduce;
mod scalar;
mod sfu;

pub use f16::F16;
pub use scalar::Scalar;
pub use sfu::{
    exp, gelu_exact, recip, recip_sqrt, GeluLut, SfuMath, GELU_LUT_HI, GELU_LUT_LO,
    GELU_LUT_SAMPLES,
};

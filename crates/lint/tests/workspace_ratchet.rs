//! Tier-1 enforcement of the lint ratchet: `cargo test` fails whenever
//! `cargo run -p dfx-lint --release` would, so the baseline is checked
//! even where CI's dedicated lint job doesn't run.

use dfx_lint::{count_by_rule, scan_workspace, Baseline};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
}

#[test]
fn workspace_matches_the_committed_baseline() {
    let root = workspace_root();
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.toml"))
        .expect("lint-baseline.toml is committed at the workspace root");
    let baseline = Baseline::parse(&baseline_text).expect("baseline parses");

    let violations = scan_workspace(root).expect("workspace scan succeeds");
    let counts = count_by_rule(&violations);
    let drift = baseline.drift(&counts);

    if !drift.is_empty() {
        let mut msg = String::from("lint baseline drift:\n");
        for d in &drift {
            let kind = if d.actual > d.expected {
                "NEW DEBT"
            } else {
                "STALE BASELINE (re-run with --write-baseline)"
            };
            msg.push_str(&format!(
                "  {}: {} -> {} {}\n",
                d.rule.slug(),
                d.expected,
                d.actual,
                kind
            ));
        }
        msg.push_str("offending sites:\n");
        for v in violations
            .iter()
            .filter(|v| drift.iter().any(|d| d.rule == v.rule))
        {
            msg.push_str(&format!("  {v}\n"));
        }
        panic!("{msg}");
    }
}

#[test]
fn baseline_carries_no_debt_for_the_determinism_rules() {
    // The ratchet's end state for R1/R2/R4/R5 is already reached: any
    // regression is new debt, not a baseline bump. Only panic-policy
    // still carries legacy sites.
    let root = workspace_root();
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.toml"))
        .expect("lint-baseline.toml is committed at the workspace root");
    let baseline = Baseline::parse(&baseline_text).expect("baseline parses");
    for rule in [
        "nondet-collections",
        "ambient-time",
        "undocumented-unsafe",
        "float-accumulation",
    ] {
        assert_eq!(
            baseline.counts[rule], 0,
            "rule {rule} must stay at a zero baseline"
        );
    }
}

//! The acceptance-criterion self-tests: deliberately-regressive source
//! (fixtures under `tests/fixtures/`, stored as `.rs.txt` so neither
//! cargo nor the workspace walk picks them up) must fail the ratchet
//! when scanned under the paths a real regression would land at.

use dfx_lint::rules::scan_file;
use dfx_lint::{count_by_rule, Baseline, Rule};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn a_naked_unwrap_in_crates_sim_fails_the_ratchet() {
    let src = fixture("naked_unwrap_in_sim.rs.txt");
    let violations = scan_file("crates/sim/src/regression.rs", &src);
    let panics: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == Rule::PanicPolicy)
        .collect();
    assert_eq!(panics.len(), 3, "unwrap + expect + expect: {violations:?}");

    // And the committed baseline rejects the extra debt: simulate the
    // workspace scan having picked these up on top of today's counts.
    let baseline_text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../lint-baseline.toml"
    ))
    .expect("committed baseline");
    let baseline = Baseline::parse(&baseline_text).expect("baseline parses");
    let mut counts = baseline.counts.clone();
    for v in &violations {
        *counts.entry(v.rule.slug().to_string()).or_insert(0) += 1;
    }
    let drift = baseline.drift(&counts);
    assert!(
        drift
            .iter()
            .any(|d| d.rule == Rule::PanicPolicy && d.actual > d.expected),
        "new unwraps must register as new debt"
    );
}

#[test]
fn an_unsorted_hashmap_in_crates_serve_fails_the_ratchet() {
    let src = fixture("hashmap_iteration_in_serve.rs.txt");
    let violations = scan_file("crates/serve/src/regression.rs", &src);
    let counts = count_by_rule(&violations);
    assert!(
        counts.get("nondet-collections").copied().unwrap_or(0) >= 2,
        "the use and the parameter type must both flag: {violations:?}"
    );
    // The unannotated float accumulation over the map's arbitrary
    // iteration order is flagged too — the compound failure mode R1+R5
    // exist to catch.
    assert!(
        counts.get("float-accumulation").copied().unwrap_or(0) >= 1,
        "order-sensitive sum over a HashMap must flag: {violations:?}"
    );

    // nondet-collections has a zero baseline, so any hit is a failure.
    let baseline_text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../lint-baseline.toml"
    ))
    .expect("committed baseline");
    let baseline = Baseline::parse(&baseline_text).expect("baseline parses");
    let drift = baseline.drift(&counts);
    assert!(
        drift
            .iter()
            .any(|d| d.rule == Rule::NondetCollections && d.actual > d.expected),
        "a HashMap in crates/serve must register as new debt"
    );
}

#[test]
fn the_same_sources_are_clean_outside_the_guarded_scopes() {
    // Scope sanity: the fixtures only violate *because of where* they
    // pretend to live. Under tests/ the unwraps are fine; outside the
    // deterministic crates the HashMap is fine.
    let unwraps = fixture("naked_unwrap_in_sim.rs.txt");
    assert!(scan_file("crates/sim/tests/regression.rs", &unwraps).is_empty());
    let hashmap = fixture("hashmap_iteration_in_serve.rs.txt");
    let outside = scan_file("crates/hw/src/regression.rs", &hashmap);
    assert!(
        outside.iter().all(|v| v.rule != Rule::NondetCollections),
        "{outside:?}"
    );
}

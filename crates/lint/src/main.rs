//! `dfx-lint` CLI — the command CI runs.
//!
//! ```text
//! cargo run -p dfx-lint --release                     # ratchet check
//! cargo run -p dfx-lint --release -- --list           # print every violation
//! cargo run -p dfx-lint --release -- --write-baseline # regenerate lint-baseline.toml
//! ```
//!
//! Exit codes: 0 clean, 1 drift from the baseline (new debt or stale
//! baseline), 2 usage/IO error.

use dfx_lint::{count_by_rule, find_root, scan_workspace, Baseline, Rule};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut list = false;
    let mut write = false;
    for arg in &args {
        match arg.as_str() {
            "--list" => list = true,
            "--write-baseline" => write = true,
            other => {
                eprintln!("dfx-lint: unknown argument `{other}`");
                eprintln!("usage: dfx-lint [--list] [--write-baseline]");
                return ExitCode::from(2);
            }
        }
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("dfx-lint: cannot read current dir: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = find_root(&cwd) else {
        eprintln!(
            "dfx-lint: no lint-baseline.toml or Cargo.toml found above {}",
            cwd.display()
        );
        return ExitCode::from(2);
    };

    let violations = match scan_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("dfx-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let counts = count_by_rule(&violations);

    if list {
        for v in &violations {
            println!("{v}");
        }
    }

    let baseline_path = root.join("lint-baseline.toml");
    if write {
        let baseline = Baseline::from_counts(&counts);
        if let Err(e) = std::fs::write(&baseline_path, baseline.render()) {
            eprintln!("dfx-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!("dfx-lint: wrote {}", baseline_path.display());
        for rule in Rule::ALL {
            println!(
                "  {:<22} {}",
                rule.slug(),
                counts.get(rule.slug()).copied().unwrap_or(0)
            );
        }
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("dfx-lint: {e}");
                return ExitCode::from(2);
            }
        },
        Err(e) => {
            eprintln!(
                "dfx-lint: cannot read {} ({e}); run with --write-baseline to create it",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
    };

    let drift = baseline.drift(&counts);
    if drift.is_empty() {
        println!(
            "dfx-lint: clean — {} violation(s) across {} rule(s), all matching the baseline",
            violations.len(),
            Rule::ALL.len()
        );
        return ExitCode::SUCCESS;
    }

    eprintln!("dfx-lint: baseline drift detected:");
    for d in &drift {
        if d.actual > d.expected {
            eprintln!(
                "  {:<22} {} -> {}  NEW DEBT — fix the new sites or annotate them with \
                 `// lint: allow({}, <reason>)`",
                d.rule.slug(),
                d.expected,
                d.actual,
                d.rule.slug()
            );
        } else {
            eprintln!(
                "  {:<22} {} -> {}  STALE BASELINE — cleanups landed; commit the ratchet with \
                 `cargo run -p dfx-lint --release -- --write-baseline`",
                d.rule.slug(),
                d.expected,
                d.actual
            );
        }
    }
    eprintln!("  (use --list to print every violation with file:line positions)");
    ExitCode::FAILURE
}

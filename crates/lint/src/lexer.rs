//! A minimal hand-rolled Rust lexer with line/column tracking.
//!
//! The build environment has no crates registry, so `dfx-lint` cannot
//! lean on `syn` or `proc-macro2` — the same vendored-stand-in
//! discipline as `vendor/proptest`. This lexer implements exactly what
//! the rule engine needs: it splits source text into identifiers,
//! numbers, string/char literals and punctuation, strips comments into
//! a side channel (the rules read `// lint: allow(...)` and
//! `// SAFETY:` annotations from it), and never confuses the word
//! `unwrap` inside a string literal or a comment with a call site.
//!
//! Handled: line comments, *nested* block comments, string literals
//! with escapes, raw strings (`r"…"`, `r#"…"#`, any hash depth), byte
//! and byte-raw strings, char literals vs lifetimes, raw identifiers
//! (`r#type`), numeric literals (hex/octal/binary, floats, exponents,
//! type suffixes) and a greedy multi-character operator set so `+=`
//! and `::` arrive as single tokens.

/// Token category — just enough granularity for the rule engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `HashMap`, `for`, …).
    Ident,
    /// Lifetime (`'a`, `'static`) — distinct so char literals never
    /// alias with them.
    Lifetime,
    /// Numeric literal, suffix included (`0x5EED`, `1.5e-3f64`).
    Number,
    /// String literal of any flavour (escaped, raw, byte).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Punctuation/operator. Multi-character operators (`+=`, `::`,
    /// `..=`, …) are single tokens.
    Punct,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
    pub col: usize,
}

/// One comment (line or block), keyed by the line it starts on. Block
/// comments carry their full multi-line text.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: usize,
}

/// A lexed file: the token stream plus the comment side channel.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so the match is greedy.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "::", "->", "=>",
    "..", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
];

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
}

impl Cursor {
    fn new(src: &str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn starts_with(&self, s: &str) -> bool {
        s.chars().enumerate().all(|(i, c)| self.peek(i) == Some(c))
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Malformed input (an unclosed
/// string, say) never panics: the lexer consumes to end of file and
/// returns what it saw.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);

        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Line comment (also `///` docs and `//!`).
        if cur.starts_with("//") {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.comments.push(Comment { text, line });
            continue;
        }

        // Block comment, nesting tracked.
        if cur.starts_with("/*") {
            let mut text = String::new();
            let mut depth = 0usize;
            while cur.peek(0).is_some() {
                if cur.starts_with("/*") {
                    depth += 1;
                    text.push_str("/*");
                    cur.bump();
                    cur.bump();
                } else if cur.starts_with("*/") {
                    depth -= 1;
                    text.push_str("*/");
                    cur.bump();
                    cur.bump();
                    if depth == 0 {
                        break;
                    }
                } else if let Some(ch) = cur.bump() {
                    text.push(ch);
                }
            }
            out.comments.push(Comment { text, line });
            continue;
        }

        // Raw strings and byte strings: r"…", r#"…"#, b"…", br#"…"#.
        if c == 'r' || c == 'b' {
            if let Some(text) = try_lex_string_like(&mut cur) {
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                    col,
                });
                continue;
            }
            // Raw identifier r#type.
            if c == 'r' && cur.peek(1) == Some('#') && cur.peek(2).is_some_and(is_ident_start) {
                let mut text = String::new();
                text.push(cur.bump().unwrap_or('r'));
                text.push(cur.bump().unwrap_or('#'));
                while cur.peek(0).is_some_and(is_ident_continue) {
                    if let Some(ch) = cur.bump() {
                        text.push(ch);
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                    col,
                });
                continue;
            }
            // Byte char b'x'.
            if c == 'b' && cur.peek(1) == Some('\'') {
                cur.bump(); // b
                let text = lex_char_body(&mut cur);
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text,
                    line,
                    col,
                });
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }

        if is_ident_start(c) {
            let mut text = String::new();
            while cur.peek(0).is_some_and(is_ident_continue) {
                if let Some(ch) = cur.bump() {
                    text.push(ch);
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }

        if c.is_ascii_digit() {
            let text = lex_number(&mut cur);
            out.toks.push(Tok {
                kind: TokKind::Number,
                text,
                line,
                col,
            });
            continue;
        }

        // Plain string literal.
        if c == '"' {
            let text = lex_quoted(&mut cur, '"');
            out.toks.push(Tok {
                kind: TokKind::Str,
                text,
                line,
                col,
            });
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            // `'a` followed by anything but a closing quote is a
            // lifetime; `'a'`, `'\n'`, `'('` are char literals.
            let next = cur.peek(1);
            let is_lifetime = next.is_some_and(is_ident_start) && {
                // Scan the identifier run after the quote; a trailing
                // quote makes it a char literal instead.
                let mut i = 2;
                while cur.peek(i).is_some_and(is_ident_continue) {
                    i += 1;
                }
                cur.peek(i) != Some('\'')
            };
            if is_lifetime {
                let mut text = String::new();
                text.push(cur.bump().unwrap_or('\''));
                while cur.peek(0).is_some_and(is_ident_continue) {
                    if let Some(ch) = cur.bump() {
                        text.push(ch);
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                    col,
                });
            } else {
                let text = lex_char_body(&mut cur);
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text,
                    line,
                    col,
                });
            }
            continue;
        }

        // Multi-character operators, greedy.
        if let Some(op) = OPERATORS.iter().find(|op| cur.starts_with(op)) {
            for _ in 0..op.len() {
                cur.bump();
            }
            out.toks.push(Tok {
                kind: TokKind::Punct,
                text: (*op).to_string(),
                line,
                col,
            });
            continue;
        }

        // Single punctuation character.
        if let Some(ch) = cur.bump() {
            out.toks.push(Tok {
                kind: TokKind::Punct,
                text: ch.to_string(),
                line,
                col,
            });
        }
    }

    out
}

/// Attempts to lex a raw/byte string starting at the cursor (`r"`,
/// `r#"`, `b"`, `br"`, `br#"`). Returns `None` (cursor untouched) when
/// the prefix does not introduce a string.
fn try_lex_string_like(cur: &mut Cursor) -> Option<String> {
    let mut i = 0;
    if cur.peek(i) == Some('b') {
        i += 1;
    }
    let raw = cur.peek(i) == Some('r');
    if raw {
        i += 1;
    }
    let mut hashes = 0usize;
    while cur.peek(i + hashes) == Some('#') {
        hashes += 1;
    }
    if hashes > 0 && !raw {
        return None;
    }
    if cur.peek(i + hashes) != Some('"') {
        return None;
    }
    // Commit: consume the prefix and the opening quote.
    let mut text = String::new();
    for _ in 0..(i + hashes + 1) {
        if let Some(ch) = cur.bump() {
            text.push(ch);
        }
    }
    if raw {
        // Raw string: ends at `"` followed by `hashes` hashes.
        loop {
            match cur.peek(0) {
                None => break,
                Some('"') => {
                    let closes = (0..hashes).all(|h| cur.peek(1 + h) == Some('#'));
                    if let Some(ch) = cur.bump() {
                        text.push(ch);
                    }
                    if closes {
                        for _ in 0..hashes {
                            if let Some(ch) = cur.bump() {
                                text.push(ch);
                            }
                        }
                        break;
                    }
                }
                Some(_) => {
                    if let Some(ch) = cur.bump() {
                        text.push(ch);
                    }
                }
            }
        }
        Some(text)
    } else {
        // Escaped string body; the opening quote is already consumed.
        text.push_str(&lex_quoted_body(cur, '"'));
        Some(text)
    }
}

/// Lexes a quoted literal whose opening delimiter is at the cursor.
fn lex_quoted(cur: &mut Cursor, delim: char) -> String {
    let mut text = String::new();
    if let Some(ch) = cur.bump() {
        text.push(ch); // opening delimiter
    }
    text.push_str(&lex_quoted_body(cur, delim));
    text
}

/// Consumes an escaped literal body up to and including the closing
/// delimiter.
fn lex_quoted_body(cur: &mut Cursor, delim: char) -> String {
    let mut text = String::new();
    while let Some(ch) = cur.bump() {
        text.push(ch);
        if ch == '\\' {
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            continue;
        }
        if ch == delim {
            break;
        }
    }
    text
}

/// Lexes a char literal whose opening `'` is at the cursor.
fn lex_char_body(cur: &mut Cursor) -> String {
    lex_quoted(cur, '\'')
}

/// Lexes a numeric literal whose first digit is at the cursor: integer
/// or float, any radix, exponent and type suffix included. Never eats
/// the `..` of a range (`0..n`) or a method call on an integer
/// (`1.max(2)`).
fn lex_number(cur: &mut Cursor) -> String {
    let mut text = String::new();
    let radix_prefixed =
        cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
    if radix_prefixed {
        // 0x/0o/0b: digits, underscores and (hex) letters, then a
        // possible suffix — one alphanumeric run covers both.
        while cur.peek(0).is_some_and(is_ident_continue) {
            if let Some(ch) = cur.bump() {
                text.push(ch);
            }
        }
        return text;
    }
    let digits = |cur: &mut Cursor, text: &mut String| {
        while cur
            .peek(0)
            .is_some_and(|ch| ch.is_ascii_digit() || ch == '_')
        {
            if let Some(ch) = cur.bump() {
                text.push(ch);
            }
        }
    };
    digits(cur, &mut text);
    // Fraction: only when `.` is followed by a digit (not `..`, not a
    // method call).
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|ch| ch.is_ascii_digit()) {
        if let Some(ch) = cur.bump() {
            text.push(ch);
        }
        digits(cur, &mut text);
    }
    // Exponent: e/E with an optional sign and at least one digit.
    if matches!(cur.peek(0), Some('e' | 'E')) {
        let sign = matches!(cur.peek(1), Some('+' | '-'));
        let digit_at = if sign { 2 } else { 1 };
        if cur.peek(digit_at).is_some_and(|ch| ch.is_ascii_digit()) {
            if let Some(ch) = cur.bump() {
                text.push(ch);
            }
            if sign {
                if let Some(ch) = cur.bump() {
                    text.push(ch);
                }
            }
            digits(cur, &mut text);
        }
    }
    // Type suffix (f64, u32, usize, …).
    while cur.peek(0).is_some_and(is_ident_continue) {
        if let Some(ch) = cur.bump() {
            text.push(ch);
        }
    }
    text
}

/// Whether a [`TokKind::Number`] literal denotes a float (`1.5`,
/// `1e-9`, `2f64`) rather than an integer.
pub fn is_float_literal(text: &str) -> bool {
    let radix_prefixed = text.starts_with("0x")
        || text.starts_with("0X")
        || text.starts_with("0b")
        || text.starts_with("0B")
        || text.starts_with("0o")
        || text.starts_with("0O");
    if radix_prefixed {
        return false;
    }
    // Integer suffixes contain letters ('usize' even contains an 'e');
    // strip any suffix before looking for a fraction or exponent.
    const INT_SUFFIXES: [&str; 12] = [
        "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
    ];
    if INT_SUFFIXES.iter().any(|s| text.ends_with(s)) {
        return false;
    }
    text.contains('.')
        || text.contains('e')
        || text.contains('E')
        || text.ends_with("f32")
        || text.ends_with("f64")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents_from_the_token_stream() {
        let src = r###"
            // unwrap in a comment
            /* HashMap in /* a nested */ block comment */
            let s = "unwrap() and HashMap";
            let r = r#"thread_rng "quoted" inside"#;
            let c = 'x';
            real_ident();
        "###;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "let", "r", "let", "c", "real_ident"]);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("unwrap"));
        assert!(lexed.comments[1].text.contains("nested"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'b' }").toks;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'b'");
    }

    #[test]
    fn numbers_ranges_and_method_calls_disambiguate() {
        let toks = lex("for i in 0..n { x += 1.5e-3; y = 0x5EED; z = 1.max(2); }").toks;
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "1.5e-3", "0x5EED", "1", "2"]);
        assert!(is_float_literal("1.5e-3"));
        assert!(is_float_literal("2f64"));
        assert!(!is_float_literal("0x5EED"));
        assert!(!is_float_literal("42"));
        assert!(toks
            .iter()
            .any(|t| t.text == "+=" && t.kind == TokKind::Punct));
        assert!(toks
            .iter()
            .any(|t| t.text == ".." && t.kind == TokKind::Punct));
    }

    #[test]
    fn positions_are_one_based_lines_and_columns() {
        let toks = lex("a\n  bc\n").toks;
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn raw_identifiers_and_escaped_quotes_survive() {
        let toks = lex(r#"let r#type = "a \" b"; escaped_ok();"#).toks;
        assert!(toks.iter().any(|t| t.text == "r#type"));
        assert!(toks.iter().any(|t| t.text == "escaped_ok"));
    }
}

//! `dfx-lint`: workspace determinism & panic-safety analyzer.
//!
//! The DFX reproduction's core claim is that the serving simulator is
//! *deterministic*: identical seeds produce bit-identical
//! `ServiceReport`s, paged and reserved K/V paths match exactly, and
//! sweeps reproduce across machines. The test suite pins this
//! run-by-run; this crate pins it at the source level, with no
//! third-party dependencies (there is no registry access, so `syn` and
//! clippy plugins are off the table — the lexer in [`lexer`] is
//! hand-rolled).
//!
//! Five rules (see [`rules::Rule`]) walk every workspace `.rs` file.
//! Findings are compared against the committed `lint-baseline.toml`
//! ([`baseline::Baseline`]): counts may never rise, and when cleanups
//! push them down the baseline must be rewritten — a one-way ratchet.
//!
//! Run it as `cargo run -p dfx-lint --release` (what CI does) or let
//! the `workspace_ratchet` integration test cover it under tier-1
//! `cargo test`.

pub mod baseline;
pub mod lexer;
pub mod rules;

pub use baseline::{Baseline, Drift};
pub use rules::{Rule, Violation};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Directories never walked: build output, vendored stand-in crates
/// (external idiom, not ours to lint), and test fixture corpora
/// (deliberately-violating sources scanned only by the self-tests).
const SKIP_DIRS: [&str; 4] = ["target", "vendor", "fixtures", ".git"];

/// Top-level entries walked from the workspace root. Everything a
/// `cargo build`/`cargo test` compiles lives under these.
const ROOTS: [&str; 4] = ["src", "crates", "tests", "examples"];

/// Scans the workspace rooted at `root`. Returns violations ordered by
/// (file, line, col); unreadable files are reported as errors rather
/// than silently skipped (a lint that can't read a file must not claim
/// the file is clean).
pub fn scan_workspace(root: &Path) -> Result<Vec<Violation>, String> {
    let mut files = Vec::new();
    for top in ROOTS {
        collect_rs_files(&root.join(top), &mut files);
    }
    files.sort();
    let mut violations = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        violations.extend(rules::scan_file(&rel, &src));
    }
    Ok(violations)
}

/// Per-rule counts for a violation list — the shape the baseline
/// compares against.
pub fn count_by_rule(violations: &[Violation]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for v in violations {
        *counts.entry(v.rule.slug().to_string()).or_insert(0) += 1;
    }
    counts
}

/// Recursively collects `.rs` files under `dir`, skipping
/// [`SKIP_DIRS`]. Entries are read in sorted order so the walk (and
/// with it every report) is itself deterministic.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !SKIP_DIRS.contains(&name) {
                collect_rs_files(&path, out);
            }
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// Locates the workspace root by walking up from `start` until a
/// directory containing `lint-baseline.toml` (preferred) or a
/// workspace `Cargo.toml` is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    let mut cargo_fallback = None;
    while let Some(dir) = cur {
        if dir.join("lint-baseline.toml").is_file() {
            return Some(dir);
        }
        if cargo_fallback.is_none() && dir.join("Cargo.toml").is_file() {
            cargo_fallback = Some(dir.clone());
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    cargo_fallback
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_aggregate_per_rule() {
        let vs = rules::scan_file(
            "crates/sim/src/x.rs",
            "use std::collections::HashMap;\nfn f() { x.unwrap(); y.unwrap(); }\n",
        );
        let counts = count_by_rule(&vs);
        assert_eq!(counts["nondet-collections"], 1);
        assert_eq!(counts["panic-policy"], 2);
    }
}

//! The rule catalog and the per-file scanner.
//!
//! Five rules guard the properties the test suite can only pin
//! run-by-run: the `ServingEngine` is a *deterministic* discrete-event
//! simulator and seeded sweeps must reproduce bit-for-bit, so the
//! source level must not smuggle in iteration-order randomness, wall
//! clocks, ambient RNGs, or unannotated panics. Each rule can be
//! suppressed per site with a `// lint: allow(<rule>, <reason>)`
//! comment on the offending line or the line directly above it (R5
//! also accepts the shorthand `// lint: order-sensitive`); everything
//! else is counted against the committed [`Baseline`](crate::Baseline).

use crate::lexer::{is_float_literal, lex, Comment, Tok, TokKind};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// The rule catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: `HashMap`/`HashSet` in the deterministic crates
    /// (`sim`/`serve`/`bench`). Their per-process-randomized iteration
    /// order is exactly the nondeterminism the engine promises not to
    /// have; use `BTreeMap`/`BTreeSet` or explicitly sorted iteration.
    NondetCollections,
    /// R2: wall clocks and ambient randomness (`Instant`, `SystemTime`,
    /// `thread_rng`) anywhere in the workspace. All time is simulated
    /// and all randomness flows from seeded `ArrivalProcess` plumbing.
    AmbientTime,
    /// R3: `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
    /// `unimplemented!` in library code. Return a typed
    /// [`SimError`](../dfx_sim/enum.SimError.html) instead, or annotate
    /// why the panic is unreachable. Test modules, integration tests,
    /// examples, benches and binaries are exempt.
    PanicPolicy,
    /// R4: every `unsafe` keyword needs a `// SAFETY:` comment on the
    /// same line or within the three lines above it.
    UndocumentedUnsafe,
    /// R5: `+=` on a float inside a loop body, or an explicit
    /// `.sum::<f32/f64>()`, in the timing-critical modules
    /// (`sim`/`serve`/`core` library code). Float accumulation order is
    /// observable in the reports; acknowledge it with
    /// `// lint: order-sensitive` where the order is pinned by
    /// construction.
    FloatAccumulation,
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: [Rule; 5] = [
        Rule::NondetCollections,
        Rule::AmbientTime,
        Rule::PanicPolicy,
        Rule::UndocumentedUnsafe,
        Rule::FloatAccumulation,
    ];

    /// Stable kebab-case name — the key in `lint-baseline.toml` and in
    /// `// lint: allow(<rule>, <reason>)` annotations.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::NondetCollections => "nondet-collections",
            Rule::AmbientTime => "ambient-time",
            Rule::PanicPolicy => "panic-policy",
            Rule::UndocumentedUnsafe => "undocumented-unsafe",
            Rule::FloatAccumulation => "float-accumulation",
        }
    }

    /// One-line description for reports.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::NondetCollections => {
                "HashMap/HashSet in a deterministic crate (sim/serve/bench): iteration order is \
                 randomized per process — use BTreeMap/BTreeSet or sorted iteration"
            }
            Rule::AmbientTime => {
                "wall clock or ambient randomness (Instant/SystemTime/thread_rng): all time is \
                 simulated, all randomness is seeded"
            }
            Rule::PanicPolicy => {
                "unwrap/expect/panic! in library code: return a typed SimError or annotate why \
                 the panic is unreachable"
            }
            Rule::UndocumentedUnsafe => "unsafe without a // SAFETY: comment",
            Rule::FloatAccumulation => {
                "float accumulation in a loop body of a timing-critical module: summation order \
                 is observable — acknowledge with // lint: order-sensitive"
            }
        }
    }

    /// Parses a slug back into a rule.
    pub fn from_slug(slug: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.slug() == slug)
    }
}

/// One finding: a rule, a workspace-relative file, a 1-based position
/// and the offending source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: Rule,
    pub file: String,
    pub line: usize,
    pub col: usize,
    pub excerpt: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file,
            self.line,
            self.col,
            self.rule.slug(),
            self.excerpt.trim()
        )
    }
}

/// Which rules apply to a file, derived from its workspace-relative
/// path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileScope {
    /// Inside `crates/sim`, `crates/serve` or `crates/bench`: the
    /// crates whose behaviour must be bit-reproducible (R1).
    pub deterministic_crate: bool,
    /// Library code: not under `tests/`, `examples/`, `benches/` or a
    /// `bin/` target (R3's exemptions).
    pub library_code: bool,
    /// Timing-critical library sources: `crates/{sim,serve,core}/src`
    /// (R5's scope).
    pub timing_critical: bool,
}

impl FileScope {
    /// Scope for a workspace-relative path (`/`-separated).
    pub fn for_path(path: &str) -> FileScope {
        let p = path.replace('\\', "/");
        let deterministic_crate = ["crates/sim/", "crates/serve/", "crates/bench/"]
            .iter()
            .any(|pre| p.starts_with(pre));
        let library_code = !(p.contains("/tests/")
            || p.contains("/examples/")
            || p.contains("/benches/")
            || p.contains("/bin/")
            || p.starts_with("tests/")
            || p.starts_with("examples/"));
        let timing_critical = ["crates/sim/src/", "crates/serve/src/", "crates/core/src/"]
            .iter()
            .any(|pre| p.starts_with(pre));
        FileScope {
            deterministic_crate,
            library_code,
            timing_critical,
        }
    }
}

/// Scans one file. `path` decides the scope (see [`FileScope`]); `src`
/// is the file's text. Returned violations are ordered by position.
pub fn scan_file(path: &str, src: &str) -> Vec<Violation> {
    let scope = FileScope::for_path(path);
    let lexed = lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let excerpt = |line: usize| -> String {
        lines
            .get(line.saturating_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };
    let allows = AllowIndex::new(&lexed.comments);
    let test_spans = cfg_test_spans(&lexed.toks);
    let in_test_code = |line: usize| test_spans.iter().any(|&(a, b)| (a..=b).contains(&line));

    let mut out = Vec::new();
    let mut push = |rule: Rule, tok: &Tok| {
        if !allows.allowed(rule, tok.line) {
            out.push(Violation {
                rule,
                file: path.to_string(),
                line: tok.line,
                col: tok.col,
                excerpt: excerpt(tok.line),
            });
        }
    };

    let toks = &lexed.toks;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Ident {
            continue;
        }
        let prev = i.checked_sub(1).map(|j| &toks[j]);
        let next = toks.get(i + 1);
        let next_is = |s: &str| next.is_some_and(|t| t.kind == TokKind::Punct && t.text == s);
        let prev_is = |s: &str| prev.is_some_and(|t| t.kind == TokKind::Punct && t.text == s);

        // R1 — nondeterministic collections in deterministic crates.
        if scope.deterministic_crate && matches!(tok.text.as_str(), "HashMap" | "HashSet") {
            push(Rule::NondetCollections, tok);
        }

        // R2 — wall clock and ambient randomness, workspace-wide.
        if matches!(tok.text.as_str(), "Instant" | "SystemTime" | "thread_rng") {
            push(Rule::AmbientTime, tok);
        }

        // R3 — panic sites in library code.
        if scope.library_code && !in_test_code(tok.line) {
            let method_panic =
                matches!(tok.text.as_str(), "unwrap" | "expect") && prev_is(".") && next_is("(");
            let macro_panic = matches!(
                tok.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            ) && next_is("!");
            if method_panic || macro_panic {
                push(Rule::PanicPolicy, tok);
            }
        }

        // R4 — undocumented unsafe, workspace-wide.
        if tok.text == "unsafe" && !allows.safety_documented(tok.line) {
            push(Rule::UndocumentedUnsafe, tok);
        }
    }

    if scope.timing_critical {
        scan_float_accumulation(path, toks, &allows, &in_test_code, &excerpt, &mut out);
    }

    out.sort_by_key(|v| (v.line, v.col));
    out
}

/// R5: `+=` on a float-typed identifier inside a loop body, and
/// explicit `.sum::<f32/f64>()` calls (an iterator sum *is* a loop).
///
/// Float-typed identifiers are inferred lexically, per file:
/// `let [mut] name: f32/f64`, `let [mut] name = <expr containing a
/// float literal>`, and `name: f32/f64` field/parameter declarations.
/// Tuple bindings are not tracked — the heuristic prefers missing a
/// site over flagging an integer accumulator.
fn scan_float_accumulation(
    path: &str,
    toks: &[Tok],
    allows: &AllowIndex,
    in_test_code: &dyn Fn(usize) -> bool,
    excerpt: &dyn Fn(usize) -> String,
    out: &mut Vec<Violation>,
) {
    let float_idents = collect_float_idents(toks);

    // Loop depth per token: a `{` opened after `for`/`while`/`loop`
    // (before any `;` or `{`) starts a loop body.
    let mut loop_depth_at = vec![0usize; toks.len()];
    let mut stack: Vec<bool> = Vec::new();
    let mut pending_loop = false;
    let mut depth = 0usize;
    for (i, tok) in toks.iter().enumerate() {
        loop_depth_at[i] = depth;
        match (tok.kind, tok.text.as_str()) {
            (TokKind::Ident, "for" | "while" | "loop") => pending_loop = true,
            (TokKind::Punct, ";") => pending_loop = false,
            (TokKind::Punct, "{") => {
                stack.push(pending_loop);
                if pending_loop {
                    depth += 1;
                }
                pending_loop = false;
            }
            (TokKind::Punct, "}") if stack.pop().unwrap_or(false) => {
                depth = depth.saturating_sub(1);
            }
            _ => {}
        }
    }

    let mut push = |tok: &Tok| {
        if !allows.allowed(Rule::FloatAccumulation, tok.line) && !in_test_code(tok.line) {
            out.push(Violation {
                rule: Rule::FloatAccumulation,
                file: path.to_string(),
                line: tok.line,
                col: tok.col,
                excerpt: excerpt(tok.line),
            });
        }
    };

    for (i, tok) in toks.iter().enumerate() {
        // `.sum::<f64>()` / `.sum::<f32>()`.
        if tok.kind == TokKind::Ident && tok.text == "sum" {
            let turbofish_float = toks.get(i + 1).is_some_and(|t| t.text == "::")
                && toks.get(i + 2).is_some_and(|t| t.text == "<")
                && toks
                    .get(i + 3)
                    .is_some_and(|t| matches!(t.text.as_str(), "f32" | "f64"));
            let method = i > 0 && toks[i - 1].text == ".";
            if method && turbofish_float {
                push(tok);
            }
            continue;
        }
        // Float `+=` inside a loop body.
        if tok.kind == TokKind::Punct && tok.text == "+=" && loop_depth_at[i] > 0 {
            if let Some(base) = assign_target_ident(toks, i) {
                if float_idents.contains(&base) {
                    push(tok);
                }
            }
        }
    }
}

/// The identifier a `+=` at token index `i` assigns to: walks back over
/// balanced `[...]`/`(...)` index and call groups to the field or
/// variable name (`busy[server] +=` → `busy`,
/// `run.rel_ms +=` → `rel_ms`).
fn assign_target_ident(toks: &[Tok], i: usize) -> Option<String> {
    let mut j = i;
    loop {
        j = j.checked_sub(1)?;
        match (toks[j].kind, toks[j].text.as_str()) {
            (TokKind::Punct, "]" | ")") => {
                let open = if toks[j].text == "]" { "[" } else { "(" };
                let close = toks[j].text.clone();
                let mut depth = 1usize;
                while depth > 0 {
                    j = j.checked_sub(1)?;
                    if toks[j].kind == TokKind::Punct {
                        if toks[j].text == close {
                            depth += 1;
                        } else if toks[j].text == open {
                            depth -= 1;
                        }
                    }
                }
            }
            (TokKind::Ident, _) => return Some(toks[j].text.clone()),
            _ => return None,
        }
    }
}

/// Lexically infers the float-typed identifiers of one file (see
/// [`scan_float_accumulation`]).
fn collect_float_idents(toks: &[Tok]) -> BTreeSet<String> {
    let mut floats = BTreeSet::new();
    let is_float_ty =
        |t: &Tok| t.kind == TokKind::Ident && matches!(t.text.as_str(), "f32" | "f64");
    for (i, tok) in toks.iter().enumerate() {
        // `name: f32/f64` — struct fields, parameters, typed lets.
        if tok.kind == TokKind::Ident && toks.get(i + 1).is_some_and(|t| t.text == ":") {
            let mut j = i + 2;
            // Skip reference sigils (`&`, `&mut`, lifetimes).
            while toks
                .get(j)
                .is_some_and(|t| t.text == "&" || t.text == "mut" || t.kind == TokKind::Lifetime)
            {
                j += 1;
            }
            if toks.get(j).is_some_and(is_float_ty) {
                floats.insert(tok.text.clone());
            }
        }
        // `let [mut] name = <expr with a float literal>;`
        if tok.kind == TokKind::Ident && tok.text == "let" {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.text == "mut") {
                j += 1;
            }
            let Some(name) = toks.get(j).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            if toks.get(j + 1).is_none_or(|t| t.text != "=") {
                continue;
            }
            let mut k = j + 2;
            while let Some(t) = toks.get(k) {
                if t.kind == TokKind::Punct && t.text == ";" {
                    break;
                }
                let floaty =
                    (t.kind == TokKind::Number && is_float_literal(&t.text)) || is_float_ty(t);
                if floaty {
                    floats.insert(name.text.clone());
                    break;
                }
                k += 1;
            }
        }
    }
    floats
}

/// Per-line index of `// lint: allow(...)` / `// lint: order-sensitive`
/// / `// SAFETY:` annotations. An annotation suppresses findings on its
/// own line and the line directly below it (`SAFETY:` reaches three
/// lines down, so a comment block above an `unsafe` fn still counts).
struct AllowIndex {
    /// line → slugs allowed there.
    allows: BTreeMap<usize, Vec<String>>,
    /// Lines carrying a `SAFETY:` comment.
    safety: BTreeSet<usize>,
}

impl AllowIndex {
    fn new(comments: &[Comment]) -> AllowIndex {
        let mut allows: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        let mut safety = BTreeSet::new();
        for c in comments {
            if c.text.contains("SAFETY:") {
                safety.insert(c.line);
            }
            let Some(rest) = c.text.split("lint:").nth(1) else {
                continue;
            };
            let rest = rest.trim_start();
            if rest.starts_with("order-sensitive") {
                allows
                    .entry(c.line)
                    .or_default()
                    .push(Rule::FloatAccumulation.slug().to_string());
            }
            if let Some(args) = rest.strip_prefix("allow(") {
                if let Some(inner) = args.split(')').next() {
                    let slug = inner.split(',').next().unwrap_or("").trim();
                    allows.entry(c.line).or_default().push(slug.to_string());
                }
            }
        }
        AllowIndex { allows, safety }
    }

    fn allowed(&self, rule: Rule, line: usize) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.allows
                .get(l)
                .is_some_and(|slugs| slugs.iter().any(|s| s == rule.slug()))
        })
    }

    fn safety_documented(&self, line: usize) -> bool {
        (line.saturating_sub(3)..=line).any(|l| self.safety.contains(&l))
    }
}

/// Line spans (inclusive) of `#[cfg(test)] mod … { … }` blocks: R3 and
/// R5 exempt them, matching the policy that tests may panic freely.
fn cfg_test_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let is_cfg_test = toks[i].text == "#"
            && toks.get(i + 1).is_some_and(|t| t.text == "[")
            && toks.get(i + 2).is_some_and(|t| t.text == "cfg")
            && toks.get(i + 3).is_some_and(|t| t.text == "(")
            && toks.get(i + 4).is_some_and(|t| t.text == "test")
            && toks.get(i + 5).is_some_and(|t| t.text == ")")
            && toks.get(i + 6).is_some_and(|t| t.text == "]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let mut j = i + 7;
        // Skip further attributes between the cfg and the item.
        while toks.get(j).is_some_and(|t| t.text == "#")
            && toks.get(j + 1).is_some_and(|t| t.text == "[")
        {
            let mut depth = 0usize;
            j += 1;
            while let Some(t) = toks.get(j) {
                if t.text == "[" {
                    depth += 1;
                } else if t.text == "]" {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Only `mod` items open an exempt span; a cfg(test) on a lone
        // item (a use, a helper fn) is rare and stays in scope.
        if toks.get(j).is_none_or(|t| t.text != "mod") {
            i += 1;
            continue;
        }
        // mod <name> { … } — brace-match to the end of the module.
        while let Some(t) = toks.get(j) {
            if t.text == "{" {
                break;
            }
            j += 1;
        }
        let start_line = toks[i].line;
        let mut depth = 0usize;
        let mut end_line = start_line;
        while let Some(t) = toks.get(j) {
            if t.text == "{" {
                depth += 1;
            } else if t.text == "}" {
                depth -= 1;
                if depth == 0 {
                    end_line = t.line;
                    j += 1;
                    break;
                }
            }
            end_line = t.line;
            j += 1;
        }
        spans.push((start_line, end_line));
        i = j;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(path: &str, src: &str) -> Vec<Rule> {
        scan_file(path, src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn hashmap_fires_only_in_deterministic_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            rules_hit("crates/sim/src/x.rs", src),
            vec![Rule::NondetCollections]
        );
        assert_eq!(rules_hit("crates/hw/src/x.rs", src), vec![]);
    }

    #[test]
    fn allow_annotations_suppress_on_the_same_or_previous_line() {
        let same =
            "use std::collections::HashMap; // lint: allow(nondet-collections, lookup-only)\n";
        assert_eq!(rules_hit("crates/serve/src/x.rs", same), vec![]);
        let above =
            "// lint: allow(nondet-collections, lookup-only)\nuse std::collections::HashMap;\n";
        assert_eq!(rules_hit("crates/serve/src/x.rs", above), vec![]);
        let wrong_rule = "// lint: allow(ambient-time, nope)\nuse std::collections::HashMap;\n";
        assert_eq!(
            rules_hit("crates/serve/src/x.rs", wrong_rule),
            vec![Rule::NondetCollections]
        );
    }

    #[test]
    fn panic_policy_exempts_tests_examples_and_cfg_test_modules() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(
            rules_hit("crates/sim/src/x.rs", src),
            vec![Rule::PanicPolicy]
        );
        assert_eq!(rules_hit("tests/x.rs", src), vec![]);
        assert_eq!(rules_hit("examples/x.rs", src), vec![]);
        assert_eq!(rules_hit("crates/bench/src/bin/x.rs", src), vec![]);
        let with_tests = "fn f() -> Option<()> { None }\n\
                          #[cfg(test)]\nmod tests {\n    fn g() { f().unwrap(); }\n}\n";
        assert_eq!(rules_hit("crates/sim/src/x.rs", with_tests), vec![]);
    }

    #[test]
    fn macro_panics_are_flagged_and_annotations_clear_them() {
        let src = "fn f() { panic!(\"boom\"); }\n";
        assert_eq!(
            rules_hit("crates/core/src/x.rs", src),
            vec![Rule::PanicPolicy]
        );
        let ok = "fn f() {\n    // lint: allow(panic-policy, invariant pinned by tests)\n    panic!(\"boom\");\n}\n";
        assert_eq!(rules_hit("crates/core/src/x.rs", ok), vec![]);
    }

    #[test]
    fn unsafe_requires_a_nearby_safety_comment() {
        let bad = "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        assert_eq!(
            rules_hit("crates/num/src/x.rs", bad),
            vec![Rule::UndocumentedUnsafe]
        );
        let good = "fn f() {\n    // SAFETY: guarded by the bounds check above.\n    unsafe { do_it() }\n}\n";
        assert_eq!(rules_hit("crates/num/src/x.rs", good), vec![]);
    }

    #[test]
    fn float_accumulation_fires_in_loops_of_timing_critical_modules() {
        let src = "fn f() {\n    let mut total = 0.0f64;\n    for x in xs {\n        total += x;\n    }\n}\n";
        assert_eq!(
            rules_hit("crates/sim/src/x.rs", src),
            vec![Rule::FloatAccumulation]
        );
        // Same code outside the timing-critical scope: silent.
        assert_eq!(rules_hit("crates/isa/src/x.rs", src), vec![]);
        // Integer accumulators in loops: silent.
        let int =
            "fn f() {\n    let mut n = 0usize;\n    for x in xs {\n        n += x;\n    }\n}\n";
        assert_eq!(rules_hit("crates/sim/src/x.rs", int), vec![]);
        // Outside a loop: silent (no accumulation order to observe).
        let flat = "fn f() {\n    let mut t = 0.0;\n    t += 1.0;\n}\n";
        assert_eq!(rules_hit("crates/sim/src/x.rs", flat), vec![]);
    }

    #[test]
    fn order_sensitive_shorthand_acknowledges_float_accumulation() {
        let src = "fn f(ms: f64) {\n    let mut total = 0.0f64;\n    while go() {\n        // lint: order-sensitive — epoch-relative by design\n        total += ms;\n    }\n    let s = xs.iter().sum::<f64>(); // lint: order-sensitive\n}\n";
        assert_eq!(rules_hit("crates/serve/src/x.rs", src), vec![]);
    }

    #[test]
    fn typed_sums_are_flagged_in_scope() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n";
        assert_eq!(
            rules_hit("crates/serve/src/x.rs", src),
            vec![Rule::FloatAccumulation]
        );
        // Integer sums are fine.
        let int = "fn f(xs: &[usize]) -> usize { xs.iter().sum::<usize>() }\n";
        assert_eq!(rules_hit("crates/serve/src/x.rs", int), vec![]);
    }

    #[test]
    fn indexed_and_field_targets_resolve_to_their_base_identifier() {
        let src = "struct R { rel_ms: f64 }\nfn f(r: &mut R, busy: &mut [f64], ev: f64) {\n    let mut busy_ms = vec![0.0f64; 4];\n    loop {\n        busy_ms[0] += ev;\n        r.rel_ms += ev;\n    }\n}\n";
        let hits = rules_hit("crates/serve/src/x.rs", src);
        assert_eq!(hits, vec![Rule::FloatAccumulation, Rule::FloatAccumulation]);
    }

    #[test]
    fn ambient_time_fires_everywhere() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(
            rules_hit("crates/hw/src/x.rs", src),
            vec![Rule::AmbientTime]
        );
        assert_eq!(rules_hit("tests/x.rs", src), vec![Rule::AmbientTime]);
    }

    #[test]
    fn strings_and_comments_never_trip_rules() {
        let src = "fn f() { let s = \"HashMap unwrap() Instant\"; } // HashMap unwrap Instant\n";
        assert_eq!(rules_hit("crates/sim/src/x.rs", src), vec![]);
    }
}

//! The ratcheting baseline: committed per-rule violation counts in
//! `lint-baseline.toml`.
//!
//! The comparison is exact equality per rule. Counts above the
//! baseline are *new debt* and fail the build; counts below it are a
//! *stale baseline* and also fail, with instructions to re-run with
//! `--write-baseline` — that is the ratchet: cleanups force the
//! committed numbers down, and they can never silently climb back up.
//!
//! The file format is the `[counts]` table of a deliberately tiny TOML
//! subset (bare `key = integer` lines, `#` comments), parsed by hand
//! for the same reason the lexer is hand-rolled: no registry access.

use crate::rules::Rule;
use std::collections::BTreeMap;

/// Per-rule expected violation counts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Baseline {
    pub counts: BTreeMap<String, usize>,
}

/// One rule's drift from the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Drift {
    pub rule: Rule,
    pub expected: usize,
    pub actual: usize,
}

impl Baseline {
    /// Parses `lint-baseline.toml` text. Unknown keys are rejected so a
    /// typo in the file can't silently un-ratchet a rule.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut counts = BTreeMap::new();
        let mut in_counts = false;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(section) = line.strip_prefix('[') {
                let name = section.strip_suffix(']').ok_or_else(|| {
                    format!("lint-baseline.toml:{}: malformed section header", idx + 1)
                })?;
                in_counts = name.trim() == "counts";
                continue;
            }
            if !in_counts {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                format!("lint-baseline.toml:{}: expected `rule = count`", idx + 1)
            })?;
            let key = key.trim().trim_matches('"');
            let rule = Rule::from_slug(key)
                .ok_or_else(|| format!("lint-baseline.toml:{}: unknown rule `{key}`", idx + 1))?;
            let n: usize = value.trim().parse().map_err(|_| {
                format!(
                    "lint-baseline.toml:{}: `{}` is not a count",
                    idx + 1,
                    value.trim()
                )
            })?;
            counts.insert(rule.slug().to_string(), n);
        }
        for rule in Rule::ALL {
            if !counts.contains_key(rule.slug()) {
                return Err(format!(
                    "lint-baseline.toml: missing entry for rule `{}`",
                    rule.slug()
                ));
            }
        }
        Ok(Baseline { counts })
    }

    /// Builds a baseline from actual counts (the `--write-baseline`
    /// path).
    pub fn from_counts(counts: &BTreeMap<String, usize>) -> Baseline {
        let mut full = BTreeMap::new();
        for rule in Rule::ALL {
            full.insert(
                rule.slug().to_string(),
                counts.get(rule.slug()).copied().unwrap_or(0),
            );
        }
        Baseline { counts: full }
    }

    /// Renders the file, with the ratchet contract in a header comment.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# dfx-lint ratchet baseline. Regenerate with:\n\
             #     cargo run -p dfx-lint --release -- --write-baseline\n\
             # The build fails if any count RISES (new debt) or FALLS without\n\
             # this file being updated (stale baseline) — debt only ratchets down.\n\
             \n[counts]\n",
        );
        for rule in Rule::ALL {
            let n = self.counts.get(rule.slug()).copied().unwrap_or(0);
            out.push_str(&format!("{} = {}\n", rule.slug(), n));
        }
        out
    }

    /// Diffs actual per-rule counts against the baseline. Empty result
    /// means the build is green.
    pub fn drift(&self, actual: &BTreeMap<String, usize>) -> Vec<Drift> {
        Rule::ALL
            .into_iter()
            .filter_map(|rule| {
                let expected = self.counts.get(rule.slug()).copied().unwrap_or(0);
                let actual = actual.get(rule.slug()).copied().unwrap_or(0);
                (expected != actual).then_some(Drift {
                    rule,
                    expected,
                    actual,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, usize)]) -> BTreeMap<String, usize> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn render_parse_round_trips() {
        let b = Baseline::from_counts(&counts(&[("panic-policy", 7), ("ambient-time", 1)]));
        let parsed = Baseline::parse(&b.render()).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.counts["panic-policy"], 7);
        assert_eq!(parsed.counts["nondet-collections"], 0);
    }

    #[test]
    fn unknown_rules_and_missing_rules_are_rejected() {
        assert!(Baseline::parse("[counts]\nnot-a-rule = 3\n").is_err());
        assert!(Baseline::parse("[counts]\npanic-policy = 3\n").is_err());
    }

    #[test]
    fn drift_flags_rises_and_falls_but_not_matches() {
        let b = Baseline::from_counts(&counts(&[("panic-policy", 5)]));
        assert!(b.drift(&counts(&[("panic-policy", 5)])).is_empty());
        let up = b.drift(&counts(&[("panic-policy", 6)]));
        assert_eq!(up.len(), 1);
        assert_eq!((up[0].expected, up[0].actual), (5, 6));
        let down = b.drift(&counts(&[("panic-policy", 4)]));
        assert_eq!((down[0].expected, down[0].actual), (5, 4));
    }
}

//! The multi-FPGA ring network (paper §V-E).
//!
//! Each FPGA has two QSFP28 ports running the Aurora 64b/66b link-layer
//! protocol at 100 Gb/s, so the cluster forms a ring. Synchronisation is
//! an all-gather: each core's router forwards partial vectors around the
//! ring; after `n − 1` hops every core holds all partials, and the
//! reorder unit arranges them by core id so every core sees an identical
//! full vector.

use crate::clock::{Cycles, CORE_CLOCK_HZ};
use serde::{Deserialize, Serialize};

/// Ring-network timing model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RingModel {
    /// Number of nodes on the ring.
    pub nodes: u32,
    /// Raw serial bandwidth per link in Gb/s (QSFP28: 100).
    pub link_gbps: f64,
    /// Line-coding efficiency (Aurora 64b/66b: 64/66 ≈ 3% overhead).
    pub encoding_efficiency: f64,
    /// Fixed per-hop latency: Aurora serialisation/deserialisation, router
    /// control and RX-buffer fill before the consumer may start.
    ///
    /// Calibrated: ~2 µs/hop reproduces the paper's 17.3% synchronisation
    /// share on the 1.5B model (Fig 15; DESIGN.md §5).
    pub hop_latency: Cycles,
}

impl RingModel {
    /// Creates a ring of `nodes` nodes with paper-default link parameters.
    pub fn new(nodes: u32) -> Self {
        RingModel {
            nodes,
            link_gbps: 100.0,
            encoding_efficiency: 64.0 / 66.0,
            hop_latency: Cycles(400),
        }
    }

    /// Effective payload bandwidth per link in bytes per kernel cycle.
    pub fn payload_bytes_per_cycle(&self) -> f64 {
        self.link_gbps * 1e9 / 8.0 * self.encoding_efficiency / CORE_CLOCK_HZ
    }

    /// Cycles for an all-gather in which each node contributes
    /// `bytes_per_node`. The ring pipelines chunks: total time is
    /// `(n−1) × (hop_latency + serialisation(bytes_per_node))`.
    ///
    /// A single-node "ring" costs nothing.
    pub fn allgather_cycles(&self, bytes_per_node: u64) -> Cycles {
        if self.nodes <= 1 {
            return Cycles::ZERO;
        }
        let ser = (bytes_per_node as f64 / self.payload_bytes_per_cycle()).ceil() as u64;
        Cycles((u64::from(self.nodes) - 1) * (self.hop_latency.0 + ser))
    }

    /// Cycles for the LM-head argmax reduction: one `(index, max)` pair
    /// (8 bytes) circulated around the ring.
    pub fn argmax_reduce_cycles(&self) -> Cycles {
        self.allgather_cycles(8)
    }
}

/// Point-to-point link model for inter-replica transfers.
///
/// The ring ([`RingModel`]) synchronises cores *inside* one appliance;
/// this models the datacenter link *between* replicas — the path a
/// disaggregated prefill/decode topology pays to move a finished
/// context's K/V cache from the prefill pool to the decode pool
/// (Splitwise/DistServe-style). Cost is a fixed latency plus
/// serialisation at the effective payload bandwidth; the transferred
/// volume comes from [`MemoryModel::kv_bytes_per_token`] times the
/// context length, so wider-sharded replicas (smaller per-device KV)
/// move proportionally less per device.
///
/// [`MemoryModel::kv_bytes_per_token`]: crate::MemoryModel
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Raw serial bandwidth in Gb/s.
    pub link_gbps: f64,
    /// Line-coding efficiency (fraction of raw bits carrying payload).
    pub encoding_efficiency: f64,
    /// Fixed one-way latency in microseconds (NIC + switch + protocol).
    pub latency_us: f64,
}

impl LinkModel {
    /// A 100 Gb/s QSFP28-class datacenter link with Aurora-style 64b/66b
    /// coding and ~5 µs one-way latency — the same physical layer the
    /// appliance ring uses (paper §V-E), now point-to-point.
    pub fn qsfp28() -> Self {
        LinkModel {
            link_gbps: 100.0,
            encoding_efficiency: 64.0 / 66.0,
            latency_us: 5.0,
        }
    }

    /// A link with the given raw bandwidth and latency, payload-perfect
    /// coding.
    pub fn new(link_gbps: f64, latency_us: f64) -> Self {
        LinkModel {
            link_gbps,
            encoding_efficiency: 1.0,
            latency_us,
        }
    }

    /// Effective payload bandwidth in bytes per second.
    pub fn payload_bytes_per_s(&self) -> f64 {
        self.link_gbps * 1e9 / 8.0 * self.encoding_efficiency
    }

    /// Milliseconds to move `bytes` across the link: fixed latency plus
    /// serialisation. Zero bytes still pay the latency (the transfer
    /// handshake is not free).
    pub fn transfer_ms(&self, bytes: u64) -> f64 {
        self.latency_us / 1e3 + bytes as f64 / self.payload_bytes_per_s() * 1e3
    }
}

/// Functional helper: the reorder unit's view of an all-gather. Takes the
/// per-core partial vectors (indexed by core id) and returns the full
/// vector every core observes — identical everywhere by construction.
pub fn allgather_reorder<T: Clone>(partials: &[Vec<T>]) -> Vec<T> {
    let mut out = Vec::with_capacity(partials.iter().map(Vec::len).sum());
    for p in partials {
        out.extend_from_slice(p);
    }
    out
}

/// Functional helper: global argmax across per-core `(local_index, max)`
/// candidates where each core's indices are offset by its partition start.
/// Ties resolve to the lowest global index, matching a sequential argmax
/// over the concatenated logits.
pub fn argmax_reduce(candidates: &[(u32, f64)]) -> u32 {
    let mut best: Option<(u32, f64)> = None;
    for &(idx, val) in candidates {
        best = match best {
            None => Some((idx, val)),
            Some((bi, bv)) => {
                if val > bv || (val == bv && idx < bi) {
                    Some((idx, val))
                } else {
                    Some((bi, bv))
                }
            }
        };
    }
    best.map(|(i, _)| i).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_bandwidth_accounts_encoding_overhead() {
        let ring = RingModel::new(4);
        // 100 Gb/s * 64/66 = 12.12 GB/s = ~60.6 B per 200 MHz cycle.
        let bpc = ring.payload_bytes_per_cycle();
        assert!((bpc - 60.6).abs() < 0.2, "{bpc}");
    }

    #[test]
    fn allgather_scales_with_hops() {
        let small = RingModel::new(2).allgather_cycles(768);
        let big = RingModel::new(4).allgather_cycles(768);
        assert_eq!(big.0, 3 * small.0, "hops scale (n-1)");
        assert_eq!(RingModel::new(1).allgather_cycles(768), Cycles::ZERO);
    }

    #[test]
    fn sync_latency_magnitude_matches_calibration() {
        // 1.5B on 4 FPGAs: one all-gather of a 768 B partial should cost
        // ~6 µs (Fig 15 calibration, DESIGN.md §5).
        let ring = RingModel::new(4);
        let us = ring.allgather_cycles(768).to_micros();
        assert!(us > 4.0 && us < 8.0, "{us} µs");
    }

    #[test]
    fn small_payloads_are_hop_latency_bound() {
        let ring = RingModel::new(4);
        let tiny = ring.allgather_cycles(8);
        let small = ring.allgather_cycles(768);
        // Serialization of 768 B is ~13 cycles vs 400 cycles hop latency.
        assert!((small.0 as f64) < (tiny.0 as f64) * 1.1);
    }

    #[test]
    fn link_transfer_is_latency_plus_serialisation() {
        let link = LinkModel::qsfp28();
        // Zero bytes: pure latency, 5 µs = 0.005 ms.
        assert!((link.transfer_ms(0) - 0.005).abs() < 1e-12);
        // 1 GiB at ~12.12 GB/s payload: ~88 ms, dwarfing the latency.
        let ms = link.transfer_ms(1 << 30);
        assert!(ms > 80.0 && ms < 100.0, "{ms} ms");
        // Monotone in bytes.
        assert!(link.transfer_ms(2048) > link.transfer_ms(1024));
    }

    #[test]
    fn link_bandwidth_scales_transfer_time() {
        let fast = LinkModel::new(200.0, 5.0);
        let slow = LinkModel::new(100.0, 5.0);
        let bytes = 1u64 << 24;
        let fast_ser = fast.transfer_ms(bytes) - fast.transfer_ms(0);
        let slow_ser = slow.transfer_ms(bytes) - slow.transfer_ms(0);
        assert!((slow_ser / fast_ser - 2.0).abs() < 1e-9);
    }

    #[test]
    fn reorder_concatenates_in_core_order() {
        let partials = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
        assert_eq!(allgather_reorder(&partials), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn argmax_reduce_picks_global_max_with_low_index_ties() {
        assert_eq!(argmax_reduce(&[(10, 1.0), (20, 3.0), (30, 2.0)]), 20);
        assert_eq!(argmax_reduce(&[(10, 3.0), (5, 3.0)]), 5);
        assert_eq!(argmax_reduce(&[]), 0);
    }
}

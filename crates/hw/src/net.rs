//! The multi-FPGA ring network (paper §V-E).
//!
//! Each FPGA has two QSFP28 ports running the Aurora 64b/66b link-layer
//! protocol at 100 Gb/s, so the cluster forms a ring. Synchronisation is
//! an all-gather: each core's router forwards partial vectors around the
//! ring; after `n − 1` hops every core holds all partials, and the
//! reorder unit arranges them by core id so every core sees an identical
//! full vector.

use crate::clock::{Cycles, CORE_CLOCK_HZ};
use serde::{Deserialize, Serialize};

/// Ring-network timing model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RingModel {
    /// Number of nodes on the ring.
    pub nodes: u32,
    /// Raw serial bandwidth per link in Gb/s (QSFP28: 100).
    pub link_gbps: f64,
    /// Line-coding efficiency (Aurora 64b/66b: 64/66 ≈ 3% overhead).
    pub encoding_efficiency: f64,
    /// Fixed per-hop latency: Aurora serialisation/deserialisation, router
    /// control and RX-buffer fill before the consumer may start.
    ///
    /// Calibrated: ~2 µs/hop reproduces the paper's 17.3% synchronisation
    /// share on the 1.5B model (Fig 15; DESIGN.md §5).
    pub hop_latency: Cycles,
}

impl RingModel {
    /// Creates a ring of `nodes` nodes with paper-default link parameters.
    pub fn new(nodes: u32) -> Self {
        RingModel {
            nodes,
            link_gbps: 100.0,
            encoding_efficiency: 64.0 / 66.0,
            hop_latency: Cycles(400),
        }
    }

    /// Effective payload bandwidth per link in bytes per kernel cycle.
    pub fn payload_bytes_per_cycle(&self) -> f64 {
        self.link_gbps * 1e9 / 8.0 * self.encoding_efficiency / CORE_CLOCK_HZ
    }

    /// Cycles for an all-gather in which each node contributes
    /// `bytes_per_node`. The ring pipelines chunks: total time is
    /// `(n−1) × (hop_latency + serialisation(bytes_per_node))`.
    ///
    /// A single-node "ring" costs nothing.
    pub fn allgather_cycles(&self, bytes_per_node: u64) -> Cycles {
        if self.nodes <= 1 {
            return Cycles::ZERO;
        }
        let ser = (bytes_per_node as f64 / self.payload_bytes_per_cycle()).ceil() as u64;
        Cycles((u64::from(self.nodes) - 1) * (self.hop_latency.0 + ser))
    }

    /// Cycles for the LM-head argmax reduction: one `(index, max)` pair
    /// (8 bytes) circulated around the ring.
    pub fn argmax_reduce_cycles(&self) -> Cycles {
        self.allgather_cycles(8)
    }
}

/// Functional helper: the reorder unit's view of an all-gather. Takes the
/// per-core partial vectors (indexed by core id) and returns the full
/// vector every core observes — identical everywhere by construction.
pub fn allgather_reorder<T: Clone>(partials: &[Vec<T>]) -> Vec<T> {
    let mut out = Vec::with_capacity(partials.iter().map(Vec::len).sum());
    for p in partials {
        out.extend_from_slice(p);
    }
    out
}

/// Functional helper: global argmax across per-core `(local_index, max)`
/// candidates where each core's indices are offset by its partition start.
/// Ties resolve to the lowest global index, matching a sequential argmax
/// over the concatenated logits.
pub fn argmax_reduce(candidates: &[(u32, f64)]) -> u32 {
    let mut best: Option<(u32, f64)> = None;
    for &(idx, val) in candidates {
        best = match best {
            None => Some((idx, val)),
            Some((bi, bv)) => {
                if val > bv || (val == bv && idx < bi) {
                    Some((idx, val))
                } else {
                    Some((bi, bv))
                }
            }
        };
    }
    best.map(|(i, _)| i).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_bandwidth_accounts_encoding_overhead() {
        let ring = RingModel::new(4);
        // 100 Gb/s * 64/66 = 12.12 GB/s = ~60.6 B per 200 MHz cycle.
        let bpc = ring.payload_bytes_per_cycle();
        assert!((bpc - 60.6).abs() < 0.2, "{bpc}");
    }

    #[test]
    fn allgather_scales_with_hops() {
        let small = RingModel::new(2).allgather_cycles(768);
        let big = RingModel::new(4).allgather_cycles(768);
        assert_eq!(big.0, 3 * small.0, "hops scale (n-1)");
        assert_eq!(RingModel::new(1).allgather_cycles(768), Cycles::ZERO);
    }

    #[test]
    fn sync_latency_magnitude_matches_calibration() {
        // 1.5B on 4 FPGAs: one all-gather of a 768 B partial should cost
        // ~6 µs (Fig 15 calibration, DESIGN.md §5).
        let ring = RingModel::new(4);
        let us = ring.allgather_cycles(768).to_micros();
        assert!(us > 4.0 && us < 8.0, "{us} µs");
    }

    #[test]
    fn small_payloads_are_hop_latency_bound() {
        let ring = RingModel::new(4);
        let tiny = ring.allgather_cycles(8);
        let small = ring.allgather_cycles(768);
        // Serialization of 768 B is ~13 cycles vs 400 cycles hop latency.
        assert!((small.0 as f64) < (tiny.0 as f64) * 1.1);
    }

    #[test]
    fn reorder_concatenates_in_core_order() {
        let partials = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
        assert_eq!(allgather_reorder(&partials), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn argmax_reduce_picks_global_max_with_low_index_ties() {
        assert_eq!(argmax_reduce(&[(10, 1.0), (20, 3.0), (30, 2.0)]), 20);
        assert_eq!(argmax_reduce(&[(10, 3.0), (5, 3.0)]), 5);
        assert_eq!(argmax_reduce(&[]), 0);
    }
}

//! Clocking of the simulated appliance.
//!
//! All timing-model costs are expressed in *kernel-clock cycles* of the
//! DFX core (200 MHz on the Alveo U280, paper §VI). Off-chip interfaces
//! with their own clocks (HBM at 410 MHz memory interface, Aurora serial
//! links) are converted to kernel-cycle-equivalent throughput at model
//! construction time.

use serde::{Deserialize, Serialize};

/// Kernel clock frequency of the DFX core (paper §VI: 200 MHz).
pub const CORE_CLOCK_HZ: f64 = 200.0e6;

/// A number of kernel-clock cycles.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Converts to seconds at the core clock.
    pub fn to_seconds(self) -> f64 {
        self.0 as f64 / CORE_CLOCK_HZ
    }

    /// Converts to milliseconds at the core clock.
    pub fn to_millis(self) -> f64 {
        self.to_seconds() * 1e3
    }

    /// Converts to microseconds at the core clock.
    pub fn to_micros(self) -> f64 {
        self.to_seconds() * 1e6
    }

    /// Builds from seconds, rounding up (a partial cycle still occupies a
    /// whole cycle).
    pub fn from_seconds(s: f64) -> Cycles {
        Cycles((s * CORE_CLOCK_HZ).ceil() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl std::ops::Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl std::ops::Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl std::iter::Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl std::fmt::Display for Cycles {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} cy", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_roundtrip() {
        let c = Cycles(200); // 1 µs at 200 MHz
        assert!((c.to_micros() - 1.0).abs() < 1e-12);
        assert_eq!(Cycles::from_seconds(1e-6), Cycles(200));
    }

    #[test]
    fn from_seconds_rounds_up() {
        assert_eq!(Cycles::from_seconds(1.2e-8), Cycles(3)); // 2.4 cycles -> 3
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Cycles(3) + Cycles(4), Cycles(7));
        assert_eq!(Cycles(3) * 4, Cycles(12));
        assert_eq!(Cycles(3).saturating_sub(Cycles(5)), Cycles::ZERO);
        let total: Cycles = [Cycles(1), Cycles(2)].into_iter().sum();
        assert_eq!(total, Cycles(3));
    }
}

//! DMA engine model: tiled weight streaming and the transpose unit.
//!
//! The DMA (paper §V-B) owns the HBM and DDR interfaces. Weights are laid
//! out in HBM as padded `d × l` tiles so a full tile arrives every cycle
//! at peak; the K/V cache regions are written row-by-row as tokens are
//! processed (Values through the transpose unit) and read back as streams
//! during attention.

use crate::clock::Cycles;
use crate::memory::{DdrModel, HbmModel};
use crate::tile::TileShape;
use serde::{Deserialize, Serialize};

/// Timing model of one core's DMA engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DmaModel {
    /// HBM subsystem.
    pub hbm: HbmModel,
    /// DDR channel.
    pub ddr: DdrModel,
    /// Tile geometry the weights are packed for.
    pub shape: TileShape,
    /// Extra cycles per element for the transpose unit's write path: the
    /// row arrives contiguously but drains column-wise into strided HBM
    /// locations, so each element pays a short-burst penalty. This is the
    /// "long latency of transpose" the paper hides by computing Value
    /// before Key and Query (§V-B).
    pub transpose_elem_overhead: Cycles,
}

impl Default for DmaModel {
    fn default() -> Self {
        DmaModel {
            hbm: HbmModel::default(),
            ddr: DdrModel::default(),
            shape: TileShape::PAPER,
            transpose_elem_overhead: Cycles(4),
        }
    }
}

impl DmaModel {
    /// Creates a model with a non-default tile shape (design-space
    /// exploration of Fig 8).
    pub fn with_shape(shape: TileShape) -> Self {
        DmaModel {
            shape,
            ..DmaModel::default()
        }
    }

    /// Cycles to stream one weight matrix partition of `rows × cols`
    /// FP16 values from HBM. Tiles are padded to `d × l`, so the streamed
    /// byte count is `tile_count × d × l × 2`.
    pub fn weight_stream_cycles(&self, rows: u32, cols: u32) -> Cycles {
        let tiles = self.shape.tile_count(rows, cols);
        let bytes = tiles * u64::from(self.shape.macs_per_cycle()) * 2;
        self.hbm.stream_cycles(bytes)
    }

    /// Cycles to read one head's K or V region for a context of `t`
    /// tokens with `head_dim`-wide rows (one scattered request per head).
    pub fn kv_read_cycles(&self, t: u32, head_dim: u32) -> Cycles {
        let bytes = u64::from(t) * u64::from(head_dim) * 2;
        self.hbm.scattered_cycles(bytes, 1)
    }

    /// Cycles to append one K row (`head_dim` FP16) to the cache.
    pub fn kv_write_cycles(&self, head_dim: u32) -> Cycles {
        self.hbm.scattered_cycles(u64::from(head_dim) * 2, 1)
    }

    /// Cycles to append one V row through the transpose unit. The paper
    /// transposes V *while writing* partial tiles to HBM (§V-B), trading
    /// strided writes for zero read-side cost; the instruction reordering
    /// (Value before Key/Query) hides this latency.
    pub fn kv_write_transposed_cycles(&self, head_dim: u32) -> Cycles {
        self.kv_write_cycles(head_dim) + self.transpose_elem_overhead * u64::from(head_dim)
    }

    /// Cycles to load a bias/γ/β/embedding vector of `len` FP16 values
    /// from DDR.
    pub fn ddr_vector_cycles(&self, len: u32) -> Cycles {
        self.ddr.transfer_cycles(u64::from(len) * 2)
    }

    /// Cycles for a token-id transfer (4 bytes) to or from DDR.
    pub fn token_io_cycles(&self) -> Cycles {
        self.ddr.transfer_cycles(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_stream_accounts_tile_padding() {
        let dma = DmaModel::default();
        // 100x20 pads to 2x2 tiles of 64x16 = 4096 values = 8192 B.
        let padded = dma.weight_stream_cycles(100, 20);
        let exact = dma.hbm.stream_cycles(8192);
        assert_eq!(padded, exact);
    }

    #[test]
    fn aligned_weight_stream_matches_raw_bytes() {
        let dma = DmaModel::default();
        let cycles = dma.weight_stream_cycles(1536, 384);
        let raw = dma.hbm.stream_cycles(1536 * 384 * 2);
        assert_eq!(cycles, raw, "aligned shapes have no padding");
    }

    #[test]
    fn transpose_write_costs_more_than_plain_write() {
        let dma = DmaModel::default();
        assert!(dma.kv_write_transposed_cycles(64) > dma.kv_write_cycles(64));
    }

    #[test]
    fn kv_read_grows_with_context() {
        let dma = DmaModel::default();
        let short = dma.kv_read_cycles(16, 64);
        let long = dma.kv_read_cycles(256, 64);
        assert!(long > short);
    }

    #[test]
    fn ddr_vector_load_is_fast_but_nonzero() {
        let dma = DmaModel::default();
        let c = dma.ddr_vector_cycles(1536);
        assert!(c.0 > 60 && c.0 < 200, "{c}");
    }
}

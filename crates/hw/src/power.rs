//! Board power model.
//!
//! The paper measures board power with `xbutil` (FPGA) and `nvidia-smi`
//! (GPU): each U280 averages 45 W during inference — low not because of
//! underutilisation but because of the 200 MHz kernel clock (§VII-B).
//! The model splits that into a static floor plus an activity-scaled
//! dynamic component, so partially idle phases (e.g. synchronisation
//! waits) draw less.

use serde::{Deserialize, Serialize};

/// Power model of one accelerator card.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Static power: shell, HBM refresh, transceivers (W).
    pub static_watts: f64,
    /// Dynamic power at 100% datapath activity (W).
    pub dynamic_watts: f64,
}

impl PowerModel {
    /// The U280 running the DFX core, calibrated so typical inference
    /// activity (~0.75) lands on the measured 45 W.
    pub fn u280_dfx() -> Self {
        PowerModel {
            static_watts: 24.0,
            dynamic_watts: 28.0,
        }
    }

    /// Average power at a given datapath activity in `[0, 1]`.
    pub fn average_watts(&self, activity: f64) -> f64 {
        self.static_watts + self.dynamic_watts * activity.clamp(0.0, 1.0)
    }

    /// Energy in joules for `seconds` of execution at `activity`.
    pub fn energy_joules(&self, seconds: f64, activity: f64) -> f64 {
        self.average_watts(activity) * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_activity_matches_measured_45_watts() {
        let p = PowerModel::u280_dfx();
        let w = p.average_watts(0.75);
        assert!((w - 45.0).abs() < 1.0, "{w} W");
    }

    #[test]
    fn activity_is_clamped() {
        let p = PowerModel::u280_dfx();
        assert_eq!(p.average_watts(1.5), p.average_watts(1.0));
        assert_eq!(p.average_watts(-1.0), p.static_watts);
    }

    #[test]
    fn energy_integrates_power() {
        let p = PowerModel::u280_dfx();
        let e = p.energy_joules(2.0, 0.75);
        assert!((e - 90.0).abs() < 2.0);
    }
}

//! Off-chip memory timing models: HBM2 and DDR4.
//!
//! The U280 carries 8 GB of HBM2 (32 channels, 460 GB/s theoretical) and
//! 32 GB of DDR4 (38 GB/s theoretical) — paper §IV-B. The DFX DMA connects
//! to *all 32* HBM channels and moves 32 × 512 bits per kernel cycle, i.e.
//! 2048 bytes/cycle at 200 MHz = 409.6 GB/s of kernel-visible peak. Real
//! designs sustain a fraction of that (refresh, row activation, crossbar
//! contention); the models apply a calibrated efficiency factor plus a
//! fixed per-request setup cost.

use crate::clock::Cycles;
use serde::{Deserialize, Serialize};

/// HBM2 subsystem timing model (one device's 32 channels in aggregate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HbmModel {
    /// Number of pseudo-channels (32 on the U280).
    pub channels: u32,
    /// Bytes per channel per kernel cycle (512 bits = 64 B).
    pub bytes_per_channel_cycle: u32,
    /// Sustained fraction of peak for long sequential streams.
    ///
    /// Calibrated: 0.52 reproduces the paper's matrix-op latencies on the
    /// 1.5B model together with the MPU pipeline overheads (DESIGN.md §5).
    pub stream_efficiency: f64,
    /// Fixed cycles to set up one streaming request (address generation,
    /// AXI handshake, first-beat latency across the 410 MHz boundary).
    pub request_setup: Cycles,
    /// Capacity in bytes (8 GB).
    pub capacity_bytes: u64,
}

impl Default for HbmModel {
    fn default() -> Self {
        HbmModel {
            channels: 32,
            bytes_per_channel_cycle: 64,
            stream_efficiency: 0.52,
            request_setup: Cycles(96),
            capacity_bytes: 8 * (1 << 30),
        }
    }
}

impl HbmModel {
    /// Peak bytes per kernel cycle across all channels.
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        f64::from(self.channels) * f64::from(self.bytes_per_channel_cycle)
    }

    /// Peak bandwidth in GB/s at the kernel clock.
    pub fn peak_gbps(&self) -> f64 {
        self.peak_bytes_per_cycle() * crate::clock::CORE_CLOCK_HZ / 1e9
    }

    /// Cycles to stream `bytes` sequentially (one request).
    pub fn stream_cycles(&self, bytes: u64) -> Cycles {
        if bytes == 0 {
            return Cycles::ZERO;
        }
        let per_cycle = self.peak_bytes_per_cycle() * self.stream_efficiency;
        self.request_setup + Cycles((bytes as f64 / per_cycle).ceil() as u64)
    }

    /// Cycles to stream `bytes` as `requests` separate requests (e.g. one
    /// per K/V head region).
    pub fn scattered_cycles(&self, bytes: u64, requests: u64) -> Cycles {
        if bytes == 0 {
            return Cycles::ZERO;
        }
        let per_cycle = self.peak_bytes_per_cycle() * self.stream_efficiency;
        self.request_setup * requests.max(1) + Cycles((bytes as f64 / per_cycle).ceil() as u64)
    }
}

/// DDR4 channel timing model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DdrModel {
    /// Theoretical bandwidth in bytes per kernel cycle (38.4 GB/s at
    /// 200 MHz = 192 B/cycle).
    pub bytes_per_cycle: u32,
    /// Sustained fraction of peak.
    pub stream_efficiency: f64,
    /// Fixed cycles per request.
    pub request_setup: Cycles,
    /// Capacity in bytes (32 GB).
    pub capacity_bytes: u64,
}

impl Default for DdrModel {
    fn default() -> Self {
        DdrModel {
            bytes_per_cycle: 192,
            stream_efficiency: 0.70,
            request_setup: Cycles(60),
            capacity_bytes: 32 * (1 << 30),
        }
    }
}

impl DdrModel {
    /// Cycles to transfer `bytes` in one request.
    pub fn transfer_cycles(&self, bytes: u64) -> Cycles {
        if bytes == 0 {
            return Cycles::ZERO;
        }
        let per_cycle = f64::from(self.bytes_per_cycle) * self.stream_efficiency;
        self.request_setup + Cycles((bytes as f64 / per_cycle).ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm_peak_matches_paper_dma_width() {
        let hbm = HbmModel::default();
        // 32 channels x 512 bits @ 200 MHz = 409.6 GB/s kernel-visible.
        assert_eq!(hbm.peak_bytes_per_cycle(), 2048.0);
        assert!((hbm.peak_gbps() - 409.6).abs() < 0.1);
    }

    #[test]
    fn stream_cost_scales_linearly_beyond_setup() {
        let hbm = HbmModel::default();
        let setup = hbm.request_setup.0;
        let small = hbm.stream_cycles(2048).0 - setup;
        let big = hbm.stream_cycles(2048 * 1000).0 - setup;
        // Payload part scales ~1000x (within ceil rounding).
        assert!(
            big >= small * 800 && big <= small * 1100,
            "payload scaling: {small} vs {big}"
        );
        assert_eq!(hbm.stream_cycles(0), Cycles::ZERO);
    }

    #[test]
    fn one_fifteen_b_layer_stream_time_is_microseconds() {
        // One core's FFN1 partition on the 1.5B model / 4 cores:
        // 1536 x 1536 FP16 = 4.7 MB -> ~22 µs at 52% of 409.6 GB/s.
        // (Two such streams per layer x 48 layers ≈ 2.1 ms, matching the
        // paper's 29.6% FFN share of the 6.9 ms token latency.)
        let hbm = HbmModel::default();
        let bytes = 1536 * 1536 * 2;
        let us = hbm.stream_cycles(bytes).to_micros();
        assert!(us > 16.0 && us < 28.0, "{us} µs");
    }

    #[test]
    fn scattered_requests_pay_setup_per_request() {
        let hbm = HbmModel::default();
        let single = hbm.stream_cycles(4096);
        let scattered = hbm.scattered_cycles(4096, 8);
        assert_eq!(
            scattered.0 - single.0,
            hbm.request_setup.0 * 7,
            "7 extra setups"
        );
    }

    #[test]
    fn ddr_is_much_slower_than_hbm() {
        let hbm = HbmModel::default();
        let ddr = DdrModel::default();
        let bytes = 1 << 20;
        assert!(ddr.transfer_cycles(bytes).0 > 5 * hbm.stream_cycles(bytes).0);
    }
}

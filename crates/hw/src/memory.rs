//! Off-chip memory timing models: HBM2 and DDR4.
//!
//! The U280 carries 8 GB of HBM2 (32 channels, 460 GB/s theoretical) and
//! 32 GB of DDR4 (38 GB/s theoretical) — paper §IV-B. The DFX DMA connects
//! to *all 32* HBM channels and moves 32 × 512 bits per kernel cycle, i.e.
//! 2048 bytes/cycle at 200 MHz = 409.6 GB/s of kernel-visible peak. Real
//! designs sustain a fraction of that (refresh, row activation, crossbar
//! contention); the models apply a calibrated efficiency factor plus a
//! fixed per-request setup cost.

use crate::clock::Cycles;
use serde::{Deserialize, Serialize};

/// HBM2 subsystem timing model (one device's 32 channels in aggregate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HbmModel {
    /// Number of pseudo-channels (32 on the U280).
    pub channels: u32,
    /// Bytes per channel per kernel cycle (512 bits = 64 B).
    pub bytes_per_channel_cycle: u32,
    /// Sustained fraction of peak for long sequential streams.
    ///
    /// Calibrated: 0.52 reproduces the paper's matrix-op latencies on the
    /// 1.5B model together with the MPU pipeline overheads (DESIGN.md §5).
    pub stream_efficiency: f64,
    /// Fixed cycles to set up one streaming request (address generation,
    /// AXI handshake, first-beat latency across the 410 MHz boundary).
    pub request_setup: Cycles,
    /// Capacity in bytes (8 GB).
    pub capacity_bytes: u64,
}

impl Default for HbmModel {
    fn default() -> Self {
        HbmModel {
            channels: 32,
            bytes_per_channel_cycle: 64,
            stream_efficiency: 0.52,
            request_setup: Cycles(96),
            capacity_bytes: 8 * (1 << 30),
        }
    }
}

impl HbmModel {
    /// Peak bytes per kernel cycle across all channels.
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        f64::from(self.channels) * f64::from(self.bytes_per_channel_cycle)
    }

    /// Peak bandwidth in GB/s at the kernel clock.
    pub fn peak_gbps(&self) -> f64 {
        self.peak_bytes_per_cycle() * crate::clock::CORE_CLOCK_HZ / 1e9
    }

    /// Cycles to stream `bytes` sequentially (one request).
    pub fn stream_cycles(&self, bytes: u64) -> Cycles {
        if bytes == 0 {
            return Cycles::ZERO;
        }
        let per_cycle = self.peak_bytes_per_cycle() * self.stream_efficiency;
        self.request_setup + Cycles((bytes as f64 / per_cycle).ceil() as u64)
    }

    /// Cycles to stream `bytes` as `requests` separate requests (e.g. one
    /// per K/V head region).
    pub fn scattered_cycles(&self, bytes: u64, requests: u64) -> Cycles {
        if bytes == 0 {
            return Cycles::ZERO;
        }
        let per_cycle = self.peak_bytes_per_cycle() * self.stream_efficiency;
        self.request_setup * requests.max(1) + Cycles((bytes as f64 / per_cycle).ceil() as u64)
    }
}

/// Capacity model of one device's HBM: what is *resident*, not how fast
/// it streams.
///
/// Paper §IV-B places two things in each U280's 8 GB of HBM: the core's
/// weight-matrix shard (streamed every token, so it must live in the
/// fast memory) and the growing K/V attention cache of every live
/// request. The timing models above answer "how long does a stream
/// take"; this model answers "does it fit" — the binding constraint for
/// multi-request serving, where each admitted request claims
/// `kv_bytes_per_token × (context + output)` bytes until it retires.
///
/// The model is deliberately raw (three byte counts): the appliance
/// derives `weight_bytes` and `kv_bytes_per_token` from the model
/// geometry and cluster partition, a GPU backend from its own sharding.
/// All capacities are per *device* — a model-parallel cluster replicates
/// the constraint on every card, so one device's budget bounds the whole
/// appliance's live batch.
///
/// # Examples
///
/// ```
/// use dfx_hw::MemoryModel;
///
/// // 1 GiB device holding a 768 MiB weight shard, 64 KiB of KV per token.
/// let m = MemoryModel::new(1 << 30, 768 << 20, 64 << 10);
/// assert_eq!(m.kv_budget_bytes(), 256 << 20);
/// assert_eq!(m.max_resident_tokens(), 4096);
/// assert!(m.fits_tokens(4096) && !m.fits_tokens(4097));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Device memory capacity in bytes (8 GiB of HBM2 on the U280).
    pub capacity_bytes: u64,
    /// Bytes of the resident weight shard (never evicted: every token
    /// step streams it).
    pub weight_bytes: u64,
    /// K/V cache bytes one context token occupies on this device, across
    /// all layers and locally-resident heads (keys + values, FP16).
    pub kv_bytes_per_token: u64,
}

impl MemoryModel {
    /// Builds the model.
    ///
    /// # Panics
    ///
    /// Panics if `kv_bytes_per_token` is zero (a transformer always
    /// caches K/V) or the weight shard alone exceeds the capacity (such
    /// a device cannot run the model at all — partition wider instead).
    pub fn new(capacity_bytes: u64, weight_bytes: u64, kv_bytes_per_token: u64) -> Self {
        assert!(
            kv_bytes_per_token > 0,
            "kv_bytes_per_token must be positive"
        );
        assert!(
            weight_bytes <= capacity_bytes,
            "weight shard ({weight_bytes} B) exceeds device capacity ({capacity_bytes} B)"
        );
        MemoryModel {
            capacity_bytes,
            weight_bytes,
            kv_bytes_per_token,
        }
    }

    /// Bytes left for K/V caches once the weight shard is resident.
    pub fn kv_budget_bytes(&self) -> u64 {
        self.capacity_bytes - self.weight_bytes
    }

    /// Bytes a request holding `tokens` total context positions claims.
    pub fn kv_claim_bytes(&self, tokens: usize) -> u64 {
        tokens as u64 * self.kv_bytes_per_token
    }

    /// Whether K/V state for `tokens` total resident context positions
    /// (summed over every live request) fits next to the weights.
    pub fn fits_tokens(&self, tokens: usize) -> bool {
        self.kv_claim_bytes(tokens) <= self.kv_budget_bytes()
    }

    /// The largest total number of context positions whose K/V state
    /// fits — the device's hard ceiling on `Σ (input + output)` over
    /// every concurrently-resident request.
    pub fn max_resident_tokens(&self) -> u64 {
        self.kv_budget_bytes() / self.kv_bytes_per_token
    }

    /// The same model with a different device capacity (what-if knob for
    /// capacity sweeps).
    ///
    /// # Panics
    ///
    /// Panics if the weight shard no longer fits.
    #[must_use]
    pub fn with_capacity(mut self, capacity_bytes: u64) -> Self {
        assert!(
            self.weight_bytes <= capacity_bytes,
            "weight shard ({} B) exceeds device capacity ({capacity_bytes} B)",
            self.weight_bytes
        );
        self.capacity_bytes = capacity_bytes;
        self
    }
}

/// DDR4 channel timing model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DdrModel {
    /// Theoretical bandwidth in bytes per kernel cycle (38.4 GB/s at
    /// 200 MHz = 192 B/cycle).
    pub bytes_per_cycle: u32,
    /// Sustained fraction of peak.
    pub stream_efficiency: f64,
    /// Fixed cycles per request.
    pub request_setup: Cycles,
    /// Capacity in bytes (32 GB).
    pub capacity_bytes: u64,
}

impl Default for DdrModel {
    fn default() -> Self {
        DdrModel {
            bytes_per_cycle: 192,
            stream_efficiency: 0.70,
            request_setup: Cycles(60),
            capacity_bytes: 32 * (1 << 30),
        }
    }
}

impl DdrModel {
    /// Cycles to transfer `bytes` in one request.
    pub fn transfer_cycles(&self, bytes: u64) -> Cycles {
        if bytes == 0 {
            return Cycles::ZERO;
        }
        let per_cycle = f64::from(self.bytes_per_cycle) * self.stream_efficiency;
        self.request_setup + Cycles((bytes as f64 / per_cycle).ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm_peak_matches_paper_dma_width() {
        let hbm = HbmModel::default();
        // 32 channels x 512 bits @ 200 MHz = 409.6 GB/s kernel-visible.
        assert_eq!(hbm.peak_bytes_per_cycle(), 2048.0);
        assert!((hbm.peak_gbps() - 409.6).abs() < 0.1);
    }

    #[test]
    fn stream_cost_scales_linearly_beyond_setup() {
        let hbm = HbmModel::default();
        let setup = hbm.request_setup.0;
        let small = hbm.stream_cycles(2048).0 - setup;
        let big = hbm.stream_cycles(2048 * 1000).0 - setup;
        // Payload part scales ~1000x (within ceil rounding).
        assert!(
            big >= small * 800 && big <= small * 1100,
            "payload scaling: {small} vs {big}"
        );
        assert_eq!(hbm.stream_cycles(0), Cycles::ZERO);
    }

    #[test]
    fn one_fifteen_b_layer_stream_time_is_microseconds() {
        // One core's FFN1 partition on the 1.5B model / 4 cores:
        // 1536 x 1536 FP16 = 4.7 MB -> ~22 µs at 52% of 409.6 GB/s.
        // (Two such streams per layer x 48 layers ≈ 2.1 ms, matching the
        // paper's 29.6% FFN share of the 6.9 ms token latency.)
        let hbm = HbmModel::default();
        let bytes = 1536 * 1536 * 2;
        let us = hbm.stream_cycles(bytes).to_micros();
        assert!(us > 16.0 && us < 28.0, "{us} µs");
    }

    #[test]
    fn scattered_requests_pay_setup_per_request() {
        let hbm = HbmModel::default();
        let single = hbm.stream_cycles(4096);
        let scattered = hbm.scattered_cycles(4096, 8);
        assert_eq!(
            scattered.0 - single.0,
            hbm.request_setup.0 * 7,
            "7 extra setups"
        );
    }

    #[test]
    fn memory_model_budget_and_claims_are_consistent() {
        let m = MemoryModel::new(8 * (1 << 30), 3 * (1 << 30), 72 << 10);
        assert_eq!(m.kv_budget_bytes(), 5 * (1 << 30));
        assert_eq!(m.kv_claim_bytes(2), 144 << 10);
        let max = m.max_resident_tokens();
        assert!(m.fits_tokens(max as usize));
        assert!(!m.fits_tokens(max as usize + 1));
        // Shrinking capacity shrinks the KV budget one for one.
        let small = m.with_capacity(4 * (1 << 30));
        assert_eq!(small.kv_budget_bytes(), 1 << 30);
        assert!(small.max_resident_tokens() < m.max_resident_tokens());
    }

    #[test]
    #[should_panic(expected = "exceeds device capacity")]
    fn memory_model_rejects_oversized_weight_shards() {
        let _ = MemoryModel::new(1 << 20, 2 << 20, 1024);
    }

    #[test]
    fn ddr_is_much_slower_than_hbm() {
        let hbm = HbmModel::default();
        let ddr = DdrModel::default();
        let bytes = 1 << 20;
        assert!(ddr.transfer_cycles(bytes).0 > 5 * hbm.stream_cycles(bytes).0);
    }
}

//! Analytic FPGA resource model (paper Fig 13 and Fig 8b).
//!
//! The paper reports post-place-and-route utilisation of one DFX core on
//! the Alveo U280. This model reproduces that table from per-unit
//! formulas parameterised by the datapath geometry `(d, l)`:
//!
//! - MAC DSP count is the paper's own accounting (3·d·l for the MFU —
//!   one DSP per multiplier, two per adder — plus SFU lane operators);
//! - per-lane control/accumulator/SFU resources scale linearly with `l`
//!   ("with larger l … the resources in the matrix processing unit
//!   increase linearly", §V-B), the MAC array with `d·l`, and the VPU
//!   with `d`;
//! - coefficient values are calibrated so `(d, l) = (64, 16)` lands on
//!   the published Fig 13 numbers; the residual against the published
//!   device totals is attributed to the Vitis platform shell and HBM
//!   controllers, listed as an explicit component.

use crate::tile::TileShape;
use serde::{Deserialize, Serialize};

/// A resource vector: LUTs, flip-flops, BRAM36 blocks, URAM blocks, DSP
/// slices. BRAM is fractional because 18Kb halves are allocatable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Resources {
    /// Lookup tables.
    pub lut: f64,
    /// Flip-flops.
    pub ff: f64,
    /// BRAM36 blocks.
    pub bram: f64,
    /// UltraRAM blocks.
    pub uram: f64,
    /// DSP48 slices.
    pub dsp: f64,
}

impl std::ops::Add for Resources {
    type Output = Resources;

    /// Elementwise sum.
    fn add(self, other: Resources) -> Resources {
        Resources {
            lut: self.lut + other.lut,
            ff: self.ff + other.ff,
            bram: self.bram + other.bram,
            uram: self.uram + other.uram,
            dsp: self.dsp + other.dsp,
        }
    }
}

impl Resources {
    /// Elementwise utilisation percentage against a capacity.
    pub fn percent_of(self, cap: Resources) -> Resources {
        Resources {
            lut: 100.0 * self.lut / cap.lut,
            ff: 100.0 * self.ff / cap.ff,
            bram: 100.0 * self.bram / cap.bram,
            uram: 100.0 * self.uram / cap.uram,
            dsp: 100.0 * self.dsp / cap.dsp,
        }
    }
}

/// Total resources of the Xilinx Alveo U280 (XCU280).
pub const U280_CAPACITY: Resources = Resources {
    lut: 1_303_680.0,
    ff: 2_607_360.0,
    bram: 2_016.0,
    uram: 960.0,
    dsp: 9_024.0,
};

/// One named component of the core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentUsage {
    /// Component name as in Fig 13.
    pub name: String,
    /// Absolute resources.
    pub used: Resources,
}

/// The resource model for one DFX core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceModel {
    /// Datapath geometry.
    pub shape: TileShape,
    /// HBM channels wired to the DMA.
    pub hbm_channels: u32,
}

impl Default for ResourceModel {
    fn default() -> Self {
        ResourceModel {
            shape: TileShape::PAPER,
            hbm_channels: 32,
        }
    }
}

impl ResourceModel {
    /// Creates a model for a given geometry (Fig 8b sweep).
    pub fn with_shape(shape: TileShape) -> Self {
        ResourceModel {
            shape,
            ..ResourceModel::default()
        }
    }

    /// Matrix processing unit resources.
    pub fn mpu(&self) -> Resources {
        let d = f64::from(self.shape.d);
        let l = f64::from(self.shape.l);
        Resources {
            // MAC array ∝ d·l, per-lane accumulator/SFU/control ∝ l.
            lut: 100.0 * d * l + 4_225.0 * l,
            ff: 300.0 * d * l + 4_612.0 * l,
            bram: 3.5 * l,
            uram: 0.0,
            // d·l multiplier DSPs + 2·(d−1)·l adder-tree DSPs + 2·l scalar
            // adders + 2·l SFU operators  = 3·d·l + 4·l at large d.
            dsp: 3.0 * d * l + 4.0 * l,
        }
    }

    /// Vector processing unit resources (∝ the d-wide ALU).
    pub fn vpu(&self) -> Resources {
        let d = f64::from(self.shape.d);
        Resources {
            lut: 562.5 * d,
            ff: 859.4 * d,
            bram: 1.5,
            uram: 0.0,
            dsp: 6.0 * d + 6.0,
        }
    }

    /// Register file manager resources.
    pub fn register_file(&self) -> Resources {
        let d = f64::from(self.shape.d);
        Resources {
            lut: 93.8 * d,
            ff: 1_718.8 * d,
            bram: 1.383 * d,
            uram: 0.0,
            dsp: 0.0,
        }
    }

    /// DMA resources (∝ HBM channel count).
    pub fn dma(&self) -> Resources {
        let ch = f64::from(self.hbm_channels);
        Resources {
            lut: 1_187.5 * ch,
            ff: 3_031.3 * ch,
            bram: 4.203 * ch,
            uram: 1.625 * ch,
            dsp: 0.0,
        }
    }

    /// Router resources (fixed: the Aurora-based link layer is light,
    /// §V-E).
    pub fn router(&self) -> Resources {
        Resources {
            lut: 3_000.0,
            ff: 13_000.0,
            bram: 24.0,
            uram: 0.0,
            dsp: 0.0,
        }
    }

    /// AXI interconnect between the kernels and the 32 memory channels.
    pub fn interconnect(&self) -> Resources {
        Resources {
            lut: 180_000.0,
            ff: 303_000.0,
            bram: 204.0,
            uram: 0.0,
            dsp: 4.0,
        }
    }

    /// The Vitis platform shell + HBM controllers (the gap between the
    /// component rows and the device totals in Fig 13).
    pub fn platform_shell(&self) -> Resources {
        Resources {
            lut: 87_000.0,
            ff: 148_000.0,
            bram: 683.5,
            uram: 52.0,
            dsp: 3.0,
        }
    }

    /// The full per-component table (Fig 13 layout).
    pub fn components(&self) -> Vec<ComponentUsage> {
        let rows = [
            ("Register File", self.register_file()),
            ("MPU", self.mpu()),
            ("VPU", self.vpu()),
            ("DMA", self.dma()),
            ("Router", self.router()),
            ("Interconnect", self.interconnect()),
            ("Platform Shell", self.platform_shell()),
        ];
        rows.into_iter()
            .map(|(name, used)| ComponentUsage {
                name: name.to_owned(),
                used,
            })
            .collect()
    }

    /// Total resources of the core (sum of all components).
    pub fn total(&self) -> Resources {
        self.components()
            .into_iter()
            .fold(Resources::default(), |acc, c| acc + c.used)
    }

    /// Checks the design fits the U280.
    pub fn fits_u280(&self) -> bool {
        let t = self.total();
        t.lut <= U280_CAPACITY.lut
            && t.ff <= U280_CAPACITY.ff
            && t.bram <= U280_CAPACITY.bram
            && t.uram <= U280_CAPACITY.uram
            && t.dsp <= U280_CAPACITY.dsp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(got: f64, want: f64, tol_pct: f64) -> bool {
        (got - want).abs() / want.max(1.0) * 100.0 <= tol_pct
    }

    #[test]
    fn paper_geometry_matches_fig13_anchors() {
        let m = ResourceModel::default();
        let mpu = m.mpu();
        assert!(close(mpu.lut, 170_000.0, 2.0), "MPU LUT {}", mpu.lut);
        assert!(close(mpu.ff, 381_000.0, 2.0), "MPU FF {}", mpu.ff);
        assert_eq!(mpu.dsp, 3_136.0, "MPU DSP must match 3·d·l + 4·l");
        assert!(close(mpu.bram, 56.0, 2.0));
        let vpu = m.vpu();
        assert!(close(vpu.lut, 36_000.0, 2.0));
        assert_eq!(vpu.dsp, 390.0);
        let dma = m.dma();
        assert!(close(dma.bram, 134.5, 2.0));
        assert_eq!(dma.uram, 52.0);
        let rf = m.register_file();
        assert!(close(rf.bram, 88.5, 2.0));
    }

    #[test]
    fn totals_match_fig13_device_utilisation() {
        let m = ResourceModel::default();
        let pct = m.total().percent_of(U280_CAPACITY);
        // Paper: 39.93% LUT, 42.52% FF, 59.13% BRAM, 10.83% URAM, 39.15% DSP.
        assert!(close(pct.lut, 39.93, 5.0), "LUT {}%", pct.lut);
        assert!(close(pct.ff, 42.52, 5.0), "FF {}%", pct.ff);
        assert!(close(pct.bram, 59.13, 5.0), "BRAM {}%", pct.bram);
        assert!(close(pct.uram, 10.83, 5.0), "URAM {}%", pct.uram);
        assert!(close(pct.dsp, 39.15, 5.0), "DSP {}%", pct.dsp);
    }

    #[test]
    fn smaller_d_with_larger_l_uses_more_mpu_resources() {
        // Fig 8b: d=16/l=64 requires more LUT/FF/BRAM than d=64/l=16 at
        // equal MAC count — the reason the paper standardises on d=64.
        let small_d = ResourceModel::with_shape(TileShape { d: 16, l: 64 }).mpu();
        let paper = ResourceModel::default().mpu();
        assert!(small_d.lut > 1.5 * paper.lut);
        assert!(small_d.ff > 1.3 * paper.ff);
        assert!(small_d.bram > 2.0 * paper.bram);
        assert!(small_d.dsp > paper.dsp);
    }

    #[test]
    fn all_dse_candidates_fit_the_device() {
        for shape in TileShape::DSE_CANDIDATES {
            let m = ResourceModel::with_shape(shape);
            assert!(m.fits_u280(), "{shape:?} does not fit");
        }
    }

    #[test]
    fn component_table_has_seven_rows() {
        let rows = ResourceModel::default().components();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[1].name, "MPU");
    }
}

//! The DFX tiling scheme (paper §V-B, Fig 9).
//!
//! Weights are stored in HBM as `d × l` tiles (d = tree depth of the MAC
//! units, l = number of lanes; the paper's design-space exploration fixes
//! d = 64, l = 16). The DMA walks the weight matrix in a *zigzag* order:
//! it fills a `d × d` block by stepping `l` columns at a time
//! horizontally, then moves to the block below, finishing a d-column
//! stripe before moving to the next stripe. This bounds the partial-sum
//! buffer to a single d-wide register while retaining input reuse within
//! a block.

use serde::{Deserialize, Serialize};

/// Geometry of the matrix datapath: MAC-tree depth and lane count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileShape {
    /// Rows per tile = MAC-tree fan-in (`d`).
    pub d: u32,
    /// Columns per tile = parallel lanes (`l`).
    pub l: u32,
}

impl TileShape {
    /// The paper's chosen configuration, d = 64, l = 16.
    pub const PAPER: TileShape = TileShape { d: 64, l: 16 };

    /// The design-space-exploration candidates of Fig 8.
    pub const DSE_CANDIDATES: [TileShape; 5] = [
        TileShape { d: 8, l: 128 },
        TileShape { d: 16, l: 64 },
        TileShape { d: 32, l: 32 },
        TileShape { d: 64, l: 16 },
        TileShape { d: 128, l: 8 },
    ];

    /// MACs per cycle (`d × l`).
    pub fn macs_per_cycle(self) -> u32 {
        self.d * self.l
    }

    /// FP16 bytes consumed per cycle when streaming full tiles.
    pub fn bytes_per_cycle(self) -> u32 {
        self.macs_per_cycle() * 2
    }

    /// Number of tiles needed to cover an `rows × cols` matrix.
    pub fn tile_count(self, rows: u32, cols: u32) -> u64 {
        u64::from(rows.div_ceil(self.d)) * u64::from(cols.div_ceil(self.l))
    }

    /// Number of vertical accumulation steps per output column stripe.
    pub fn row_tiles(self, rows: u32) -> u32 {
        rows.div_ceil(self.d)
    }
}

/// Weight-matrix traversal directions (paper Fig 9 discussion, §V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WalkOrder {
    /// The paper's choice: fill a `d × d` block horizontally, then move
    /// down the stripe; next stripe after the bottom. Balances input
    /// reuse against partial-sum buffering.
    #[default]
    Zigzag,
    /// Full rows first (maximum input reuse): every output column's
    /// partial sum stays live simultaneously, so the core would need
    /// `cols / l` partial-sum buffers — infeasible on-chip for
    /// emb-wide matrices ("completing the horizontal direction is
    /// infeasible").
    Horizontal,
    /// Full column stripes first (single partial-sum buffer): the input
    /// vector is re-fetched from the register file for every stripe,
    /// multiplying operand reads ("it removes input reuse... which
    /// decreases the throughput").
    Vertical,
}

/// Static analysis of a walk order over an `rows × cols` matrix: the
/// buffering and operand-traffic consequences the paper weighs in §V-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkAnalysis {
    /// Simultaneously live partial-sum vectors (in units of l-wide lane
    /// groups) the accumulator must buffer.
    pub partial_sum_groups: u32,
    /// How many times each d-wide input block is fetched from the
    /// register file over the whole matrix.
    pub input_fetches_per_block: u32,
}

impl WalkOrder {
    /// Analyses this order for an `rows × cols` matrix under `shape`.
    pub fn analysis(self, shape: TileShape, rows: u32, cols: u32) -> WalkAnalysis {
        let col_tiles = cols.div_ceil(shape.l).max(1);
        let stripe_tiles = cols.min(shape.d).div_ceil(shape.l).max(1);
        let stripes = cols.div_ceil(shape.d).max(1);
        let _ = rows;
        match self {
            WalkOrder::Horizontal => WalkAnalysis {
                partial_sum_groups: col_tiles,
                input_fetches_per_block: 1,
            },
            WalkOrder::Vertical => WalkAnalysis {
                partial_sum_groups: 1,
                input_fetches_per_block: col_tiles,
            },
            WalkOrder::Zigzag => WalkAnalysis {
                partial_sum_groups: stripe_tiles,
                input_fetches_per_block: stripes,
            },
        }
    }
}

/// One tile visited by the walker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tile {
    /// First row covered.
    pub row: u32,
    /// First column covered.
    pub col: u32,
    /// Rows in this tile (≤ d; short at the matrix edge).
    pub rows: u32,
    /// Columns in this tile (≤ l; short at the matrix edge).
    pub cols: u32,
}

/// Iterator over tiles of an `rows × cols` matrix in the zigzag order.
///
/// # Examples
///
/// ```
/// use dfx_hw::{TileShape, TileWalk};
///
/// let tiles: Vec<_> = TileWalk::new(TileShape::PAPER, 128, 64).collect();
/// assert_eq!(tiles.len(), 2 * 4); // 2 row-tiles x 4 col-tiles
/// // Walk order: block (0..64, 0..64) left-to-right, then the block below.
/// assert_eq!((tiles[0].row, tiles[0].col), (0, 0));
/// assert_eq!((tiles[1].row, tiles[1].col), (0, 16));
/// assert_eq!((tiles[4].row, tiles[4].col), (64, 0));
/// ```
#[derive(Debug, Clone)]
pub struct TileWalk {
    shape: TileShape,
    rows: u32,
    cols: u32,
    /// Current d-column stripe start.
    stripe: u32,
    /// Current row within the stripe.
    row: u32,
    /// Current column within the stripe.
    col: u32,
    done: bool,
}

impl TileWalk {
    /// Creates a walker over an `rows × cols` matrix.
    pub fn new(shape: TileShape, rows: u32, cols: u32) -> Self {
        TileWalk {
            shape,
            rows,
            cols,
            stripe: 0,
            row: 0,
            col: 0,
            done: rows == 0 || cols == 0,
        }
    }
}

impl Iterator for TileWalk {
    type Item = Tile;

    fn next(&mut self) -> Option<Tile> {
        if self.done {
            return None;
        }
        let d = self.shape.d;
        let l = self.shape.l;
        // A stripe is a d-wide block for l ≤ d (the paper's geometry); a
        // wide-lane design (l > d) degenerates to one tile per block row.
        let stripe_width = d.max(l);
        let stripe_end = (self.stripe + stripe_width).min(self.cols);
        let tile = Tile {
            row: self.row,
            col: self.col,
            rows: (self.rows - self.row).min(d),
            cols: (stripe_end - self.col).min(l),
        };

        // Advance: horizontally within the block, then down the stripe,
        // then to the next stripe.
        self.col += l;
        if self.col >= stripe_end {
            self.col = self.stripe;
            self.row += d;
            if self.row >= self.rows {
                self.row = 0;
                self.stripe += stripe_width;
                self.col = self.stripe;
                if self.stripe >= self.cols {
                    self.done = true;
                }
            }
        }
        Some(tile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn paper_shape_constants() {
        let s = TileShape::PAPER;
        assert_eq!(s.macs_per_cycle(), 1024);
        assert_eq!(s.bytes_per_cycle(), 2048); // exactly the HBM peak
        assert_eq!(s.tile_count(1536, 1536), 24 * 96);
        assert_eq!(s.row_tiles(1536), 24);
    }

    #[test]
    fn walk_covers_matrix_exactly_once() {
        for (rows, cols) in [(64u32, 64u32), (128, 48), (100, 33), (1, 1), (65, 17)] {
            let mut covered = HashSet::new();
            let mut count = 0u64;
            for t in TileWalk::new(TileShape::PAPER, rows, cols) {
                count += 1;
                for r in t.row..t.row + t.rows {
                    for c in t.col..t.col + t.cols {
                        assert!(covered.insert((r, c)), "({r},{c}) covered twice");
                        assert!(r < rows && c < cols, "({r},{c}) out of bounds");
                    }
                }
            }
            assert_eq!(covered.len() as u64, u64::from(rows) * u64::from(cols));
            assert_eq!(count, TileShape::PAPER.tile_count(rows, cols));
        }
    }

    #[test]
    fn zigzag_finishes_a_stripe_before_moving_right() {
        // 128x128 with d=64,l=16: stripe 0 = cols 0..64 over both row
        // blocks (8 tiles) before any tile with col >= 64 appears.
        let tiles: Vec<_> = TileWalk::new(TileShape::PAPER, 128, 128).collect();
        let first_right = tiles.iter().position(|t| t.col >= 64).unwrap();
        assert_eq!(first_right, 8);
        for t in &tiles[..8] {
            assert!(t.col < 64);
        }
    }

    #[test]
    fn edge_tiles_are_clipped() {
        let tiles: Vec<_> = TileWalk::new(TileShape::PAPER, 100, 33).collect();
        let last = tiles.last().unwrap();
        assert!(last.rows <= 64 && last.cols <= 16);
        assert!(tiles.iter().any(|t| t.rows == 36), "clipped row tile");
        assert!(tiles.iter().any(|t| t.cols == 1), "clipped col tile");
    }

    #[test]
    fn empty_matrix_yields_no_tiles() {
        assert_eq!(TileWalk::new(TileShape::PAPER, 0, 10).count(), 0);
        assert_eq!(TileWalk::new(TileShape::PAPER, 10, 0).count(), 0);
    }

    #[test]
    fn dse_candidates_all_have_1024_macs() {
        for s in TileShape::DSE_CANDIDATES {
            assert_eq!(s.macs_per_cycle(), 1024, "{s:?}");
        }
    }

    #[test]
    fn walk_order_tradeoffs_match_fig9_reasoning() {
        // FFN1 on the 1.5B model, one core of four: 1536 x 1536.
        let s = TileShape::PAPER;
        let horizontal = WalkOrder::Horizontal.analysis(s, 1536, 1536);
        let vertical = WalkOrder::Vertical.analysis(s, 1536, 1536);
        let zigzag = WalkOrder::Zigzag.analysis(s, 1536, 1536);

        // Horizontal: 96 live partial-sum groups — "a significant number
        // of buffers" (infeasible); but perfect input reuse.
        assert_eq!(horizontal.partial_sum_groups, 96);
        assert_eq!(horizontal.input_fetches_per_block, 1);
        // Vertical: one buffer, but the input re-fetched 96 times —
        // "increases the amount of register file access".
        assert_eq!(vertical.partial_sum_groups, 1);
        assert_eq!(vertical.input_fetches_per_block, 96);
        // Zigzag: d-wide buffering (4 lane groups) and 24 input fetches —
        // the balanced point the paper standardises on.
        assert_eq!(zigzag.partial_sum_groups, 4);
        assert_eq!(zigzag.input_fetches_per_block, 24);
        assert!(zigzag.partial_sum_groups < horizontal.partial_sum_groups / 10);
        assert!(zigzag.input_fetches_per_block < vertical.input_fetches_per_block / 2);
    }

    #[test]
    fn narrow_matrices_collapse_the_orders() {
        // For cols <= d all three orders coincide in buffering.
        let s = TileShape::PAPER;
        for order in [
            WalkOrder::Horizontal,
            WalkOrder::Vertical,
            WalkOrder::Zigzag,
        ] {
            let a = order.analysis(s, 256, 48);
            assert!(a.partial_sum_groups <= 3, "{order:?}: {a:?}");
        }
    }
}

//! # dfx-hw — hardware substrate models for the DFX appliance
//!
//! Timing, capacity and resource models of everything around the compute
//! core: the 32-channel HBM2 and the DDR4 channel, the DMA engine with
//! the paper's zigzag `d × l` tiling scheme and Value-transpose path, the
//! Aurora 64b/66b ring network, the FPGA resource accounting of Fig 13,
//! and the board power model.
//!
//! All costs are in kernel-clock [`Cycles`] (200 MHz). The functional
//! data plane lives in `dfx-core`; this crate answers "how long does it
//! take" and "does it fit".
//!
//! ```
//! use dfx_hw::{DmaModel, RingModel};
//!
//! let dma = DmaModel::default();
//! // Stream one 1536x384 FP16 weight partition from HBM:
//! let cycles = dma.weight_stream_cycles(1536, 384);
//! assert!(cycles.to_micros() > 3.0 && cycles.to_micros() < 7.0);
//! // All-gather a 768-byte partial across a 4-FPGA ring:
//! let sync = RingModel::new(4).allgather_cycles(768);
//! assert!(sync.to_micros() > 4.0);
//! ```

#![warn(missing_docs)]

mod clock;
mod dma;
mod memory;
mod net;
mod power;
mod resource;
mod tile;

pub use clock::{Cycles, CORE_CLOCK_HZ};
pub use dma::DmaModel;
pub use memory::{DdrModel, HbmModel, MemoryModel};
pub use net::{allgather_reorder, argmax_reduce, LinkModel, RingModel};
pub use power::PowerModel;
pub use resource::{ComponentUsage, ResourceModel, Resources, U280_CAPACITY};
pub use tile::{Tile, TileShape, TileWalk, WalkAnalysis, WalkOrder};

//! Property-based tests for the hardware substrate models.

use dfx_hw::{Cycles, DmaModel, HbmModel, ResourceModel, RingModel, TileShape, TileWalk};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_shape() -> impl Strategy<Value = TileShape> {
    prop_oneof![
        Just(TileShape { d: 8, l: 128 }),
        Just(TileShape { d: 16, l: 64 }),
        Just(TileShape { d: 32, l: 32 }),
        Just(TileShape { d: 64, l: 16 }),
        Just(TileShape { d: 128, l: 8 }),
    ]
}

proptest! {
    #[test]
    fn tile_walk_partitions_any_matrix(
        shape in arb_shape(),
        rows in 1u32..300,
        cols in 1u32..300,
    ) {
        let mut seen = HashSet::new();
        let mut tiles = 0u64;
        for t in TileWalk::new(shape, rows, cols) {
            tiles += 1;
            prop_assert!(t.rows >= 1 && t.rows <= shape.d);
            prop_assert!(t.cols >= 1 && t.cols <= shape.l);
            for r in t.row..t.row + t.rows {
                for c in t.col..t.col + t.cols {
                    prop_assert!(r < rows && c < cols);
                    prop_assert!(seen.insert((r, c)), "({r},{c}) double-covered");
                }
            }
        }
        prop_assert_eq!(seen.len() as u64, u64::from(rows) * u64::from(cols));
        prop_assert_eq!(tiles, shape.tile_count(rows, cols));
    }

    #[test]
    fn hbm_stream_cycles_are_monotone_in_bytes(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        let hbm = HbmModel::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(hbm.stream_cycles(lo) <= hbm.stream_cycles(hi));
    }

    #[test]
    fn weight_stream_dominates_raw_bytes(rows in 1u32..2048, cols in 1u32..2048) {
        // Padded tiles can only add bytes, never remove them.
        let dma = DmaModel::default();
        let padded = dma.weight_stream_cycles(rows, cols);
        let raw = dma.hbm.stream_cycles(u64::from(rows) * u64::from(cols) * 2);
        prop_assert!(padded >= raw, "{padded} < {raw}");
    }

    #[test]
    fn allgather_is_monotone_in_nodes_and_bytes(
        nodes in 2u32..=8,
        bytes in 1u64..100_000,
    ) {
        let small = RingModel::new(nodes).allgather_cycles(bytes);
        let more_nodes = RingModel::new(nodes + 1).allgather_cycles(bytes);
        let more_bytes = RingModel::new(nodes).allgather_cycles(bytes * 2);
        prop_assert!(more_nodes > small);
        prop_assert!(more_bytes >= small);
        prop_assert!(small > Cycles::ZERO);
    }

    #[test]
    fn mpu_resources_grow_with_lane_count(shape in arb_shape()) {
        // Per-lane resources grow with l at fixed MAC count (the paper's
        // reason for choosing d = 64 among the performance tie).
        let model = ResourceModel::with_shape(shape);
        let paper = ResourceModel::default();
        let m = model.mpu();
        let p = paper.mpu();
        if shape.l > 16 {
            prop_assert!(m.lut > p.lut);
            prop_assert!(m.dsp >= p.dsp);
        }
        // Everything stays placeable.
        prop_assert!(model.fits_u280());
    }
}

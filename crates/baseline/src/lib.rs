//! # dfx-baseline — the paper's comparison platforms
//!
//! Analytic performance models of the evaluation baselines: a custom
//! appliance of NVIDIA V100 GPUs running Megatron-LM (the primary
//! comparison of Figs 3, 4, 14, 16 and Table II) and a cloud TPU
//! (Fig 17). We have no access to either device; every constant is fitted
//! to data points published in the paper and documented next to its
//! anchor in the `calib` modules — see DESIGN.md for the substitution
//! rationale.
//!
//! ```
//! use dfx_baseline::GpuModel;
//! use dfx_model::{GptConfig, Workload};
//!
//! let gpu = GpuModel::new(GptConfig::gpt2_345m(), 1);
//! let r = gpu.run(Workload::new(32, 16));
//! assert!(r.generation_ms > r.summarization_ms);
//! ```

#![warn(missing_docs)]

mod gpu;
mod tpu;

pub use gpu::{calib as gpu_calib, GpuLayerBreakdown, GpuModel, GpuReport};
pub use tpu::{calib as tpu_calib, TpuModel, TpuReport};

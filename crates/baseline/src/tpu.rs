//! Analytic model of the cloud TPU comparison point (paper Fig 17).
//!
//! The paper runs the 345M model on a cloud TPU and reports GFLOPS of
//! 674.5 (summarization), 8.2 (generation) and 16.1 (total) for the 64:64
//! workload. The systolic array batches the summarization pass
//! efficiently but is severely underutilised by the batch-1 feedback loop
//! of generation, which additionally pays a host round-trip per token.
//! Constants are fitted to those three published numbers.

use dfx_model::{flops, GptConfig, Workload};
use serde::{Deserialize, Serialize};

/// Calibration constants for the TPU model.
pub mod calib {
    /// Per-layer step overhead at batch 1, µs (XLA dispatch + systolic
    /// fill/drain at 128×128 granularity).
    pub const LAYER_US: f64 = 2_700.0;
    /// Host round-trip per generated token, ms (the feedback loop leaves
    /// the device between steps).
    pub const HOST_ROUNDTRIP_MS: f64 = 20.0;
    /// Effective batched throughput during summarization, TFLOPS.
    pub const SUMMARIZATION_TFLOPS: f64 = 12.0;
}

/// Result of simulating a workload on the TPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TpuReport {
    /// Summarization latency, ms.
    pub summarization_ms: f64,
    /// Generation latency, ms.
    pub generation_ms: f64,
}

impl TpuReport {
    /// End-to-end latency, ms.
    pub fn total_ms(&self) -> f64 {
        self.summarization_ms + self.generation_ms
    }
}

/// The cloud-TPU model.
#[derive(Debug, Clone)]
pub struct TpuModel {
    cfg: GptConfig,
}

impl TpuModel {
    /// Creates a TPU model for `cfg`.
    pub fn new(cfg: GptConfig) -> Self {
        TpuModel { cfg }
    }

    /// The model configuration.
    pub fn config(&self) -> &GptConfig {
        &self.cfg
    }

    /// One generation step, ms.
    pub fn generation_step_ms(&self) -> f64 {
        calib::LAYER_US * self.cfg.num_layers as f64 / 1e3 + calib::HOST_ROUNDTRIP_MS
    }

    /// The summarization pass over `n` tokens, ms.
    pub fn summarization_pass_ms(&self, n: usize) -> f64 {
        let base = calib::LAYER_US * self.cfg.num_layers as f64 / 1e3;
        let fl = n as f64 * flops::token_step_flops(&self.cfg, n).total();
        base + fl / (calib::SUMMARIZATION_TFLOPS * 1e12) * 1e3
    }

    /// Runs a workload.
    pub fn run(&self, workload: Workload) -> TpuReport {
        TpuReport {
            summarization_ms: self.summarization_pass_ms(workload.input_len),
            generation_ms: (workload.output_len.saturating_sub(1)) as f64
                * self.generation_step_ms(),
        }
    }

    /// Average GFLOPS per stage and total (Fig 17).
    pub fn stage_gflops(&self, workload: Workload) -> (f64, f64, f64) {
        let fl = flops::workload_flops(&self.cfg, workload);
        let r = self.run(workload);
        let s = fl.summarization / (r.summarization_ms / 1e3) / 1e9;
        let g = if r.generation_ms > 0.0 {
            fl.generation / (r.generation_ms / 1e3) / 1e9
        } else {
            0.0
        };
        let t = fl.total() / (r.total_ms() / 1e3) / 1e9;
        (s, g, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig17_gflops_anchors() {
        // Paper: 674.5 / 8.2 / 16.1 GFLOPS for 345M at 64:64.
        let tpu = TpuModel::new(GptConfig::gpt2_345m());
        let (s, g, t) = tpu.stage_gflops(Workload::chatbot());
        assert!((s - 674.5).abs() / 674.5 < 0.30, "summarization {s}");
        assert!((g - 8.2).abs() / 8.2 < 0.20, "generation {g}");
        assert!((t - 16.1).abs() / 16.1 < 0.30, "total {t}");
    }

    #[test]
    fn tpu_generation_is_slower_than_gpu() {
        let tpu = TpuModel::new(GptConfig::gpt2_345m());
        // ~85 ms/token (0.69 GFLOP at 8.2 GFLOPS).
        let step = tpu.generation_step_ms();
        assert!(step > 60.0 && step < 110.0, "{step} ms");
    }
}

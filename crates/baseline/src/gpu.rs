//! Analytic model of the paper's GPU appliance: NVIDIA V100s running
//! Megatron-LM (paper §VII).
//!
//! We cannot measure V100s, but the paper publishes enough GPU data to
//! fit a small mechanistic model — see `calib` for every constant and the
//! data point it is fitted against. The model's structure follows how
//! Megatron-LM actually executes a decoder layer at batch 1:
//!
//! - per-layer time in the generation stage is dominated by *fixed
//!   per-kernel overhead* (kernel launch + framework dispatch + small
//!   tensor ops), which is why the paper measures ~1.55 ms/layer for
//!   every model size (Fig 14) and why LayerNorm + Residual consume 22.8%
//!   of GPU time at 0.11% of the FLOPs (Fig 4);
//! - GEMV weight traffic adds `bytes / (HBM2 bandwidth × batch-1
//!   efficiency)`;
//! - tensor-parallel execution adds two NCCL all-reduces per layer;
//! - the summarization stage processes all context tokens in one pass:
//!   one per-pass overhead plus a compute term that grows at
//!   ~0.02 ms/token (Fig 3), plus a one-time multi-GPU warm-up.

use dfx_model::{flops, GptConfig, Workload};
use serde::{Deserialize, Serialize};

/// Calibration constants for the GPU model. Each is documented with the
/// paper anchor it reproduces.
pub mod calib {
    /// Fixed per-layer LayerNorm time, µs (two unfused norms ≈ 10
    /// kernels). Anchor: Fig 4's 9.9% latency share.
    pub const LN_US_PER_LAYER: f64 = 150.0;
    /// Fixed per-layer residual time, µs (adds, dropout, copies).
    /// Anchor: Fig 4's 12.9% share.
    pub const RESIDUAL_US_PER_LAYER: f64 = 195.0;
    /// Fixed per-layer self-attention overhead, µs (QKV/reshape/softmax/
    /// context/proj kernel chain at batch 1). Anchor: Fig 4's 56.5% share
    /// together with the GEMV term.
    pub const ATTN_BASE_US_PER_LAYER: f64 = 850.0;
    /// Fixed per-layer FFN overhead, µs. Anchor: Fig 4's 20.7% share
    /// together with the GEMV term.
    pub const FFN_BASE_US_PER_LAYER: f64 = 160.0;
    /// V100 HBM2 bandwidth, GB/s.
    pub const HBM_GBPS: f64 = 900.0;
    /// Fraction of HBM bandwidth a batch-1 FP16 GEMV sustains (cuBLAS).
    /// Anchor: the residual model-size dependence of Fig 14's per-token
    /// slopes (37.3 / 61.3 / 74.5 ms per token).
    pub const GEMV_BW_EFF: f64 = 0.15;
    /// One NCCL all-reduce of a batch-1 activation, µs. Anchor: the gap
    /// between single- and multi-GPU per-layer times.
    pub const ALLREDUCE_US: f64 = 40.0;
    /// One-time multi-GPU warm-up per generation request, ms per peer
    /// GPU. Anchor: Fig 14's `[32:1]` minus the per-token slope
    /// (≈ 0.1 / 4.5 / 11.5 ms for 1 / 2 / 4 GPUs).
    pub const WARMUP_MS_PER_PEER: f64 = 3.8;
    /// Effective FP16 tensor throughput during the batched summarization
    /// pass, TFLOPS per GPU. Anchor: Fig 3's ~0.02 ms per input token.
    pub const SUMMARIZATION_TFLOPS: f64 = 25.0;
    /// LM head + final norm + embedding per emitted token, µs.
    pub const HEAD_US: f64 = 250.0;
    /// Measured average board power per V100 during text generation, W
    /// (paper §VII-B, nvidia-smi).
    pub const GPU_POWER_W: f64 = 47.5;
}

/// Latency of one op class per decoder layer in the generation stage, µs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GpuLayerBreakdown {
    /// LayerNorm.
    pub layer_norm_us: f64,
    /// Self-attention (including its all-reduce).
    pub self_attention_us: f64,
    /// Residual.
    pub residual_us: f64,
    /// FFN (including its all-reduce).
    pub ffn_us: f64,
}

impl GpuLayerBreakdown {
    /// Total µs per layer.
    pub fn total_us(&self) -> f64 {
        self.layer_norm_us + self.self_attention_us + self.residual_us + self.ffn_us
    }

    /// Percentage shares in Fig 4 order (LN, SA, Residual, FFN).
    pub fn shares_percent(&self) -> [f64; 4] {
        let t = self.total_us();
        [
            100.0 * self.layer_norm_us / t,
            100.0 * self.self_attention_us / t,
            100.0 * self.residual_us / t,
            100.0 * self.ffn_us / t,
        ]
    }
}

/// Result of simulating a workload on the GPU appliance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuReport {
    /// Summarization-stage latency (first pass over the context), ms.
    pub summarization_ms: f64,
    /// Generation-stage latency (remaining output tokens), ms.
    pub generation_ms: f64,
    /// Average board power across the appliance, W.
    pub power_w: f64,
}

impl GpuReport {
    /// End-to-end latency, ms.
    pub fn total_ms(&self) -> f64 {
        self.summarization_ms + self.generation_ms
    }

    /// Output tokens per second for `workload`.
    pub fn tokens_per_second(&self, workload: Workload) -> f64 {
        workload.output_len as f64 / (self.total_ms() / 1e3)
    }

    /// Output tokens per joule.
    pub fn tokens_per_joule(&self, workload: Workload) -> f64 {
        self.tokens_per_second(workload) / self.power_w
    }
}

/// The V100/Megatron-LM appliance model.
///
/// # Examples
///
/// ```
/// use dfx_baseline::GpuModel;
/// use dfx_model::{GptConfig, Workload};
///
/// let gpu = GpuModel::new(GptConfig::gpt2_1_5b(), 4);
/// let report = gpu.run(Workload::new(32, 256));
/// // The generation stage dominates: ~75 ms per output token.
/// assert!(report.total_ms() > 15_000.0);
/// ```
#[derive(Debug, Clone)]
pub struct GpuModel {
    cfg: GptConfig,
    gpus: usize,
}

impl GpuModel {
    /// Creates a model of `gpus` V100s running `cfg` with Megatron-LM
    /// tensor parallelism.
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is zero.
    pub fn new(cfg: GptConfig, gpus: usize) -> Self {
        assert!(gpus > 0, "at least one GPU");
        GpuModel { cfg, gpus }
    }

    /// Number of GPUs.
    pub fn gpus(&self) -> usize {
        self.gpus
    }

    /// The model configuration.
    pub fn config(&self) -> &GptConfig {
        &self.cfg
    }

    /// Weight bytes streamed per layer per GPU for a batch-1 step.
    fn layer_gemv_bytes(&self) -> (f64, f64) {
        let e = self.cfg.embedding_dim as f64;
        let f = self.cfg.ffn_dim as f64;
        let g = self.gpus as f64;
        let attn = 4.0 * e * e * 2.0 / g; // QKV + proj
        let ffn = 2.0 * e * f * 2.0 / g; // up + down
        (attn, ffn)
    }

    /// Per-layer breakdown of one generation-stage step at context
    /// length `t` (batch 1; see [`layer_breakdown_batched`]).
    ///
    /// [`layer_breakdown_batched`]: GpuModel::layer_breakdown_batched
    pub fn layer_breakdown(&self, t: usize) -> GpuLayerBreakdown {
        self.layer_breakdown_batched(t, 1)
    }

    /// Per-layer breakdown of one generation-stage step at context
    /// length `t` for a batch of `batch` requests.
    ///
    /// This is where the GPU wins throughput back (the trade-off §III-A
    /// argues about): the per-kernel fixed overheads — the batch-1
    /// bottleneck — are *constant* in the batch, and the weight matrices
    /// stream from HBM once, turning the GEMV into a GEMM whose time is
    /// `max(weight stream, batched compute)`. Only per-request traffic
    /// scales: KV-cache reads (each request has its own cache) and the
    /// batched compute term at the sustained tensor throughput. A batch
    /// of one reproduces [`layer_breakdown`] exactly.
    ///
    /// [`layer_breakdown`]: GpuModel::layer_breakdown
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn layer_breakdown_batched(&self, t: usize, batch: usize) -> GpuLayerBreakdown {
        assert!(batch > 0, "batch must be at least 1");
        let b = batch as f64;
        let (attn_bytes, ffn_bytes) = self.layer_gemv_bytes();
        let gemv_us = |bytes: f64| bytes / (calib::HBM_GBPS * calib::GEMV_BW_EFF * 1e9) * 1e6;
        // FP16 weights carry 2 bytes and 2 FLOPs per parameter, so the
        // per-member compute FLOPs of a streamed operand equal its byte
        // count; the batched GEMM runs at the same sustained tensor
        // throughput the summarization pass is calibrated to.
        let compute_us = |bytes: f64| b * bytes / (calib::SUMMARIZATION_TFLOPS * 1e12) * 1e6;
        let allreduce = if self.gpus > 1 {
            calib::ALLREDUCE_US
        } else {
            0.0
        };
        // KV cache reads grow with context, per batch member.
        let kv_bytes = t as f64 * 2.0 * self.cfg.embedding_dim as f64 * 2.0 / self.gpus as f64;
        GpuLayerBreakdown {
            layer_norm_us: calib::LN_US_PER_LAYER,
            self_attention_us: calib::ATTN_BASE_US_PER_LAYER
                + gemv_us(attn_bytes + b * kv_bytes).max(compute_us(attn_bytes + kv_bytes))
                + allreduce,
            residual_us: calib::RESIDUAL_US_PER_LAYER,
            ffn_us: calib::FFN_BASE_US_PER_LAYER
                + gemv_us(ffn_bytes).max(compute_us(ffn_bytes))
                + allreduce,
        }
    }

    /// One generation-stage token step (full decoder pass at batch 1), ms.
    pub fn generation_step_ms(&self, t: usize) -> f64 {
        self.generation_step_ms_batched(t, 1)
    }

    /// One generation-stage token step for a batch of `batch` requests,
    /// ms. The decoder pass amortises ([`layer_breakdown_batched`]); the
    /// LM head still runs per emitted token, i.e. per member.
    ///
    /// [`layer_breakdown_batched`]: GpuModel::layer_breakdown_batched
    pub fn generation_step_ms_batched(&self, t: usize, batch: usize) -> f64 {
        let per_layer = self.layer_breakdown_batched(t, batch).total_us();
        (per_layer * self.cfg.num_layers as f64 + calib::HEAD_US * batch as f64) / 1e3
    }

    /// The summarization pass over `n` context tokens, ms: one decoder
    /// pass (kernel-overhead bound, like a generation step) plus the
    /// batched compute for the extra tokens and the one-time multi-GPU
    /// warm-up.
    pub fn summarization_pass_ms(&self, n: usize) -> f64 {
        self.summarization_pass_ms_batched(n, 1)
    }

    /// The summarization pass over `n` context tokens for a batch of
    /// `batch` requests, ms. Summarization is already compute-bound at
    /// batch 1, so its cost scales with the batch's token work
    /// (`batch × n` tokens through the same sustained throughput).
    pub fn summarization_pass_ms_batched(&self, n: usize, batch: usize) -> f64 {
        let base = self.generation_step_ms_batched(n, batch);
        let flops_per_token = flops::token_step_flops(&self.cfg, n).total();
        let batched_ms = (batch as f64 * n as f64 * flops_per_token)
            / (self.gpus as f64 * calib::SUMMARIZATION_TFLOPS * 1e12)
            * 1e3;
        let warmup = calib::WARMUP_MS_PER_PEER * (self.gpus as f64 - 1.0);
        base + batched_ms + warmup
    }

    /// Runs a workload.
    pub fn run(&self, workload: Workload) -> GpuReport {
        self.run_batch(&[workload])
    }

    /// Runs a coalesced batch of workloads, padded to the longest
    /// context and longest output among the members (standard static
    /// batching). `run_batch(&[w])` equals [`run`]`(w)` bit for bit.
    ///
    /// [`run`]: GpuModel::run
    ///
    /// # Panics
    ///
    /// Panics if `batch` is empty.
    pub fn run_batch(&self, batch: &[Workload]) -> GpuReport {
        assert!(!batch.is_empty(), "empty batch");
        let input_len = batch
            .iter()
            .map(|w| w.input_len)
            .max()
            .expect("non-empty batch");
        let output_len = batch
            .iter()
            .map(|w| w.output_len)
            .max()
            .expect("non-empty batch");
        let summarization_ms = self.summarization_pass_ms_batched(input_len, batch.len());
        let mut generation_ms = 0.0;
        for out in 1..output_len {
            generation_ms += self.generation_step_ms_batched(input_len + out, batch.len());
        }
        GpuReport {
            summarization_ms,
            generation_ms,
            power_w: calib::GPU_POWER_W * self.gpus as f64,
        }
    }

    /// Average GFLOPS over a stage (used by Fig 17): model FLOPs divided
    /// by the modelled stage time.
    pub fn stage_gflops(&self, workload: Workload) -> (f64, f64, f64) {
        let fl = flops::workload_flops(&self.cfg, workload);
        let report = self.run(workload);
        let s = fl.summarization / (report.summarization_ms / 1e3) / 1e9;
        let g = if report.generation_ms > 0.0 {
            fl.generation / (report.generation_ms / 1e3) / 1e9
        } else {
            0.0
        };
        let t = fl.total() / (report.total_ms() / 1e3) / 1e9;
        (s, g, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slope_ms_per_token(cfg: GptConfig, gpus: usize) -> f64 {
        let m = GpuModel::new(cfg, gpus);
        let short = m.run(Workload::new(32, 1)).total_ms();
        let long = m.run(Workload::new(32, 4)).total_ms();
        (long - short) / 3.0
    }

    #[test]
    fn per_output_token_slopes_match_fig14() {
        // Paper: ~37.3 (345M/1), ~61.3 (774M/2), ~74.5 (1.5B/4) ms/token.
        let s345 = slope_ms_per_token(GptConfig::gpt2_345m(), 1);
        assert!((s345 - 37.3).abs() / 37.3 < 0.10, "345M slope {s345}");
        let s774 = slope_ms_per_token(GptConfig::gpt2_774m(), 2);
        assert!((s774 - 61.3).abs() / 61.3 < 0.12, "774M slope {s774}");
        let s15 = slope_ms_per_token(GptConfig::gpt2_1_5b(), 4);
        assert!((s15 - 74.5).abs() / 74.5 < 0.10, "1.5B slope {s15}");
    }

    #[test]
    fn input_tokens_are_nearly_free() {
        // Fig 3: ~0.02 ms per additional input token.
        let m = GpuModel::new(GptConfig::gpt2_1_5b(), 4);
        let small = m.run(Workload::new(32, 1)).total_ms();
        let large = m.run(Workload::new(128, 1)).total_ms();
        let slope = (large - small) / 96.0;
        assert!(
            slope > 0.005 && slope < 0.08,
            "input slope {slope} ms/token"
        );
    }

    #[test]
    fn fig14_32_1_anchor() {
        let m = GpuModel::new(GptConfig::gpt2_1_5b(), 4);
        let got = m.run(Workload::new(32, 1)).total_ms();
        assert!(
            (got - 86.7).abs() / 86.7 < 0.10,
            "[32:1] = {got} ms vs 86.7"
        );
    }

    #[test]
    fn breakdown_shares_match_fig4() {
        // Paper Fig 4 latency: LN 9.9%, SA 56.5%, Residual 12.9%, FFN 20.7%.
        let m = GpuModel::new(GptConfig::gpt2_1_5b(), 4);
        let [ln, sa, res, ffn] = m.layer_breakdown(64).shares_percent();
        assert!((ln - 9.9).abs() < 2.0, "LN {ln}%");
        assert!((sa - 56.5).abs() < 4.0, "SA {sa}%");
        assert!((res - 12.9).abs() < 2.0, "Residual {res}%");
        assert!((ffn - 20.7).abs() < 4.0, "FFN {ffn}%");
    }

    #[test]
    fn throughput_anchor_table2() {
        // Table II: 13.01 tokens/s at 1.5B, 64:64.
        let m = GpuModel::new(GptConfig::gpt2_1_5b(), 4);
        let w = Workload::chatbot();
        let tps = m.run(w).tokens_per_second(w);
        assert!((tps - 13.01).abs() / 13.01 < 0.10, "tokens/s {tps}");
    }

    #[test]
    fn summarization_gflops_dwarf_generation_gflops() {
        // Fig 17 shape: GPU is efficient in summarization, collapses in
        // generation.
        let m = GpuModel::new(GptConfig::gpt2_345m(), 1);
        let (s, g, _) = m.stage_gflops(Workload::chatbot());
        assert!(s / g > 10.0, "summ {s} vs gen {g}");
    }

    #[test]
    fn batch_of_one_is_bit_identical_to_the_unbatched_run() {
        let m = GpuModel::new(GptConfig::gpt2_1_5b(), 4);
        let w = Workload::chatbot();
        assert_eq!(m.run_batch(&[w]), m.run(w));
        assert_eq!(m.layer_breakdown_batched(64, 1), m.layer_breakdown(64));
        assert_eq!(
            m.summarization_pass_ms_batched(64, 1),
            m.summarization_pass_ms(64)
        );
    }

    #[test]
    fn batch_cost_is_monotone_and_amortises_decode() {
        let m = GpuModel::new(GptConfig::gpt2_1_5b(), 4);
        let w = Workload::chatbot();
        let mut prev = 0.0;
        for b in 1..=16 {
            let t = m.run_batch(&vec![w; b]).total_ms();
            assert!(t >= prev, "batch {b} got cheaper: {t} < {prev}");
            prev = t;
        }
        // The batch-1 GPU decode is kernel-overhead and weight-stream
        // bound, so an 8-way batch costs nowhere near 8x — this is the
        // throughput the GPU appliance wins back by batching.
        let one = m.run(w).total_ms();
        let eight = m.run_batch(&[w; 8]).total_ms();
        assert!(
            eight < 2.0 * one,
            "8-way batch should amortise: {eight} vs 8x{one}"
        );
    }

    #[test]
    fn batched_runs_pad_to_the_largest_member() {
        let m = GpuModel::new(GptConfig::gpt2_345m(), 1);
        let mixed = m.run_batch(&[Workload::new(16, 8), Workload::new(64, 32)]);
        let uniform = m.run_batch(&[Workload::new(64, 32), Workload::new(64, 32)]);
        assert_eq!(mixed, uniform);
    }

    #[test]
    fn generation_dominates_for_long_outputs() {
        let m = GpuModel::new(GptConfig::gpt2_1_5b(), 4);
        let r = m.run(Workload::new(32, 256));
        assert!(r.generation_ms > 50.0 * r.summarization_ms);
    }
}

//! Production observability for the serving stack: metrics, traces,
//! and energy attribution — all in simulated time.
//!
//! Real serving stacks (TGI, vLLM, Triton) expose three things the
//! batch-report simulator historically folded away: a *metrics
//! endpoint* (Prometheus text exposition), *per-request traces* (what
//! happened to request 17, token by token), and *per-request cost*
//! (energy, the axis DFX's Table 2 argues on). This module supplies
//! all three without any external dependency, and — because every
//! timestamp is simulator time — every export is bit-identical across
//! runs and passes `dfx-lint`'s ambient-time rule by construction.
//!
//! - [`MetricsRegistry`] — counters, gauges and log-bucketed histograms
//!   (fixed deterministic bounds, exact integer counts) keyed by metric
//!   name and a sorted [`Labels`] set, rendered with [`render`] in
//!   Prometheus text exposition format and checked line-by-line with
//!   [`validate_prometheus`].
//! - [`RunTrace`] / [`RequestTrace`] — the per-request lifecycle
//!   (queued → prefill → per-token decode → a terminal
//!   [`SpanOutcome`]) assembled by
//!   [`ServingEngine::run_traced`](crate::ServingEngine::run_traced)
//!   from engine events and
//!   [`StepEvent`](crate::StepEvent)s, exported as Chrome trace-event
//!   JSON ([`RunTrace::to_chrome_json`]) so any run opens in
//!   `chrome://tracing` / Perfetto.
//! - [`Json`] — a minimal JSON tree with a parser that keeps number
//!   lexemes verbatim, so the round trip `render(parse(t)) == t` holds
//!   exactly for any text this module emits (the CI smoke check).
//! - [`record_service_report`] / [`record_cluster_report`] — the
//!   canonical metric catalog over a [`ServiceReport`] or
//!   [`ClusterReport`], with per-replica labels at the cluster tier.
//!
//! [`render`]: MetricsRegistry::render

use crate::cluster::ClusterReport;
use crate::engine::{Response, ServiceReport};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// Labels
// ---------------------------------------------------------------------

/// A sorted label set (`key="value"` pairs) identifying one series of
/// a metric. Keys are kept in a [`BTreeMap`], so two label sets with
/// the same pairs render identically regardless of insertion order.
///
/// # Examples
///
/// ```
/// use dfx_serve::telemetry::Labels;
/// let l = Labels::new().with("backend", "dfx").with("tier", "engine");
/// assert_eq!(l.render(), r#"backend="dfx",tier="engine""#);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Labels {
    pairs: BTreeMap<String, String>,
}

impl Labels {
    /// An empty label set.
    pub fn new() -> Self {
        Labels::default()
    }

    /// Returns the set with `key` set to `value` (replacing any
    /// previous value for `key`).
    #[must_use]
    pub fn with(mut self, key: &str, value: &str) -> Self {
        self.pairs.insert(key.to_string(), value.to_string());
        self
    }

    /// The canonical `key="value",...` rendering, sorted by key, with
    /// `\`, `"` and newlines escaped as Prometheus requires.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(v));
            out.push('"');
        }
        out
    }

    /// Whether the set holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

/// Fixed log-spaced histogram bucket bounds, ms: `0.25 · 2^k` for
/// `k = 0..21` (0.25 ms … ~4.4 min). Fixed bounds make histogram
/// bucket counts exact integers and renders bit-identical across runs
/// — no adaptive resizing, no float accumulation in the bucketing.
pub const BUCKET_BOUNDS_MS: [f64; 21] = [
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0,
    8192.0, 16384.0, 32768.0, 65536.0, 131072.0, 262144.0,
];

/// What a metric family is, fixed at its first registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn exposition(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One series' value.
#[derive(Debug, Clone)]
enum Value {
    Counter(u64),
    Gauge(f64),
    Histogram(Hist),
}

/// Exact-count histogram over [`BUCKET_BOUNDS_MS`] plus a `+Inf`
/// overflow bucket.
#[derive(Debug, Clone)]
struct Hist {
    /// Non-cumulative per-bucket counts; the last slot is `+Inf`.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Hist {
    fn new() -> Self {
        Hist {
            counts: vec![0u64; BUCKET_BOUNDS_MS.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, v: f64) {
        let idx = BUCKET_BOUNDS_MS
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(BUCKET_BOUNDS_MS.len());
        self.counts[idx] += 1;
        // lint: order-sensitive — observations arrive in event order
        self.sum += v;
        self.count += 1;
    }
}

/// One metric family: its kind, help text, and every labelled series.
#[derive(Debug, Clone)]
struct Family {
    kind: MetricKind,
    help: String,
    /// Keyed by the canonical [`Labels::render`] string, so iteration
    /// (and therefore rendering) is sorted and deterministic.
    series: BTreeMap<String, Value>,
}

/// A deterministic, dependency-free metrics registry rendered in
/// Prometheus text exposition format.
///
/// A metric family's kind and help text are fixed by its first
/// recording; later calls against the same name with a *different*
/// kind are ignored (the registry never panics — `crates/serve` is
/// panic-free library code under `dfx-lint`).
///
/// # Examples
///
/// ```
/// use dfx_serve::telemetry::{Labels, MetricsRegistry};
///
/// let mut reg = MetricsRegistry::new();
/// let labels = Labels::new().with("backend", "dfx");
/// reg.counter("dfx_requests_total", "Requests served.", &labels, 3);
/// reg.gauge("dfx_utilization_ratio", "Busy fraction.", &labels, 0.5);
/// reg.observe("dfx_request_ttft_ms", "Time to first token.", &labels, 7.5);
///
/// let text = reg.render();
/// assert!(text.contains(r#"dfx_requests_total{backend="dfx"} 3"#));
/// assert!(text.contains(r#"dfx_request_ttft_ms_bucket{backend="dfx",le="8"} 1"#));
/// assert_eq!(dfx_serve::telemetry::validate_prometheus(&text).is_ok(), true);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    families: BTreeMap<String, Family>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn family(&mut self, name: &str, kind: MetricKind, help: &str) -> Option<&mut Family> {
        let fam = self
            .families
            .entry(name.to_string())
            .or_insert_with(|| Family {
                kind,
                help: help.to_string(),
                series: BTreeMap::new(),
            });
        if fam.kind == kind {
            Some(fam)
        } else {
            None
        }
    }

    /// Adds `delta` to the counter `name{labels}` (created at 0).
    pub fn counter(&mut self, name: &str, help: &str, labels: &Labels, delta: u64) {
        if let Some(fam) = self.family(name, MetricKind::Counter, help) {
            let v = fam
                .series
                .entry(labels.render())
                .or_insert(Value::Counter(0));
            if let Value::Counter(c) = v {
                *c += delta;
            }
        }
    }

    /// Sets the gauge `name{labels}` to `value`.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &Labels, value: f64) {
        if let Some(fam) = self.family(name, MetricKind::Gauge, help) {
            fam.series.insert(labels.render(), Value::Gauge(value));
        }
    }

    /// Records one observation into the histogram `name{labels}`
    /// (fixed [`BUCKET_BOUNDS_MS`] buckets).
    pub fn observe(&mut self, name: &str, help: &str, labels: &Labels, value: f64) {
        if let Some(fam) = self.family(name, MetricKind::Histogram, help) {
            let v = fam
                .series
                .entry(labels.render())
                .or_insert_with(|| Value::Histogram(Hist::new()));
            if let Value::Histogram(h) = v {
                h.observe(value);
            }
        }
    }

    /// Renders every family in Prometheus text exposition format:
    /// `# HELP` / `# TYPE` headers followed by one sample line per
    /// series (histograms expand to `_bucket{le=...}` / `_sum` /
    /// `_count`). Families sort by name and series by label set, so
    /// the text is bit-identical for equal recorded contents.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, fam) in &self.families {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(&fam.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(fam.kind.exposition());
            out.push('\n');
            for (labels, value) in &fam.series {
                match value {
                    Value::Counter(c) => {
                        push_sample(&mut out, name, "", labels, &c.to_string());
                    }
                    Value::Gauge(g) => {
                        push_sample(&mut out, name, "", labels, &fmt_f64(*g));
                    }
                    Value::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (i, &bound) in BUCKET_BOUNDS_MS.iter().enumerate() {
                            cumulative += h.counts[i];
                            let le = merge_le(labels, &fmt_f64(bound));
                            push_sample(&mut out, name, "_bucket", &le, &cumulative.to_string());
                        }
                        cumulative += h.counts[BUCKET_BOUNDS_MS.len()];
                        let le = merge_le(labels, "+Inf");
                        push_sample(&mut out, name, "_bucket", &le, &cumulative.to_string());
                        push_sample(&mut out, name, "_sum", labels, &fmt_f64(h.sum));
                        push_sample(&mut out, name, "_count", labels, &h.count.to_string());
                    }
                }
            }
        }
        out
    }
}

/// `name_suffix{labels} value\n`, omitting the braces for an empty set.
fn push_sample(out: &mut String, name: &str, suffix: &str, labels: &str, value: &str) {
    out.push_str(name);
    out.push_str(suffix);
    if !labels.is_empty() {
        out.push('{');
        out.push_str(labels);
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Appends `le="bound"` to a rendered label string. `le` sorts after
/// every label key this module emits, so appending keeps the canonical
/// sorted order.
fn merge_le(labels: &str, bound: &str) -> String {
    if labels.is_empty() {
        format!("le=\"{bound}\"")
    } else {
        format!("{labels},le=\"{bound}\"")
    }
}

/// Deterministic float rendering: Rust's shortest-roundtrip `Display`,
/// which never uses exponent notation and is platform-independent.
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

// ---------------------------------------------------------------------
// Prometheus text validation
// ---------------------------------------------------------------------

/// Validates Prometheus text exposition line by line, returning the
/// number of sample lines.
///
/// Checked per line: `# HELP <name> <text>` and
/// `# TYPE <name> <counter|gauge|histogram|summary|untyped>` headers,
/// and `<name>[{labels}] <value>` samples with a well-formed metric
/// name, a balanced quoted-and-escaped label block, and a value that
/// parses as a float (`+Inf`/`-Inf`/`NaN` allowed).
///
/// # Errors
///
/// Returns `Err(message)` naming the first offending line.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let (keyword, rest) = rest.split_once(' ').unwrap_or((rest, ""));
            match keyword {
                "HELP" => {
                    let name = rest.split(' ').next().unwrap_or("");
                    validate_metric_name(name).map_err(|e| format!("line {n}: {e}"))?;
                }
                "TYPE" => {
                    let mut parts = rest.split(' ');
                    let name = parts.next().unwrap_or("");
                    validate_metric_name(name).map_err(|e| format!("line {n}: {e}"))?;
                    let kind = parts.next().unwrap_or("");
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {n}: unknown metric type `{kind}`"));
                    }
                }
                _ => return Err(format!("line {n}: unknown comment keyword `{keyword}`")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // bare comment
        }
        validate_sample_line(line).map_err(|e| format!("line {n}: {e}"))?;
        samples += 1;
    }
    Ok(samples)
}

fn validate_metric_name(name: &str) -> Result<(), String> {
    let mut chars = name.chars();
    let ok_first = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    if !ok_first || !chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
        return Err(format!("invalid metric name `{name}`"));
    }
    Ok(())
}

fn validate_sample_line(line: &str) -> Result<(), String> {
    let (head, value) = match line.rfind(' ') {
        Some(pos) => (&line[..pos], &line[pos + 1..]),
        None => return Err(format!("sample `{line}` has no value")),
    };
    let name = match head.find('{') {
        Some(open) => {
            if !head.ends_with('}') {
                return Err(format!("unterminated label block in `{head}`"));
            }
            validate_label_block(&head[open + 1..head.len() - 1])?;
            &head[..open]
        }
        None => head,
    };
    validate_metric_name(name)?;
    let numeric = value.parse::<f64>().is_ok();
    if !numeric && !matches!(value, "+Inf" | "-Inf" | "NaN") {
        return Err(format!("invalid sample value `{value}`"));
    }
    Ok(())
}

fn validate_label_block(block: &str) -> Result<(), String> {
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label pair without `=` in `{rest}`"))?;
        let key = &rest[..eq];
        validate_metric_name(key).map_err(|_| format!("invalid label name `{key}`"))?;
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("label value for `{key}` is not quoted"))?;
        // Scan to the closing quote, honouring escapes.
        let mut close = None;
        let mut escaped = false;
        for (i, c) in rest.char_indices() {
            if escaped {
                if !matches!(c, '\\' | '"' | 'n') {
                    return Err(format!("bad escape `\\{c}` in label value"));
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                close = Some(i);
                break;
            }
        }
        let close = close.ok_or_else(|| format!("unterminated label value for `{key}`"))?;
        rest = &rest[close + 1..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
            if rest.is_empty() {
                return Err("trailing comma in label block".to_string());
            }
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: `{rest}`"));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------

/// A minimal JSON tree. Object members keep insertion order and
/// numbers keep their source *lexeme* verbatim, so rendering a parsed
/// document reproduces the input byte for byte for any text this
/// module emits — the property the CI trace round-trip check pins.
/// (The vendored `serde` is a no-op marker crate, so both directions
/// are hand-written here.)
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its exact lexeme (e.g. `"1.5"`, `"-3e2"`).
    Num(String),
    /// A string (decoded; rendering re-escapes canonically).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members render in this order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number node from an `f64`, via the canonical [`Display`]
    /// lexeme (shortest roundtrip, no exponent notation).
    ///
    /// [`Display`]: std::fmt::Display
    pub fn num(v: f64) -> Json {
        Json::Num(fmt_f64(v))
    }

    /// Compact rendering: no whitespace, members in stored order,
    /// strings minimally escaped. Deterministic for equal trees.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(lexeme) => out.push_str(lexeme),
            Json::Str(s) => render_json_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_json_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns `Err(message)` with a byte offset for malformed input
    /// or trailing junk.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing junk at byte {pos}"));
        }
        Ok(value)
    }
}

fn render_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes
        .get(*pos)
        .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
    {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&b) => Err(format!("unexpected byte `{}` at byte {pos}", b as char)),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, kw: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(kw.as_bytes()) {
        *pos += kw.len();
        Ok(value)
    } else {
        Err(format!("invalid keyword at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("truncated \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("non-scalar \\u escape at byte {pos}"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                return Err(format!("raw control byte in string at byte {pos}"));
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so the
                // boundaries are valid).
                let s = &bytes[*pos..];
                let step = match std::str::from_utf8(s).ok().and_then(|t| t.chars().next()) {
                    Some(c) => {
                        out.push(c);
                        c.len_utf8()
                    }
                    None => return Err(format!("invalid UTF-8 at byte {pos}")),
                };
                *pos += step;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    let int_digits = eat_digits(bytes, pos);
    if int_digits == 0 {
        return Err(format!("invalid number at byte {start}"));
    }
    if int_digits > 1 && bytes[int_start] == b'0' {
        return Err(format!("leading zero in number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(bytes, pos) == 0 {
            return Err(format!("invalid number at byte {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(bytes, pos) == 0 {
            return Err(format!("invalid number at byte {start}"));
        }
    }
    let lexeme = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("invalid number at byte {start}"))?;
    Ok(Json::Num(lexeme.to_string()))
}

fn eat_digits(bytes: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    *pos - start
}

// ---------------------------------------------------------------------
// Request traces
// ---------------------------------------------------------------------

/// How a request's lifecycle ended.
///
/// Today's engine retires every admitted request ([`Retired`]); the
/// other states name the lifecycle ends a paged/preempting serving
/// stack produces, so the span model (and its exports) is stable when
/// engine-level preemption lands. Paged-K/V preemptions inside a
/// stepper do not end the lifecycle — the request still retires.
///
/// [`Retired`]: SpanOutcome::Retired
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// Served to completion.
    Retired,
    /// Evicted mid-decode to be resumed later.
    Preempted,
    /// K/V state swapped out to host memory.
    Swapped,
    /// Abandoned before completion.
    Cancelled,
}

impl SpanOutcome {
    /// Lower-case label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            SpanOutcome::Retired => "retired",
            SpanOutcome::Preempted => "preempted",
            SpanOutcome::Swapped => "swapped",
            SpanOutcome::Cancelled => "cancelled",
        }
    }
}

/// One request's lifecycle in simulated time: queued → admitted →
/// prefill → per-token decode → a terminal [`SpanOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// Request id (submission index).
    pub id: u64,
    /// Pool server (engine tier) or replica (cluster tier) that served
    /// it.
    pub server: usize,
    /// Prompt length, tokens.
    pub input_tokens: usize,
    /// Requested output length, tokens.
    pub output_tokens: usize,
    /// Arrival (enqueue) instant, ms.
    pub arrival_ms: f64,
    /// Admission instant — when its prefill began, ms.
    pub start_ms: f64,
    /// First token emission, ms. `None` on the static path, which
    /// models no intra-batch token timing.
    pub first_token_ms: Option<f64>,
    /// Retirement instant, ms.
    pub finish_ms: f64,
    /// Every token emission boundary the engine charged this request,
    /// ascending, ms. The first entry is the prefill's token (equals
    /// [`first_token_ms`](RequestTrace::first_token_ms)); empty on the
    /// static path.
    pub token_ms: Vec<f64>,
    /// Energy attributed to this request by token share of its
    /// server's busy energy, J. `None` when the backend models no
    /// power.
    pub energy_j: Option<f64>,
    /// How the lifecycle ended.
    pub outcome: SpanOutcome,
}

/// Every request's [`RequestTrace`] from one run, plus the run's
/// identity — the unit [`to_chrome_json`](RunTrace::to_chrome_json)
/// exports.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTrace {
    /// Backend pool description.
    pub backend: String,
    /// Queue discipline.
    pub scheduler: String,
    /// Per-request lifecycles, ascending by request id.
    pub requests: Vec<RequestTrace>,
}

impl RunTrace {
    /// A coarse trace from bare [`Response`]s (queued + service spans
    /// only, no token timing) — what tiers without per-token events
    /// (the static path, the cluster router's global view) export.
    pub fn from_responses(backend: &str, scheduler: &str, responses: &[Response]) -> RunTrace {
        let mut requests: Vec<RequestTrace> = responses
            .iter()
            .map(|r| RequestTrace {
                id: r.request.id,
                server: r.server,
                input_tokens: r.request.workload.input_len,
                output_tokens: r.request.workload.output_len,
                arrival_ms: r.request.arrival_ms,
                start_ms: r.start_ms,
                first_token_ms: None,
                finish_ms: r.finish_ms,
                token_ms: Vec::new(),
                energy_j: None,
                outcome: SpanOutcome::Retired,
            })
            .collect();
        requests.sort_by_key(|t| t.id);
        RunTrace {
            backend: backend.to_string(),
            scheduler: scheduler.to_string(),
            requests,
        }
    }

    /// Checks span conservation and causality: every request has
    /// exactly one terminal span with
    /// `arrival ≤ start ≤ finish`, its token boundaries ascending
    /// within `[start, finish]`, and its first token (when present)
    /// matching the first boundary.
    ///
    /// # Errors
    ///
    /// Returns `Err(message)` naming the first violating request.
    pub fn validate(&self) -> Result<(), String> {
        for t in &self.requests {
            let id = t.id;
            if !(t.arrival_ms <= t.start_ms && t.start_ms <= t.finish_ms) {
                return Err(format!(
                    "request {id}: spans not causal (arrival {} start {} finish {})",
                    t.arrival_ms, t.start_ms, t.finish_ms
                ));
            }
            if let Some(first) = t.first_token_ms {
                if !(t.start_ms <= first && first <= t.finish_ms) {
                    return Err(format!(
                        "request {id}: first token {first} outside its spans"
                    ));
                }
                if t.token_ms.first().is_some_and(|&t0| t0 != first) {
                    return Err(format!(
                        "request {id}: first boundary disagrees with first_token_ms"
                    ));
                }
            } else if !t.token_ms.is_empty() {
                return Err(format!(
                    "request {id}: token boundaries without a first token"
                ));
            }
            let monotone = t.token_ms.windows(2).all(|w| w[0] <= w[1]);
            let in_range = t
                .token_ms
                .iter()
                .all(|&m| t.start_ms <= m && m <= t.finish_ms);
            if !monotone || !in_range {
                return Err(format!(
                    "request {id}: token boundaries not monotone in-span"
                ));
            }
        }
        Ok(())
    }

    /// Renders the trace as Chrome trace-event JSON (`traceEvents`
    /// array: `ph:"X"` complete spans per lifecycle phase, `ph:"i"`
    /// instants per token boundary, timestamps in µs). Open the file
    /// at `chrome://tracing` or <https://ui.perfetto.dev>; each
    /// request is a thread (`tid` = request id) on its server's
    /// process (`pid` = server index).
    pub fn to_chrome_json(&self) -> String {
        let mut events: Vec<Json> = Vec::new();
        // Process-name metadata per distinct server, sorted.
        let mut servers: Vec<usize> = self.requests.iter().map(|t| t.server).collect();
        servers.sort_unstable();
        servers.dedup();
        for s in servers {
            events.push(Json::Obj(vec![
                ("name".to_string(), Json::Str("process_name".to_string())),
                ("ph".to_string(), Json::Str("M".to_string())),
                ("pid".to_string(), Json::Num(s.to_string())),
                ("tid".to_string(), Json::Num("0".to_string())),
                (
                    "args".to_string(),
                    Json::Obj(vec![(
                        "name".to_string(),
                        Json::Str(format!("{} server {s}", self.backend)),
                    )]),
                ),
            ]));
        }
        for t in &self.requests {
            events.push(span(t, "queued", t.arrival_ms, t.start_ms, None));
            match t.first_token_ms {
                Some(first) => {
                    events.push(span(t, "prefill", t.start_ms, first, None));
                    events.push(span(t, "decode", first, t.finish_ms, Some(self)));
                    for &m in &t.token_ms {
                        events.push(Json::Obj(vec![
                            ("name".to_string(), Json::Str("token".to_string())),
                            ("cat".to_string(), Json::Str("serve".to_string())),
                            ("ph".to_string(), Json::Str("i".to_string())),
                            ("s".to_string(), Json::Str("t".to_string())),
                            ("ts".to_string(), Json::num(m * 1000.0)),
                            ("pid".to_string(), Json::Num(t.server.to_string())),
                            ("tid".to_string(), Json::Num(t.id.to_string())),
                        ]));
                    }
                }
                None => {
                    events.push(span(t, "service", t.start_ms, t.finish_ms, Some(self)));
                }
            }
        }
        Json::Obj(vec![
            ("traceEvents".to_string(), Json::Arr(events)),
            ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
        ])
        .render()
    }
}

/// One `ph:"X"` complete span for a request phase. The terminal phase
/// (passed `Some(run)`) carries the request's outcome, token counts
/// and attributed energy in `args`.
fn span(
    t: &RequestTrace,
    name: &str,
    from_ms: f64,
    to_ms: f64,
    terminal: Option<&RunTrace>,
) -> Json {
    let mut members = vec![
        ("name".to_string(), Json::Str(name.to_string())),
        ("cat".to_string(), Json::Str("serve".to_string())),
        ("ph".to_string(), Json::Str("X".to_string())),
        ("ts".to_string(), Json::num(from_ms * 1000.0)),
        ("dur".to_string(), Json::num((to_ms - from_ms) * 1000.0)),
        ("pid".to_string(), Json::Num(t.server.to_string())),
        ("tid".to_string(), Json::Num(t.id.to_string())),
    ];
    if let Some(run) = terminal {
        let mut args = vec![
            (
                "outcome".to_string(),
                Json::Str(t.outcome.label().to_string()),
            ),
            ("scheduler".to_string(), Json::Str(run.scheduler.clone())),
            (
                "input_tokens".to_string(),
                Json::Num(t.input_tokens.to_string()),
            ),
            (
                "output_tokens".to_string(),
                Json::Num(t.output_tokens.to_string()),
            ),
        ];
        if let Some(e) = t.energy_j {
            args.push(("energy_j".to_string(), Json::num(e)));
        }
        members.push(("args".to_string(), Json::Obj(args)));
    }
    Json::Obj(members)
}

// ---------------------------------------------------------------------
// The canonical metric catalog
// ---------------------------------------------------------------------

/// Records the canonical metric catalog over one [`ServiceReport`]
/// into `reg`. `extra` labels (e.g. `tier`, `replica`) are merged with
/// the report's own `backend` and `discipline` labels.
///
/// Catalog: `dfx_requests_total`, `dfx_output_tokens_total`,
/// `dfx_dispatches_total` (counters); `dfx_makespan_ms`,
/// `dfx_utilization_ratio`, `dfx_goodput_tps`, `dfx_mean_queue_depth`,
/// `dfx_peak_live_batch`, `dfx_energy_joules` (gauges);
/// `dfx_ttft_ms` / `dfx_itl_ms` / `dfx_sojourn_ms` quantile gauges
/// (`quantile` ∈ `p50|p95|p99`); `dfx_request_ttft_ms` /
/// `dfx_request_itl_ms` / `dfx_request_sojourn_ms` histograms over the
/// per-request samples.
pub fn record_service_report(reg: &mut MetricsRegistry, report: &ServiceReport, extra: &Labels) {
    let mut labels = extra.clone();
    labels = labels
        .with("backend", &report.backend)
        .with("discipline", &report.scheduler);
    let l = &labels;

    let output_tokens: usize = report
        .responses
        .iter()
        .map(|r| r.request.workload.output_len)
        .sum();
    reg.counter(
        "dfx_requests_total",
        "Requests served to completion.",
        l,
        report.responses.len() as u64,
    );
    reg.counter(
        "dfx_output_tokens_total",
        "Output tokens delivered.",
        l,
        output_tokens as u64,
    );
    reg.counter(
        "dfx_dispatches_total",
        "Backend invocations (batches on the static path, prefills and token steps on the continuous path).",
        l,
        report.dispatches as u64,
    );
    reg.gauge(
        "dfx_makespan_ms",
        "Time to the last completion, ms.",
        l,
        report.makespan_ms,
    );
    reg.gauge(
        "dfx_utilization_ratio",
        "Fraction of pool time spent serving.",
        l,
        report.utilization,
    );
    reg.gauge(
        "dfx_goodput_tps",
        "Output tokens per second of makespan.",
        l,
        report.goodput_tps,
    );
    reg.gauge(
        "dfx_mean_queue_depth",
        "Time-weighted mean waiting-queue depth.",
        l,
        report.mean_queue_depth,
    );
    reg.gauge(
        "dfx_peak_live_batch",
        "Peak requests concurrently resident on one server.",
        l,
        report.peak_live_batch as f64,
    );
    if let Some(e) = report.energy_j {
        reg.gauge(
            "dfx_energy_joules",
            "Backend energy over the run (power x busy time), J.",
            l,
            e,
        );
    }

    for (q, ttft, itl, sojourn) in [
        (
            "p50",
            report.p50_ttft_ms,
            report.p50_itl_ms,
            report.p50_sojourn_ms,
        ),
        (
            "p95",
            report.p95_ttft_ms,
            report.p95_itl_ms,
            report.p95_sojourn_ms,
        ),
        (
            "p99",
            report.p99_ttft_ms,
            report.p99_itl_ms,
            report.p99_sojourn_ms,
        ),
    ] {
        let ql = labels.clone().with("quantile", q);
        reg.gauge("dfx_ttft_ms", "Time to first token, ms.", &ql, ttft);
        reg.gauge("dfx_itl_ms", "Inter-token latency, ms.", &ql, itl);
        reg.gauge(
            "dfx_sojourn_ms",
            "Request sojourn (queue + service), ms.",
            &ql,
            sojourn,
        );
    }

    for &v in report.sorted_ttfts() {
        reg.observe(
            "dfx_request_ttft_ms",
            "Per-request time to first token, ms.",
            l,
            v,
        );
    }
    for &v in report.sorted_token_gaps() {
        reg.observe(
            "dfx_request_itl_ms",
            "Per-token inter-token gaps, ms.",
            l,
            v,
        );
    }
    for &v in report.sorted_sojourns() {
        reg.observe("dfx_request_sojourn_ms", "Per-request sojourn, ms.", l, v);
    }
}

/// Records a [`ClusterReport`] into `reg`: each replica's engine
/// report under `tier="replica"` with a `replica="rN"` label, plus the
/// pooled cluster view (pooled percentiles via `merge_sorted`, never
/// averaged) under `tier="cluster"`.
pub fn record_cluster_report(reg: &mut MetricsRegistry, report: &ClusterReport, extra: &Labels) {
    for (i, replica) in report.replicas.iter().enumerate() {
        if let Some(r) = &replica.report {
            let labels = extra
                .clone()
                .with("tier", "replica")
                .with("replica", &format!("r{i}"));
            record_service_report(reg, r, &labels);
        }
    }

    let l = extra
        .clone()
        .with("tier", "cluster")
        .with("backend", &report.placement)
        .with("discipline", &report.scheduler);
    reg.counter(
        "dfx_requests_total",
        "Requests served to completion.",
        &l,
        report.total_requests as u64,
    );
    reg.gauge(
        "dfx_makespan_ms",
        "Time to the last completion, ms.",
        &l,
        report.makespan_ms,
    );
    reg.gauge(
        "dfx_goodput_tps",
        "Output tokens per second of makespan.",
        &l,
        report.goodput_tps,
    );
    reg.gauge(
        "dfx_balance_index",
        "Jain fairness of per-replica dispatch counts.",
        &l,
        report.balance_index,
    );
    if let Some(e) = report.energy_j {
        reg.gauge(
            "dfx_energy_joules",
            "Backend energy over the run (power x busy time), J.",
            &l,
            e,
        );
    }
    for (q, ttft, itl, sojourn) in [
        (
            "p50",
            report.p50_ttft_ms,
            report.p50_itl_ms,
            report.p50_sojourn_ms,
        ),
        (
            "p95",
            report.p95_ttft_ms,
            report.p95_itl_ms,
            report.p95_sojourn_ms,
        ),
        (
            "p99",
            report.p99_ttft_ms,
            report.p99_itl_ms,
            report.p99_sojourn_ms,
        ),
    ] {
        let ql = l.clone().with("quantile", q);
        reg.gauge("dfx_ttft_ms", "Time to first token, ms.", &ql, ttft);
        reg.gauge("dfx_itl_ms", "Inter-token latency, ms.", &ql, itl);
        reg.gauge(
            "dfx_sojourn_ms",
            "Request sojourn (queue + service), ms.",
            &ql,
            sojourn,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_render_sorted_and_escaped() {
        let l = Labels::new().with("z", "a\"b\\c\nd").with("a", "x");
        assert_eq!(l.render(), "a=\"x\",z=\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn registry_renders_valid_prometheus() {
        let mut reg = MetricsRegistry::new();
        let l = Labels::new().with("backend", "dfx");
        reg.counter("dfx_requests_total", "Requests.", &l, 5);
        reg.gauge("dfx_utilization_ratio", "Busy fraction.", &l, 0.25);
        for v in [0.3, 1.0, 7.0, 1e6] {
            reg.observe("dfx_request_ttft_ms", "TTFT.", &l, v);
        }
        let text = reg.render();
        let samples = validate_prometheus(&text).expect("valid exposition");
        // 1 counter + 1 gauge + 22 buckets + sum + count.
        assert_eq!(samples, 26);
        assert!(text.contains("dfx_requests_total{backend=\"dfx\"} 5"));
        assert!(text.contains("dfx_request_ttft_ms_bucket{backend=\"dfx\",le=\"+Inf\"} 4"));
        assert!(text.contains("dfx_request_ttft_ms_count{backend=\"dfx\"} 4"));
        // Cumulative bucket counts: 0.3 <= 0.5, 1.0 <= 1, 7.0 <= 8.
        assert!(text.contains("le=\"0.5\"} 1"));
        assert!(text.contains("le=\"1\"} 2"));
        assert!(text.contains("le=\"8\"} 3"));
    }

    #[test]
    fn registry_kind_conflicts_are_ignored() {
        let mut reg = MetricsRegistry::new();
        let l = Labels::new();
        reg.counter("dfx_x", "X.", &l, 1);
        reg.gauge("dfx_x", "X again.", &l, 9.0); // ignored: kind differs
        assert!(reg.render().contains("dfx_x 1"));
        assert!(!reg.render().contains('9'));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_prometheus("9bad_name 1").is_err());
        assert!(validate_prometheus("name{unterminated=\"x} 1").is_err());
        assert!(validate_prometheus("name 1.5e").is_err());
        assert!(validate_prometheus("# TYPE m flavour").is_err());
        assert!(validate_prometheus("m{a=\"b\"} +Inf").is_ok());
    }

    #[test]
    fn json_round_trips_byte_identically() {
        let doc = Json::Obj(vec![
            ("s".to_string(), Json::Str("a\"b\\c\nd".to_string())),
            (
                "xs".to_string(),
                Json::Arr(vec![Json::num(1.5), Json::num(-0.25), Json::Null]),
            ),
            ("ok".to_string(), Json::Bool(true)),
        ]);
        let text = doc.render();
        let parsed = Json::parse(&text).expect("parses");
        assert_eq!(parsed, doc);
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn json_parser_rejects_junk() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("01").is_err());
        assert!(Json::parse("{} junk").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    fn toy_trace() -> RunTrace {
        RunTrace {
            backend: "toy".to_string(),
            scheduler: "fifo".to_string(),
            requests: vec![RequestTrace {
                id: 0,
                server: 0,
                input_tokens: 4,
                output_tokens: 2,
                arrival_ms: 0.0,
                start_ms: 1.0,
                first_token_ms: Some(5.0),
                finish_ms: 6.0,
                token_ms: vec![5.0, 6.0],
                energy_j: Some(0.5),
                outcome: SpanOutcome::Retired,
            }],
        }
    }

    #[test]
    fn chrome_export_round_trips_and_validates() {
        let trace = toy_trace();
        trace.validate().expect("conserved");
        let text = trace.to_chrome_json();
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.render(), text);
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains("\"name\":\"prefill\""));
        assert!(text.contains("\"outcome\":\"retired\""));
        assert!(text.contains("\"energy_j\":0.5"));
    }

    #[test]
    fn trace_validation_catches_acausal_spans() {
        let mut t = toy_trace();
        t.requests[0].start_ms = -1.0;
        assert!(t.validate().is_err());
        let mut t = toy_trace();
        t.requests[0].token_ms = vec![6.0, 5.0];
        assert!(t.validate().is_err());
        let mut t = toy_trace();
        t.requests[0].first_token_ms = None;
        assert!(t.validate().is_err()); // boundaries without a first token
    }
}

//! The deterministic discrete-event request-serving simulator.
//!
//! [`ServingEngine`] pushes a stream of requests through one or more
//! [`Backend`]s behind a single queue, under a pluggable
//! [`Scheduler`], with arrivals drawn from a seeded
//! [`ArrivalProcess`]. Everything is deterministic for fixed inputs, so
//! service-level experiments reproduce bit-for-bit.
//!
//! Two event granularities coexist:
//!
//! - the **static path** treats every backend call (a single request or
//!   one coalesced batch) as one opaque busy interval, scheduling at
//!   dispatch boundaries via [`Scheduler::pick_batch`];
//! - the **token-boundary path** runs when a continuous discipline
//!   ([`Scheduler::is_continuous`]) meets backends exposing a
//!   [`ContinuousStepper`] ([`Backend::continuous`]): servers advance
//!   one decode token at a time, members exit the moment they finish,
//!   and the scheduler's admission seam ([`Scheduler::admit`]) can join
//!   queued requests to a *running* batch between steps.
//!
//! Both paths run as **resumable state machines**: the loop state lives
//! in an explicit [`EngineState`] and advances one event per step call,
//! so a run can be driven to completion in one go
//! ([`ServingEngine::run`]) or held at a time horizon and resumed as
//! later arrivals become known
//! ([`EngineCheckpoint`](crate::EngineCheckpoint) — the seam the
//! cluster tier's O(n) incremental placement snapshots are built on).
//! The hot paths are kept deliberately cheap: not-yet-queued
//! submissions wait in a binary heap keyed `(time, id)`, the arrival
//! queue pops its head without shifting the tail, and the static
//! service-time memo probes with an interned backend id plus a
//! workload-shape hash instead of allocating a
//! `(String, Vec<Workload>)` key per dispatch (see ARCHITECTURE.md,
//! "Performance").

use crate::arrivals::{ArrivalProcess, SubmissionPlan};
use crate::backend::Backend;
use crate::scheduler::{AdmissionProbe, BatchDecision, Fifo, RunningMember, Scheduler};
use crate::stats;
use crate::stepper::ContinuousStepper;
use dfx_hw::MemoryModel;
use dfx_model::Workload;
use dfx_sim::{PagingStats, SimError};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// One request entering the service: a workload plus its arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Submission index (also the index into the workload list).
    pub id: u64,
    /// What the request asks the backend to do.
    pub workload: Workload,
    /// Absolute arrival time, ms.
    pub arrival_ms: f64,
}

/// One served request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// The request this response answers.
    pub request: Request,
    /// Index of the pool server that executed it.
    pub server: usize,
    /// When execution began, ms (never before the arrival). On the
    /// token-boundary path this is the start of the request's prefill.
    pub start_ms: f64,
    /// When execution finished, ms.
    pub finish_ms: f64,
}

impl Response {
    /// Pure execution time, ms.
    pub fn service_ms(&self) -> f64 {
        self.finish_ms - self.start_ms
    }

    /// Time spent waiting in the queue, ms.
    pub fn wait_ms(&self) -> f64 {
        self.start_ms - self.request.arrival_ms
    }

    /// Sojourn (queueing + service) time — what the user feels, ms.
    pub fn sojourn_ms(&self) -> f64 {
        self.finish_ms - self.request.arrival_ms
    }
}

/// Service-level result of one engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceReport {
    /// Description of the backend pool.
    pub backend: String,
    /// Queue discipline used.
    pub scheduler: String,
    /// Pool size.
    pub servers: usize,
    /// Every served request, in event order. Exactly one response per
    /// submitted request.
    pub responses: Vec<Response>,
    /// Time from t=0 to the last completion, ms.
    pub makespan_ms: f64,
    /// Median sojourn time, ms.
    pub p50_sojourn_ms: f64,
    /// 95th-percentile sojourn time, ms.
    pub p95_sojourn_ms: f64,
    /// 99th-percentile sojourn time, ms.
    pub p99_sojourn_ms: f64,
    /// Time-weighted average number of waiting (not yet started)
    /// requests.
    pub mean_queue_depth: f64,
    /// Peak number of waiting requests.
    pub max_queue_depth: usize,
    /// Fraction of total server time spent serving, in `[0, 1]`.
    pub utilization: f64,
    /// Output tokens delivered per second of makespan.
    pub goodput_tps: f64,
    /// Backend invocations made. On the static path each dispatch
    /// serves one coalesced batch (a single-dispatch discipline makes
    /// one per response); on the token-boundary path every admission
    /// prefill and every decode step counts as one invocation.
    pub dispatches: usize,
    /// Largest number of requests concurrently resident on one server:
    /// the biggest dispatched batch on the static path, the peak live
    /// member count (decoding plus mid-prefill) on the token-boundary
    /// path. Under saturation this is what a K/V capacity limit
    /// ([`Backend::memory`]) visibly caps.
    pub peak_live_batch: usize,
    /// 99th-percentile gap between a member's consecutive token
    /// emissions on the token-boundary path, ms — the decode stall a
    /// running member feels when admissions (whole prefills, or chunks
    /// under a chunked-prefill discipline) interleave with its steps.
    /// Zero on the static path and when no member ever emitted twice.
    pub p99_token_gap_ms: f64,
    /// Median time to first token, ms. On the token-boundary path a
    /// request's TTFT is measured at its first emission boundary (its
    /// prefill's completion — the engine's first-token instant); on
    /// the static path no intra-batch token timing exists, so TTFT is
    /// the dispatch delay (`start - arrival`), a lower bound on what a
    /// streaming client would see. Percentiles are nearest-rank over
    /// exactly one sample per request.
    pub p50_ttft_ms: f64,
    /// 95th-percentile time to first token, ms.
    pub p95_ttft_ms: f64,
    /// 99th-percentile time to first token, ms.
    pub p99_ttft_ms: f64,
    /// Median inter-token latency, ms: the gap between a member's
    /// consecutive token emissions on the token-boundary path, pooled
    /// across members (the same samples as
    /// [`p99_token_gap_ms`](ServiceReport::p99_token_gap_ms)). Zero on
    /// the static path and when no member ever emitted twice.
    pub p50_itl_ms: f64,
    /// 95th-percentile inter-token latency, ms.
    pub p95_itl_ms: f64,
    /// 99th-percentile inter-token latency, ms (equals
    /// [`p99_token_gap_ms`](ServiceReport::p99_token_gap_ms)).
    pub p99_itl_ms: f64,
    /// Backend energy over the run, J: each server's
    /// [`nominal_power_w`](crate::Backend::nominal_power_w) times its
    /// busy time, summed over the pool. `None` when no server models
    /// power (servers without a power model contribute nothing).
    pub energy_j: Option<f64>,
    /// Paged-K/V counters summed across the pool's steppers (block
    /// capacity, peak occupancy and fragmentation, prefix-cache
    /// hit/computed tokens, preemptions). `None` unless at least one
    /// server allocated K/V in blocks
    /// ([`Appliance::with_kv_paging`](dfx_sim::Appliance)) on the
    /// token-boundary path.
    pub paging: Option<PagingStats>,
    /// The sojourn samples sorted ascending, computed once when the
    /// report is built — percentile queries and cluster-level pooling
    /// read this without re-sorting per call.
    pub sorted_sojourns: Vec<f64>,
    /// Per-request TTFT samples sorted ascending (one per request),
    /// the cluster pooling seam for TTFT percentiles.
    sorted_ttfts: Vec<f64>,
    /// Inter-token gap samples sorted ascending, the cluster pooling
    /// seam for ITL percentiles. Empty on the static path.
    sorted_token_gaps: Vec<f64>,
}

impl ServiceReport {
    /// Mean sojourn time, ms.
    pub fn mean_sojourn_ms(&self) -> f64 {
        // lint: order-sensitive — summed in response completion order
        self.responses.iter().map(Response::sojourn_ms).sum::<f64>() / self.responses.len() as f64
    }

    /// Average realized batch size on the *static* path: requests
    /// served per backend invocation (1.0 under a single-dispatch
    /// discipline). Not meaningful on the token-boundary path, where
    /// [`dispatches`](ServiceReport::dispatches) counts token steps.
    pub fn mean_batch_size(&self) -> f64 {
        self.responses.len() as f64 / self.dispatches.max(1) as f64
    }

    /// Arbitrary sojourn percentile (fraction in `[0, 1]`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Service`] for a fraction outside `[0, 1]`.
    pub fn sojourn_percentile_ms(&self, p: f64) -> Result<f64, SimError> {
        stats::percentile(&self.sorted_sojourns, p)
    }

    /// This report's sojourn samples, ascending — the seam cluster-level
    /// aggregation pools across replicas (percentiles of a cluster are
    /// percentiles of the pooled samples, never averages of per-replica
    /// percentiles; see [`stats::merged_percentile`]). Sorted once at
    /// report construction; this accessor is free.
    pub fn sorted_sojourns(&self) -> &[f64] {
        &self.sorted_sojourns
    }

    /// Per-request TTFT samples ascending (exactly one per request) —
    /// the seam cluster aggregation pools TTFT percentiles across, and
    /// the raw material of the telemetry TTFT histogram. See
    /// [`p50_ttft_ms`](ServiceReport::p50_ttft_ms) for what a sample
    /// measures on each path.
    pub fn sorted_ttfts(&self) -> &[f64] {
        &self.sorted_ttfts
    }

    /// Inter-token gap samples ascending (empty on the static path) —
    /// the cluster pooling seam for ITL percentiles and the telemetry
    /// ITL histogram's raw material.
    pub fn sorted_token_gaps(&self) -> &[f64] {
        &self.sorted_token_gaps
    }
}

/// Heap key for a not-yet-queued submission: ascending `(time, id)`
/// with `total_cmp` on the time, the exact order the old sorted-`Vec`
/// pending list popped in.
#[derive(Debug, PartialEq)]
struct PendKey {
    time_ms: f64,
    id: usize,
}

impl Eq for PendKey {}

impl Ord for PendKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time_ms
            .total_cmp(&other.time_ms)
            .then(self.id.cmp(&other.id))
    }
}

impl PartialOrd for PendKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap of not-yet-queued submissions ordered by `(time, id)`.
/// Replaces the sorted `Vec<(f64, usize)>` whose `remove(0)` shifted
/// the whole tail on every pull: push and pop are now O(log n) and the
/// pop order is identical (times are never NaN, ids are unique, so
/// `total_cmp`-then-id is a strict total order agreeing with the old
/// partial-ordered tuple comparisons).
#[derive(Debug, Default)]
struct PendingHeap {
    heap: BinaryHeap<Reverse<PendKey>>,
}

impl PendingHeap {
    fn push(&mut self, time_ms: f64, id: usize) {
        self.heap.push(Reverse(PendKey { time_ms, id }));
    }

    fn pop(&mut self) -> Option<(f64, usize)> {
        self.heap.pop().map(|Reverse(k)| (k.time_ms, k.id))
    }

    fn peek(&self) -> Option<(f64, usize)> {
        self.heap.peek().map(|Reverse(k)| (k.time_ms, k.id))
    }

    fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The arrival queue: requests that have arrived but not yet been
/// dispatched, sorted by `(arrival, id)`. Schedulers index into it
/// arbitrarily, so it stays a contiguous sorted slice — but the
/// overwhelmingly common mutations are *pop the head* (FIFO-ish picks)
/// and *append at the tail* (pulled arrivals are globally ascending),
/// so the head is tracked as an offset instead of shifting the tail on
/// every `remove(0)`, and inserts try the tail before binary-searching.
#[derive(Debug, Default)]
struct ArrivalQueue {
    buf: Vec<Request>,
    head: usize,
}

impl ArrivalQueue {
    fn as_slice(&self) -> &[Request] {
        &self.buf[self.head..]
    }

    fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    fn is_empty(&self) -> bool {
        self.head == self.buf.len()
    }

    fn first(&self) -> Option<&Request> {
        self.buf.get(self.head)
    }

    /// Inserts keeping `(arrival, id)` order — the same tuple
    /// comparison the old `partition_point` insert used. Closed-loop
    /// resubmissions always land at the tail (a completion's next
    /// submission never precedes arrivals already pulled), so the
    /// binary-search path is a cold fallback.
    fn insert_sorted(&mut self, req: Request) {
        let key = (req.arrival_ms, req.id);
        if self.buf.last().is_none_or(|l| (l.arrival_ms, l.id) <= key) {
            self.buf.push(req);
        } else {
            let live = &self.buf[self.head..];
            let pos = live.partition_point(|q| (q.arrival_ms, q.id) <= key);
            self.buf.insert(self.head + pos, req);
        }
    }

    /// Removes and returns the request at `idx` (relative to the live
    /// slice). `idx == 0` is O(1); the storage is compacted once the
    /// dead prefix dominates.
    fn remove(&mut self, idx: usize) -> Request {
        if idx == 0 {
            let r = self.buf[self.head];
            self.head += 1;
            if self.head >= 64 && self.head * 2 >= self.buf.len() {
                self.buf.drain(..self.head);
                self.head = 0;
            }
            r
        } else {
            self.buf.remove(self.head + idx)
        }
    }
}

/// The static path's service-time memo.
///
/// Entries are bucketed by `(interned backend id, workload-shape
/// hash)`; each bucket holds the full `(batch workloads, service ms)`
/// pairs, compared exactly on probe, so a hash collision costs one
/// extra comparison instead of a wrong answer. Backend ids are interned
/// by *name* at engine construction — equal names share an id, so
/// identical replicas share entries exactly as the old
/// `(String, Vec<Workload>)` key did, but a probe no longer allocates a
/// name `String` (or clones the batch into a key) per dispatch.
/// One memo bucket: exact `(batch workloads, service ms)` pairs behind
/// a shared `(backend id, shape hash)` key.
type MemoBucket = Vec<(Vec<Workload>, f64)>;

#[derive(Debug, Default)]
struct MemoCache {
    names: Vec<String>,
    buckets: BTreeMap<(u32, u64), MemoBucket>,
}

impl MemoCache {
    /// Interns `name`, returning its id; equal names get equal ids.
    fn intern(&mut self, name: &str) -> u32 {
        match self.names.iter().position(|n| n == name) {
            Some(i) => i as u32,
            None => {
                self.names.push(name.to_string());
                (self.names.len() - 1) as u32
            }
        }
    }

    /// FNV-1a over the batch's token lengths — cheap, deterministic,
    /// and platform-independent. Collisions are tolerated (buckets are
    /// compared exactly), they just cost a linear probe.
    fn shape_hash(batch: &[Workload]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        for w in batch {
            mix(w.input_len as u64);
            mix(w.output_len as u64);
        }
        h
    }

    fn get(&self, server_id: u32, batch: &[Workload]) -> Option<f64> {
        self.buckets
            .get(&(server_id, Self::shape_hash(batch)))?
            .iter()
            .find(|(k, _)| k == batch)
            .map(|&(_, ms)| ms)
    }

    fn insert(&mut self, server_id: u32, batch: &[Workload], ms: f64) {
        let bucket = self
            .buckets
            .entry((server_id, Self::shape_hash(batch)))
            .or_default();
        if !bucket.iter().any(|(k, _)| k == batch) {
            bucket.push((batch.to_vec(), ms));
        }
    }
}

/// A live member on the token-boundary path: its request, when its
/// prefill began, how many output tokens it has produced, and when it
/// last emitted one.
struct Active {
    request: Request,
    start_ms: f64,
    tokens_done: usize,
    last_emit_ms: f64,
}

/// One server's continuous run: the stepper, the live members, and the
/// server's timeline as `epoch + rel`. The epoch is the absolute start
/// of the current busy period and `rel` the time charged since; keeping
/// the busy period relative means a solo member's finish is computed as
/// `start + accumulated service` — the same association the static FIFO
/// path uses, so `max_batch == 1` continuous batching reproduces it
/// exactly.
struct Run<'b> {
    stepper: Box<dyn ContinuousStepper + 'b>,
    members: Vec<Active>,
    /// The backend's capacity model (None: unbounded), for the
    /// scheduler's admission probe.
    memory: Option<MemoryModel>,
    epoch_ms: f64,
    rel_ms: f64,
}

impl Run<'_> {
    /// The absolute time the server has been simulated to: its next
    /// token boundary while members are live, its free time while idle.
    fn clock_ms(&self) -> f64 {
        self.epoch_ms + self.rel_ms
    }
}

/// The [`AdmissionProbe`] over one server: estimates from its stepper,
/// capacity from its backend's memory model.
struct Probe<'p, 'b> {
    stepper: &'p mut (dyn ContinuousStepper + 'b),
    memory: Option<MemoryModel>,
}

impl AdmissionProbe for Probe<'_, '_> {
    fn prefill_ms(&mut self, workload: Workload) -> f64 {
        self.stepper.prefill_cost_ms(workload)
    }
    fn step_ms(&mut self, live: usize) -> f64 {
        self.stepper.step_cost_ms(live)
    }
    fn kv_fits(&self, members: &[Workload]) -> bool {
        // A paged stepper answers at block granularity (free blocks vs
        // the joiners' prompts); otherwise fall back to summing whole
        // `input + output` claims.
        if let Some(fits) = self.stepper.kv_fits_resident(members) {
            return fits;
        }
        self.memory.is_none_or(|m| {
            let tokens: usize = members.iter().map(|w| w.input_len + w.output_len).sum();
            m.fits_tokens(tokens)
        })
    }
}

/// What one `step` call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepOutcome {
    /// One event was committed (or a stashed decision was resolved).
    Progressed,
    /// The next event's instant is at or past the horizon — nothing was
    /// mutated — or a stashed decision needs arrivals the stream has
    /// not revealed yet. Never returned without a horizon.
    Blocked,
    /// No event exists: the pending heap and queue are empty and (on
    /// the token-boundary path) no member is live. In a batch run with
    /// requests unserved this is a starvation error; on a stream it
    /// just means the engine has caught up with everything pushed.
    Exhausted,
}

/// Resumable state of the static event loop.
pub(crate) struct StaticState {
    workloads: Vec<Workload>,
    plan: SubmissionPlan,
    pending: PendingHeap,
    queue: ArrivalQueue,
    free_at: Vec<f64>,
    busy: Vec<f64>,
    responses: Vec<Response>,
    /// `(server, start_ms, input + output tokens)` per admitted
    /// request, appended at the event that committed the admission —
    /// starts become known here long before the response retires, which
    /// is what lets streamed K/V-load accounting see in-flight claims.
    admissions: Vec<(usize, f64, usize)>,
    dispatches: usize,
    peak_live_batch: usize,
    /// Floor on the next decision instant, set by a `Wait` decision.
    wake_ms: f64,
    /// Consecutive decisions that neither dispatched nor saw a new
    /// arrival: a scheduler stalling past its own deadline.
    stalls: u32,
    /// A `Wait(until)` whose wake instant could still be lowered by an
    /// arrival the stream has not revealed (wake = the first arrival
    /// strictly before `until`, else `until`). Resolved on resume once
    /// an earlier arrival is known or the horizon covers `until`, and
    /// unconditionally at finalization.
    stashed_wait_ms: Option<f64>,
}

/// Resumable state of the token-boundary event loop.
pub(crate) struct ContState<'b> {
    workloads: Vec<Workload>,
    plan: SubmissionPlan,
    pending: PendingHeap,
    queue: ArrivalQueue,
    runs: Vec<Run<'b>>,
    busy: Vec<f64>,
    responses: Vec<Response>,
    /// `(server, start_ms, input + output tokens)` per admitted
    /// request, appended at the event that committed the admission (see
    /// [`StaticState::admissions`]).
    admissions: Vec<(usize, f64, usize)>,
    dispatches: usize,
    peak_live_batch: usize,
    /// Gaps between a member's consecutive token emissions (the decode
    /// stall admissions inject), pooled across members.
    token_gaps: Vec<f64>,
    /// Per-request time to first token, ms, appended at each request's
    /// first emission boundary (exactly one sample per request).
    ttfts: Vec<f64>,
    /// `(request id, emission instant)` per token the engine charged,
    /// in event order — the raw material of a
    /// [`RunTrace`](crate::telemetry::RunTrace)'s decode
    /// spans. `None` (not collected) unless the run was started by
    /// [`ServingEngine::run_traced`], so the hot path pays nothing.
    trace_tokens: Option<Vec<(u64, f64)>>,
    /// Floor on the next idle-admission instant, set after a decline so
    /// a future arrival can change the scheduler's mind.
    wake_ms: f64,
    /// Consecutive boundaries where an idle server faced a non-empty
    /// queue and the scheduler admitted nobody.
    stalls: u32,
    /// An idle-decline whose wake instant depends on the next arrival,
    /// which the stream has not revealed yet. Nothing advanced since
    /// the decline, so resolution just re-runs the wake bookkeeping
    /// with the pending heap as it stands at resume (or finalization).
    stashed_decline: bool,
}

/// Resumable engine state: which event path is running plus everything
/// its loop carries between events. Built by
/// [`ServingEngine::build_state`], advanced by [`ServingEngine::step`],
/// harvested by [`ServingEngine::build_report`].
pub(crate) enum EngineState<'b> {
    Static(StaticState),
    Continuous(ContState<'b>),
}

impl EngineState<'_> {
    /// Appends one request to the stream: its id is its push index.
    /// Pushes must arrive in nondecreasing `arrival_ms` order for
    /// horizon-bounded stepping to be faithful to a batch replay.
    pub(crate) fn push(&mut self, workload: Workload, arrival_ms: f64) {
        let (workloads, pending) = match self {
            EngineState::Static(st) => (&mut st.workloads, &mut st.pending),
            EngineState::Continuous(st) => (&mut st.workloads, &mut st.pending),
        };
        let id = workloads.len();
        workloads.push(workload);
        pending.push(arrival_ms, id);
    }

    /// Requests pushed so far (batch runs: the full workload list).
    pub(crate) fn pushed(&self) -> usize {
        match self {
            EngineState::Static(st) => st.workloads.len(),
            EngineState::Continuous(st) => st.workloads.len(),
        }
    }

    /// Every response committed so far, in event order.
    pub(crate) fn responses(&self) -> &[Response] {
        match self {
            EngineState::Static(st) => &st.responses,
            EngineState::Continuous(st) => &st.responses,
        }
    }

    /// Every admission committed so far, in event order:
    /// `(server, start_ms, input + output tokens)`. A request appears
    /// here at the event that admitted it — possibly long before its
    /// response — so streamed K/V accounting can see in-flight claims.
    pub(crate) fn admissions(&self) -> &[(usize, f64, usize)] {
        match self {
            EngineState::Static(st) => &st.admissions,
            EngineState::Continuous(st) => &st.admissions,
        }
    }

    /// Whether the stream is parked on a stashed scheduler decision —
    /// a `Wait` or an admission decline taken when no later arrival was
    /// known yet. Such a decision's outcome depends on whether the
    /// stream ever receives another request, so a horizon-bounded
    /// advance stops there rather than guessing; callers that need
    /// "state at `t` assuming no more arrivals" semantics (the cluster
    /// snapshot contract) must answer from a prefix replay instead.
    pub(crate) fn is_stalled(&self) -> bool {
        match self {
            EngineState::Static(st) => st.stashed_wait_ms.is_some(),
            EngineState::Continuous(st) => st.stashed_decline,
        }
    }

    /// The error a batch run raises when the loop runs dry with
    /// requests unserved.
    pub(crate) fn starvation_error(&self) -> SimError {
        match self {
            EngineState::Static(_) => SimError::Service(
                "static loop ran out of submissions with requests unserved".into(),
            ),
            EngineState::Continuous(_) => {
                SimError::Service("continuous loop ran out of events with requests unserved".into())
            }
        }
    }
}

/// A deterministic discrete-event simulator serving a request stream on
/// a pool of [`Backend`]s behind one queue.
///
/// # Examples
///
/// ```
/// use dfx_model::{GptConfig, Workload};
/// use dfx_serve::{ArrivalProcess, ServingEngine};
/// use dfx_sim::Appliance;
///
/// # fn main() -> Result<(), dfx_sim::SimError> {
/// let appliance = Appliance::timing_only(GptConfig::tiny(), 2)?;
/// let workloads = vec![Workload::new(8, 8); 20];
/// let arrivals = ArrivalProcess::Poisson { rate_per_s: 5.0, seed: 1 };
/// let report = ServingEngine::new(&appliance).run(&workloads, &arrivals)?;
/// assert_eq!(report.responses.len(), 20);
/// assert!(report.p99_sojourn_ms >= report.p50_sojourn_ms);
/// # Ok(())
/// # }
/// ```
pub struct ServingEngine<'a> {
    servers: Vec<&'a dyn Backend>,
    scheduler: Box<dyn Scheduler>,
    /// Static-path service times memoized per `(backend, batch
    /// workloads)` — a single request is the one-element batch;
    /// persists across `run` calls, so a rate sweep on one engine times
    /// each distinct workload (or batch composition) once. Keyed by the
    /// interned backend *name* (not pool index), so identical replicas
    /// share entries — [`Backend::name`] must therefore identify the
    /// timing behaviour (model + cluster size), which every built-in
    /// implementation's name does. The token-boundary path does not use
    /// it (step costs depend on batch state); its steppers memoize
    /// per-run instead.
    cache: MemoCache,
    /// Per-pool-slot interned memo id, precomputed at construction.
    server_ids: Vec<u32>,
}

impl<'a> ServingEngine<'a> {
    /// An engine over a single backend with the FIFO discipline.
    pub fn new(backend: &'a dyn Backend) -> Self {
        Self::assemble(vec![backend])
    }

    /// An engine over a pool of backends sharing one queue (FIFO).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Service`] for an empty pool.
    pub fn pool(servers: Vec<&'a dyn Backend>) -> Result<Self, SimError> {
        if servers.is_empty() {
            return Err(SimError::Service("backend pool is empty".into()));
        }
        Ok(Self::assemble(servers))
    }

    fn assemble(servers: Vec<&'a dyn Backend>) -> Self {
        let mut cache = MemoCache::default();
        let server_ids = servers.iter().map(|s| cache.intern(&s.name())).collect();
        ServingEngine {
            servers,
            scheduler: Box::new(Fifo),
            cache,
            server_ids,
        }
    }

    /// Replaces the queue discipline.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: Box<dyn Scheduler>) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Serves `workloads` with arrivals drawn from `arrivals`.
    ///
    /// A continuous discipline ([`Scheduler::is_continuous`]) on a pool
    /// where every backend exposes a [`ContinuousStepper`] runs the
    /// token-boundary event loop; everything else runs the static path,
    /// where backend runs are memoized per `(backend name, batch
    /// workloads)` and the memo persists across calls — the platform
    /// models are deterministic, so a rate sweep on one engine times
    /// each distinct workload (or batch composition) once.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Service`] for an empty workload list or a
    /// malformed arrival process, and propagates backend errors (e.g.
    /// [`SimError::InvalidRequest`] for zero-length workloads).
    pub fn run(
        &mut self,
        workloads: &[Workload],
        arrivals: &ArrivalProcess,
    ) -> Result<ServiceReport, SimError> {
        if workloads.is_empty() {
            return Err(SimError::Service("nothing to serve".into()));
        }
        let plan = arrivals.plan(workloads.len())?;
        let mut state = self.build_state(workloads.to_vec(), plan)?;
        let n = workloads.len();
        while state.responses().len() < n {
            match self.step(&mut state, None)? {
                StepOutcome::Progressed => {}
                // With no horizon a step never blocks, so both arms mean
                // the event loop ran dry with requests unserved.
                StepOutcome::Blocked | StepOutcome::Exhausted => {
                    return Err(state.starvation_error());
                }
            }
        }
        self.build_report(state)
    }

    /// Serves `workloads` exactly as [`run`](Self::run) does — same
    /// event loop, bit-identical [`ServiceReport`] — and additionally
    /// assembles the per-request lifecycle trace
    /// ([`RunTrace`](crate::telemetry::RunTrace)): queued / prefill /
    /// per-token decode spans in simulated time, with each request's
    /// energy attributed as its token share of its server's busy
    /// energy. Trace collection is enabled only on this entry point,
    /// so [`run`](Self::run) pays nothing for it.
    ///
    /// # Errors
    ///
    /// As [`run`](Self::run).
    pub fn run_traced(
        &mut self,
        workloads: &[Workload],
        arrivals: &ArrivalProcess,
    ) -> Result<(ServiceReport, crate::telemetry::RunTrace), SimError> {
        if workloads.is_empty() {
            return Err(SimError::Service("nothing to serve".into()));
        }
        let plan = arrivals.plan(workloads.len())?;
        let mut state = self.build_state(workloads.to_vec(), plan)?;
        if let EngineState::Continuous(st) = &mut state {
            st.trace_tokens = Some(Vec::new());
        }
        let n = workloads.len();
        while state.responses().len() < n {
            match self.step(&mut state, None)? {
                StepOutcome::Progressed => {}
                StepOutcome::Blocked | StepOutcome::Exhausted => {
                    return Err(state.starvation_error());
                }
            }
        }
        // Harvest the raw material the report constructor consumes.
        let (busy, token_events) = match &mut state {
            EngineState::Static(st) => (st.busy.clone(), Vec::new()),
            EngineState::Continuous(st) => {
                (st.busy.clone(), st.trace_tokens.take().unwrap_or_default())
            }
        };
        let report = self.build_report(state)?;
        let trace = self.assemble_trace(&report, &busy, token_events);
        Ok((report, trace))
    }

    /// Builds the [`RunTrace`](crate::telemetry::RunTrace) for a
    /// finished run: one [`RequestTrace`](crate::telemetry::RequestTrace)
    /// per response, its token boundaries from the engine's emission
    /// events, and its energy as `(its input + output tokens) /
    /// (tokens its server served)` of the server's busy energy.
    fn assemble_trace(
        &self,
        report: &ServiceReport,
        busy: &[f64],
        token_events: Vec<(u64, f64)>,
    ) -> crate::telemetry::RunTrace {
        use crate::telemetry::{RequestTrace, RunTrace, SpanOutcome};

        let server_energy: Vec<Option<f64>> = busy
            .iter()
            .enumerate()
            .map(|(s, &b)| self.servers[s].nominal_power_w().map(|p| p * b / 1e3))
            .collect();
        let mut server_tokens = vec![0u64; self.servers.len()];
        for r in &report.responses {
            server_tokens[r.server] +=
                (r.request.workload.input_len + r.request.workload.output_len) as u64;
        }

        // Batch-run request ids are submission indices 0..n, and every
        // request retires exactly once, so id-indexed assembly is
        // total.
        let mut requests: Vec<RequestTrace> = report
            .responses
            .iter()
            .map(|r| {
                let tokens = (r.request.workload.input_len + r.request.workload.output_len) as f64;
                let share = if server_tokens[r.server] > 0 {
                    tokens / server_tokens[r.server] as f64
                } else {
                    0.0
                };
                RequestTrace {
                    id: r.request.id,
                    server: r.server,
                    input_tokens: r.request.workload.input_len,
                    output_tokens: r.request.workload.output_len,
                    arrival_ms: r.request.arrival_ms,
                    start_ms: r.start_ms,
                    first_token_ms: None,
                    finish_ms: r.finish_ms,
                    token_ms: Vec::new(),
                    energy_j: server_energy[r.server].map(|e| e * share),
                    outcome: SpanOutcome::Retired,
                }
            })
            .collect();
        requests.sort_by_key(|t| t.id);
        for (id, ms) in token_events {
            if let Some(t) = requests.get_mut(id as usize) {
                t.token_ms.push(ms);
            }
        }
        for t in &mut requests {
            t.first_token_ms = t.token_ms.first().copied();
        }
        RunTrace {
            backend: report.backend.clone(),
            scheduler: report.scheduler.clone(),
            requests,
        }
    }

    /// Builds the resumable state for a run over `workloads` under
    /// `plan`, choosing the event path exactly as [`run`](Self::run)
    /// describes.
    pub(crate) fn build_state(
        &mut self,
        workloads: Vec<Workload>,
        plan: SubmissionPlan,
    ) -> Result<EngineState<'a>, SimError> {
        let n = workloads.len();
        let pending = Self::initial_pending(&plan, n);
        if self.scheduler.is_continuous() && self.servers.iter().all(|s| s.continuous().is_some()) {
            let prefill_chunk = self.scheduler.prefill_chunk();
            let mut runs: Vec<Run<'a>> = Vec::with_capacity(self.servers.len());
            for i in 0..self.servers.len() {
                let s: &'a dyn Backend = self.servers[i];
                // build_state routes here only when every backend is
                // continuous, but re-check instead of panicking on a
                // broken invariant.
                let mut stepper = s.continuous().ok_or_else(|| {
                    SimError::Service(format!("backend {} cannot batch continuously", s.name()))
                })?;
                if prefill_chunk.is_some() {
                    stepper.set_prefill_chunk(prefill_chunk);
                }
                runs.push(Run {
                    stepper,
                    members: Vec::new(),
                    memory: s.memory(),
                    epoch_ms: 0.0,
                    rel_ms: 0.0,
                });
            }
            Ok(EngineState::Continuous(ContState {
                workloads,
                plan,
                pending,
                queue: ArrivalQueue::default(),
                busy: vec![0.0f64; runs.len()],
                runs,
                responses: Vec::with_capacity(n),
                admissions: Vec::with_capacity(n),
                dispatches: 0,
                peak_live_batch: 0,
                token_gaps: Vec::new(),
                ttfts: Vec::with_capacity(n),
                trace_tokens: None,
                wake_ms: 0.0,
                stalls: 0,
                stashed_decline: false,
            }))
        } else {
            Ok(EngineState::Static(StaticState {
                workloads,
                plan,
                pending,
                queue: ArrivalQueue::default(),
                free_at: vec![0.0f64; self.servers.len()],
                busy: vec![0.0f64; self.servers.len()],
                responses: Vec::with_capacity(n),
                admissions: Vec::with_capacity(n),
                dispatches: 0,
                peak_live_batch: 0,
                wake_ms: 0.0,
                stalls: 0,
                stashed_wait_ms: None,
            }))
        }
    }

    /// An empty open-loop stream: requests enter via
    /// [`EngineState::push`] and the state is advanced with
    /// horizon-bounded [`step`](Self::step) calls. The seam
    /// [`EngineCheckpoint`](crate::EngineCheckpoint) wraps.
    pub(crate) fn start_stream(&mut self) -> Result<EngineState<'a>, SimError> {
        self.build_state(Vec::new(), SubmissionPlan::Open(Vec::new()))
    }

    /// The initial submission list: every open-loop arrival up front, or
    /// one request per closed-loop client at t=0.
    fn initial_pending(plan: &SubmissionPlan, n: usize) -> PendingHeap {
        let mut pending = PendingHeap::default();
        match plan {
            SubmissionPlan::Open(times) => {
                for (id, &t) in times.iter().enumerate().take(n) {
                    pending.push(t, id);
                }
            }
            SubmissionPlan::Closed { clients, .. } => {
                for j in 0..n.min(*clients) {
                    pending.push(0.0, j);
                }
            }
        }
        pending
    }

    /// Moves every pending submission with time `<= now_ms` into the
    /// queue (kept sorted by `(arrival, id)`). Returns whether anything
    /// arrived.
    fn pull_arrivals(
        pending: &mut PendingHeap,
        queue: &mut ArrivalQueue,
        workloads: &[Workload],
        now_ms: f64,
    ) -> bool {
        let mut admitted = false;
        while let Some((arrival_ms, id)) = pending.peek() {
            if arrival_ms > now_ms {
                break;
            }
            pending.pop();
            queue.insert_sorted(Request {
                id: id as u64,
                workload: workloads[id],
                arrival_ms,
            });
            admitted = true;
        }
        admitted
    }

    /// Closed-loop feedback: a completion schedules the owning client's
    /// next round-robin submission. Open-loop plans do nothing.
    fn schedule_next_submission(
        plan: &SubmissionPlan,
        pending: &mut PendingHeap,
        n: usize,
        finished_id: u64,
        finish_ms: f64,
    ) {
        if let SubmissionPlan::Closed {
            clients,
            think_time_ms,
        } = plan
        {
            // The owning client thinks, then submits its next
            // round-robin request.
            let next = finished_id as usize + clients;
            if next < n {
                pending.push(finish_ms + think_time_ms, next);
            }
        }
    }

    /// Advances the state by one event.
    ///
    /// With `horizon = None` every event is committable and the call
    /// never returns [`StepOutcome::Blocked`]. With `horizon = Some(t)`
    /// only events whose decision instant is strictly before `t` are
    /// committed, and decisions whose outcome could still change with
    /// arrivals at or after `t` are stashed instead of guessed — so a
    /// horizon-bounded stream that receives every arrival before
    /// advancing past it commits exactly the event prefix a full batch
    /// replay would.
    pub(crate) fn step(
        &mut self,
        state: &mut EngineState<'a>,
        horizon: Option<f64>,
    ) -> Result<StepOutcome, SimError> {
        match state {
            EngineState::Static(st) => self.static_step(st, horizon),
            EngineState::Continuous(st) => self.cont_step(st, horizon),
        }
    }

    /// One event of the static discrete-event core. Requests become
    /// known either up front (open loop) or as completions schedule the
    /// owning client's next submission (closed loop); either way the
    /// queue holds every request that has arrived by the dispatch
    /// instant, the scheduler picks a batch (usually of one), and it
    /// runs as a unit on the earliest-free server. A scheduler may also
    /// *wait* — hold the free server until a batch fills or its deadline
    /// passes — which advances the decision instant without dispatching.
    fn static_step(
        &mut self,
        st: &mut StaticState,
        horizon: Option<f64>,
    ) -> Result<StepOutcome, SimError> {
        // A stashed Wait resolves once the stream can name the wake
        // instant: an arrival strictly before `until` is known, or the
        // horizon covers `until` (no earlier arrival can appear), or
        // the stream is being finalized (no horizon).
        if let Some(until_ms) = st.stashed_wait_ms {
            let head = st.pending.peek();
            let resolvable = match horizon {
                None => true,
                Some(t) => head.is_some_and(|(a, _)| a < until_ms) || until_ms <= t,
            };
            if !resolvable {
                return Ok(StepOutcome::Blocked);
            }
            st.stashed_wait_ms = None;
            // Wake at the requested time, or earlier if a new arrival
            // lands first and may complete the batch.
            st.wake_ms = match head {
                Some((arrival_ms, _)) if arrival_ms < until_ms => arrival_ms,
                _ => until_ms,
            };
            return Ok(StepOutcome::Progressed);
        }

        let server = (0..st.free_at.len())
            .min_by(|&a, &b| st.free_at[a].total_cmp(&st.free_at[b]))
            .ok_or_else(|| SimError::Service("backend pool is empty".into()))?;

        if st.queue.is_empty() {
            // Idle system: jump to the next submission. The jump itself
            // is timeless, but gate it on the post-jump decision
            // instant so a blocked stream's state is untouched.
            let Some((arrival_ms, id)) = st.pending.peek() else {
                return Ok(StepOutcome::Exhausted);
            };
            let instant = st.free_at[server].max(arrival_ms).max(st.wake_ms);
            if horizon.is_some_and(|t| instant >= t) {
                return Ok(StepOutcome::Blocked);
            }
            st.pending.pop();
            st.queue.insert_sorted(Request {
                id: id as u64,
                workload: st.workloads[id],
                arrival_ms,
            });
            return Ok(StepOutcome::Progressed);
        }

        let head_arrival = st.queue.first().expect("queue is non-empty").arrival_ms;
        let now = st.free_at[server].max(head_arrival).max(st.wake_ms);
        if horizon.is_some_and(|t| now >= t) {
            return Ok(StepOutcome::Blocked);
        }

        // Everything that has arrived by the dispatch instant is
        // visible to the scheduler.
        if Self::pull_arrivals(&mut st.pending, &mut st.queue, &st.workloads, now) {
            st.stalls = 0;
        }

        let servers = &self.servers;
        let picked =
            match self
                .scheduler
                .pick_batch(st.queue.as_slice(), now, &|ws: &[Workload]| {
                    servers[server].batch_feasible(ws)
                }) {
                BatchDecision::Dispatch(picked) => picked,
                BatchDecision::Wait(until_ms) => {
                    if !until_ms.is_finite() || until_ms <= now {
                        return Err(SimError::Service(format!(
                            "scheduler {} asked to wait until {until_ms} ms at {now} ms",
                            self.scheduler.name()
                        )));
                    }
                    st.stalls += 1;
                    if st.stalls > 2 {
                        return Err(SimError::Service(format!(
                            "scheduler {} keeps waiting without dispatching",
                            self.scheduler.name()
                        )));
                    }
                    // Wake at the requested time, or earlier if a new
                    // arrival lands first and may complete the batch. On a
                    // horizon-bounded stream that earlier arrival may not
                    // be known yet — stash the decision instead of
                    // committing a wake instant that could be wrong.
                    let resolvable = match horizon {
                        None => true,
                        Some(t) => {
                            st.pending.peek().is_some_and(|(a, _)| a < until_ms) || until_ms <= t
                        }
                    };
                    if !resolvable {
                        st.stashed_wait_ms = Some(until_ms);
                        return Ok(StepOutcome::Blocked);
                    }
                    st.wake_ms = match st.pending.peek() {
                        Some((arrival_ms, _)) if arrival_ms < until_ms => arrival_ms,
                        _ => until_ms,
                    };
                    return Ok(StepOutcome::Progressed);
                }
            };
        let mut picked = picked;
        picked.sort_unstable();
        let in_range = picked.last().is_some_and(|&i| i < st.queue.len());
        if !in_range || picked.windows(2).any(|w| w[0] == w[1]) {
            return Err(SimError::Service(format!(
                "scheduler {} picked invalid batch {picked:?} from a queue of {}",
                self.scheduler.name(),
                st.queue.len()
            )));
        }
        st.stalls = 0;
        st.wake_ms = 0.0;

        // Extract in descending index order, then restore arrival
        // order within the batch.
        let mut batch: Vec<Request> = picked.iter().rev().map(|&i| st.queue.remove(i)).collect();
        batch.reverse();
        let batch_workloads: Vec<Workload> = batch.iter().map(|r| r.workload).collect();

        let server_id = self.server_ids[server];
        let service_ms = match self.cache.get(server_id, &batch_workloads) {
            Some(ms) => ms,
            None => {
                // A one-element batch goes through the single-request
                // path (bit-identical numbers to the pre-batching
                // engine); larger batches execute as one unit.
                let ms = match batch_workloads.as_slice() {
                    [single] => self.servers[server].serve(*single)?.total_ms(),
                    many => self.servers[server].serve_batch(many)?.total_ms(),
                };
                self.cache.insert(server_id, &batch_workloads, ms);
                ms
            }
        };
        // `now` dominates the server's free time and the queue head's
        // arrival, but not necessarily every member's: after a
        // Wait-elevated round admits late arrivals, a different
        // (earlier-free) server's `now` can lapse behind them, so clamp
        // the start to the batch's newest arrival.
        let start_ms = batch.iter().map(|r| r.arrival_ms).fold(now, f64::max);
        let finish_ms = start_ms + service_ms;
        st.free_at[server] = finish_ms;
        // lint: order-sensitive — event-ordered timeline accumulation
        st.busy[server] += service_ms;
        st.dispatches += 1;
        st.peak_live_batch = st.peak_live_batch.max(batch.len());

        let n = st.workloads.len();
        for request in batch {
            st.admissions.push((
                server,
                start_ms,
                request.workload.input_len + request.workload.output_len,
            ));
            st.responses.push(Response {
                request,
                server,
                start_ms,
                finish_ms,
            });
            Self::schedule_next_submission(&st.plan, &mut st.pending, n, request.id, finish_ms);
        }
        Ok(StepOutcome::Progressed)
    }

    /// Next token boundary among servers with live members.
    fn cont_busy_next(runs: &[Run<'_>]) -> Option<(f64, usize)> {
        runs.iter()
            .enumerate()
            .filter(|(_, r)| r.stepper.live() > 0)
            .map(|(s, r)| (r.clock_ms(), s))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
    }

    /// The decline bookkeeping shared by the live decline branch and
    /// stashed-decline resolution: pick the wake instant from the next
    /// known arrival or the next busy boundary, and count the stall.
    fn cont_note_decline(&self, st: &mut ContState<'_>) -> Result<(), SimError> {
        match (st.pending.peek(), Self::cont_busy_next(&st.runs)) {
            (Some((arrival_ms, _)), _) => {
                st.wake_ms = arrival_ms;
                st.stalls += 1;
            }
            (None, Some((boundary_ms, _))) => {
                // Defer the idle retry past the next busy boundary
                // (ties prefer the busy event, so that boundary
                // processes first and resets the counter if it makes
                // progress).
                st.wake_ms = st.wake_ms.max(boundary_ms);
                st.stalls += 1;
            }
            (None, None) => st.stalls = 3,
        }
        if st.stalls > 2 {
            return Err(SimError::Service(format!(
                "scheduler {} declines to admit queued requests",
                self.scheduler.name()
            )));
        }
        Ok(())
    }

    /// One event of the token-boundary loop: every server owns a
    /// [`ContinuousStepper`], decode advances one token at a time, and
    /// at each boundary the scheduler's admission seam may join queued
    /// requests to the running batch (each paying its prefill before
    /// decode resumes). Members exit the moment they produce their last
    /// token — no padding to the longest batch-mate.
    fn cont_step(
        &mut self,
        st: &mut ContState<'a>,
        horizon: Option<f64>,
    ) -> Result<StepOutcome, SimError> {
        // A stashed decline resolves once the next arrival is known (or
        // at finalization, when the pending heap is complete): nothing
        // advanced since the decline, so the wake bookkeeping re-runs
        // with the heap as it stands now.
        if st.stashed_decline {
            if horizon.is_some() && st.pending.is_empty() {
                return Ok(StepOutcome::Blocked);
            }
            st.stashed_decline = false;
            self.cont_note_decline(st)?;
            return Ok(StepOutcome::Progressed);
        }

        let busy_next = Self::cont_busy_next(&st.runs);
        // Earliest instant the earliest-free idle server could meet
        // the earliest known request.
        let idle_next = st
            .runs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.stepper.live() == 0)
            .map(|(s, r)| (r.clock_ms(), s))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .and_then(|(clock, s)| {
                let req_t = st
                    .queue
                    .first()
                    .map(|q| q.arrival_ms)
                    .or_else(|| st.pending.peek().map(|p| p.0));
                req_t.map(|t| (t.max(clock).max(st.wake_ms), s))
            });
        let (now, server) = match (busy_next, idle_next) {
            (Some(b), Some(i)) if b.0 <= i.0 => b,
            (Some(_), Some(i)) => i,
            (Some(b), None) => b,
            (None, Some(i)) => i,
            (None, None) => return Ok(StepOutcome::Exhausted),
        };
        if horizon.is_some_and(|t| now >= t) {
            return Ok(StepOutcome::Blocked);
        }

        let run = &mut st.runs[server];
        if run.stepper.live() == 0 {
            // A fresh busy period may start here: re-anchor the
            // relative timeline at this instant (`now` never lies
            // before the idle server's free time).
            run.epoch_ms = now;
            run.rel_ms = 0.0;
        }
        if Self::pull_arrivals(&mut st.pending, &mut st.queue, &st.workloads, now) {
            st.stalls = 0;
        }

        // The admission seam: queued requests may join the running
        // batch at this boundary.
        let n = st.workloads.len();
        let run = &mut st.runs[server];
        let mut admitted_any = false;
        if !st.queue.is_empty() {
            let running: Vec<RunningMember> = run
                .members
                .iter()
                .map(|m| RunningMember {
                    id: m.request.id,
                    workload: m.request.workload,
                    tokens_done: m.tokens_done,
                    arrival_ms: m.request.arrival_ms,
                })
                .collect();
            let clock_ms = run.clock_ms();
            let mut probe = Probe {
                stepper: run.stepper.as_mut(),
                memory: run.memory,
            };
            let mut picks =
                self.scheduler
                    .admit(&running, st.queue.as_slice(), clock_ms, &mut probe);
            picks.sort_unstable();
            let in_range = picks.iter().all(|&i| i < st.queue.len());
            if !in_range || picks.windows(2).any(|w| w[0] == w[1]) {
                return Err(SimError::Service(format!(
                    "scheduler {} admitted invalid indices {picks:?} from a queue of {}",
                    self.scheduler.name(),
                    st.queue.len()
                )));
            }
            if !picks.is_empty() {
                admitted_any = true;
                st.stalls = 0;
                st.wake_ms = 0.0;
                let mut joining: Vec<Request> =
                    picks.iter().rev().map(|&i| st.queue.remove(i)).collect();
                joining.reverse();
                for request in joining {
                    // Prefills run back to back: each member starts
                    // (and is no longer "waiting") when its own
                    // prefill begins.
                    let start_ms = run.clock_ms();
                    st.admissions.push((
                        server,
                        start_ms,
                        request.workload.input_len + request.workload.output_len,
                    ));
                    let ev = run.stepper.admit(request.id, request.workload)?;
                    // lint: order-sensitive — event-ordered timeline accumulation
                    run.rel_ms += ev.ms;
                    // lint: order-sensitive — event-ordered timeline accumulation
                    st.busy[server] += ev.ms;
                    st.dispatches += 1;
                    if ev.finished.contains(&request.id) {
                        // Retired at admission: the prefill emitted
                        // everything, so its completion is the first
                        // (and last) token instant.
                        let finish_ms = run.clock_ms();
                        st.ttfts.push(finish_ms - request.arrival_ms);
                        if let Some(tokens) = st.trace_tokens.as_mut() {
                            tokens.push((request.id, finish_ms));
                        }
                        st.responses.push(Response {
                            request,
                            server,
                            start_ms,
                            finish_ms,
                        });
                        Self::schedule_next_submission(
                            &st.plan,
                            &mut st.pending,
                            n,
                            request.id,
                            finish_ms,
                        );
                    } else if ev.prefilling.contains(&request.id) {
                        // A chunked admission: no token yet, the
                        // remaining chunks interleave with decode.
                        run.members.push(Active {
                            request,
                            start_ms,
                            tokens_done: 0,
                            last_emit_ms: 0.0,
                        });
                    } else {
                        // A whole-prefill admission emits the first
                        // token at its completion.
                        let first_ms = run.clock_ms();
                        st.ttfts.push(first_ms - request.arrival_ms);
                        if let Some(tokens) = st.trace_tokens.as_mut() {
                            tokens.push((request.id, first_ms));
                        }
                        run.members.push(Active {
                            request,
                            start_ms,
                            tokens_done: 1,
                            last_emit_ms: first_ms,
                        });
                    }
                }
                st.peak_live_batch = st.peak_live_batch.max(run.stepper.live());
            }
        }

        let run = &mut st.runs[server];
        if run.stepper.live() > 0 {
            // One step: a prefill chunk if one is in flight, then a
            // decode pass; exits happen the moment a member has its
            // last token.
            let ev = run.stepper.step_token()?;
            // lint: order-sensitive — event-ordered timeline accumulation
            run.rel_ms += ev.ms;
            // lint: order-sensitive — event-ordered timeline accumulation
            st.busy[server] += ev.ms;
            st.dispatches += 1;
            let finish_ms = run.clock_ms();
            for m in &mut run.members {
                if ev.prefilling.contains(&m.request.id) {
                    continue; // mid-prefill: no token this step
                }
                if m.tokens_done > 0 {
                    // The inter-token gap a decoding member felt.
                    st.token_gaps.push(finish_ms - m.last_emit_ms);
                } else {
                    // A chunked prefill's last chunk: the member's
                    // first token lands here, not at admission.
                    st.ttfts.push(finish_ms - m.request.arrival_ms);
                }
                if let Some(tokens) = st.trace_tokens.as_mut() {
                    tokens.push((m.request.id, finish_ms));
                }
                m.tokens_done += 1;
                m.last_emit_ms = finish_ms;
            }
            for id in ev.finished {
                let pos = run
                    .members
                    .iter()
                    .position(|m| m.request.id == id)
                    .ok_or_else(|| {
                        SimError::Service(format!("stepper finished unknown member {id}"))
                    })?;
                let m = run.members.remove(pos);
                st.responses.push(Response {
                    request: m.request,
                    server,
                    start_ms: m.start_ms,
                    finish_ms,
                });
                Self::schedule_next_submission(
                    &st.plan,
                    &mut st.pending,
                    n,
                    m.request.id,
                    finish_ms,
                );
            }
            st.stalls = 0;
        } else if !st.queue.is_empty() && !admitted_any {
            // Idle server, queued work, nothing admitted: the scheduler
            // may be holding out for a future arrival or for another
            // server's token boundary (retirements and closed-loop
            // completions both change the picture). Only a fully idle
            // pool with neither is a hard stall. On a horizon-bounded
            // stream the wake instant depends on the next arrival, so
            // an empty pending heap stashes the decline instead of
            // mistaking "not pushed yet" for "none coming".
            if horizon.is_some() && st.pending.is_empty() {
                st.stashed_decline = true;
                return Ok(StepOutcome::Blocked);
            }
            self.cont_note_decline(st)?;
        }
        Ok(StepOutcome::Progressed)
    }

    /// Consumes a finished state into its [`ServiceReport`].
    pub(crate) fn build_report(&self, state: EngineState<'_>) -> Result<ServiceReport, SimError> {
        match state {
            EngineState::Static(st) => {
                // The static path models no intra-batch token timing:
                // TTFT collapses to the dispatch delay (see the
                // `ServiceReport::p50_ttft_ms` docs).
                let ttfts: Vec<f64> = st.responses.iter().map(Response::wait_ms).collect();
                self.report(
                    &st.workloads,
                    st.responses,
                    &st.busy,
                    st.dispatches,
                    st.peak_live_batch,
                    ttfts,
                    Vec::new(),
                    None,
                )
            }
            EngineState::Continuous(st) => {
                // Pool-wide paged-K/V counters, when any stepper pages.
                let mut paging: Option<PagingStats> = None;
                for run in &st.runs {
                    if let Some(stats) = run.stepper.kv_stats() {
                        match paging.as_mut() {
                            Some(merged) => merged.merge(&stats),
                            None => paging = Some(stats),
                        }
                    }
                }
                self.report(
                    &st.workloads,
                    st.responses,
                    &st.busy,
                    st.dispatches,
                    st.peak_live_batch,
                    st.ttfts,
                    st.token_gaps,
                    paging,
                )
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn report(
        &self,
        workloads: &[Workload],
        responses: Vec<Response>,
        busy: &[f64],
        dispatches: usize,
        peak_live_batch: usize,
        ttfts: Vec<f64>,
        token_gaps: Vec<f64>,
        paging: Option<PagingStats>,
    ) -> Result<ServiceReport, SimError> {
        let makespan_ms = responses.iter().map(|r| r.finish_ms).fold(0.0f64, f64::max);

        let mut sorted_sojourns: Vec<f64> = responses.iter().map(Response::sojourn_ms).collect();
        sorted_sojourns.sort_by(f64::total_cmp);
        let p50_sojourn_ms = stats::percentile(&sorted_sojourns, 0.50)?;
        let p95_sojourn_ms = stats::percentile(&sorted_sojourns, 0.95)?;
        let p99_sojourn_ms = stats::percentile(&sorted_sojourns, 0.99)?;

        // Waiting-queue depth over time: +1 at arrival, -1 at start.
        // Departures sort before arrivals at equal timestamps, so a
        // request served the instant it arrives contributes no depth.
        let mut events: Vec<(f64, i64)> = Vec::with_capacity(2 * responses.len());
        for r in &responses {
            events.push((r.request.arrival_ms, 1));
            events.push((r.start_ms, -1));
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let (mut depth, mut max_depth, mut area, mut prev_t) = (0i64, 0i64, 0.0f64, 0.0f64);
        for (t, delta) in events {
            area += depth as f64 * (t - prev_t);
            depth += delta;
            max_depth = max_depth.max(depth);
            prev_t = t;
        }

        let mut sorted_token_gaps = token_gaps;
        sorted_token_gaps.sort_by(f64::total_cmp);
        let (p50_itl_ms, p95_itl_ms, p99_itl_ms) = if sorted_token_gaps.is_empty() {
            (0.0, 0.0, 0.0)
        } else {
            (
                stats::percentile(&sorted_token_gaps, 0.50)?,
                stats::percentile(&sorted_token_gaps, 0.95)?,
                stats::percentile(&sorted_token_gaps, 0.99)?,
            )
        };

        let mut sorted_ttfts = ttfts;
        sorted_ttfts.sort_by(f64::total_cmp);
        let (p50_ttft_ms, p95_ttft_ms, p99_ttft_ms) = if sorted_ttfts.is_empty() {
            (0.0, 0.0, 0.0)
        } else {
            (
                stats::percentile(&sorted_ttfts, 0.50)?,
                stats::percentile(&sorted_ttfts, 0.95)?,
                stats::percentile(&sorted_ttfts, 0.99)?,
            )
        };

        // Pool energy: nominal power x busy time per server; servers
        // without a power model (the TPU) contribute nothing.
        let mut energy_j: Option<f64> = None;
        for (s, &busy_ms) in busy.iter().enumerate() {
            if let Some(power_w) = self.servers[s].nominal_power_w() {
                // lint: order-sensitive — summed in server index order
                *energy_j.get_or_insert(0.0) += power_w * busy_ms / 1e3;
            }
        }

        let total_tokens: usize = workloads.iter().map(|w| w.output_len).sum();
        Ok(ServiceReport {
            backend: self.pool_name(),
            scheduler: self.scheduler.name().to_string(),
            servers: self.servers.len(),
            makespan_ms,
            p50_sojourn_ms,
            p95_sojourn_ms,
            p99_sojourn_ms,
            mean_queue_depth: if makespan_ms > 0.0 {
                area / makespan_ms
            } else {
                0.0
            },
            max_queue_depth: max_depth as usize,
            // lint: order-sensitive — summed in server index order
            utilization: busy.iter().sum::<f64>()
                / (self.servers.len() as f64 * makespan_ms.max(f64::MIN_POSITIVE)),
            goodput_tps: total_tokens as f64 / (makespan_ms.max(f64::MIN_POSITIVE) / 1e3),
            dispatches,
            peak_live_batch,
            p99_token_gap_ms: p99_itl_ms,
            p50_ttft_ms,
            p95_ttft_ms,
            p99_ttft_ms,
            p50_itl_ms,
            p95_itl_ms,
            p99_itl_ms,
            energy_j,
            paging,
            responses,
            sorted_sojourns,
            sorted_ttfts,
            sorted_token_gaps,
        })
    }

    /// The per-server memory models of this engine's pool, in pool
    /// order — what [`EngineCheckpoint`](crate::EngineCheckpoint) sizes
    /// K/V claims with.
    pub(crate) fn server_memories(&self) -> Vec<Option<MemoryModel>> {
        self.servers.iter().map(|s| s.memory()).collect()
    }

    fn pool_name(&self) -> String {
        let first = self.servers[0].name();
        if self.servers.len() == 1 {
            first
        } else if self.servers.iter().all(|s| s.name() == first) {
            format!("{}x {first}", self.servers.len())
        } else {
            self.servers
                .iter()
                .map(|s| s.name())
                .collect::<Vec<_>>()
                .join(" + ")
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{validate_workload, RunReport};
    use crate::scheduler::{ContinuousBatching, ShortestJobFirst};
    use crate::stepper::StepEvent;

    /// A backend with a closed-form service time: 1 ms per token.
    /// `stepped` additionally exposes a matching [`ContinuousStepper`]
    /// (prefill = `input_len` ms, 1 ms per decoded token), so solo
    /// stepping reproduces `serve` exactly.
    struct Const {
        label: &'static str,
        stepped: bool,
        power_w: Option<f64>,
    }

    struct ConstStepper {
        /// (id, workload, tokens emitted so far).
        members: Vec<(u64, Workload, usize)>,
    }

    impl ContinuousStepper for ConstStepper {
        fn admit(&mut self, id: u64, workload: Workload) -> Result<StepEvent, SimError> {
            validate_workload(workload)?;
            self.members.push((id, workload, 0));
            Ok(StepEvent {
                ms: workload.input_len as f64,
                live: self.members.len(),
                finished: vec![],
                prefilling: vec![],
            })
        }

        fn step_token(&mut self) -> Result<StepEvent, SimError> {
            if self.members.is_empty() {
                return Err(SimError::InvalidRequest("no live members".into()));
            }
            let mut finished = Vec::new();
            let mut i = 0;
            while i < self.members.len() {
                self.members[i].2 += 1;
                if self.members[i].2 == self.members[i].1.output_len {
                    finished.push(self.members.remove(i).0);
                } else {
                    i += 1;
                }
            }
            Ok(StepEvent {
                ms: 1.0,
                live: self.members.len(),
                finished,
                prefilling: vec![],
            })
        }

        fn live(&self) -> usize {
            self.members.len()
        }
    }

    impl Backend for Const {
        fn name(&self) -> String {
            self.label.to_string()
        }
        fn device_count(&self) -> usize {
            1
        }
        fn nominal_power_w(&self) -> Option<f64> {
            self.power_w
        }
        fn serve(&self, w: Workload) -> Result<RunReport, SimError> {
            validate_workload(w)?;
            Ok(RunReport {
                backend: self.name(),
                workload: w,
                summarization_ms: w.input_len as f64,
                generation_ms: w.output_len as f64,
                devices: 1,
                power_w: None,
            })
        }
        fn continuous(&self) -> Option<Box<dyn ContinuousStepper + '_>> {
            self.stepped.then(|| {
                Box::new(ConstStepper {
                    members: Vec::new(),
                }) as Box<dyn ContinuousStepper>
            })
        }
    }

    const B: Const = Const {
        label: "unit",
        stepped: false,
        power_w: None,
    };
    /// The same backend with the token-granular capability.
    const S: Const = Const {
        label: "unit",
        stepped: true,
        power_w: None,
    };
    /// The stepped backend with a 250 W power model, for the energy
    /// accounting tests.
    const PW: Const = Const {
        label: "unit",
        stepped: true,
        power_w: Some(250.0),
    };

    #[test]
    fn every_request_is_served_once_and_in_fifo_order() {
        let workloads = vec![Workload::new(10, 10); 12];
        let arrivals = ArrivalProcess::Poisson {
            rate_per_s: 100.0,
            seed: 3,
        };
        let r = ServingEngine::new(&B).run(&workloads, &arrivals).unwrap();
        assert_eq!(r.responses.len(), 12);
        let mut ids: Vec<u64> = r.responses.iter().map(|x| x.request.id).collect();
        assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "FIFO reordered {ids:?}"
        );
        ids.sort_unstable();
        assert_eq!(ids, (0..12).collect::<Vec<u64>>());
        for resp in &r.responses {
            assert!(resp.start_ms >= resp.request.arrival_ms);
            assert!((resp.service_ms() - 20.0).abs() < 1e-9);
        }
    }

    #[test]
    fn identical_seeds_reproduce_identical_reports() {
        let workloads: Vec<Workload> = (0..20)
            .map(|i| Workload::new(8 + i % 4, 4 + i % 8))
            .collect();
        let arrivals = ArrivalProcess::Poisson {
            rate_per_s: 40.0,
            seed: 0xD15C,
        };
        let a = ServingEngine::new(&B).run(&workloads, &arrivals).unwrap();
        let b = ServingEngine::new(&B).run(&workloads, &arrivals).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ttft_pins_continuous_vs_static_on_a_known_workload() {
        // Two well-separated (8 in, 4 out) requests on the 1 ms/token
        // backend. Both paths serve identically (batch-1 continuous ≡
        // FIFO), but TTFT differs by construction: the static path has
        // no intra-batch token timing, so TTFT is the dispatch delay
        // (0 here — each request starts at its arrival), while the
        // continuous path measures the first emission boundary — the
        // 8 ms prefill after arrival — then decodes a token per ms.
        let workloads = vec![Workload::new(8, 4); 2];
        let arrivals = ArrivalProcess::Trace(vec![0.0, 100.0]);
        let fifo = ServingEngine::new(&B).run(&workloads, &arrivals).unwrap();
        let cont = ServingEngine::new(&S)
            .with_scheduler(Box::new(ContinuousBatching::new(1)))
            .run(&workloads, &arrivals)
            .unwrap();
        assert_eq!(fifo.responses, cont.responses);

        assert_eq!(fifo.p50_ttft_ms, 0.0);
        assert_eq!(fifo.p99_ttft_ms, 0.0);
        assert_eq!(fifo.p50_itl_ms, 0.0);
        assert_eq!(fifo.sorted_ttfts(), &[0.0, 0.0]);
        assert!(fifo.sorted_token_gaps().is_empty());

        assert_eq!(cont.p50_ttft_ms, 8.0);
        assert_eq!(cont.p99_ttft_ms, 8.0);
        assert_eq!(cont.sorted_ttfts(), &[8.0, 8.0]);
        assert_eq!(cont.p50_itl_ms, 1.0);
        assert_eq!(cont.p99_itl_ms, 1.0);
        assert_eq!(cont.p99_token_gap_ms, cont.p99_itl_ms);
    }

    #[test]
    fn every_request_contributes_exactly_one_ttft_sample() {
        let workloads: Vec<Workload> = (0..17)
            .map(|i| Workload::new(4 + i % 5, 1 + i % 7))
            .collect();
        let arrivals = ArrivalProcess::Poisson {
            rate_per_s: 120.0,
            seed: 9,
        };
        for (backend, scheduler) in [(&B, None), (&S, Some(ContinuousBatching::new(4)))] {
            let mut engine = ServingEngine::new(backend as &dyn Backend);
            if let Some(s) = scheduler {
                engine = engine.with_scheduler(Box::new(s));
            }
            let r = engine.run(&workloads, &arrivals).unwrap();
            assert_eq!(r.sorted_ttfts().len(), workloads.len());
            assert!(r.sorted_ttfts().iter().all(|&t| t >= 0.0));
            assert!(r.p99_ttft_ms >= r.p50_ttft_ms);
        }
    }

    #[test]
    fn energy_is_power_times_busy_time() {
        let workloads = vec![Workload::new(8, 4); 2];
        let arrivals = ArrivalProcess::Trace(vec![0.0, 100.0]);
        // 2 requests x (8 ms prefill + 4 ms decode) at 250 W:
        // 250 W x 0.024 s = 6 J exactly.
        let r = ServingEngine::new(&PW)
            .with_scheduler(Box::new(ContinuousBatching::new(1)))
            .run(&workloads, &arrivals)
            .unwrap();
        assert_eq!(r.energy_j, Some(6.0));
        // No power model anywhere in the pool: energy is None.
        let b = ServingEngine::new(&B).run(&workloads, &arrivals).unwrap();
        assert_eq!(b.energy_j, None);
    }

    #[test]
    fn run_traced_matches_run_and_conserves_spans() {
        let workloads = vec![
            Workload::new(8, 4),
            Workload::new(6, 3),
            Workload::new(5, 1),
        ];
        let arrivals = ArrivalProcess::Trace(vec![0.0, 1.0, 2.0]);

        let plain = ServingEngine::new(&PW)
            .with_scheduler(Box::new(ContinuousBatching::new(4)))
            .run(&workloads, &arrivals)
            .unwrap();
        let (report, trace) = ServingEngine::new(&PW)
            .with_scheduler(Box::new(ContinuousBatching::new(4)))
            .run_traced(&workloads, &arrivals)
            .unwrap();
        assert_eq!(report, plain, "tracing must not perturb the run");
        trace.validate().unwrap();
        assert_eq!(trace.requests.len(), workloads.len());
        for t in &trace.requests {
            assert!(t.first_token_ms.is_some());
            assert!(!t.token_ms.is_empty());
        }
        // Attributed energy partitions the pool total (token shares
        // sum to one per server).
        let attributed: f64 = trace.requests.iter().filter_map(|t| t.energy_j).sum();
        assert!((attributed - report.energy_j.unwrap()).abs() < 1e-9);

        // The static path traces coarse spans: no token timing.
        let (sreport, strace) = ServingEngine::new(&B)
            .run_traced(&workloads, &arrivals)
            .unwrap();
        assert_eq!(sreport.responses.len(), workloads.len());
        strace.validate().unwrap();
        assert!(strace
            .requests
            .iter()
            .all(|t| t.first_token_ms.is_none() && t.token_ms.is_empty() && t.energy_j.is_none()));
        let json = strace.to_chrome_json();
        assert!(crate::telemetry::Json::parse(&json).is_ok());
    }

    #[test]
    fn a_pool_halves_the_queue() {
        let workloads = vec![Workload::new(50, 50); 40];
        let arrivals = ArrivalProcess::Poisson {
            rate_per_s: 15.0,
            seed: 11,
        };
        let solo = ServingEngine::new(&B).run(&workloads, &arrivals).unwrap();
        let duo = ServingEngine::pool(vec![&B, &B])
            .unwrap()
            .run(&workloads, &arrivals)
            .unwrap();
        assert_eq!(duo.servers, 2);
        assert_eq!(duo.backend, "2x unit");
        assert!(duo.p99_sojourn_ms < solo.p99_sojourn_ms / 2.0);
        assert!(duo.responses.iter().any(|r| r.server == 1));
    }

    #[test]
    fn closed_loop_never_queues_more_than_clients() {
        let workloads = vec![Workload::new(10, 10); 30];
        let arrivals = ArrivalProcess::ClosedLoop {
            clients: 3,
            think_time_ms: 5.0,
        };
        let r = ServingEngine::new(&B).run(&workloads, &arrivals).unwrap();
        assert_eq!(r.responses.len(), 30);
        assert!(r.max_queue_depth <= 3, "{}", r.max_queue_depth);
        // Work conserving: the single server is the bottleneck.
        assert!(r.utilization > 0.5, "{}", r.utilization);
    }

    #[test]
    fn trace_replay_uses_the_given_timestamps() {
        let workloads = vec![Workload::new(5, 5); 3];
        let arrivals = ArrivalProcess::Trace(vec![0.0, 100.0, 100.0]);
        let r = ServingEngine::new(&B).run(&workloads, &arrivals).unwrap();
        assert_eq!(r.responses[0].start_ms, 0.0);
        assert_eq!(r.responses[1].start_ms, 100.0);
        assert_eq!(r.responses[2].start_ms, 110.0);
    }

    #[test]
    fn sjf_prefers_short_jobs_under_backlog() {
        // All arrive at once; SJF should serve ascending output lengths
        // after the first pick.
        let workloads = vec![
            Workload::new(1, 50),
            Workload::new(1, 10),
            Workload::new(1, 30),
            Workload::new(1, 20),
        ];
        let arrivals = ArrivalProcess::Trace(vec![0.0; 4]);
        let r = ServingEngine::new(&B)
            .with_scheduler(Box::new(ShortestJobFirst::new()))
            .run(&workloads, &arrivals)
            .unwrap();
        let order: Vec<u64> = r.responses.iter().map(|x| x.request.id).collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
        assert_eq!(r.scheduler, "SJF(output_len)");
    }

    #[test]
    fn aged_sjf_bounds_starvation_under_sustained_short_arrivals() {
        // One long job at t=0 under a steady stream of short jobs that
        // would starve it forever: with aging it runs once it has
        // waited the bound; without aging it finishes last.
        let n_short = 30usize;
        let mut workloads = vec![Workload::new(1, 49)];
        workloads.extend(vec![Workload::new(1, 9); n_short]);
        // Shorts arrive every 10 ms — exactly the short service time, so
        // plain SJF always has a shorter job available.
        let mut times = vec![0.0];
        times.extend((0..n_short).map(|i| i as f64 * 10.0));
        let arrivals = ArrivalProcess::Trace(times);

        let plain = ServingEngine::new(&B)
            .with_scheduler(Box::new(ShortestJobFirst::new()))
            .run(&workloads, &arrivals)
            .unwrap();
        let long_plain = plain.responses.iter().find(|r| r.request.id == 0).unwrap();
        assert_eq!(
            plain.responses.last().unwrap().request.id,
            0,
            "without aging the long job must finish last"
        );

        let aged = ServingEngine::new(&B)
            .with_scheduler(Box::new(ShortestJobFirst::with_aging(40.0)))
            .run(&workloads, &arrivals)
            .unwrap();
        let long_aged = aged.responses.iter().find(|r| r.request.id == 0).unwrap();
        assert!(
            long_aged.start_ms < long_plain.start_ms,
            "aging must start the long job earlier: {} !< {}",
            long_aged.start_ms,
            long_plain.start_ms
        );
        // The long job runs as soon as it is stale and a server frees:
        // well before the short stream drains.
        assert!(
            long_aged.start_ms <= 50.0,
            "aged long-job start {} should be near the 40 ms bound",
            long_aged.start_ms
        );
    }

    #[test]
    fn batching_coalesces_a_backlog_into_one_dispatch() {
        // Four requests queued at t=0 with max_batch 4: one backend
        // invocation serves all of them, finishing together.
        let workloads = vec![Workload::new(10, 10); 4];
        let arrivals = ArrivalProcess::Trace(vec![0.0; 4]);
        let r = ServingEngine::new(&B)
            .with_scheduler(Box::new(crate::scheduler::Batching::new(4, 50.0)))
            .run(&workloads, &arrivals)
            .unwrap();
        assert_eq!(r.dispatches, 1);
        assert!((r.mean_batch_size() - 4.0).abs() < 1e-12);
        // The Const backend has no batched model, so the sequential
        // fallback sums the four service times; all four share it.
        for resp in &r.responses {
            assert_eq!(resp.start_ms, 0.0);
            assert!((resp.finish_ms - 80.0).abs() < 1e-9);
        }
    }

    #[test]
    fn batching_waits_for_latecomers_within_the_timeout() {
        // Second request arrives at 5 ms; the scheduler holds the free
        // server (timeout 30 ms) and dispatches both together.
        let workloads = vec![Workload::new(10, 10); 2];
        let arrivals = ArrivalProcess::Trace(vec![0.0, 5.0]);
        let r = ServingEngine::new(&B)
            .with_scheduler(Box::new(crate::scheduler::Batching::new(2, 30.0)))
            .run(&workloads, &arrivals)
            .unwrap();
        assert_eq!(r.dispatches, 1);
        assert_eq!(r.responses[0].start_ms, 5.0);
        assert_eq!(r.responses[1].start_ms, 5.0);
    }

    #[test]
    fn batching_flushes_a_partial_batch_at_the_timeout() {
        // Nothing else ever arrives: the lone request must not wait past
        // its 30 ms window.
        let workloads = vec![Workload::new(10, 10)];
        let arrivals = ArrivalProcess::Trace(vec![2.0]);
        let r = ServingEngine::new(&B)
            .with_scheduler(Box::new(crate::scheduler::Batching::new(8, 30.0)))
            .run(&workloads, &arrivals)
            .unwrap();
        assert_eq!(r.dispatches, 1);
        assert_eq!(r.responses[0].start_ms, 32.0);
    }

    #[test]
    fn batching_with_max_batch_one_matches_fifo_exactly() {
        let workloads: Vec<Workload> = (0..20)
            .map(|i| Workload::new(4 + i % 5, 2 + i % 7))
            .collect();
        let arrivals = ArrivalProcess::Poisson {
            rate_per_s: 60.0,
            seed: 0xBA7C,
        };
        let fifo = ServingEngine::new(&B).run(&workloads, &arrivals).unwrap();
        let batch1 = ServingEngine::new(&B)
            .with_scheduler(Box::new(crate::scheduler::Batching::new(1, 1_000.0)))
            .run(&workloads, &arrivals)
            .unwrap();
        assert_eq!(fifo.responses, batch1.responses);
        assert_eq!(fifo.dispatches, batch1.dispatches);
    }

    #[test]
    fn continuous_with_max_batch_one_matches_fifo_exactly() {
        // The tentpole invariant: max_batch == 1 continuous batching is
        // the FIFO single-dispatch path — same starts, same finishes,
        // same percentiles (dispatch counting differs by design: the
        // token loop counts steps).
        let workloads: Vec<Workload> = (0..20)
            .map(|i| Workload::new(4 + i % 5, 2 + i % 7))
            .collect();
        for arrivals in [
            ArrivalProcess::Poisson {
                rate_per_s: 60.0,
                seed: 0xBA7C,
            },
            ArrivalProcess::ClosedLoop {
                clients: 3,
                think_time_ms: 4.0,
            },
        ] {
            let fifo = ServingEngine::new(&S).run(&workloads, &arrivals).unwrap();
            let cont = ServingEngine::new(&S)
                .with_scheduler(Box::new(ContinuousBatching::new(1)))
                .run(&workloads, &arrivals)
                .unwrap();
            assert_eq!(fifo.responses, cont.responses, "{arrivals:?}");
            assert_eq!(fifo.p99_sojourn_ms, cont.p99_sojourn_ms);
            assert_eq!(fifo.utilization, cont.utilization);
            assert_eq!(fifo.makespan_ms, cont.makespan_ms);
        }
    }

    #[test]
    fn continuous_admits_latecomers_into_a_running_batch() {
        // Request 1 arrives while request 0 decodes: it joins at the
        // next token boundary instead of waiting for 0 to finish.
        let workloads = vec![Workload::new(10, 20), Workload::new(5, 5)];
        let arrivals = ArrivalProcess::Trace(vec![0.0, 12.0]);
        let r = ServingEngine::new(&S)
            .with_scheduler(Box::new(ContinuousBatching::new(2)))
            .run(&workloads, &arrivals)
            .unwrap();
        let first = r.responses.iter().find(|x| x.request.id == 0).unwrap();
        let second = r.responses.iter().find(|x| x.request.id == 1).unwrap();
        // The latecomer starts (prefills) at the first boundary at or
        // after its arrival, well before the long request finishes.
        assert!(second.start_ms >= 12.0);
        assert!(
            second.start_ms < first.finish_ms,
            "no admission happened: {} !< {}",
            second.start_ms,
            first.finish_ms
        );
        // Its 5 ms prefill stalls the running member's decode, so the
        // long request finishes later than it would alone (10 + 20 ms),
        // but far earlier than a static padded batch would allow.
        assert!(first.finish_ms > 30.0);
        // The short member exits early, before the long one.
        assert!(second.finish_ms < first.finish_ms);
    }

    #[test]
    fn continuous_early_exit_frees_slots_for_the_backlog() {
        // max_batch 2 over four queued requests: as each short member
        // exits, the next queued request is admitted at a token
        // boundary — the batch never drains to empty before refilling.
        let workloads = vec![
            Workload::new(2, 12),
            Workload::new(2, 3),
            Workload::new(2, 3),
            Workload::new(2, 3),
        ];
        let arrivals = ArrivalProcess::Trace(vec![0.0; 4]);
        let r = ServingEngine::new(&S)
            .with_scheduler(Box::new(ContinuousBatching::new(2)))
            .run(&workloads, &arrivals)
            .unwrap();
        assert_eq!(r.responses.len(), 4);
        let long = r.responses.iter().find(|x| x.request.id == 0).unwrap();
        // Every short request starts before the long member finishes:
        // each slot handoff happens mid-flight.
        for id in 1..4 {
            let short = r.responses.iter().find(|x| x.request.id == id).unwrap();
            assert!(
                short.start_ms < long.finish_ms,
                "request {id} waited for the long member"
            );
        }
    }

    #[test]
    fn continuous_discipline_falls_back_to_static_without_a_stepper() {
        // The Const backend without a stepper keeps the static path:
        // ContinuousBatching acts as an immediate greedy coalescer.
        let workloads = vec![Workload::new(10, 10); 4];
        let arrivals = ArrivalProcess::Trace(vec![0.0; 4]);
        let r = ServingEngine::new(&B)
            .with_scheduler(Box::new(ContinuousBatching::new(4)))
            .run(&workloads, &arrivals)
            .unwrap();
        // One coalesced dispatch through the sequential serve_batch
        // fallback: all four finish together at the summed latency.
        assert_eq!(r.dispatches, 1);
        for resp in &r.responses {
            assert_eq!(resp.start_ms, 0.0);
            assert!((resp.finish_ms - 80.0).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_admissions_are_service_errors() {
        /// Admits a duplicated index.
        struct DupAdmit;
        impl Scheduler for DupAdmit {
            fn name(&self) -> &str {
                "dup-admit"
            }
            fn pick(&mut self, _q: &[Request], _now: f64) -> usize {
                0
            }
            fn admit(
                &mut self,
                _running: &[RunningMember],
                _queue: &[Request],
                _now: f64,
                _probe: &mut dyn crate::scheduler::AdmissionProbe,
            ) -> Vec<usize> {
                vec![0, 0]
            }
            fn is_continuous(&self) -> bool {
                true
            }
        }
        let workloads = vec![Workload::new(5, 5); 2];
        let arrivals = ArrivalProcess::Trace(vec![0.0, 0.0]);
        let err = ServingEngine::new(&S)
            .with_scheduler(Box::new(DupAdmit))
            .run(&workloads, &arrivals)
            .unwrap_err();
        assert!(matches!(err, SimError::Service(_)), "{err:?}");
    }

    #[test]
    fn declining_one_idle_server_defers_to_another_servers_boundary() {
        // A packing discipline keeps every request on the first-seeded
        // server: it declines admissions whenever the presented batch
        // is empty (an idle server) after the first seed. With no
        // future arrivals left, the engine must not call that a stall —
        // the busy server's next token boundary presents a non-empty
        // running batch and drains the queue.
        struct PackFirst {
            seeded: bool,
        }
        impl Scheduler for PackFirst {
            fn name(&self) -> &str {
                "pack-first"
            }
            fn pick(&mut self, _q: &[Request], _now: f64) -> usize {
                0
            }
            fn admit(
                &mut self,
                running: &[RunningMember],
                queue: &[Request],
                _now: f64,
                _probe: &mut dyn crate::scheduler::AdmissionProbe,
            ) -> Vec<usize> {
                if running.is_empty() && self.seeded {
                    return Vec::new();
                }
                self.seeded = true;
                (0..queue.len()).collect()
            }
            fn is_continuous(&self) -> bool {
                true
            }
        }
        let workloads = vec![Workload::new(5, 5), Workload::new(5, 5)];
        let arrivals = ArrivalProcess::Trace(vec![0.0, 6.0]);
        let r = ServingEngine::pool(vec![&S, &S])
            .unwrap()
            .with_scheduler(Box::new(PackFirst { seeded: false }))
            .run(&workloads, &arrivals)
            .unwrap();
        assert_eq!(r.responses.len(), 2);
        // Both packed onto the seeded server; the latecomer joined at a
        // token boundary after its arrival.
        assert!(r.responses.iter().all(|resp| resp.server == 0));
        let late = r.responses.iter().find(|x| x.request.id == 1).unwrap();
        assert!(late.start_ms >= 6.0);
    }

    #[test]
    fn admission_decliners_are_rejected_as_stalls() {
        /// Continuous discipline that never admits anybody.
        struct Decline;
        impl Scheduler for Decline {
            fn name(&self) -> &str {
                "decline"
            }
            fn pick(&mut self, _q: &[Request], _now: f64) -> usize {
                0
            }
            fn is_continuous(&self) -> bool {
                true
            }
        }
        let workloads = vec![Workload::new(5, 5)];
        let arrivals = ArrivalProcess::Trace(vec![0.0]);
        let err = ServingEngine::new(&S)
            .with_scheduler(Box::new(Decline))
            .run(&workloads, &arrivals)
            .unwrap_err();
        assert!(matches!(err, SimError::Service(_)), "{err:?}");
    }

    #[test]
    fn stalling_schedulers_are_rejected() {
        /// Always waits, never dispatches.
        struct Stall;
        impl Scheduler for Stall {
            fn name(&self) -> &str {
                "stall"
            }
            fn pick(&mut self, _q: &[Request], _now: f64) -> usize {
                0
            }
            fn pick_batch(
                &mut self,
                _q: &[Request],
                now_ms: f64,
                _feasible: &dyn Fn(&[Workload]) -> bool,
            ) -> BatchDecision {
                BatchDecision::Wait(now_ms + 1.0)
            }
        }
        let workloads = vec![Workload::new(5, 5)];
        let arrivals = ArrivalProcess::Trace(vec![0.0]);
        let err = ServingEngine::new(&B)
            .with_scheduler(Box::new(Stall))
            .run(&workloads, &arrivals)
            .unwrap_err();
        assert!(matches!(err, SimError::Service(_)), "{err:?}");
    }

    #[test]
    fn late_arrivals_in_a_custom_pick_never_start_before_they_arrive() {
        // A scheduler may legally Wait past a second server's free time
        // and then batch a late arrival with the queue head; the
        // dispatch instant of the earlier-free server must not drag the
        // late member's start before its own arrival.
        struct SkipOldest {
            calls: u32,
        }
        impl Scheduler for SkipOldest {
            fn name(&self) -> &str {
                "skip-oldest"
            }
            fn pick(&mut self, _q: &[Request], _now: f64) -> usize {
                0
            }
            fn pick_batch(
                &mut self,
                queue: &[Request],
                _now: f64,
                _feasible: &dyn Fn(&[Workload]) -> bool,
            ) -> BatchDecision {
                self.calls += 1;
                match self.calls {
                    // Hold the first server while arrivals trickle in.
                    1 | 2 => BatchDecision::Wait(100.0),
                    // Serve the middle request alone...
                    3 => BatchDecision::Dispatch(vec![1]),
                    // ...then batch the head with the latest arrival on
                    // the still-free second server.
                    _ => BatchDecision::Dispatch((0..queue.len()).collect()),
                }
            }
        }
        let workloads = vec![Workload::new(5, 5); 3];
        let arrivals = ArrivalProcess::Trace(vec![0.0, 50.0, 60.0]);
        let r = ServingEngine::pool(vec![&B, &B])
            .unwrap()
            .with_scheduler(Box::new(SkipOldest { calls: 0 }))
            .run(&workloads, &arrivals)
            .unwrap();
        assert_eq!(r.responses.len(), 3);
        for resp in &r.responses {
            assert!(
                resp.start_ms >= resp.request.arrival_ms,
                "request {} started at {} before its arrival {}",
                resp.request.id,
                resp.start_ms,
                resp.request.arrival_ms
            );
        }
    }

    #[test]
    fn invalid_batch_picks_are_service_errors() {
        /// Dispatches a duplicated index.
        struct Dup;
        impl Scheduler for Dup {
            fn name(&self) -> &str {
                "dup"
            }
            fn pick(&mut self, _q: &[Request], _now: f64) -> usize {
                0
            }
            fn pick_batch(
                &mut self,
                _q: &[Request],
                _now: f64,
                _feasible: &dyn Fn(&[Workload]) -> bool,
            ) -> BatchDecision {
                BatchDecision::Dispatch(vec![0, 0])
            }
        }
        let workloads = vec![Workload::new(5, 5); 2];
        let arrivals = ArrivalProcess::Trace(vec![0.0, 0.0]);
        let err = ServingEngine::new(&B)
            .with_scheduler(Box::new(Dup))
            .run(&workloads, &arrivals)
            .unwrap_err();
        assert!(matches!(err, SimError::Service(_)), "{err:?}");
    }

    /// A tiny appliance whose HBM holds the weight shard plus
    /// `tokens` of K/V claim.
    fn capped_appliance(tokens: u64) -> dfx_sim::Appliance {
        use dfx_model::GptConfig;
        let probe = dfx_sim::Appliance::timing_only(GptConfig::tiny(), 2).unwrap();
        let m = probe.memory_model();
        dfx_sim::Appliance::timing_only(GptConfig::tiny(), 2)
            .unwrap()
            .with_hbm_capacity(m.weight_bytes + tokens * m.kv_bytes_per_token)
            .unwrap()
    }

    #[test]
    fn kv_capacity_caps_the_live_batch() {
        // Six saturating requests of 16 tokens' claim each: a 32-token
        // budget holds two at a time, however large the discipline's
        // max batch; unlimited HBM lets all six decode together.
        let workloads = vec![Workload::new(8, 8); 6];
        let arrivals = ArrivalProcess::Trace(vec![0.0; 6]);
        let capped = capped_appliance(32);
        let r = ServingEngine::new(&capped)
            .with_scheduler(Box::new(ContinuousBatching::new(8)))
            .run(&workloads, &arrivals)
            .unwrap();
        assert_eq!(r.responses.len(), 6);
        assert_eq!(r.peak_live_batch, 2, "HBM holds exactly two claims");

        let unlimited = dfx_sim::Appliance::timing_only(dfx_model::GptConfig::tiny(), 2).unwrap();
        let r = ServingEngine::new(&unlimited)
            .with_scheduler(Box::new(ContinuousBatching::new(8)))
            .run(&workloads, &arrivals)
            .unwrap();
        assert_eq!(r.peak_live_batch, 6);
    }

    #[test]
    fn chunked_prefill_cuts_the_decode_stall_at_equal_goodput() {
        // A long decode with long-context joiners arriving mid-flight:
        // unchunked, every admission stalls the runner for a whole
        // prefill; chunked, the worst inter-token gap shrinks while the
        // same total work keeps goodput essentially unchanged.
        use dfx_model::GptConfig;
        let dfx = dfx_sim::Appliance::timing_only(GptConfig::tiny(), 2).unwrap();
        let mut workloads = vec![Workload::new(8, 48)];
        workloads.extend(vec![Workload::new(64, 2); 3]);
        let arrivals = ArrivalProcess::Trace(vec![0.0, 0.5, 1.0, 1.5]);
        let run = |scheduler: Box<dyn Scheduler>| {
            ServingEngine::new(&dfx)
                .with_scheduler(scheduler)
                .run(&workloads, &arrivals)
                .unwrap()
        };
        let whole = run(Box::new(ContinuousBatching::new(4)));
        let chunked = run(Box::new(ContinuousBatching::new(4).with_prefill_chunk(4)));
        assert_eq!(chunked.responses.len(), whole.responses.len());
        assert!(
            chunked.p99_token_gap_ms < 0.6 * whole.p99_token_gap_ms,
            "chunked p99 gap {} !<< unchunked {}",
            chunked.p99_token_gap_ms,
            whole.p99_token_gap_ms
        );
        assert!(
            (chunked.goodput_tps - whole.goodput_tps).abs() < 0.05 * whole.goodput_tps,
            "goodput moved: chunked {} vs whole {}",
            chunked.goodput_tps,
            whole.goodput_tps
        );
    }

    #[test]
    fn slo_admission_defers_the_join_until_the_runner_is_safe() {
        // A 64-token prefill joining mid-decode blows the runner's SLO:
        // with the guard the join waits for the runner to finish (the
        // runner keeps its solo latency); greedy admission stalls it.
        use dfx_model::GptConfig;
        let dfx = dfx_sim::Appliance::timing_only(GptConfig::tiny(), 2).unwrap();
        let runner = Workload::new(8, 20);
        let solo_ms = dfx.serve(runner).unwrap().total_ms();
        let workloads = vec![runner, Workload::new(64, 2)];
        let arrivals = ArrivalProcess::Trace(vec![0.0, 1.0]);
        let run = |scheduler: Box<dyn Scheduler>| {
            ServingEngine::new(&dfx)
                .with_scheduler(scheduler)
                .run(&workloads, &arrivals)
                .unwrap()
        };
        let greedy = run(Box::new(ContinuousBatching::new(4)));
        let guarded = run(Box::new(ContinuousBatching::new(4).with_slo(1.2 * solo_ms)));
        let finish = |r: &ServiceReport, id: u64| {
            r.responses
                .iter()
                .find(|x| x.request.id == id)
                .unwrap()
                .finish_ms
        };
        assert!(
            finish(&guarded, 0) < finish(&greedy, 0),
            "the guard must protect the runner: {} !< {}",
            finish(&guarded, 0),
            finish(&greedy, 0)
        );
        // The runner meets its SLO under the guard (and the deferred
        // join is still served).
        assert!(finish(&guarded, 0) <= 1.2 * solo_ms + 1e-9);
        assert_eq!(guarded.responses.len(), 2);
    }

    #[test]
    fn utilization_and_goodput_are_consistent() {
        let workloads = vec![Workload::new(10, 10); 10];
        // Saturating arrivals: all at t=0.
        let arrivals = ArrivalProcess::Trace(vec![0.0; 10]);
        let r = ServingEngine::new(&B).run(&workloads, &arrivals).unwrap();
        assert!((r.utilization - 1.0).abs() < 1e-9, "{}", r.utilization);
        assert!((r.makespan_ms - 200.0).abs() < 1e-9);
        assert!((r.goodput_tps - 100.0 / 0.2).abs() < 1e-6);
        assert_eq!(r.max_queue_depth, 9);
    }

    #[test]
    fn empty_inputs_are_service_errors() {
        let arrivals = ArrivalProcess::Trace(vec![]);
        assert!(matches!(
            ServingEngine::new(&B).run(&[], &arrivals),
            Err(SimError::Service(_))
        ));
        assert!(matches!(
            ServingEngine::pool(vec![]),
            Err(SimError::Service(_))
        ));
    }
}

//! Seeded arrival-process generators.

use crate::stats;
use dfx_sim::SimError;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How requests enter the system.
///
/// Every process is fully deterministic for fixed parameters: the
/// stochastic ones take explicit seeds, so identical configurations
/// reproduce identical [`ServiceReport`](crate::ServiceReport)s.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ArrivalProcess {
    /// Open-loop Poisson stream: i.i.d. exponential inter-arrival gaps
    /// at `rate_per_s` requests per second, drawn from `seed`.
    Poisson {
        /// Mean arrival rate, requests per second.
        rate_per_s: f64,
        /// RNG seed for the gap draws.
        seed: u64,
    },
    /// Closed loop: `clients` concurrent users, each submitting its next
    /// request `think_time_ms` after receiving its previous response.
    /// Arrival times therefore depend on service completions and are
    /// produced by the engine itself.
    ClosedLoop {
        /// Concurrent users.
        clients: usize,
        /// Pause between a response and the same user's next request, ms.
        think_time_ms: f64,
    },
    /// Trace replay: explicit arrival timestamps in ms, one per request,
    /// ascending.
    Trace(Vec<f64>),
}

impl ArrivalProcess {
    /// Pre-computes the arrival timestamps (ms) of an open-loop process
    /// for `n` requests. Returns `None` for [`ArrivalProcess::ClosedLoop`],
    /// whose arrivals only exist inside the running engine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Service`] for a non-positive or non-finite
    /// Poisson rate, a trace whose length differs from `n`, or a trace
    /// that is negative or not ascending.
    pub fn open_arrivals_ms(&self, n: usize) -> Result<Option<Vec<f64>>, SimError> {
        match self {
            ArrivalProcess::Poisson { rate_per_s, seed } => {
                if !rate_per_s.is_finite() || *rate_per_s <= 0.0 {
                    return Err(SimError::Service(format!(
                        "Poisson arrival rate must be positive and finite, got {rate_per_s}"
                    )));
                }
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut t = 0.0;
                Ok(Some(
                    (0..n)
                        .map(|_| {
                            t += stats::exp_sample(&mut rng, *rate_per_s) * 1e3;
                            t
                        })
                        .collect(),
                ))
            }
            ArrivalProcess::ClosedLoop {
                clients,
                think_time_ms,
            } => {
                if *clients == 0 {
                    return Err(SimError::Service(
                        "closed-loop arrival process needs at least one client".into(),
                    ));
                }
                if !think_time_ms.is_finite() || *think_time_ms < 0.0 {
                    return Err(SimError::Service(format!(
                        "closed-loop think time must be finite and non-negative, \
                         got {think_time_ms}"
                    )));
                }
                Ok(None)
            }
            ArrivalProcess::Trace(times) => {
                if times.len() != n {
                    return Err(SimError::Service(format!(
                        "trace has {} arrivals for {} requests",
                        times.len(),
                        n
                    )));
                }
                if times.iter().any(|t| !t.is_finite() || *t < 0.0) {
                    return Err(SimError::Service(
                        "trace arrivals must be finite and non-negative".into(),
                    ));
                }
                if times.windows(2).any(|w| w[0] > w[1]) {
                    return Err(SimError::Service("trace arrivals must be ascending".into()));
                }
                Ok(Some(times.clone()))
            }
        }
    }

    /// Validates the process and converts it into the engine's
    /// submission plan for `n` requests.
    ///
    /// The match is exhaustive on purpose — `#[non_exhaustive]` does not
    /// bind inside the defining crate, so adding a variant without
    /// declaring its plan here is a compile error, not a runtime panic.
    pub(crate) fn plan(&self, n: usize) -> Result<SubmissionPlan, SimError> {
        match self {
            ArrivalProcess::Poisson { .. } | ArrivalProcess::Trace(_) => {
                let times = self.open_arrivals_ms(n)?.ok_or_else(|| {
                    SimError::Service("open-loop process yielded no arrival times".into())
                })?;
                Ok(SubmissionPlan::Open(times))
            }
            ArrivalProcess::ClosedLoop {
                clients,
                think_time_ms,
            } => {
                self.open_arrivals_ms(n)?; // parameter validation
                Ok(SubmissionPlan::Closed {
                    clients: *clients,
                    think_time_ms: *think_time_ms,
                })
            }
        }
    }
}

/// How submissions become known to the simulation core.
pub(crate) enum SubmissionPlan {
    /// All arrival times known up front.
    Open(Vec<f64>),
    /// Arrivals generated by request completions.
    Closed {
        /// Concurrent users.
        clients: usize,
        /// Post-response pause before the next submission, ms.
        think_time_ms: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_seeded_and_ascending() {
        let p = ArrivalProcess::Poisson {
            rate_per_s: 2.0,
            seed: 9,
        };
        let a = p.open_arrivals_ms(64).unwrap().unwrap();
        let b = p.open_arrivals_ms(64).unwrap().unwrap();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(a[0] > 0.0);
    }

    #[test]
    fn different_seeds_differ() {
        let a = ArrivalProcess::Poisson {
            rate_per_s: 2.0,
            seed: 1,
        };
        let b = ArrivalProcess::Poisson {
            rate_per_s: 2.0,
            seed: 2,
        };
        assert_ne!(
            a.open_arrivals_ms(16).unwrap(),
            b.open_arrivals_ms(16).unwrap()
        );
    }

    #[test]
    fn bad_parameters_are_service_errors() {
        for p in [
            ArrivalProcess::Poisson {
                rate_per_s: 0.0,
                seed: 0,
            },
            ArrivalProcess::Poisson {
                rate_per_s: f64::NAN,
                seed: 0,
            },
            ArrivalProcess::ClosedLoop {
                clients: 0,
                think_time_ms: 1.0,
            },
            ArrivalProcess::ClosedLoop {
                clients: 2,
                think_time_ms: f64::NAN,
            },
            ArrivalProcess::ClosedLoop {
                clients: 2,
                think_time_ms: -1.0,
            },
            ArrivalProcess::Trace(vec![1.0, 0.5]),
            ArrivalProcess::Trace(vec![-1.0, 0.5]),
            ArrivalProcess::Trace(vec![0.0]),
        ] {
            assert!(
                matches!(p.open_arrivals_ms(2), Err(SimError::Service(_))),
                "{p:?} accepted"
            );
        }
    }

    #[test]
    fn closed_loop_has_no_precomputed_arrivals() {
        let p = ArrivalProcess::ClosedLoop {
            clients: 4,
            think_time_ms: 100.0,
        };
        assert_eq!(p.open_arrivals_ms(8).unwrap(), None);
    }
}

//! The unified execution backend: one `serve` call, one report shape,
//! for every platform the paper evaluates.
//!
//! Before this trait existed, `Appliance::generate_timed(in, out)`,
//! `GpuModel::run(Workload)` and `TpuModel::run(Workload)` had three
//! incompatible signatures and three incompatible report structs, so
//! every experiment and example re-adapted them by hand. [`Backend`]
//! collapses the three into `serve(Workload) -> RunReport`.

use crate::stepper::{ApplianceStepper, ContinuousStepper, GpuStepper};
use dfx_baseline::{gpu_calib, GpuModel, TpuModel};
use dfx_hw::MemoryModel;
use dfx_model::Workload;
use dfx_sim::{Appliance, SimError};
use serde::{Deserialize, Serialize};

/// Joint K/V feasibility of a *static coalesced* batch: every member's
/// cache grows at the padded shape, and all are resident at once.
fn padded_kv_fits(memory: &MemoryModel, batch: &[Workload]) -> bool {
    let padded = batch.iter().map(|w| w.input_len).max().unwrap_or(0)
        + batch.iter().map(|w| w.output_len).max().unwrap_or(0);
    memory.fits_tokens(batch.len() * padded)
}

/// Platform-independent result of serving one coalesced batch of
/// requests.
///
/// A coalesced batch completes as a unit: every member experiences the
/// same [`total_ms`](BatchReport::total_ms), and throughput credits only
/// the output tokens members actually asked for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Human-readable backend description.
    pub backend: String,
    /// The member workloads, in batch order.
    pub workloads: Vec<Workload>,
    /// Summarization-stage latency of the whole batch, ms.
    pub summarization_ms: f64,
    /// Generation-stage latency of the whole batch, ms.
    pub generation_ms: f64,
    /// Accelerator cards the run occupied.
    pub devices: usize,
    /// Average board power across the run, W (`None` when uncalibrated).
    pub power_w: Option<f64>,
}

impl BatchReport {
    /// Number of requests in the batch.
    pub fn batch_size(&self) -> usize {
        self.workloads.len()
    }

    /// End-to-end latency of the batch, ms.
    pub fn total_ms(&self) -> f64 {
        self.summarization_ms + self.generation_ms
    }

    /// Output tokens requested across the batch.
    pub fn output_tokens(&self) -> usize {
        self.workloads.iter().map(|w| w.output_len).sum()
    }

    /// Aggregate throughput: credited output tokens over the batch
    /// latency.
    pub fn tokens_per_second(&self) -> f64 {
        self.output_tokens() as f64 / (self.total_ms() / 1e3)
    }

    /// Energy of the batch in joules, if the platform models power.
    pub fn energy_j(&self) -> Option<f64> {
        self.power_w.map(|p| p * self.total_ms() / 1e3)
    }
}

/// Platform-independent result of serving one request.
///
/// Carries the two paper stages plus enough metadata to derive every
/// service-level metric (throughput, energy) without knowing which
/// platform produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Human-readable backend description (e.g. `DFX (4x U280, gpt2-1.5b)`).
    pub backend: String,
    /// The workload this report timed.
    pub workload: Workload,
    /// Summarization-stage latency (first pass over the context), ms.
    pub summarization_ms: f64,
    /// Generation-stage latency (remaining output tokens), ms.
    pub generation_ms: f64,
    /// Accelerator cards the run occupied.
    pub devices: usize,
    /// Average board power across the appliance, W. `None` when the
    /// platform has no calibrated power model (the cloud TPU).
    pub power_w: Option<f64>,
}

impl RunReport {
    /// End-to-end latency, ms.
    pub fn total_ms(&self) -> f64 {
        self.summarization_ms + self.generation_ms
    }

    /// Output tokens per second (the paper's throughput metric: output
    /// tokens over end-to-end latency, §VII-B).
    pub fn tokens_per_second(&self) -> f64 {
        self.workload.output_len as f64 / (self.total_ms() / 1e3)
    }

    /// Energy of the run in joules, if the platform models power.
    pub fn energy_j(&self) -> Option<f64> {
        self.power_w.map(|p| p * self.total_ms() / 1e3)
    }

    /// Output tokens per joule, if the platform models power.
    pub fn tokens_per_joule(&self) -> Option<f64> {
        self.power_w.map(|p| self.tokens_per_second() / p)
    }
}

/// A text-generation execution platform with a uniform serving interface.
///
/// Implemented by the DFX [`Appliance`], the V100 [`GpuModel`] and the
/// cloud [`TpuModel`]; the serving engine (and any experiment) drives all
/// of them through this one shape.
pub trait Backend {
    /// Human-readable platform description.
    fn name(&self) -> String;

    /// Number of accelerator cards behind this backend.
    fn device_count(&self) -> usize;

    /// Nominal average board power of the whole backend at full datapath
    /// activity, W. `None` when uncalibrated (the cloud TPU).
    fn nominal_power_w(&self) -> Option<f64>;

    /// Serves one request end to end.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidRequest`] for zero-length workloads
    /// (`input_len == 0` or `output_len == 0`) — enforced uniformly here
    /// at the backend boundary instead of letting platform models emit
    /// degenerate reports — and propagates platform-specific errors.
    fn serve(&self, workload: Workload) -> Result<RunReport, SimError>;

    /// Serves one coalesced batch of requests as a unit.
    ///
    /// The default implementation is a *sequential fallback*: it serves
    /// the members one after another and sums the stage latencies, so
    /// every backend — including ones written before batching existed —
    /// keeps working behind a batching scheduler, just without a batching
    /// win. Platforms with a real batched cost model ([`Appliance`],
    /// [`GpuModel`]) override it; the cloud [`TpuModel`] keeps the
    /// fallback (the paper publishes no batched TPU data to calibrate
    /// against). `serve_batch(&[w])` always agrees with `serve(w)` on
    /// latency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidRequest`] for an empty batch or any
    /// zero-length member, and propagates platform-specific errors.
    fn serve_batch(&self, batch: &[Workload]) -> Result<BatchReport, SimError> {
        if batch.is_empty() {
            return Err(SimError::InvalidRequest("empty batch".into()));
        }
        let mut summarization_ms = 0.0;
        let mut generation_ms = 0.0;
        for &w in batch {
            let r = self.serve(w)?;
            // lint: order-sensitive — per-member in batch order
            summarization_ms += r.summarization_ms;
            // lint: order-sensitive — per-member in batch order
            generation_ms += r.generation_ms;
        }
        Ok(BatchReport {
            backend: self.name(),
            workloads: batch.to_vec(),
            summarization_ms,
            generation_ms,
            devices: self.device_count(),
            power_w: self.nominal_power_w(),
        })
    }

    /// The device-memory capacity model behind this backend, per
    /// device: the always-resident weight shard and the K/V bytes one
    /// context token occupies. `None` when the platform's memory is not
    /// modelled (the cloud TPU) — callers must then treat capacity as
    /// unbounded, which reproduces the pre-memory-subsystem behaviour.
    ///
    /// Schedulers use it as the *joint* admission constraint: every
    /// live request claims `input + output` tokens of K/V until it
    /// retires, and the sum must fit [`MemoryModel::kv_budget_bytes`]
    /// on each device. The engine threads it into both scheduling
    /// paths — [`batch_feasible`](Backend::batch_feasible) on the
    /// static path, [`AdmissionProbe::kv_fits`](crate::AdmissionProbe)
    /// at token boundaries. A paged-K/V stepper refines the
    /// token-boundary check to block granularity through
    /// [`ContinuousStepper::kv_fits_resident`]; this whole-claim model
    /// stays the fallback.
    fn memory(&self) -> Option<MemoryModel> {
        None
    }

    /// Whether this backend can execute `batch` as one coalesced
    /// *static* unit: the joint K/V claim must fit the device's
    /// [`memory`](Backend::memory) budget, and the padded shape any
    /// backend-specific cap.
    ///
    /// A coalesced batch runs at the padded shape (the batch's longest
    /// context and longest output): a backend with a hard sequence cap
    /// can reject a batch whose members are each individually valid,
    /// and every member's K/V cache grows at the padded shape, all
    /// resident at once — so the *joint K/V claim*
    /// (`batch × padded tokens × kv bytes/token`), not the per-member
    /// shape, is the binding constraint on memory-modelled backends.
    /// Batching schedulers ([`Batching`](crate::Batching),
    /// [`ContinuousBatching`](crate::ContinuousBatching) on its static
    /// fallback) consult this hook while coalescing, so infeasible sets
    /// are never dispatched.
    ///
    /// The default implementation checks the joint K/V claim against
    /// [`memory`](Backend::memory) and falls back to accepting
    /// everything when `memory()` is `None` (the old shape-only
    /// contract: correct for the sequential
    /// [`serve_batch`](Backend::serve_batch) fallback, which never
    /// pads and holds one request's state at a time). The [`Appliance`]
    /// overrides it to *also* check the padded shape against its
    /// `max_seq_len`.
    ///
    /// Token-granular admission through a [`ContinuousStepper`] is per
    /// member feasible in shape and never consults this hook — between
    /// decode steps there is no joint padded shape — but it still
    /// honours the joint K/V budget through the engine's
    /// [`AdmissionProbe`](crate::AdmissionProbe).
    fn batch_feasible(&self, batch: &[Workload]) -> bool {
        self.memory()
            .is_none_or(|memory| padded_kv_fits(&memory, batch))
    }

    /// The token-granular execution capability: a stepper that admits
    /// members with a prefill charge, decodes all live members one
    /// token per [`step_token`](ContinuousStepper::step_token), and
    /// exits members the moment they finish.
    ///
    /// Returns `None` for backends without an incremental cost model
    /// (the cloud [`TpuModel`]); those keep serving through the static
    /// [`serve_batch`](Backend::serve_batch) path, and the engine falls
    /// back to static coalescing for them even under a continuous
    /// discipline.
    fn continuous(&self) -> Option<Box<dyn ContinuousStepper + '_>> {
        None
    }
}

/// Validates a workload at the [`Backend`] boundary.
///
/// # Errors
///
/// Returns [`SimError::InvalidRequest`] if the workload has no context
/// tokens or generates no output tokens.
pub fn validate_workload(w: Workload) -> Result<(), SimError> {
    if w.input_len == 0 {
        return Err(SimError::InvalidRequest(
            "workload has an empty context (input_len == 0)".into(),
        ));
    }
    if w.output_len == 0 {
        return Err(SimError::InvalidRequest(
            "workload generates nothing (output_len == 0)".into(),
        ));
    }
    Ok(())
}

impl Backend for Appliance {
    fn name(&self) -> String {
        // Paged appliances name themselves distinctly: reports stay
        // self-describing and result memoization keyed by backend name
        // never conflates the two allocators.
        match self.kv_paging() {
            Some(paging) => format!(
                "DFX ({}x U280, {}, paged KV/{})",
                self.num_fpgas(),
                self.config().name,
                paging.block_tokens,
            ),
            None => format!("DFX ({}x U280, {})", self.num_fpgas(), self.config().name),
        }
    }

    fn device_count(&self) -> usize {
        self.num_fpgas()
    }

    fn nominal_power_w(&self) -> Option<f64> {
        Some(dfx_hw::PowerModel::u280_dfx().average_watts(1.0) * self.num_fpgas() as f64)
    }

    fn serve(&self, workload: Workload) -> Result<RunReport, SimError> {
        validate_workload(workload)?;
        let run = self.generate_timed(workload.input_len, workload.output_len)?;
        Ok(RunReport {
            backend: Backend::name(self),
            workload,
            summarization_ms: run.summarization_ms(),
            generation_ms: run.generation_ms(),
            devices: self.num_fpgas(),
            power_w: Some(run.power_w()),
        })
    }

    fn serve_batch(&self, batch: &[Workload]) -> Result<BatchReport, SimError> {
        for &w in batch {
            validate_workload(w)?;
        }
        let run = self.generate_batch_timed(batch)?;
        Ok(BatchReport {
            backend: Backend::name(self),
            workloads: batch.to_vec(),
            summarization_ms: run.summarization_ms(),
            generation_ms: run.generation_ms(),
            devices: self.num_fpgas(),
            power_w: Some(run.power_w()),
        })
    }

    fn memory(&self) -> Option<MemoryModel> {
        Some(self.memory_model())
    }

    fn batch_feasible(&self, batch: &[Workload]) -> bool {
        // The padded shape is what a static batch executes at; it must
        // fit the model's context window, and the joint K/V claim (every
        // member caching at the padded shape) must fit the per-device
        // HBM budget — the same checks generate_batch_timed enforces.
        let input = batch.iter().map(|w| w.input_len).max().unwrap_or(0);
        let output = batch.iter().map(|w| w.output_len).max().unwrap_or(0);
        let kv_fits = match self.kv_paging() {
            // Block granularity: members of a static batch all peak
            // together, so paging rounds each padded footprint up to
            // whole blocks (generate_batch_timed enforces the same).
            Some(paging) => {
                let memory = self.memory_model();
                let per_member = (input + output).div_ceil(paging.block_tokens);
                let total = memory.max_resident_tokens() as usize / paging.block_tokens;
                batch.len() * per_member <= total
            }
            None => padded_kv_fits(&self.memory_model(), batch),
        };
        !batch.is_empty() && input + output <= self.config().max_seq_len && kv_fits
    }

    fn continuous(&self) -> Option<Box<dyn ContinuousStepper + '_>> {
        Some(Box::new(ApplianceStepper::new(self)))
    }
}

impl Backend for GpuModel {
    fn name(&self) -> String {
        format!("GPU ({}x V100, {})", self.gpus(), self.config().name)
    }

    fn device_count(&self) -> usize {
        self.gpus()
    }

    fn nominal_power_w(&self) -> Option<f64> {
        Some(gpu_calib::GPU_POWER_W * self.gpus() as f64)
    }

    fn serve(&self, workload: Workload) -> Result<RunReport, SimError> {
        validate_workload(workload)?;
        let report = self.run(workload);
        Ok(RunReport {
            backend: Backend::name(self),
            workload,
            summarization_ms: report.summarization_ms,
            generation_ms: report.generation_ms,
            devices: self.gpus(),
            power_w: Some(report.power_w),
        })
    }

    fn serve_batch(&self, batch: &[Workload]) -> Result<BatchReport, SimError> {
        if batch.is_empty() {
            return Err(SimError::InvalidRequest("empty batch".into()));
        }
        for &w in batch {
            validate_workload(w)?;
        }
        let report = self.run_batch(batch);
        Ok(BatchReport {
            backend: Backend::name(self),
            workloads: batch.to_vec(),
            summarization_ms: report.summarization_ms,
            generation_ms: report.generation_ms,
            devices: self.gpus(),
            power_w: Some(report.power_w),
        })
    }

    fn memory(&self) -> Option<MemoryModel> {
        // 32 GiB HBM2 per V100 (the SXM3 cards the paper's DGX-class
        // server carries). Each GPU holds an FP16 shard of the whole
        // model under Megatron-LM tensor parallelism, and a token's
        // K/V state (2 x emb x 2 B per layer) splits the same way. A
        // shard past the card's capacity means this cluster could not
        // host the model at all — the analytic latency model answers
        // anyway, so report the memory as unmodelled rather than panic
        // mid-scheduling.
        let cfg = self.config();
        let capacity_bytes = 32 * (1 << 30);
        let weight_bytes = 2 * cfg.num_parameters() / self.gpus() as u64;
        let kv_bytes_per_token =
            (cfg.num_layers as u64) * 2 * (cfg.embedding_dim as u64) * 2 / self.gpus() as u64;
        if weight_bytes + kv_bytes_per_token > capacity_bytes {
            return None;
        }
        Some(MemoryModel::new(
            capacity_bytes,
            weight_bytes,
            kv_bytes_per_token,
        ))
    }

    fn continuous(&self) -> Option<Box<dyn ContinuousStepper + '_>> {
        Some(Box::new(GpuStepper::new(self)))
    }
}

impl Backend for TpuModel {
    fn name(&self) -> String {
        format!("TPU ({})", self.config().name)
    }

    fn device_count(&self) -> usize {
        1
    }

    fn nominal_power_w(&self) -> Option<f64> {
        // The paper reports TPU GFLOPS but never board power (§VII-C).
        None
    }

    fn serve(&self, workload: Workload) -> Result<RunReport, SimError> {
        validate_workload(workload)?;
        let report = self.run(workload);
        Ok(RunReport {
            backend: Backend::name(self),
            workload,
            summarization_ms: report.summarization_ms,
            generation_ms: report.generation_ms,
            devices: 1,
            power_w: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfx_model::GptConfig;

    fn backends() -> (Appliance, GpuModel, TpuModel) {
        let cfg = GptConfig::tiny();
        (
            Appliance::timing_only(cfg.clone(), 2).unwrap(),
            GpuModel::new(cfg.clone(), 2),
            TpuModel::new(cfg),
        )
    }

    #[test]
    fn all_three_platforms_serve_the_same_shape() {
        let (dfx, gpu, tpu) = backends();
        let w = Workload::new(8, 4);
        for backend in [&dfx as &dyn Backend, &gpu, &tpu] {
            let r = backend.serve(w).unwrap();
            assert_eq!(r.workload, w);
            assert_eq!(r.backend, backend.name());
            assert_eq!(r.devices, backend.device_count());
            assert!(r.summarization_ms > 0.0);
            assert!(r.generation_ms > 0.0);
            assert!(r.tokens_per_second() > 0.0);
        }
    }

    #[test]
    fn zero_length_workloads_are_rejected_at_the_boundary() {
        let (dfx, gpu, tpu) = backends();
        for backend in [&dfx as &dyn Backend, &gpu, &tpu] {
            for w in [Workload::new(0, 4), Workload::new(8, 0)] {
                assert!(
                    matches!(backend.serve(w), Err(SimError::InvalidRequest(_))),
                    "{} accepted {w}",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn report_matches_the_platform_specific_api() {
        let (dfx, _, _) = backends();
        let w = Workload::new(8, 4);
        let unified = dfx.serve(w).unwrap();
        let native = dfx.generate_timed(8, 4).unwrap();
        assert_eq!(unified.total_ms(), native.total_latency_ms());
        assert_eq!(unified.tokens_per_second(), native.tokens_per_second());
        assert_eq!(unified.power_w, Some(native.power_w()));
    }

    #[test]
    fn serve_batch_of_one_matches_serve_on_every_platform() {
        let (dfx, gpu, tpu) = backends();
        let w = Workload::new(8, 4);
        for backend in [&dfx as &dyn Backend, &gpu, &tpu] {
            let single = backend.serve(w).unwrap();
            let batch = backend.serve_batch(&[w]).unwrap();
            assert_eq!(batch.batch_size(), 1);
            assert_eq!(batch.total_ms(), single.total_ms(), "{}", backend.name());
            assert_eq!(batch.tokens_per_second(), single.tokens_per_second());
        }
    }

    #[test]
    fn batched_platforms_beat_the_sequential_fallback() {
        // DFX and GPU override serve_batch with a real batched cost
        // model, so a 4-way batch must finish faster than serving the
        // four members back to back.
        let (dfx, gpu, _) = backends();
        let batch = vec![Workload::new(8, 4); 4];
        for backend in [&dfx as &dyn Backend, &gpu] {
            let batched = backend.serve_batch(&batch).unwrap().total_ms();
            let sequential: f64 = batch
                .iter()
                .map(|&w| backend.serve(w).unwrap().total_ms())
                .sum();
            assert!(
                batched < sequential,
                "{}: batch {batched} !< sequential {sequential}",
                backend.name()
            );
        }
    }

    #[test]
    fn the_tpu_keeps_the_sequential_fallback() {
        let (_, _, tpu) = backends();
        let batch = vec![Workload::new(8, 4); 3];
        let batched = tpu.serve_batch(&batch).unwrap().total_ms();
        let sequential: f64 = batch
            .iter()
            .map(|&w| tpu.serve(w).unwrap().total_ms())
            .sum();
        assert!((batched - sequential).abs() < 1e-9);
    }

    #[test]
    fn invalid_batches_are_rejected_at_the_boundary() {
        let (dfx, gpu, tpu) = backends();
        for backend in [&dfx as &dyn Backend, &gpu, &tpu] {
            assert!(
                matches!(backend.serve_batch(&[]), Err(SimError::InvalidRequest(_))),
                "{} accepted an empty batch",
                backend.name()
            );
            assert!(matches!(
                backend.serve_batch(&[Workload::new(8, 4), Workload::new(0, 4)]),
                Err(SimError::InvalidRequest(_))
            ));
        }
    }

    #[test]
    fn feasibility_tracks_the_appliance_padded_cap() {
        // tiny's max_seq_len is 128: each member fits alone, the padded
        // pair does not. The GPU and TPU models have no hard cap.
        let (dfx, gpu, tpu) = backends();
        let long_ctx = Workload::new(100, 2);
        let long_out = Workload::new(2, 100);
        assert!(dfx.batch_feasible(&[long_ctx]));
        assert!(dfx.batch_feasible(&[long_out]));
        assert!(!dfx.batch_feasible(&[long_ctx, long_out]));
        assert!(!Backend::batch_feasible(&dfx, &[]));
        assert!(gpu.batch_feasible(&[long_ctx, long_out]));
        assert!(tpu.batch_feasible(&[long_ctx, long_out]));
        // The hook and the batched path agree.
        assert!(dfx.serve_batch(&[long_ctx, long_out]).is_err());
    }

    #[test]
    fn memory_models_are_exposed_per_platform() {
        let (dfx, gpu, tpu) = backends();
        let d = dfx.memory().expect("appliance models HBM");
        assert_eq!(d, dfx.memory_model());
        let g = gpu.memory().expect("GPU models HBM2");
        assert_eq!(g.capacity_bytes, 32 * (1 << 30));
        assert!(g.weight_bytes > 0 && g.kv_bytes_per_token > 0);
        // The TPU's memory is unmodelled: capacity reads as unbounded.
        assert!(tpu.memory().is_none());
        assert!(tpu.batch_feasible(&[Workload::new(100, 100); 64]));
        // A model whose FP16 shard exceeds the V100's 32 GiB reports
        // unmodelled memory instead of panicking mid-scheduling.
        let huge = GpuModel::new(GptConfig::new("gpt-huge", 8192, 64, 256, 50257, 2048), 1);
        assert!(huge.memory().is_none());
        assert!(huge.batch_feasible(&[Workload::new(100, 100); 4]));
    }

    #[test]
    fn feasibility_tracks_the_joint_kv_budget() {
        // Budget for 30 padded K/V tokens: a 12-token member is feasible
        // alone and as its own batch, but a pair (2 x 12 = 24... at the
        // padded shape both claim 12) is fine while a trio is not —
        // the joint claim, not the padded shape, rejects it.
        let cfg = GptConfig::tiny();
        let probe = Appliance::timing_only(cfg.clone(), 2).unwrap();
        let m = probe.memory_model();
        let dfx = Appliance::timing_only(cfg, 2)
            .unwrap()
            .with_hbm_capacity(m.weight_bytes + 30 * m.kv_bytes_per_token)
            .unwrap();
        let w = Workload::new(8, 4);
        assert!(dfx.batch_feasible(&[w]));
        assert!(dfx.batch_feasible(&[w, w]));
        assert!(!dfx.batch_feasible(&[w, w, w]));
        // The hook and the batched path agree.
        assert!(dfx.serve_batch(&[w, w]).is_ok());
        assert!(dfx.serve_batch(&[w, w, w]).is_err());
    }

    #[test]
    fn energy_is_power_times_time() {
        let (_, gpu, tpu) = backends();
        let w = Workload::new(8, 4);
        let r = gpu.serve(w).unwrap();
        let e = r.energy_j().unwrap();
        assert!((e - r.power_w.unwrap() * r.total_ms() / 1e3).abs() < 1e-12);
        assert_eq!(tpu.serve(w).unwrap().energy_j(), None);
    }
}

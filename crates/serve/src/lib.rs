//! # dfx-serve — one execution API, and a request-serving engine on top
//!
//! The paper's pitch is service-level (§III-A): datacenter text
//! generation runs *non-batched* request streams, so what users feel is
//! tail latency under load, not raw FLOPs. This crate supplies the two
//! abstractions that view needs:
//!
//! - [`Backend`] — a uniform `serve(Workload) -> RunReport` over every
//!   platform in the evaluation: the DFX [`Appliance`], the V100
//!   [`GpuModel`] and the cloud [`TpuModel`]. One report shape
//!   ([`RunReport`]) carries stage latencies, tokens/s and energy, so
//!   callers stop pattern-matching on three platform-specific structs.
//! - [`ServingEngine`] — a deterministic discrete-event simulator that
//!   drives any backend (or a pool behind one queue) through a pluggable
//!   [`Scheduler`] with seeded [`ArrivalProcess`] generators (Poisson,
//!   closed-loop, trace replay), producing a [`ServiceReport`] with
//!   p50/p95/p99 sojourn, queue depth, utilization and goodput.
//!
//! ```
//! use dfx_model::{GptConfig, Workload};
//! use dfx_serve::{ArrivalProcess, Backend, ServingEngine};
//! use dfx_sim::Appliance;
//!
//! # fn main() -> Result<(), dfx_sim::SimError> {
//! let appliance = Appliance::timing_only(GptConfig::tiny(), 2)?;
//! // The unified per-request API...
//! let report = appliance.serve(Workload::new(8, 8))?;
//! assert!(report.tokens_per_second() > 0.0);
//! // ...and the service-level view of the same backend.
//! let stream = vec![Workload::new(8, 8); 16];
//! let poisson = ArrivalProcess::Poisson { rate_per_s: 10.0, seed: 7 };
//! let service = ServingEngine::new(&appliance).run(&stream, &poisson)?;
//! assert!(service.p99_sojourn_ms >= service.p50_sojourn_ms);
//! # Ok(())
//! # }
//! ```
//!
//! [`Appliance`]: dfx_sim::Appliance
//! [`GpuModel`]: dfx_baseline::GpuModel
//! [`TpuModel`]: dfx_baseline::TpuModel

#![warn(missing_docs)]

mod arrivals;
mod backend;
mod checkpoint;
mod cluster;
mod engine;
mod mix;
mod scheduler;
pub mod stats;
mod stepper;
pub mod telemetry;

pub use arrivals::ArrivalProcess;
pub use backend::{validate_workload, Backend, BatchReport, RunReport};
/// Incremental engine checkpoints ([`EngineCheckpoint`]): resume a
/// request stream from its last simulated event instead of replaying
/// the whole prefix — the seam that makes the cluster tier's load-aware
/// placement snapshots O(n) instead of O(n²) over a sweep, with
/// bit-identical reports.
pub use checkpoint::EngineCheckpoint;
/// Cluster tier ([`ClusterRouter`]): deterministic routing across N
/// replica engines with pluggable [`Placement`] policies
/// ([`RoundRobin`], [`LeastOutstanding`], [`LeastKvLoaded`],
/// [`SessionAffinity`]), pooled cross-replica percentiles and a Jain
/// [`jain_fairness`] balance index in the [`ClusterReport`]; a
/// [`DisaggregatedCluster`] chains a prefill router and a
/// [`DecodeOnly`]-wrapped decode router over a modelled K/V link.
pub use cluster::{
    jain_fairness, ClusterReport, ClusterRouter, DecodeOnly, DisaggregatedCluster, LeastKvLoaded,
    LeastOutstanding, Placement, ReplicaReport, ReplicaSnapshot, RoundRobin, RoutedRequest,
    SessionAffinity, TransferStats,
};
pub use engine::{Request, Response, ServiceReport, ServingEngine};
pub use mix::chatbot_mix;
/// Queue disciplines for [`ServingEngine::with_scheduler`]: [`Fifo`]
/// (arrival order), [`Batching`] (size-and-timeout static coalescing;
/// `max_batch == 1` is exactly FIFO), [`ContinuousBatching`]
/// (token-boundary admission and early exit on backends with a
/// [`ContinuousStepper`]; `max_batch == 1` is exactly FIFO; admission
/// keeps the joint K/V claim within the backend's
/// [`Backend::memory`] budget, and the
/// [`with_slo`](ContinuousBatching::with_slo) /
/// [`with_prefill_chunk`](ContinuousBatching::with_prefill_chunk)
/// options add prefill-aware deferral and Sarathi-style chunked
/// prefill) and [`ShortestJobFirst`] — plain SJF starves long requests
/// under sustained load; [`ShortestJobFirst::with_aging`] bounds that
/// by serving the oldest queued request once it has waited the age
/// bound.
pub use scheduler::{
    AdmissionProbe, BatchDecision, Batching, ContinuousBatching, Fifo, RunningMember, Scheduler,
    ShortestJobFirst, UnboundedProbe,
};
pub use stepper::{ContinuousStepper, StepEvent};
/// Observability ([`telemetry`]): a deterministic, dependency-free
/// [`MetricsRegistry`] rendered in Prometheus text exposition format,
/// per-request lifecycle traces ([`RunTrace`], built by
/// [`ServingEngine::run_traced`]) exportable as Chrome trace-event
/// JSON, and per-request energy attribution — every timestamp is
/// simulated time, so exports are bit-identical across runs.
pub use telemetry::{Labels, MetricsRegistry, RequestTrace, RunTrace, SpanOutcome};

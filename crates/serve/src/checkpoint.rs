//! Incremental engine checkpoints: resume a replica's simulation from
//! where it left off instead of re-simulating its whole prefix.
//!
//! The cluster tier's load-aware placements ([`LeastOutstanding`],
//! [`LeastKvLoaded`]) need, at every routed arrival `t`, each replica's
//! *simulated* state at `t`. The original implementation answered by
//! re-running the replica's entire assigned prefix from scratch on
//! every new assignment — O(n²) engine events across a sweep, which
//! walled the cluster experiments off from large request counts. An
//! [`EngineCheckpoint`] instead keeps one resumable
//! [`EngineState`](crate::engine) per replica and advances it
//! monotonically: pushes reveal arrivals in time order, `advance_to(t)`
//! commits exactly the events a full batch replay would have committed
//! strictly before `t` (decisions whose outcome could still depend on
//! unrevealed arrivals are stashed, not guessed — see the step
//! contract in `engine.rs`), and [`finish`](EngineCheckpoint::finish)
//! drains the stream into the same [`ServiceReport`] a fresh batch run
//! over the full prefix would produce, bit for bit.
//!
//! The load snapshots are maintained incrementally too, with integer
//! byte accounting so the reported ratio is bit-identical to the old
//! full-replay float arithmetic (K/V budgets and claims are exact
//! `u64` token-byte products far below 2^53, so their `f64` sums are
//! exact and order-independent):
//!
//! - **outstanding** = pushed − |committed responses with
//!   `finish_ms <= t`| — uncommitted events all finish after `t`, so
//!   this equals the full replay's "responses finishing after `t`"
//!   count;
//! - **K/V load** slides two independent min-heaps as `t` advances:
//!   claims open from the engine's *admission log* when their
//!   `start_ms` passes — starts are known at the admission event, so
//!   requests still in flight at `t` (the very thing K/V load
//!   measures) are visible long before they retire — and close from
//!   the response log when their `finish_ms` passes. A claim's start
//!   never exceeds its finish, so `claimed(t) = Σ opened − Σ closed`
//!   equals the full replay's "started by `t`, unfinished at `t`" sum.
//!   (A claim can also start *after* the event that committed it —
//!   back-to-back prefills at one admission boundary push later
//!   joiners' starts forward — which the start-keyed heap absorbs.)
//!
//! Caveats:
//!
//! - Snapshot times must be non-decreasing (the heaps only slide
//!   forward), which routed arrivals are. On the static path a pool
//!   serving `Wait`-game disciplines can in principle make decisions at
//!   non-monotone instants; the cluster experiments route over
//!   continuous-batching replicas, whose event instants are globally
//!   monotone, and the checkpoint-vs-replay property test pins the
//!   equivalence.
//! - When the scheduler stalls — declines to admit (or asks to wait)
//!   at an instant where the stream knows of no later arrival — the
//!   outcome of that decision depends on whether another request ever
//!   joins the stream, so the advance parks there
//!   ([`is_stalled`](EngineCheckpoint::is_stalled)) rather than guess.
//!   A prefix replay, by contrast, *assumes the stream is complete*
//!   and lets the decline resolve against the pool's busy boundaries,
//!   possibly committing further admissions before `t`. The two
//!   answers genuinely differ (the replay's guess gets rewritten the
//!   next time an arrival joins), so stalled snapshots cannot be read
//!   off the stream: the cluster router falls back to the old cached
//!   replay exactly while a replica reports `is_stalled`, keeping
//!   snapshot values bit-identical to the full-replay reference.
//! - Checkpointed runs report through the same
//!   [`ServiceReport`] as batch runs, so the cluster tier's pooled
//!   TTFT/ITL percentiles and energy totals (see
//!   [`telemetry`](crate::telemetry)) need no checkpoint-specific
//!   plumbing — `finish` hands back the sorted samples and busy time
//!   the telemetry layer reads.
//!
//! [`LeastOutstanding`]: crate::cluster::LeastOutstanding
//! [`LeastKvLoaded`]: crate::cluster::LeastKvLoaded

use crate::backend::Backend;
use crate::engine::{EngineState, ServiceReport, ServingEngine, StepOutcome};
use crate::scheduler::Scheduler;
use dfx_hw::MemoryModel;
use dfx_model::Workload;
use dfx_sim::SimError;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A serving engine plus the resumable state of one request stream,
/// advanced in time order as arrivals become known.
///
/// ```
/// use dfx_model::{GptConfig, Workload};
/// use dfx_serve::{ArrivalProcess, ContinuousBatching, EngineCheckpoint, ServingEngine};
/// use dfx_sim::Appliance;
///
/// # fn main() -> Result<(), dfx_sim::SimError> {
/// let appliance = Appliance::timing_only(GptConfig::tiny(), 2)?;
/// let workloads = vec![Workload::new(8, 8); 12];
/// let times: Vec<f64> = (0..12).map(|i| i as f64 * 3.5).collect();
///
/// // Stream the requests through a checkpoint…
/// let mut ck = EngineCheckpoint::new(
///     vec![&appliance],
///     Box::new(ContinuousBatching::new(4)),
/// )?;
/// for (w, &t) in workloads.iter().zip(&times) {
///     ck.advance_to(t)?;
///     let _load_now = ck.kv_load_at(t);
///     ck.push(*w, t);
/// }
/// let streamed = ck.finish()?;
///
/// // …and the report is bit-identical to a fresh batch run.
/// let batch = ServingEngine::new(&appliance)
///     .with_scheduler(Box::new(ContinuousBatching::new(4)))
///     .run(&workloads, &ArrivalProcess::Trace(times))?;
/// assert_eq!(streamed, batch);
/// # Ok(())
/// # }
/// ```
pub struct EngineCheckpoint<'a> {
    engine: ServingEngine<'a>,
    state: EngineState<'a>,
    /// Per-pool-slot memory models, indexed by `Response::server`.
    memories: Vec<Option<MemoryModel>>,
    /// Σ `kv_budget_bytes()` over memory-modelled servers.
    budget_bytes: u64,
    /// How many committed responses have been folded into the heaps.
    seen_responses: usize,
    /// How many committed admissions have been folded into the heaps.
    seen_admissions: usize,
    /// Committed finish times (as f64 bits), popped as `t` passes them.
    finish_heap: BinaryHeap<Reverse<u64>>,
    /// Committed responses whose finish has passed the snapshot time.
    finished: usize,
    /// K/V claims of committed admissions: `(start bits, bytes)`,
    /// claimed when the snapshot time reaches their start. Fed by the
    /// admission log, so in-flight requests (admitted, not yet retired)
    /// are visible.
    start_claims: BinaryHeap<Reverse<(u64, u64)>>,
    /// K/V claims of committed responses: `(finish bits, bytes)`,
    /// released when the snapshot time reaches their finish. A claim's
    /// start never exceeds its finish, so by the time a release is due
    /// its start has already been claimed.
    end_claims: BinaryHeap<Reverse<(u64, u64)>>,
    /// Bytes currently claimed at the last snapshot time.
    claimed_bytes: u64,
}

impl<'a> EngineCheckpoint<'a> {
    /// A checkpoint over a pool of backends under `scheduler`, with an
    /// empty open-loop stream.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Service`] for an empty pool.
    pub fn new(
        servers: Vec<&'a dyn Backend>,
        scheduler: Box<dyn Scheduler>,
    ) -> Result<Self, SimError> {
        let mut engine = ServingEngine::pool(servers)?.with_scheduler(scheduler);
        let memories = engine.server_memories();
        let budget_bytes = memories
            .iter()
            .flatten()
            .map(MemoryModel::kv_budget_bytes)
            .sum();
        let state = engine.start_stream()?;
        Ok(EngineCheckpoint {
            engine,
            state,
            memories,
            budget_bytes,
            seen_responses: 0,
            seen_admissions: 0,
            finish_heap: BinaryHeap::new(),
            finished: 0,
            start_claims: BinaryHeap::new(),
            end_claims: BinaryHeap::new(),
            claimed_bytes: 0,
        })
    }

    /// Appends one request to the stream. Its id is its push index;
    /// pushes must come in nondecreasing `arrival_ms` order.
    pub fn push(&mut self, workload: Workload, arrival_ms: f64) {
        self.state.push(workload, arrival_ms);
    }

    /// Requests pushed so far.
    pub fn pushed(&self) -> usize {
        self.state.pushed()
    }

    /// Whether the stream is parked on a stashed scheduler decision (a
    /// `Wait` or an admission decline made with no later arrival known
    /// yet). Such a decision resolves differently depending on whether
    /// another request ever joins the stream, so
    /// [`advance_to`](Self::advance_to) stops there instead of
    /// guessing. While stalled, the snapshot accessors answer "state at
    /// `t` given events committed so far", which can *undercount* load
    /// relative to a prefix replay that assumes the stream is complete
    /// — callers needing that assume-complete semantics (the cluster
    /// snapshot contract) must fall back to a replay while this returns
    /// `true`.
    pub fn is_stalled(&self) -> bool {
        self.state.is_stalled()
    }

    /// Commits every event whose decision instant lies strictly before
    /// `t` — afterwards the snapshot accessors answer for time `t`
    /// exactly as a full replay of the pushed prefix would.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (scheduler protocol violations, backend
    /// failures).
    pub fn advance_to(&mut self, t: f64) -> Result<(), SimError> {
        while let StepOutcome::Progressed = self.engine.step(&mut self.state, Some(t))? {}
        self.ingest_events();
        Ok(())
    }

    /// Folds admissions and responses committed since the last call
    /// into the snapshot heaps. Claims are *opened* by the admission
    /// log — starts become known at the admission event, long before a
    /// mid-flight request retires — and *closed* by the response log.
    fn ingest_events(&mut self) {
        let admissions = self.state.admissions();
        for &(server, start_ms, tokens) in &admissions[self.seen_admissions..] {
            if let Some(m) = self.memories.get(server).and_then(Option::as_ref) {
                let bytes = m.kv_claim_bytes(tokens);
                self.start_claims.push(Reverse((start_ms.to_bits(), bytes)));
            }
        }
        self.seen_admissions = admissions.len();

        let total = self.state.responses().len();
        for i in self.seen_responses..total {
            let r = self.state.responses()[i];
            self.finish_heap.push(Reverse(r.finish_ms.to_bits()));
            if let Some(m) = self.memories.get(r.server).and_then(Option::as_ref) {
                let tokens = r.request.workload.input_len + r.request.workload.output_len;
                let bytes = m.kv_claim_bytes(tokens);
                self.end_claims
                    .push(Reverse((r.finish_ms.to_bits(), bytes)));
            }
        }
        self.seen_responses = total;
    }

    /// Requests pushed but not finished by `t`: the
    /// [`LeastOutstanding`](crate::cluster::LeastOutstanding) signal.
    /// `t` must be at or past the last [`advance_to`](Self::advance_to)
    /// horizon and non-decreasing across calls.
    pub fn outstanding_at(&mut self, t: f64) -> usize {
        let t_bits = t.to_bits();
        while self
            .finish_heap
            .peek()
            .is_some_and(|&Reverse(f)| f <= t_bits)
        {
            self.finish_heap.pop();
            self.finished += 1;
        }
        self.state.pushed() - self.finished
    }

    /// Fraction of the pool's K/V budget claimed by requests in flight
    /// at `t` (0.0 for an unbudgeted pool): the
    /// [`LeastKvLoaded`](crate::cluster::LeastKvLoaded) signal. Same
    /// monotonicity contract as
    /// [`outstanding_at`](Self::outstanding_at).
    pub fn kv_load_at(&mut self, t: f64) -> f64 {
        if self.budget_bytes == 0 {
            return 0.0;
        }
        let t_bits = t.to_bits();
        while let Some(&Reverse((start, bytes))) = self.start_claims.peek() {
            if start > t_bits {
                break;
            }
            self.start_claims.pop();
            self.claimed_bytes += bytes;
        }
        while let Some(&Reverse((finish, bytes))) = self.end_claims.peek() {
            if finish > t_bits {
                break;
            }
            self.end_claims.pop();
            self.claimed_bytes -= bytes;
        }
        self.claimed_bytes as f64 / self.budget_bytes as f64
    }

    /// Drains the stream to completion and builds its report —
    /// bit-identical to a fresh batch run of the full pushed prefix
    /// under the same pool and scheduler.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Service`] for an empty stream or a starved
    /// event loop, and propagates engine errors.
    pub fn finish(mut self) -> Result<ServiceReport, SimError> {
        let n = self.state.pushed();
        if n == 0 {
            return Err(SimError::Service("nothing to serve".into()));
        }
        while self.state.responses().len() < n {
            match self.engine.step(&mut self.state, None)? {
                StepOutcome::Progressed => {}
                StepOutcome::Blocked | StepOutcome::Exhausted => {
                    return Err(self.state.starvation_error());
                }
            }
        }
        self.engine.build_report(self.state)
    }
}

//! Token-granular execution: the stepping seam continuous batching
//! schedules against.
//!
//! A [`ContinuousStepper`] is the serving-layer view of an incremental
//! batched executor ([`dfx_sim::BatchState`] on the appliance, a
//! closed-form equivalent on the GPU): members are admitted with a
//! prefill charge, every [`step_token`](ContinuousStepper::step_token)
//! advances all live members by one output token at the live batch
//! size, and members exit the moment they have produced their requested
//! tokens — no padding to the longest batch-mate, no waiting for a
//! batch to form. Backends advertise the capability through
//! [`Backend::continuous`](crate::Backend::continuous); backends
//! without it (the cloud TPU) keep serving through the static
//! [`serve_batch`](crate::Backend::serve_batch) path.
//!
//! Two memory-era extensions ride on the same seam:
//!
//! - **cost estimates** ([`prefill_cost_ms`], [`step_cost_ms`]) feed the
//!   engine's [`AdmissionProbe`](crate::AdmissionProbe), so
//!   prefill-aware disciplines can weigh an admission's serial stall
//!   against the running members' deadlines before committing to it;
//! - **chunked prefill** ([`set_prefill_chunk`]) splits a long prefill
//!   into token-budgeted chunks interleaved with decode steps
//!   (Sarathi/TGI style) on steppers that support it, bounding the
//!   per-step decode stall; [`StepEvent::prefilling`] reports the
//!   members that consumed prefill budget without emitting a token.
//!
//! The telemetry layer hangs off the same seam: every [`StepEvent`]
//! boundary the engine commits becomes a token-emission instant in a
//! [`RunTrace`](crate::telemetry::RunTrace) (via
//! [`ServingEngine::run_traced`](crate::ServingEngine::run_traced)) and
//! an inter-token-latency sample in the
//! [`ServiceReport`](crate::ServiceReport) percentiles.
//!
//! [`prefill_cost_ms`]: ContinuousStepper::prefill_cost_ms
//! [`step_cost_ms`]: ContinuousStepper::step_cost_ms
//! [`set_prefill_chunk`]: ContinuousStepper::set_prefill_chunk

use crate::backend::validate_workload;
use dfx_baseline::GpuModel;
use dfx_model::Workload;
use dfx_sim::{Appliance, BatchState, SimError};

/// Result of one stepper operation (an admission's prefill or one
/// decode step).
#[derive(Debug, Clone, PartialEq)]
pub struct StepEvent {
    /// Time the operation added to the run's shared timeline, ms.
    pub ms: f64,
    /// Live members after the operation (including members whose
    /// chunked prefill is still in flight).
    pub live: usize,
    /// Member ids that produced their last token during the operation.
    pub finished: Vec<u64>,
    /// Member ids that produced *no* token during the operation: their
    /// prefill is still in flight (admitted under a chunk budget, or
    /// queued behind another member's chunks), or — on a paged-K/V
    /// stepper — they were preempted, are parked in DDR, or spent the
    /// step being restored. Always empty on steppers without chunked
    /// prefill or paging.
    pub prefilling: Vec<u64>,
}

/// A backend executing requests token by token, with admissions between
/// steps.
///
/// The contract the serving engine relies on:
///
/// - a member admitted into an *empty* stepper and stepped to
///   completion accumulates
///   [`Backend::serve`](crate::Backend::serve)'s latency for the same
///   workload — exactly on backends whose per-step costs add without
///   rounding (integer-millisecond test backends), and within float
///   accumulation order otherwise (the built-in appliance/GPU steppers
///   sum per-step milliseconds where `serve` sums per-stage totals, a
///   ~1e-9 relative difference) — so continuous batching at
///   `max_batch == 1` reproduces the single-dispatch FIFO numbers;
/// - every [`step_token`](ContinuousStepper::step_token) produces one
///   credited output token per live *decoding* member (members listed
///   in [`StepEvent::prefilling`] produce none yet), so token work is
///   conserved under any admission/exit interleaving;
/// - admission feasibility is per member for *shape* (each workload is
///   validated alone — the static path's joint padded-shape constraint
///   does not apply between decode steps) but *joint* for memory: a
///   stepper backed by a K/V allocator ([`dfx_sim::BatchState`]) fails
///   admission with [`SimError::Memory`] when the member's claim does
///   not fit next to the already-admitted members' claims. Schedulers
///   avoid such admissions through the engine's
///   [`AdmissionProbe`](crate::AdmissionProbe).
pub trait ContinuousStepper {
    /// Admits a member, charging its prefill (or its first chunk, under
    /// a [`set_prefill_chunk`](ContinuousStepper::set_prefill_chunk)
    /// budget) to the shared timeline.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidRequest`] for workloads the backend
    /// rejects (zero-length, over the model's sequence cap) or a
    /// duplicate id, and [`SimError::Memory`] when the member's K/V
    /// claim exceeds the backend's free device-memory budget.
    fn admit(&mut self, id: u64, workload: Workload) -> Result<StepEvent, SimError>;

    /// Advances every live member: one prefill chunk if one is in
    /// flight, then one output token for every decoding member.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidRequest`] when no members are live.
    fn step_token(&mut self) -> Result<StepEvent, SimError>;

    /// Number of live (admitted, unfinished) members.
    fn live(&self) -> usize;

    /// Sets the prefill chunk budget (tokens charged per admission or
    /// step before decode resumes). The default implementation ignores
    /// the budget: backends without an incremental prefill model keep
    /// whole-prefill admission, which is always correct — chunking only
    /// redistributes when the same work is charged.
    fn set_prefill_chunk(&mut self, chunk: Option<usize>) {
        let _ = chunk;
    }

    /// Estimated serial stall of admitting `workload` now: its full
    /// prefill cost, ms. Feeds prefill-aware admission policies; the
    /// default (no estimate) returns 0, which makes such policies admit
    /// greedily on this backend.
    fn prefill_cost_ms(&mut self, workload: Workload) -> f64 {
        let _ = workload;
        0.0
    }

    /// Estimated cost of one decode step at a hypothetical live batch
    /// of `live` members, ms. Same default caveat as
    /// [`prefill_cost_ms`](ContinuousStepper::prefill_cost_ms).
    fn step_cost_ms(&mut self, live: usize) -> f64 {
        let _ = live;
        0.0
    }

    /// Backend-granular K/V feasibility of a hypothetical resident set
    /// (current live members plus candidates), when the stepper can
    /// answer more precisely than summed whole claims — the paged
    /// appliance stepper counts free *blocks* against the joiners'
    /// prompts. `None` (the default) tells the engine's
    /// [`AdmissionProbe`](crate::AdmissionProbe) to fall back to the
    /// claim-sum check against [`Backend::memory`](crate::Backend).
    fn kv_fits_resident(&self, members: &[Workload]) -> Option<bool> {
        let _ = members;
        None
    }

    /// Paged-K/V run counters ([`dfx_sim::PagingStats`]), when the
    /// stepper allocates K/V in blocks. `None` (the default) on
    /// reserved-claim and memory-less steppers.
    fn kv_stats(&self) -> Option<dfx_sim::PagingStats> {
        None
    }
}

/// The appliance stepper: a thin adapter over [`dfx_sim::BatchState`]
/// (which carries the K/V pool and the chunked-prefill machinery).
pub(crate) struct ApplianceStepper<'a> {
    state: BatchState<'a>,
}

impl<'a> ApplianceStepper<'a> {
    pub(crate) fn new(appliance: &'a Appliance) -> Self {
        ApplianceStepper {
            state: appliance.batch_state(),
        }
    }
}

impl ContinuousStepper for ApplianceStepper<'_> {
    fn admit(&mut self, id: u64, workload: Workload) -> Result<StepEvent, SimError> {
        validate_workload(workload)?;
        let out = self.state.admit(id, workload)?;
        self.state.retire();
        Ok(StepEvent {
            ms: out.prefill_ms,
            live: self.state.live(),
            finished: if out.finished { vec![id] } else { Vec::new() },
            prefilling: if out.pending_prefill > 0 {
                vec![id]
            } else {
                Vec::new()
            },
        })
    }

    fn step_token(&mut self) -> Result<StepEvent, SimError> {
        let out = self.state.step_token()?;
        self.state.retire();
        Ok(StepEvent {
            ms: out.ms,
            live: self.state.live(),
            finished: out.finished,
            prefilling: out.prefilling,
        })
    }

    fn live(&self) -> usize {
        self.state.live()
    }

    fn set_prefill_chunk(&mut self, chunk: Option<usize>) {
        self.state.set_prefill_chunk(chunk);
    }

    fn prefill_cost_ms(&mut self, workload: Workload) -> f64 {
        self.state.prefill_cost_ms(workload.input_len)
    }

    fn step_cost_ms(&mut self, live: usize) -> f64 {
        self.state.decode_step_cost_ms(live)
    }

    fn kv_fits_resident(&self, members: &[Workload]) -> Option<bool> {
        self.state.resident_kv_fits(members)
    }

    fn kv_stats(&self) -> Option<dfx_sim::PagingStats> {
        self.state.paging_stats()
    }
}

struct GpuMember {
    id: u64,
    workload: Workload,
    /// Output tokens produced so far (the prefill produces the first).
    emitted: usize,
}

/// Closed-form continuous stepper for the GPU appliance: prefills cost
/// [`GpuModel::summarization_pass_ms_batched`] at batch 1, decode steps
/// cost [`GpuModel::generation_step_ms_batched`] at the live batch size
/// and the largest live context — the same terms
/// [`GpuModel::run_batch`] sums, so a solo member reproduces
/// [`GpuModel::run`] exactly. The summarization pass is one parallel
/// kernel sweep, not a per-token loop, so
/// [`set_prefill_chunk`](ContinuousStepper::set_prefill_chunk) keeps
/// the default whole-prefill admission (the Sarathi-style chunk budget
/// targets DFX's serial prefill).
pub(crate) struct GpuStepper<'a> {
    gpu: &'a GpuModel,
    members: Vec<GpuMember>,
}

impl<'a> GpuStepper<'a> {
    pub(crate) fn new(gpu: &'a GpuModel) -> Self {
        GpuStepper {
            gpu,
            members: Vec::new(),
        }
    }
}

impl ContinuousStepper for GpuStepper<'_> {
    fn admit(&mut self, id: u64, workload: Workload) -> Result<StepEvent, SimError> {
        validate_workload(workload)?;
        if self.members.iter().any(|m| m.id == id) {
            return Err(SimError::InvalidRequest(format!(
                "member id {id} is already in the batch"
            )));
        }
        let ms = self
            .gpu
            .summarization_pass_ms_batched(workload.input_len, 1);
        let finished = workload.output_len == 1;
        if !finished {
            self.members.push(GpuMember {
                id,
                workload,
                emitted: 1,
            });
        }
        Ok(StepEvent {
            ms,
            live: self.members.len(),
            finished: if finished { vec![id] } else { Vec::new() },
            prefilling: Vec::new(),
        })
    }

    fn step_token(&mut self) -> Result<StepEvent, SimError> {
        // Mirrors run_batch's decode loop: generating output token
        // `emitted + 1` costs a step at context `input_len + emitted`.
        // `max()` is `None` exactly when there is nobody to step.
        let t = self
            .members
            .iter()
            .map(|m| m.workload.input_len + m.emitted)
            .max()
            .ok_or_else(|| {
                SimError::InvalidRequest("no live members to step (admit first)".into())
            })?;
        let ms = self.gpu.generation_step_ms_batched(t, self.members.len());
        let mut finished = Vec::new();
        let mut i = 0;
        while i < self.members.len() {
            self.members[i].emitted += 1;
            if self.members[i].emitted == self.members[i].workload.output_len {
                finished.push(self.members.remove(i).id);
            } else {
                i += 1;
            }
        }
        Ok(StepEvent {
            ms,
            live: self.members.len(),
            finished,
            prefilling: Vec::new(),
        })
    }

    fn live(&self) -> usize {
        self.members.len()
    }

    fn prefill_cost_ms(&mut self, workload: Workload) -> f64 {
        self.gpu
            .summarization_pass_ms_batched(workload.input_len, 1)
    }

    fn step_cost_ms(&mut self, live: usize) -> f64 {
        let t = self
            .members
            .iter()
            .map(|m| m.workload.input_len + m.emitted)
            .max()
            .unwrap_or(1);
        self.gpu.generation_step_ms_batched(t, live.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use dfx_baseline::TpuModel;
    use dfx_model::GptConfig;

    fn solo_ms(stepper: &mut dyn ContinuousStepper, w: Workload) -> f64 {
        let mut total = stepper.admit(0, w).unwrap().ms;
        while stepper.live() > 0 {
            total += stepper.step_token().unwrap().ms;
        }
        total
    }

    #[test]
    fn solo_stepping_matches_serve_on_both_continuous_backends() {
        let cfg = GptConfig::tiny();
        let dfx = Appliance::timing_only(cfg.clone(), 2).unwrap();
        let gpu = GpuModel::new(cfg, 2);
        for w in [
            Workload::new(8, 4),
            Workload::new(5, 1),
            Workload::new(3, 9),
        ] {
            for backend in [&dfx as &dyn Backend, &gpu] {
                let serve_ms = backend.serve(w).unwrap().total_ms();
                let mut stepper = backend.continuous().expect("continuous backend");
                let stepped_ms = solo_ms(stepper.as_mut(), w);
                assert!(
                    (stepped_ms - serve_ms).abs() < 1e-9 * serve_ms.max(1.0),
                    "{} {w}: stepped {stepped_ms} vs serve {serve_ms}",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn the_tpu_has_no_stepper() {
        let tpu = TpuModel::new(GptConfig::tiny());
        assert!(Backend::continuous(&tpu).is_none());
    }

    #[test]
    fn gpu_members_exit_early_and_conserve_tokens() {
        let gpu = GpuModel::new(GptConfig::tiny(), 1);
        let mut s = GpuStepper::new(&gpu);
        s.admit(0, Workload::new(8, 6)).unwrap();
        s.admit(1, Workload::new(4, 2)).unwrap();
        let mut tokens = 2; // two prefills, one token each
        let mut exits = Vec::new();
        while s.live() > 0 {
            let ev = s.step_token().unwrap();
            tokens += ev.finished.len() + ev.live;
            exits.extend(ev.finished);
        }
        assert_eq!(exits, vec![1, 0]);
        assert_eq!(tokens, 8);
    }

    #[test]
    fn invalid_gpu_admissions_are_rejected() {
        let gpu = GpuModel::new(GptConfig::tiny(), 1);
        let mut s = GpuStepper::new(&gpu);
        assert!(s.admit(0, Workload::new(0, 4)).is_err());
        assert!(s.step_token().is_err());
        s.admit(0, Workload::new(4, 4)).unwrap();
        assert!(s.admit(0, Workload::new(4, 4)).is_err());
    }

    #[test]
    fn appliance_stepper_reports_memory_refusals_and_estimates() {
        // Budget for 20 tokens of K/V claim next to the weights.
        let cfg = GptConfig::tiny();
        let probe = Appliance::timing_only(cfg.clone(), 2).unwrap();
        let m = probe.memory_model();
        let dfx = Appliance::timing_only(cfg, 2)
            .unwrap()
            .with_hbm_capacity(m.weight_bytes + 20 * m.kv_bytes_per_token)
            .unwrap();
        let mut s = Backend::continuous(&dfx).unwrap();
        let w = Workload::new(8, 4);
        assert!(s.prefill_cost_ms(w) > 0.0);
        assert!(s.step_cost_ms(2) > s.step_cost_ms(1) * 0.5);
        s.admit(0, w).unwrap();
        let err = s.admit(1, w).unwrap_err();
        assert!(matches!(err, SimError::Memory(_)), "{err:?}");
    }

    #[test]
    fn appliance_stepper_chunks_prefills_on_request() {
        let dfx = Appliance::timing_only(GptConfig::tiny(), 2).unwrap();
        let mut s = Backend::continuous(&dfx).unwrap();
        s.set_prefill_chunk(Some(4));
        let ev = s.admit(0, Workload::new(12, 2)).unwrap();
        assert_eq!(ev.prefilling, vec![0]);
        // Two more chunks complete the prefill (emitting the first
        // token), one decode step finishes the member.
        let ev = s.step_token().unwrap();
        assert_eq!(ev.prefilling, vec![0]);
        let ev = s.step_token().unwrap();
        assert!(ev.prefilling.is_empty());
        assert!(ev.finished.is_empty());
        let ev = s.step_token().unwrap();
        assert_eq!(ev.finished, vec![0]);
        assert_eq!(s.live(), 0);
    }
}

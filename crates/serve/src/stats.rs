//! Small statistics helpers for service-level reports.
//!
//! Promoted out of `examples/service_sim.rs` so every consumer (the
//! engine, experiments, examples) shares one audited implementation.

use dfx_sim::SimError;
use rand::RngCore;

/// Nearest-rank percentile of an ascending-sorted sample.
///
/// `p` is a fraction in `[0, 1]`: `percentile(&s, 0.99)` is the p99.
///
/// # Errors
///
/// Returns [`SimError::Service`] for an empty sample, a `p` outside
/// `[0, 1]`, or input that is not ascending (callers must sort first —
/// silently mis-ranking an unsorted sample is how tail latencies lie).
pub fn percentile(sorted: &[f64], p: f64) -> Result<f64, SimError> {
    if sorted.is_empty() {
        return Err(SimError::Service("percentile of an empty sample".into()));
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(SimError::Service(format!(
            "percentile fraction {p} outside [0, 1]"
        )));
    }
    if sorted.windows(2).any(|w| w[0] > w[1]) {
        return Err(SimError::Service(
            "percentile input is not sorted ascending".into(),
        ));
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    Ok(sorted[idx])
}

/// Merges ascending-sorted sample groups into one ascending pool.
///
/// The cross-replica aggregation primitive: percentiles of a cluster are
/// percentiles of the *pooled* samples, never averages of per-replica
/// percentiles. Averaging p99s is wrong in both directions — a cluster
/// where one replica is saturated and three are idle has a pooled p99
/// near the saturated replica's tail, while the average of the four p99s
/// reports a latency no request ever experienced. See
/// `averaged_p99_diverges_from_pooled_p99` in this module's tests for a
/// concrete two-replica counterexample.
///
/// # Errors
///
/// Returns [`SimError::Service`] if any group is not ascending (same
/// contract as [`percentile`]).
pub fn merge_sorted(groups: &[&[f64]]) -> Result<Vec<f64>, SimError> {
    for g in groups {
        if g.windows(2).any(|w| w[0] > w[1]) {
            return Err(SimError::Service(
                "merge_sorted group is not sorted ascending".into(),
            ));
        }
    }
    // Groups are few (replica count) and long (request count): repeated
    // two-way merges are fine, and stable order keeps this deterministic.
    let mut pooled: Vec<f64> = Vec::with_capacity(groups.iter().map(|g| g.len()).sum());
    for g in groups {
        let mut merged = Vec::with_capacity(pooled.len() + g.len());
        let (mut i, mut j) = (0, 0);
        while i < pooled.len() && j < g.len() {
            if pooled[i] <= g[j] {
                merged.push(pooled[i]);
                i += 1;
            } else {
                merged.push(g[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&pooled[i..]);
        merged.extend_from_slice(&g[j..]);
        pooled = merged;
    }
    Ok(pooled)
}

/// Nearest-rank percentile of several ascending-sorted groups, computed
/// on the pooled samples (see [`merge_sorted`] for why pooling — not
/// averaging per-group percentiles — is the only correct merge).
///
/// # Errors
///
/// Returns [`SimError::Service`] for unsorted groups, an overall-empty
/// pool, or `p` outside `[0, 1]`.
pub fn merged_percentile(groups: &[&[f64]], p: f64) -> Result<f64, SimError> {
    percentile(&merge_sorted(groups)?, p)
}

/// One exponential inter-arrival gap of a Poisson process with the given
/// rate, in seconds.
///
/// Inverse-CDF sampling on a uniform draw from `[EPSILON, 1)`, so the
/// gap is always finite and positive.
///
/// # Panics
///
/// Panics unless `rate_per_s` is finite and positive (a rate is a
/// caller-side constant, so a bad one is a programming error;
/// [`ArrivalProcess`](crate::ArrivalProcess) validates user-supplied
/// rates into `Result`s before reaching this).
pub fn exp_sample<R: RngCore>(rng: &mut R, rate_per_s: f64) -> f64 {
    use rand::Rng;
    assert!(
        rate_per_s.is_finite() && rate_per_s > 0.0,
        "exponential rate must be finite and positive, got {rate_per_s}"
    );
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() / rate_per_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_sample_is_every_percentile() {
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(percentile(&[42.0], p).unwrap(), 42.0);
        }
    }

    #[test]
    fn p0_and_p100_are_the_extremes() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&s, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&s, 1.0).unwrap(), 5.0);
        assert_eq!(percentile(&s, 0.5).unwrap(), 3.0);
    }

    #[test]
    fn unsorted_input_is_rejected() {
        let err = percentile(&[2.0, 1.0], 0.5).unwrap_err();
        assert!(matches!(err, SimError::Service(m) if m.contains("not sorted")));
    }

    #[test]
    fn empty_sample_and_bad_fraction_are_rejected() {
        assert!(matches!(percentile(&[], 0.5), Err(SimError::Service(_))));
        assert!(matches!(percentile(&[1.0], 1.5), Err(SimError::Service(_))));
        assert!(matches!(
            percentile(&[1.0], -0.1),
            Err(SimError::Service(_))
        ));
    }

    #[test]
    fn equal_neighbours_are_accepted() {
        assert_eq!(percentile(&[1.0, 1.0, 2.0], 0.5).unwrap(), 1.0);
    }

    #[test]
    fn merge_sorted_pools_in_order() {
        let a = [1.0, 4.0, 9.0];
        let b = [2.0, 3.0];
        let c: [f64; 0] = [];
        let pooled = merge_sorted(&[&a, &b, &c]).unwrap();
        assert_eq!(pooled, vec![1.0, 2.0, 3.0, 4.0, 9.0]);
    }

    #[test]
    fn merge_sorted_rejects_unsorted_groups() {
        let err = merge_sorted(&[&[2.0, 1.0]]).unwrap_err();
        assert!(matches!(err, SimError::Service(m) if m.contains("not sorted")));
    }

    #[test]
    fn merged_percentile_of_empty_pool_is_rejected() {
        let empty: [f64; 0] = [];
        assert!(matches!(
            merged_percentile(&[&empty, &empty], 0.5),
            Err(SimError::Service(_))
        ));
    }

    #[test]
    fn averaged_p99_diverges_from_pooled_p99() {
        // Replica A: 99 fast requests. Replica B: 99 slow ones — the
        // saturated half of a cluster. Averaging the per-replica p99s
        // reports a "cluster p99" no request experienced; the pooled p99
        // sits in B's tail, where the cluster's worst 1% actually lives.
        let fast: Vec<f64> = (0..99).map(|i| 1.0 + i as f64 * 0.01).collect();
        let slow: Vec<f64> = (0..99).map(|i| 100.0 + i as f64).collect();
        let p99_a = percentile(&fast, 0.99).unwrap();
        let p99_b = percentile(&slow, 0.99).unwrap();
        let averaged = (p99_a + p99_b) / 2.0;
        let pooled = merged_percentile(&[&fast, &slow], 0.99).unwrap();
        // Averaged: ~(2.0 + 198.0)/2 = 100. Pooled: ~196 — the averaged
        // figure understates the cluster tail by nearly 2x.
        assert!(pooled > averaged * 1.5, "pooled {pooled} vs avg {averaged}");
        assert!(pooled >= p99_a && pooled <= p99_b);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn exp_sample_rejects_a_zero_rate() {
        let mut rng = StdRng::seed_from_u64(0);
        exp_sample(&mut rng, 0.0);
    }

    #[test]
    fn exp_samples_are_positive_finite_and_mean_reverting() {
        let mut rng = StdRng::seed_from_u64(7);
        let rate = 4.0;
        let n = 4096;
        let mut sum = 0.0;
        for _ in 0..n {
            let s = exp_sample(&mut rng, rate);
            assert!(s.is_finite() && s > 0.0);
            sum += s;
        }
        let mean = sum / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.05 / rate, "mean {mean}");
    }
}

//! Cluster tier: deterministic routing across N serving-engine replicas.
//!
//! The paper's appliance stops at 2 servers / 8 FPGAs (§VI); a
//! production deployment fronts many such appliances — possibly of
//! different generations, possibly mixed with GPU servers — behind one
//! request stream. [`ClusterRouter`] is that front door: it assigns
//! every arrival to exactly one replica through a pluggable
//! [`Placement`] policy, simulates each replica's sub-stream on its own
//! [`ServingEngine`], and aggregates the per-replica
//! [`ServiceReport`]s into a [`ClusterReport`] with *pooled*
//! cross-replica percentiles (see [`stats::merged_percentile`] — never
//! averaged), a Jain balance index and merged paging counters.
//!
//! # Exactness
//!
//! Routing is **incremental-exact**, not approximate: requests are
//! assigned in arrival order, and a replica's state at time `t` is read
//! from a full engine simulation of the sub-stream assigned *so far* —
//! which by causality is its exact state at `t`, because requests that
//! arrive later cannot influence earlier state. Placements that never
//! read load ([`Placement::uses_load`] is `false`, e.g.
//! [`RoundRobin`]) skip the intermediate simulations entirely and each
//! replica runs once.
//!
//! Closed-loop arrivals are rejected with a typed error: a think-time
//! loop couples submissions to completions on *one* queue, so it binds
//! to a single replica's engine, not to a router.
//!
//! # Disaggregation
//!
//! [`DisaggregatedCluster`] chains two routers — a prefill pool and a
//! decode pool — with a modelled K/V handoff over a
//! [`LinkModel`]: a request prefills (and emits its first token) on
//! the prefill pool, pays `context tokens × kv bytes/token × devices`
//! of transfer, then decodes its remaining tokens on a
//! [`DecodeOnly`]-wrapped replica whose admission charges no prefill
//! (the K/V cache arrives pre-populated over the link).

use crate::arrivals::ArrivalProcess;
use crate::backend::{Backend, BatchReport, RunReport};
use crate::checkpoint::EngineCheckpoint;
use crate::engine::{Request, Response, ServiceReport, ServingEngine};
use crate::scheduler::Scheduler;
use crate::stats;
use crate::stepper::{ContinuousStepper, StepEvent};
use dfx_hw::{LinkModel, MemoryModel};
use dfx_model::Workload;
use dfx_sim::{PagingStats, SimError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One request as the router sees it at placement time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutedRequest {
    /// Global submission index (also the index into the workload list).
    pub id: u64,
    /// What the request asks a replica to do.
    pub workload: Workload,
    /// Absolute arrival time, ms.
    pub arrival_ms: f64,
    /// Session the request belongs to, when the trace carries sessions
    /// ([`ClusterRouter::run_sessions`]); requests of one session share
    /// a prefix, so [`SessionAffinity`] keeps them on one replica.
    pub session: Option<u64>,
}

/// A replica's state at one placement decision, exact at the arrival
/// instant (see the module docs on incremental-exact routing).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaSnapshot {
    /// Replica index in construction order.
    pub index: usize,
    /// Requests assigned to this replica so far (queued, running or
    /// finished).
    pub assigned: usize,
    /// Requests in the replica's system (queued or running) at the
    /// arrival instant. Zero unless the placement
    /// [`uses_load`](Placement::uses_load).
    pub outstanding: usize,
    /// Fraction of the replica's K/V budget claimed by started,
    /// unfinished requests at the arrival instant (whole
    /// `input + output` claims against
    /// [`MemoryModel::kv_budget_bytes`], summed over the replica's
    /// memory-modelled servers). Zero when no server models memory or
    /// the placement does not [`uses_load`](Placement::uses_load).
    pub kv_load: f64,
}

/// A routing policy: picks the replica index for each arrival.
///
/// Implementations are deterministic state machines; the router calls
/// [`reset`](Placement::reset) at the start of every run so a reused
/// router reproduces identical reports.
pub trait Placement {
    /// Human-readable policy name for reports.
    fn name(&self) -> String;

    /// Whether [`place`](Placement::place) reads the load-derived
    /// snapshot fields (`outstanding`, `kv_load`). Returning `false`
    /// (the default) lets the router skip all intermediate replica
    /// simulations — each replica then runs exactly once.
    fn uses_load(&self) -> bool {
        false
    }

    /// Clears per-run state (dispatch counters, session tables).
    fn reset(&mut self) {}

    /// Chooses the replica for `request`. Must return an index below
    /// `replicas.len()`; the router turns an out-of-range choice into a
    /// typed [`SimError::Service`].
    fn place(&mut self, request: &RoutedRequest, replicas: &[ReplicaSnapshot]) -> usize;
}

/// Cycles through replicas in construction order: dispatch counts never
/// differ by more than one.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// A round-robin policy starting at replica 0.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Placement for RoundRobin {
    fn name(&self) -> String {
        "round-robin".into()
    }

    fn reset(&mut self) {
        self.next = 0;
    }

    fn place(&mut self, _request: &RoutedRequest, replicas: &[ReplicaSnapshot]) -> usize {
        let choice = self.next % replicas.len().max(1);
        self.next = choice + 1;
        choice
    }
}

/// Joins the replica with the fewest in-system requests (TGI-router
/// style least-outstanding-requests), ties to the lowest index.
#[derive(Debug, Default)]
pub struct LeastOutstanding;

impl Placement for LeastOutstanding {
    fn name(&self) -> String {
        "least-outstanding".into()
    }

    fn uses_load(&self) -> bool {
        true
    }

    fn place(&mut self, _request: &RoutedRequest, replicas: &[ReplicaSnapshot]) -> usize {
        replicas
            .iter()
            .min_by(|a, b| (a.outstanding, a.index).cmp(&(b.outstanding, b.index)))
            .map(|r| r.index)
            .unwrap_or(0)
    }
}

/// Joins the replica with the lowest claimed fraction of its K/V budget
/// — the memory-aware policy: on memory-bound replicas, queue length
/// undercounts pressure because one long-context request claims as much
/// HBM as many short ones. Ties break on outstanding count, then index.
#[derive(Debug, Default)]
pub struct LeastKvLoaded;

impl Placement for LeastKvLoaded {
    fn name(&self) -> String {
        "least-kv-loaded".into()
    }

    fn uses_load(&self) -> bool {
        true
    }

    fn place(&mut self, _request: &RoutedRequest, replicas: &[ReplicaSnapshot]) -> usize {
        replicas
            .iter()
            .min_by(|a, b| {
                a.kv_load
                    .total_cmp(&b.kv_load)
                    .then((a.outstanding, a.index).cmp(&(b.outstanding, b.index)))
            })
            .map(|r| r.index)
            .unwrap_or(0)
    }
}

/// Pins every session to the replica that served its first request, so
/// same-session requests hit the prefix-cache blocks their predecessors
/// left behind ([`dfx_sim::BlockPool`]'s shared-prefix cache); requests
/// without a session — and each session's first request — fall through
/// to the wrapped policy.
pub struct SessionAffinity {
    fallback: Box<dyn Placement>,
    sessions: BTreeMap<u64, usize>,
}

impl SessionAffinity {
    /// Session affinity over `fallback` for unpinned requests.
    pub fn new(fallback: Box<dyn Placement>) -> Self {
        SessionAffinity {
            fallback,
            sessions: BTreeMap::new(),
        }
    }
}

impl Placement for SessionAffinity {
    fn name(&self) -> String {
        format!("session-affinity({})", self.fallback.name())
    }

    fn uses_load(&self) -> bool {
        self.fallback.uses_load()
    }

    fn reset(&mut self) {
        self.sessions.clear();
        self.fallback.reset();
    }

    fn place(&mut self, request: &RoutedRequest, replicas: &[ReplicaSnapshot]) -> usize {
        if let Some(session) = request.session {
            if let Some(&pinned) = self.sessions.get(&session) {
                return pinned;
            }
            let choice = self.fallback.place(request, replicas);
            self.sessions.insert(session, choice);
            return choice;
        }
        self.fallback.place(request, replicas)
    }
}

/// Jain's fairness index of the per-replica dispatch counts:
/// `(Σx)² / (n · Σx²)`, in `(0, 1]` — `1.0` means perfectly even,
/// `1/n` means one replica took everything. An all-zero vector is
/// trivially balanced (`1.0`).
pub fn jain_fairness(counts: &[usize]) -> f64 {
    if counts.is_empty() {
        return 1.0;
    }
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for &c in counts {
        let x = c as f64;
        // lint: order-sensitive — summed in replica index order
        sum += x;
        // lint: order-sensitive — summed in replica index order
        sum_sq += x * x;
    }
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (counts.len() as f64 * sum_sq)
}

/// Total modelled K/V bytes one context token occupies across a
/// replica's devices: the per-device [`MemoryModel::kv_bytes_per_token`]
/// of the first memory-modelled server, times its device count (wider
/// sharding splits a token's K/V across more devices but the *total*
/// moved over a link is the whole token). Zero when no server models
/// memory.
fn replica_kv_bytes_per_token(servers: &[&dyn Backend]) -> u64 {
    servers
        .iter()
        .find_map(|s| {
            s.memory()
                .map(|m| m.kv_bytes_per_token * s.device_count() as u64)
        })
        .unwrap_or(0)
}

fn replica_name(servers: &[&dyn Backend]) -> String {
    if servers.len() == 1 {
        servers[0].name()
    } else {
        let names: Vec<String> = servers.iter().map(|s| s.name()).collect();
        format!("pool({})", names.join(" + "))
    }
}

/// One replica behind the router: a server pool plus the sub-stream
/// assigned to it and a cached simulation of that sub-stream.
struct Replica<'a> {
    servers: Vec<&'a dyn Backend>,
    /// `(global id, workload, arrival ms)` in assignment (= arrival)
    /// order.
    assigned: Vec<(u64, Workload, f64)>,
    /// Simulation of the first `len` assigned requests. Exact for any
    /// query at or before the newest assigned arrival (causality).
    cache: Option<(usize, ServiceReport)>,
    /// The replica's incrementally-advanced engine state, when this run
    /// snapshots load through checkpoints instead of full prefix
    /// replays (load-aware placements outside
    /// [`with_full_replay`](ClusterRouter::with_full_replay) mode).
    live: Option<EngineCheckpoint<'a>>,
}

impl Replica<'_> {
    /// K/V bytes claimed at `t` by started, unfinished requests,
    /// against the replica's summed budget.
    fn kv_load_at(&self, report: &ServiceReport, t: f64) -> f64 {
        let mut budget = 0.0f64;
        for s in &self.servers {
            if let Some(m) = s.memory() {
                // lint: order-sensitive — summed in server index order
                budget += m.kv_budget_bytes() as f64;
            }
        }
        if budget <= 0.0 {
            return 0.0;
        }
        let mut claimed = 0.0f64;
        for r in &report.responses {
            if r.start_ms <= t && r.finish_ms > t {
                if let Some(m) = self.servers.get(r.server).and_then(|s| s.memory()) {
                    let tokens = r.request.workload.input_len + r.request.workload.output_len;
                    // lint: order-sensitive — summed in response order
                    claimed += m.kv_claim_bytes(tokens) as f64;
                }
            }
        }
        claimed / budget
    }
}

/// Per-replica slice of a [`ClusterReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaReport {
    /// Replica description (server name, or `pool(...)`).
    pub name: String,
    /// Requests the router dispatched to this replica.
    pub dispatched: usize,
    /// The replica's own engine report (request ids are replica-local
    /// submission indices). `None` when nothing was dispatched here.
    pub report: Option<ServiceReport>,
}

/// Modelled K/V-handoff cost of a disaggregated run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferStats {
    /// Requests that moved prefill→decode over the link.
    pub transfers: usize,
    /// Total K/V bytes moved.
    pub bytes: u64,
    /// Total link time across all transfers, ms.
    pub total_ms: f64,
    /// Mean link time per transferred request, ms (zero when nothing
    /// transferred).
    pub mean_ms: f64,
}

/// Service-level view of a whole cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Placement policy name.
    pub placement: String,
    /// Scheduler each replica engine ran.
    pub scheduler: String,
    /// Per-replica dispatch counts and engine reports.
    pub replicas: Vec<ReplicaReport>,
    /// Every response, with *global* request ids, ascending by id;
    /// [`Response::server`] is the replica index.
    pub responses: Vec<Response>,
    /// Requests served.
    pub total_requests: usize,
    /// Last completion across the cluster, ms.
    pub makespan_ms: f64,
    /// Median sojourn of the *pooled* per-replica samples, ms.
    pub p50_sojourn_ms: f64,
    /// 95th-percentile pooled sojourn, ms.
    pub p95_sojourn_ms: f64,
    /// 99th-percentile pooled sojourn, ms.
    pub p99_sojourn_ms: f64,
    /// Median pooled time to first token, ms — per-replica TTFT
    /// samples pooled via [`stats::merge_sorted`] (percentiles of a
    /// cluster are percentiles of the pooled samples, never averages
    /// of per-replica percentiles). On a [`DisaggregatedCluster`] this
    /// is end to end: the first token reaches the client when its
    /// prefill phase completes.
    pub p50_ttft_ms: f64,
    /// 95th-percentile pooled TTFT, ms.
    pub p95_ttft_ms: f64,
    /// 99th-percentile pooled TTFT, ms.
    pub p99_ttft_ms: f64,
    /// Median pooled inter-token latency, ms (zero when no replica ran
    /// a token-boundary discipline).
    pub p50_itl_ms: f64,
    /// 95th-percentile pooled ITL, ms.
    pub p95_itl_ms: f64,
    /// 99th-percentile pooled ITL, ms.
    pub p99_itl_ms: f64,
    /// Cluster energy, J: the sum of per-replica
    /// [`ServiceReport::energy_j`] (each replica's backend power times
    /// its busy time). `None` when no replica models power. Per-replica
    /// values stay readable through
    /// [`replicas`](ClusterReport::replicas).
    pub energy_j: Option<f64>,
    /// Output tokens delivered per second of cluster makespan.
    pub goodput_tps: f64,
    /// Jain fairness of the dispatch counts ([`jain_fairness`]).
    pub balance_index: f64,
    /// Paged-K/V counters merged across every replica that paged.
    pub paging: Option<PagingStats>,
    /// K/V-handoff cost; `None` outside disaggregated topologies.
    pub transfer: Option<TransferStats>,
}

impl ClusterReport {
    /// Mean per-replica utilization over replicas that served anything.
    pub fn mean_utilization(&self) -> f64 {
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for r in &self.replicas {
            if let Some(report) = &r.report {
                // lint: order-sensitive — summed in replica index order
                sum += report.utilization;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Cluster-wide prefix-cache hit rate, when any replica pages.
    pub fn prefix_hit_rate(&self) -> Option<f64> {
        self.paging.as_ref().map(PagingStats::hit_rate)
    }
}

/// A deterministic router over N serving-engine replicas. See the
/// module docs for the routing model and its exactness guarantees.
pub struct ClusterRouter<'a> {
    replicas: Vec<Replica<'a>>,
    placement: Box<dyn Placement>,
    make_scheduler: Box<dyn Fn() -> Box<dyn Scheduler> + 'a>,
    /// Answer load snapshots by re-simulating each replica's full
    /// assigned prefix (the O(n²) reference path) instead of advancing
    /// incremental checkpoints. Kept as the oracle the equivalence
    /// property tests pin the checkpoint path against.
    full_replay: bool,
}

impl<'a> ClusterRouter<'a> {
    /// A router over replicas, each a non-empty server pool behind one
    /// queue ([`ServingEngine::pool`] semantics).
    ///
    /// Replica engines default to FIFO; install any discipline with
    /// [`with_scheduler_factory`](ClusterRouter::with_scheduler_factory).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Service`] when there are no replicas or a
    /// replica has no servers.
    pub fn new(
        replicas: Vec<Vec<&'a dyn Backend>>,
        placement: Box<dyn Placement>,
    ) -> Result<Self, SimError> {
        if replicas.is_empty() {
            return Err(SimError::Service("cluster has no replicas".into()));
        }
        for (i, servers) in replicas.iter().enumerate() {
            if servers.is_empty() {
                return Err(SimError::Service(format!("replica {i} has no servers")));
            }
        }
        Ok(ClusterRouter {
            replicas: replicas
                .into_iter()
                .map(|servers| Replica {
                    servers,
                    assigned: Vec::new(),
                    cache: None,
                    live: None,
                })
                .collect(),
            placement,
            make_scheduler: Box::new(|| Box::new(crate::scheduler::Fifo)),
            full_replay: false,
        })
    }

    /// A router with one single-server replica per backend.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Service`] for an empty backend list.
    pub fn uniform(
        servers: Vec<&'a dyn Backend>,
        placement: Box<dyn Placement>,
    ) -> Result<Self, SimError> {
        ClusterRouter::new(servers.into_iter().map(|s| vec![s]).collect(), placement)
    }

    /// Installs the scheduler every replica engine runs. A factory, not
    /// an instance: each replica needs its own scheduler state (one per
    /// checkpoint, or one per replay in
    /// [`with_full_replay`](ClusterRouter::with_full_replay) mode).
    pub fn with_scheduler_factory(mut self, factory: impl Fn() -> Box<dyn Scheduler> + 'a) -> Self {
        self.make_scheduler = Box::new(factory);
        self
    }

    /// Answers load-aware placement snapshots by re-simulating each
    /// replica's full assigned prefix at every arrival — the O(n²)
    /// reference implementation the incremental checkpoints replaced.
    /// Bit-identical to the default path; kept as the oracle for the
    /// checkpoint-equivalence property tests and has no effect on
    /// load-blind placements (which never simulate while routing).
    #[must_use]
    pub fn with_full_replay(mut self) -> Self {
        self.full_replay = true;
        self
    }

    /// Number of replicas behind the router.
    pub fn num_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Routes and serves a sessionless stream; see
    /// [`run_sessions`](ClusterRouter::run_sessions).
    ///
    /// # Errors
    ///
    /// As [`run_sessions`](ClusterRouter::run_sessions).
    pub fn run(
        &mut self,
        workloads: &[Workload],
        arrivals: &ArrivalProcess,
    ) -> Result<ClusterReport, SimError> {
        self.run_sessions(workloads, &vec![None; workloads.len()], arrivals)
    }

    /// Routes every arrival to one replica and serves all sub-streams,
    /// producing a [`ClusterReport`]. `sessions[i]` tags workload `i`
    /// with a session for [`SessionAffinity`] (use `None` for
    /// sessionless requests).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Service`] for an empty workload list, a
    /// session list of mismatched length, a closed-loop arrival process
    /// (think-time loops bind to one replica's engine — see the module
    /// docs), or a placement returning an out-of-range replica index;
    /// propagates engine and backend errors from replica simulation.
    pub fn run_sessions(
        &mut self,
        workloads: &[Workload],
        sessions: &[Option<u64>],
        arrivals: &ArrivalProcess,
    ) -> Result<ClusterReport, SimError> {
        if workloads.is_empty() {
            return Err(SimError::Service("nothing to route".into()));
        }
        if sessions.len() != workloads.len() {
            return Err(SimError::Service(format!(
                "{} session tags for {} workloads",
                sessions.len(),
                workloads.len()
            )));
        }
        let times = arrivals.open_arrivals_ms(workloads.len())?.ok_or_else(|| {
            SimError::Service(
                "cluster routing requires an open-loop arrival process (Poisson or \
                 Trace); a closed loop couples submissions to completions on one \
                 queue, so it binds to a single replica's ServingEngine"
                    .into(),
            )
        })?;

        self.placement.reset();
        let uses_load = self.placement.uses_load();
        // Load-aware placements stream each replica through an
        // incremental checkpoint: every snapshot advances the replica
        // from its last simulated event to the new arrival instead of
        // replaying its whole prefix (O(n) events total, not O(n²)).
        let incremental = uses_load && !self.full_replay;
        for r in &mut self.replicas {
            r.assigned.clear();
            r.cache = None;
            r.live = if incremental {
                Some(EngineCheckpoint::new(
                    r.servers.clone(),
                    (self.make_scheduler)(),
                )?)
            } else {
                None
            };
        }

        for (i, (&workload, &arrival_ms)) in workloads.iter().zip(&times).enumerate() {
            let request = RoutedRequest {
                id: i as u64,
                workload,
                arrival_ms,
                session: sessions[i],
            };
            let snapshots = if incremental {
                self.snapshots_incremental(arrival_ms)?
            } else {
                self.snapshots(arrival_ms, uses_load)?
            };
            let choice = self.placement.place(&request, &snapshots);
            if choice >= self.replicas.len() {
                return Err(SimError::Service(format!(
                    "placement `{}` chose replica {choice} of {}",
                    self.placement.name(),
                    self.replicas.len()
                )));
            }
            let replica = &mut self.replicas[choice];
            replica.assigned.push((request.id, workload, arrival_ms));
            if let Some(live) = replica.live.as_mut() {
                live.push(workload, arrival_ms);
            }
        }

        self.finalize(workloads)
    }

    /// Exact per-replica state at `t` through the incremental
    /// checkpoints: each replica advances from its last simulated event
    /// to `t` and answers outstanding/K/V-load from its sliding
    /// accounting heaps. Bit-identical to [`snapshots`] with
    /// `uses_load` (the full-replay reference), which the
    /// checkpoint-equivalence property test pins.
    ///
    /// One corner cannot be read off the stream: a replica whose
    /// scheduler stalled (declined with no later-assigned arrival known
    /// — see [`EngineCheckpoint::is_stalled`]). The full-replay
    /// reference resolves that decline by *assuming the sub-stream is
    /// complete*, which can commit further admissions before `t` that
    /// the parked stream must not guess at (the replay itself rewrites
    /// that history once another arrival joins). While a replica is
    /// stalled, this falls back to the old cached prefix replay for its
    /// snapshot — same values, and still cached per assignment — and
    /// the live stream resumes untouched.
    ///
    /// [`snapshots`]: ClusterRouter::snapshots
    fn snapshots_incremental(&mut self, t: f64) -> Result<Vec<ReplicaSnapshot>, SimError> {
        let mut out = Vec::with_capacity(self.replicas.len());
        for index in 0..self.replicas.len() {
            let replica = &mut self.replicas[index];
            if replica.assigned.is_empty() {
                out.push(ReplicaSnapshot {
                    index,
                    assigned: 0,
                    outstanding: 0,
                    kv_load: 0.0,
                });
                continue;
            }
            let live = replica.live.as_mut().ok_or_else(|| {
                SimError::Service(format!("replica {index} has no live checkpoint"))
            })?;
            live.advance_to(t)?;
            if live.is_stalled() {
                self.refresh(index)?;
                let replica = &self.replicas[index];
                let report = match &replica.cache {
                    Some((_, report)) => report,
                    None => {
                        return Err(SimError::Service(format!(
                            "replica {index} has no cached run after refresh"
                        )))
                    }
                };
                out.push(ReplicaSnapshot {
                    index,
                    assigned: replica.assigned.len(),
                    outstanding: report.responses.iter().filter(|r| r.finish_ms > t).count(),
                    kv_load: replica.kv_load_at(report, t),
                });
                continue;
            }
            out.push(ReplicaSnapshot {
                index,
                assigned: replica.assigned.len(),
                outstanding: live.outstanding_at(t),
                kv_load: live.kv_load_at(t),
            });
        }
        Ok(out)
    }

    /// Exact per-replica state at `t` (see module docs), answered by
    /// re-simulating assigned prefixes. Skips all simulation when the
    /// placement never reads load.
    fn snapshots(&mut self, t: f64, uses_load: bool) -> Result<Vec<ReplicaSnapshot>, SimError> {
        let mut out = Vec::with_capacity(self.replicas.len());
        for index in 0..self.replicas.len() {
            if !uses_load || self.replicas[index].assigned.is_empty() {
                out.push(ReplicaSnapshot {
                    index,
                    assigned: self.replicas[index].assigned.len(),
                    outstanding: 0,
                    kv_load: 0.0,
                });
                continue;
            }
            self.refresh(index)?;
            let replica = &self.replicas[index];
            // refresh() always leaves a cache behind for a non-empty
            // sub-stream; an empty one was handled above.
            let report = match &replica.cache {
                Some((_, report)) => report,
                None => {
                    return Err(SimError::Service(format!(
                        "replica {index} has no cached run after refresh"
                    )))
                }
            };
            // All assigned arrivals are <= t (assignment follows arrival
            // order), so in-system means not yet finished.
            let outstanding = report.responses.iter().filter(|r| r.finish_ms > t).count();
            out.push(ReplicaSnapshot {
                index,
                assigned: replica.assigned.len(),
                outstanding,
                kv_load: replica.kv_load_at(report, t),
            });
        }
        Ok(out)
    }

    /// Re-simulates replica `index`'s assigned sub-stream unless the
    /// cache already covers it.
    fn refresh(&mut self, index: usize) -> Result<(), SimError> {
        let current = match &self.replicas[index].cache {
            Some((len, _)) => *len == self.replicas[index].assigned.len(),
            None => false,
        };
        if current {
            return Ok(());
        }
        let replica = &self.replicas[index];
        let workloads: Vec<Workload> = replica.assigned.iter().map(|a| a.1).collect();
        let trace: Vec<f64> = replica.assigned.iter().map(|a| a.2).collect();
        let report = ServingEngine::pool(replica.servers.clone())?
            .with_scheduler((self.make_scheduler)())
            .run(&workloads, &ArrivalProcess::Trace(trace))?;
        self.replicas[index].cache = Some((self.replicas[index].assigned.len(), report));
        Ok(())
    }

    /// Runs every non-empty replica to completion and aggregates the
    /// cluster report.
    fn finalize(&mut self, workloads: &[Workload]) -> Result<ClusterReport, SimError> {
        for index in 0..self.replicas.len() {
            if self.replicas[index].assigned.is_empty() {
                self.replicas[index].live = None;
                continue;
            }
            // A live checkpoint already simulated a prefix of this
            // sub-stream; draining it costs only the remaining events
            // and yields the same report a fresh full run would.
            if let Some(live) = self.replicas[index].live.take() {
                let report = live.finish()?;
                self.replicas[index].cache = Some((self.replicas[index].assigned.len(), report));
            } else {
                self.refresh(index)?;
            }
        }

        let mut replica_reports = Vec::with_capacity(self.replicas.len());
        let mut responses: Vec<Response> = Vec::with_capacity(workloads.len());
        let mut paging: Option<PagingStats> = None;
        let mut makespan_ms = 0.0f64;
        for (index, replica) in self.replicas.iter().enumerate() {
            let report = replica.cache.as_ref().map(|(_, r)| r.clone());
            if let Some(report) = &report {
                for r in &report.responses {
                    let local = r.request.id as usize;
                    let global_id = match replica.assigned.get(local) {
                        Some(&(gid, _, _)) => gid,
                        None => {
                            return Err(SimError::Service(format!(
                                "replica {index} reported unknown local request {local}"
                            )))
                        }
                    };
                    responses.push(Response {
                        request: Request {
                            id: global_id,
                            workload: r.request.workload,
                            arrival_ms: r.request.arrival_ms,
                        },
                        server: index,
                        start_ms: r.start_ms,
                        finish_ms: r.finish_ms,
                    });
                }
                if let Some(stats) = &report.paging {
                    match paging.as_mut() {
                        Some(merged) => merged.merge(stats),
                        None => paging = Some(*stats),
                    }
                }
                makespan_ms = makespan_ms.max(report.makespan_ms);
            }
            replica_reports.push(ReplicaReport {
                name: replica_name(&replica.servers),
                dispatched: replica.assigned.len(),
                report,
            });
        }
        responses.sort_by_key(|r| r.request.id);

        // Pooled cross-replica percentiles through the shared merge
        // seam — averaging per-replica percentiles is the bug this
        // module's stats satellite exists to prevent.
        let group_refs: Vec<&[f64]> = replica_reports
            .iter()
            .filter_map(|r| r.report.as_ref().map(ServiceReport::sorted_sojourns))
            .collect();
        let pooled = stats::merge_sorted(&group_refs)?;
        let counts: Vec<usize> = replica_reports.iter().map(|r| r.dispatched).collect();
        let total_tokens: usize = workloads.iter().map(|w| w.output_len).sum();

        // TTFT/ITL pool through the same merge seam as sojourns, and
        // energy sums per-replica totals — the values a per-replica
        // engine report carries but this tier used to drop.
        let ttft_refs: Vec<&[f64]> = replica_reports
            .iter()
            .filter_map(|r| r.report.as_ref().map(ServiceReport::sorted_ttfts))
            .collect();
        let pooled_ttfts = stats::merge_sorted(&ttft_refs)?;
        let itl_refs: Vec<&[f64]> = replica_reports
            .iter()
            .filter_map(|r| r.report.as_ref().map(ServiceReport::sorted_token_gaps))
            .collect();
        let pooled_itl = stats::merge_sorted(&itl_refs)?;
        let (p50_ttft_ms, p95_ttft_ms, p99_ttft_ms) = pooled_percentiles(&pooled_ttfts)?;
        let (p50_itl_ms, p95_itl_ms, p99_itl_ms) = pooled_percentiles(&pooled_itl)?;
        let energy_j = sum_energy(replica_reports.iter().map(|r| r.report.as_ref()));

        Ok(ClusterReport {
            placement: self.placement.name(),
            scheduler: (self.make_scheduler)().name().to_string(),
            replicas: replica_reports,
            responses,
            total_requests: workloads.len(),
            makespan_ms,
            p50_sojourn_ms: stats::percentile(&pooled, 0.50)?,
            p95_sojourn_ms: stats::percentile(&pooled, 0.95)?,
            p99_sojourn_ms: stats::percentile(&pooled, 0.99)?,
            p50_ttft_ms,
            p95_ttft_ms,
            p99_ttft_ms,
            p50_itl_ms,
            p95_itl_ms,
            p99_itl_ms,
            energy_j,
            goodput_tps: total_tokens as f64 / (makespan_ms.max(f64::MIN_POSITIVE) / 1e3),
            balance_index: jain_fairness(&counts),
            paging,
            transfer: None,
        })
    }
}

/// Nearest-rank p50/p95/p99 over an already-sorted pool; all zero for
/// an empty pool (e.g. ITL under a static discipline).
fn pooled_percentiles(pool: &[f64]) -> Result<(f64, f64, f64), SimError> {
    if pool.is_empty() {
        return Ok((0.0, 0.0, 0.0));
    }
    Ok((
        stats::percentile(pool, 0.50)?,
        stats::percentile(pool, 0.95)?,
        stats::percentile(pool, 0.99)?,
    ))
}

/// Sums [`ServiceReport::energy_j`] across replica reports: `None`
/// when no replica models power, otherwise the sum over those that do.
fn sum_energy<'r>(reports: impl Iterator<Item = Option<&'r ServiceReport>>) -> Option<f64> {
    let mut total: Option<f64> = None;
    for report in reports.flatten() {
        if let Some(e) = report.energy_j {
            // lint: order-sensitive — summed in replica index order
            *total.get_or_insert(0.0) += e;
        }
    }
    total
}

/// A backend wrapper whose admission charges no prefill: the K/V cache
/// for the context is already resident (delivered over the
/// [`LinkModel`] of a [`DisaggregatedCluster`], which pays the
/// transfer on the shared timeline instead). Static serving zeroes the
/// summarization stage; the continuous stepper zeroes the admission
/// charge. Everything else — decode costs, memory budget, paging —
/// delegates to the wrapped backend.
pub struct DecodeOnly<'a> {
    inner: &'a dyn Backend,
}

impl<'a> DecodeOnly<'a> {
    /// Wraps `inner` as a decode-pool backend.
    pub fn new(inner: &'a dyn Backend) -> Self {
        DecodeOnly { inner }
    }
}

impl Backend for DecodeOnly<'_> {
    fn name(&self) -> String {
        format!("decode-only({})", self.inner.name())
    }

    fn device_count(&self) -> usize {
        self.inner.device_count()
    }

    fn nominal_power_w(&self) -> Option<f64> {
        self.inner.nominal_power_w()
    }

    fn serve(&self, workload: Workload) -> Result<RunReport, SimError> {
        let mut report = self.inner.serve(workload)?;
        report.backend = Backend::name(self);
        report.summarization_ms = 0.0;
        Ok(report)
    }

    fn serve_batch(&self, batch: &[Workload]) -> Result<BatchReport, SimError> {
        let mut report = self.inner.serve_batch(batch)?;
        report.backend = Backend::name(self);
        report.summarization_ms = 0.0;
        Ok(report)
    }

    fn memory(&self) -> Option<MemoryModel> {
        self.inner.memory()
    }

    fn batch_feasible(&self, batch: &[Workload]) -> bool {
        self.inner.batch_feasible(batch)
    }

    fn continuous(&self) -> Option<Box<dyn ContinuousStepper + '_>> {
        self.inner
            .continuous()
            .map(|inner| Box::new(DecodeOnlyStepper { inner }) as Box<dyn ContinuousStepper>)
    }
}

/// Stepper adapter behind [`DecodeOnly`]: admissions allocate K/V and
/// join the batch as usual but charge zero time.
struct DecodeOnlyStepper<'a> {
    inner: Box<dyn ContinuousStepper + 'a>,
}

impl ContinuousStepper for DecodeOnlyStepper<'_> {
    fn admit(&mut self, id: u64, workload: Workload) -> Result<StepEvent, SimError> {
        let mut event = self.inner.admit(id, workload)?;
        event.ms = 0.0;
        Ok(event)
    }

    fn step_token(&mut self) -> Result<StepEvent, SimError> {
        self.inner.step_token()
    }

    fn live(&self) -> usize {
        self.inner.live()
    }

    fn set_prefill_chunk(&mut self, _chunk: Option<usize>) {
        // There is no prefill to chunk on the decode pool.
    }

    fn prefill_cost_ms(&mut self, _workload: Workload) -> f64 {
        0.0
    }

    fn step_cost_ms(&mut self, live: usize) -> f64 {
        self.inner.step_cost_ms(live)
    }

    fn kv_fits_resident(&self, members: &[Workload]) -> Option<bool> {
        self.inner.kv_fits_resident(members)
    }

    fn kv_stats(&self) -> Option<PagingStats> {
        self.inner.kv_stats()
    }
}

/// Prefill/decode disaggregation: a prefill router, a decode router and
/// the link between them (Splitwise/DistServe-style, on top of the
/// paper's observation that summarization is compute-bound while
/// generation is memory-bound, §III-B).
///
/// A request runs `(input, 1)` on the prefill pool (the prefill emits
/// the first token), pays `input tokens × kv bytes/token × devices`
/// over the link, then runs `(input + 1, output − 1)` on the decode
/// pool, whose replicas should be [`DecodeOnly`]-wrapped so admission
/// charges no second prefill. Requests asking for a single output token
/// never transfer.
pub struct DisaggregatedCluster<'a> {
    prefill: ClusterRouter<'a>,
    decode: ClusterRouter<'a>,
    link: LinkModel,
}

impl<'a> DisaggregatedCluster<'a> {
    /// A disaggregated topology over the two routers and the K/V link.
    pub fn new(prefill: ClusterRouter<'a>, decode: ClusterRouter<'a>, link: LinkModel) -> Self {
        DisaggregatedCluster {
            prefill,
            decode,
            link,
        }
    }

    /// Serves the stream through both phases, producing one
    /// [`ClusterReport`]: `replicas` lists the prefill replicas then
    /// the decode replicas (each phase's inner reports keep
    /// phase-local request ids), `responses` are end-to-end per
    /// original request, and `transfer` carries the modelled K/V
    /// handoff cost.
    ///
    /// # Errors
    ///
    /// As [`ClusterRouter::run`], for either phase.
    pub fn run(
        &mut self,
        workloads: &[Workload],
        arrivals: &ArrivalProcess,
    ) -> Result<ClusterReport, SimError> {
        if workloads.is_empty() {
            return Err(SimError::Service("nothing to route".into()));
        }
        // Phase 1: prefill each context and emit the first token.
        let prefill_workloads: Vec<Workload> = workloads
            .iter()
            .map(|w| Workload::new(w.input_len, 1))
            .collect();
        let prefill_report = self.prefill.run(&prefill_workloads, arrivals)?;

        // Phase 2 arrivals: prefill completion plus the K/V transfer.
        // Bytes per context token come from the prefill replica that
        // served the request (its sharding fixes how much K/V exists).
        let mut transfers = 0usize;
        let mut transfer_bytes = 0u64;
        let mut transfer_total_ms = 0.0f64;
        let mut decode_stream: Vec<(u64, Workload, f64)> = Vec::new();
        let mut prefill_finish = vec![(0usize, 0.0f64, 0.0f64); workloads.len()];
        for r in &prefill_report.responses {
            let i = r.request.id as usize;
            prefill_finish[i] = (r.server, r.start_ms, r.finish_ms);
            let original = workloads[i];
            if original.output_len < 2 {
                continue;
            }
            let bytes_per_token =
                replica_kv_bytes_per_token(&self.prefill.replicas[r.server].servers);
            let bytes = bytes_per_token * original.input_len as u64;
            let link_ms = self.link.transfer_ms(bytes);
            transfers += 1;
            transfer_bytes += bytes;
            // lint: order-sensitive — summed in prefill response order
            transfer_total_ms += link_ms;
            decode_stream.push((
                r.request.id,
                Workload::new(original.input_len + 1, original.output_len - 1),
                r.finish_ms + link_ms,
            ));
        }
        decode_stream.sort_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)));

        let decode_report = if decode_stream.is_empty() {
            None
        } else {
            let decode_workloads: Vec<Workload> = decode_stream.iter().map(|d| d.1).collect();
            let decode_trace: Vec<f64> = decode_stream.iter().map(|d| d.2).collect();
            Some(
                self.decode
                    .run(&decode_workloads, &ArrivalProcess::Trace(decode_trace))?,
            )
        };

        // End-to-end responses per original request.
        let n_prefill = self.prefill.replicas.len();
        let mut responses: Vec<Response> = Vec::with_capacity(workloads.len());
        for (i, &w) in workloads.iter().enumerate() {
            let (server, start_ms, finish_ms) = prefill_finish[i];
            responses.push(Response {
                request: Request {
                    id: i as u64,
                    workload: w,
                    arrival_ms: prefill_report.responses[i].request.arrival_ms,
                },
                server,
                start_ms,
                finish_ms,
            });
        }
        if let Some(decode) = &decode_report {
            for r in &decode.responses {
                let local = r.request.id as usize;
                let global = decode_stream[local].0 as usize;
                responses[global].server = n_prefill + r.server;
                responses[global].finish_ms = r.finish_ms;
            }
        }

        // Aggregate the combined report.
        let mut replicas = prefill_report.replicas.clone();
        if let Some(decode) = &decode_report {
            replicas.extend(decode.replicas.iter().cloned());
        } else {
            for replica in &self.decode.replicas {
                replicas.push(ReplicaReport {
                    name: replica_name(&replica.servers),
                    dispatched: 0,
                    report: None,
                });
            }
        }
        let mut paging = prefill_report.paging;
        if let Some(stats) = decode_report.as_ref().and_then(|d| d.paging.as_ref()) {
            match paging.as_mut() {
                Some(merged) => merged.merge(stats),
                None => paging = Some(*stats),
            }
        }
        let makespan_ms = responses.iter().map(|r| r.finish_ms).fold(0.0f64, f64::max);
        let mut sojourns: Vec<f64> = responses.iter().map(Response::sojourn_ms).collect();
        sojourns.sort_by(f64::total_cmp);
        let counts: Vec<usize> = replicas.iter().map(|r| r.dispatched).collect();
        let total_tokens: usize = workloads.iter().map(|w| w.output_len).sum();

        // End-to-end TTFT: the client sees its first token when the
        // prefill phase completes (phase 1 runs `(input, 1)`
        // workloads), before the K/V handoff and decode.
        let mut ttfts: Vec<f64> = prefill_report
            .responses
            .iter()
            .map(Response::sojourn_ms)
            .collect();
        ttfts.sort_by(f64::total_cmp);
        let (p50_ttft_ms, p95_ttft_ms, p99_ttft_ms) = pooled_percentiles(&ttfts)?;
        // ITL pools across both phases' replicas; prefill-phase
        // single-token runs contribute no gaps, so this is the decode
        // tier's inter-token story.
        let itl_refs: Vec<&[f64]> = replicas
            .iter()
            .filter_map(|r| r.report.as_ref().map(ServiceReport::sorted_token_gaps))
            .collect();
        let pooled_itl = stats::merge_sorted(&itl_refs)?;
        let (p50_itl_ms, p95_itl_ms, p99_itl_ms) = pooled_percentiles(&pooled_itl)?;
        let energy_j = sum_energy(replicas.iter().map(|r| r.report.as_ref()));

        Ok(ClusterReport {
            placement: format!(
                "disaggregated(prefill: {}, decode: {})",
                prefill_report.placement,
                decode_report
                    .as_ref()
                    .map_or_else(|| self.decode.placement.name(), |d| d.placement.clone()),
            ),
            scheduler: prefill_report.scheduler.clone(),
            replicas,
            responses,
            total_requests: workloads.len(),
            makespan_ms,
            p50_sojourn_ms: stats::percentile(&sojourns, 0.50)?,
            p95_sojourn_ms: stats::percentile(&sojourns, 0.95)?,
            p99_sojourn_ms: stats::percentile(&sojourns, 0.99)?,
            p50_ttft_ms,
            p95_ttft_ms,
            p99_ttft_ms,
            p50_itl_ms,
            p95_itl_ms,
            p99_itl_ms,
            energy_j,
            goodput_tps: total_tokens as f64 / (makespan_ms.max(f64::MIN_POSITIVE) / 1e3),
            balance_index: jain_fairness(&counts),
            paging,
            transfer: Some(TransferStats {
                transfers,
                bytes: transfer_bytes,
                total_ms: transfer_total_ms,
                mean_ms: if transfers == 0 {
                    0.0
                } else {
                    transfer_total_ms / transfers as f64
                },
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::ContinuousBatching;
    use dfx_model::GptConfig;
    use dfx_sim::Appliance;

    fn tiny_appliance() -> Appliance {
        Appliance::timing_only(GptConfig::tiny(), 1).unwrap()
    }

    fn burst(n: usize) -> (Vec<Workload>, ArrivalProcess) {
        let w = vec![Workload::new(8, 4); n];
        let times = (0..n).map(|i| i as f64 * 0.1).collect();
        (w, ArrivalProcess::Trace(times))
    }

    #[test]
    fn construction_rejects_degenerate_clusters() {
        let a = tiny_appliance();
        assert!(matches!(
            ClusterRouter::new(vec![], Box::new(RoundRobin::new())),
            Err(SimError::Service(_))
        ));
        assert!(matches!(
            ClusterRouter::new(vec![vec![&a], vec![]], Box::new(RoundRobin::new())),
            Err(SimError::Service(_))
        ));
    }

    #[test]
    fn closed_loop_arrivals_are_rejected_with_a_typed_error() {
        let a = tiny_appliance();
        let b = tiny_appliance();
        let mut cluster =
            ClusterRouter::uniform(vec![&a, &b], Box::new(RoundRobin::new())).unwrap();
        let err = cluster
            .run(
                &[Workload::new(8, 4); 4],
                &ArrivalProcess::ClosedLoop {
                    clients: 2,
                    think_time_ms: 10.0,
                },
            )
            .unwrap_err();
        assert!(matches!(err, SimError::Service(m) if m.contains("open-loop")));
    }

    #[test]
    fn empty_streams_and_mismatched_sessions_are_rejected() {
        let a = tiny_appliance();
        let mut cluster = ClusterRouter::uniform(vec![&a], Box::new(RoundRobin::new())).unwrap();
        assert!(matches!(
            cluster.run(&[], &ArrivalProcess::Trace(vec![])),
            Err(SimError::Service(_))
        ));
        assert!(matches!(
            cluster.run_sessions(
                &[Workload::new(8, 4)],
                &[None, None],
                &ArrivalProcess::Trace(vec![0.0]),
            ),
            Err(SimError::Service(_))
        ));
    }

    #[test]
    fn out_of_range_placement_is_a_typed_error() {
        struct Broken;
        impl Placement for Broken {
            fn name(&self) -> String {
                "broken".into()
            }
            fn place(&mut self, _r: &RoutedRequest, _s: &[ReplicaSnapshot]) -> usize {
                99
            }
        }
        let a = tiny_appliance();
        let mut cluster = ClusterRouter::uniform(vec![&a], Box::new(Broken)).unwrap();
        let (w, arr) = burst(2);
        let err = cluster.run(&w, &arr).unwrap_err();
        assert!(matches!(err, SimError::Service(m) if m.contains("chose replica 99")));
    }

    #[test]
    fn round_robin_cycles_and_balances() {
        let (a, b, c) = (tiny_appliance(), tiny_appliance(), tiny_appliance());
        let mut cluster =
            ClusterRouter::uniform(vec![&a, &b, &c], Box::new(RoundRobin::new())).unwrap();
        let (w, arr) = burst(8);
        let report = cluster.run(&w, &arr).unwrap();
        let counts: Vec<usize> = report.replicas.iter().map(|r| r.dispatched).collect();
        assert_eq!(counts, vec![3, 3, 2]);
        assert_eq!(report.total_requests, 8);
        assert_eq!(report.responses.len(), 8);
        // Ids are globally unique and ascending after the merge.
        let ids: Vec<u64> = report.responses.iter().map(|r| r.request.id).collect();
        assert_eq!(ids, (0..8).collect::<Vec<u64>>());
        assert!(report.balance_index > 0.9);
    }

    #[test]
    fn cluster_energy_is_the_sum_of_replica_energies() {
        let a = tiny_appliance();
        let b = tiny_appliance();
        let mut cluster =
            ClusterRouter::uniform(vec![&a, &b], Box::new(RoundRobin::new())).unwrap();
        let (w, arr) = burst(6);
        let report = cluster.run(&w, &arr).unwrap();
        // The DFX appliance models board power, so every replica report
        // carries energy and the pooled total is their exact sum.
        let replica_sum: f64 = report
            .replicas
            .iter()
            .filter_map(|r| r.report.as_ref().and_then(|s| s.energy_j))
            .sum();
        assert!(replica_sum > 0.0);
        assert!((report.energy_j.unwrap() - replica_sum).abs() < 1e-9);
        // TTFT pools across replicas (dispatch delay on the static
        // path) and keeps percentile ordering.
        assert!(report.p99_ttft_ms >= report.p50_ttft_ms);
        assert!(report.p50_ttft_ms >= 0.0);
    }

    #[test]
    fn least_outstanding_avoids_the_busy_replica() {
        // Replica 0 gets a long request at t=0; a burst right after
        // should pile onto replica 1 until the queues even out.
        let a = tiny_appliance();
        let b = tiny_appliance();
        let mut cluster = ClusterRouter::uniform(vec![&a, &b], Box::new(LeastOutstanding)).unwrap();
        let w = vec![
            Workload::new(64, 32),
            Workload::new(8, 4),
            Workload::new(8, 4),
        ];
        let arr = ArrivalProcess::Trace(vec![0.0, 0.1, 0.2]);
        let report = cluster.run(&w, &arr).unwrap();
        // First request -> replica 0 (tie at zero load); the second
        // avoids the grinding long request and lands on replica 1; the
        // third sees one outstanding on each and ties back to 0.
        let servers: Vec<usize> = report.responses.iter().map(|r| r.server).collect();
        assert_eq!(servers, vec![0, 1, 0]);
    }

    #[test]
    fn session_affinity_pins_sessions_and_falls_back() {
        let a = tiny_appliance();
        let b = tiny_appliance();
        let mut cluster = ClusterRouter::uniform(
            vec![&a, &b],
            Box::new(SessionAffinity::new(Box::new(RoundRobin::new()))),
        )
        .unwrap();
        let w = vec![Workload::new(8, 4); 5];
        let sessions = vec![Some(7), None, Some(7), Some(7), None];
        let arr = ArrivalProcess::Trace(vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        let report = cluster.run_sessions(&w, &sessions, &arr).unwrap();
        let by_id: Vec<usize> = report.responses.iter().map(|r| r.server).collect();
        // Session 7 pinned to replica 0 (round-robin's first pick);
        // sessionless requests alternate through the fallback.
        assert_eq!(by_id[0], 0);
        assert_eq!(by_id[2], 0);
        assert_eq!(by_id[3], 0);
        assert_ne!(by_id[1], by_id[4]);
        assert!(report.placement.contains("session-affinity"));
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0, 0]), 1.0);
        assert_eq!(jain_fairness(&[5, 5, 5]), 1.0);
        let skewed = jain_fairness(&[12, 0, 0, 0]);
        assert!((skewed - 0.25).abs() < 1e-12);
        let near = jain_fairness(&[3, 3, 2]);
        assert!(near > 0.9 && near < 1.0);
    }

    #[test]
    fn decode_only_zeroes_prefill_but_keeps_decode() {
        let a = tiny_appliance();
        let wrapped = DecodeOnly::new(&a);
        let w = Workload::new(16, 8);
        let full = a.serve(w).unwrap();
        let decode = wrapped.serve(w).unwrap();
        assert_eq!(decode.summarization_ms, 0.0);
        assert_eq!(decode.generation_ms, full.generation_ms);
        assert!(decode.total_ms() < full.total_ms());
        // The stepper admission is free too; decode steps still cost.
        let mut stepper = Backend::continuous(&wrapped).unwrap();
        let ev = stepper.admit(0, w).unwrap();
        assert_eq!(ev.ms, 0.0);
        let step = stepper.step_token().unwrap();
        assert!(step.ms > 0.0);
        assert_eq!(stepper.prefill_cost_ms(w), 0.0);
    }

    #[test]
    fn disaggregated_run_reports_nonzero_transfer() {
        let p1 = tiny_appliance();
        let p2 = tiny_appliance();
        let d1 = tiny_appliance();
        let wrapped = DecodeOnly::new(&d1);
        let prefill = ClusterRouter::uniform(vec![&p1, &p2], Box::new(RoundRobin::new())).unwrap();
        let decode = ClusterRouter::uniform(vec![&wrapped], Box::new(RoundRobin::new()))
            .unwrap()
            .with_scheduler_factory(|| Box::new(ContinuousBatching::new(4)));
        let mut cluster = DisaggregatedCluster::new(prefill, decode, LinkModel::qsfp28());
        let w = vec![
            Workload::new(16, 8),
            Workload::new(16, 1), // single-token: never transfers
            Workload::new(16, 8),
        ];
        let arr = ArrivalProcess::Trace(vec![0.0, 0.5, 1.0]);
        let report = cluster.run(&w, &arr).unwrap();
        let transfer = report.transfer.unwrap();
        assert_eq!(transfer.transfers, 2);
        assert!(transfer.bytes > 0);
        assert!(transfer.total_ms > 0.0);
        assert!((transfer.mean_ms - transfer.total_ms / 2.0).abs() < 1e-12);
        // End-to-end: one response per original request, finishing after
        // its own prefill; 3 replicas listed (2 prefill + 1 decode).
        assert_eq!(report.responses.len(), 3);
        assert_eq!(report.replicas.len(), 3);
        assert_eq!(report.replicas[2].dispatched, 2);
        assert!(report.placement.starts_with("disaggregated"));
        for r in &report.responses {
            assert!(r.finish_ms > r.start_ms);
            assert!(r.start_ms >= r.request.arrival_ms);
        }
        // The single-token request finished at its prefill replica.
        assert!(report.responses[1].server < 2);
    }

    #[test]
    fn reused_router_reproduces_reports() {
        let a = tiny_appliance();
        let b = tiny_appliance();
        let mut cluster = ClusterRouter::uniform(vec![&a, &b], Box::new(LeastOutstanding)).unwrap();
        let (w, arr) = burst(6);
        let first = cluster.run(&w, &arr).unwrap();
        let second = cluster.run(&w, &arr).unwrap();
        assert_eq!(first, second);
    }
}

//! Pluggable queue disciplines for the serving engine.

use crate::engine::Request;

/// A queue discipline: decides which waiting request a freed server
/// takes next.
///
/// The engine keeps the queue in arrival order and calls [`pick`] with
/// every request that has arrived by `now_ms`; the scheduler returns the
/// index to dispatch. The trait is deliberately minimal so batching and
/// priority disciplines slot in later without touching the engine.
///
/// [`pick`]: Scheduler::pick
pub trait Scheduler {
    /// Discipline name for reports.
    fn name(&self) -> &str;

    /// Index into `queue` (never empty, arrival order) of the request to
    /// dispatch at `now_ms`.
    fn pick(&mut self, queue: &[Request], now_ms: f64) -> usize;
}

/// First-in first-out: requests are served strictly in arrival order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl Scheduler for Fifo {
    fn name(&self) -> &str {
        "FIFO"
    }

    fn pick(&mut self, _queue: &[Request], _now_ms: f64) -> usize {
        0
    }
}

/// Shortest-job-first on the generated-output length: among everything
/// queued, serve the request with the fewest output tokens (ties broken
/// by arrival order). A deliberately simple second discipline proving
/// the scheduler seam is real; it trades worst-case sojourn for mean.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestJobFirst;

impl Scheduler for ShortestJobFirst {
    fn name(&self) -> &str {
        "SJF(output_len)"
    }

    fn pick(&mut self, queue: &[Request], _now_ms: f64) -> usize {
        queue
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.workload.output_len)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

//! Pluggable queue disciplines for the serving engine.
//!
//! A [`Scheduler`] decides *what a freed server executes next*: a single
//! request ([`Scheduler::pick`]), a whole set of queued requests
//! coalesced into one backend invocation ([`Scheduler::pick_batch`]) —
//! or nothing yet ([`BatchDecision::Wait`]), holding the server idle
//! while a batch fills. Continuous disciplines additionally implement
//! the *admission seam* ([`Scheduler::admit`]): at every token boundary
//! of a running batch, they decide which queued requests join the
//! members already decoding.

use crate::engine::Request;
use dfx_model::Workload;

/// What a scheduler tells the engine to do with a free server.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchDecision {
    /// Dispatch these queue indices as one coalesced batch (one
    /// [`Backend::serve_batch`](crate::Backend::serve_batch) call). The
    /// indices must be non-empty, unique and in range; the engine
    /// dispatches the members in queue (arrival) order.
    Dispatch(Vec<usize>),
    /// Hold the server idle and ask again at this absolute time (ms) —
    /// or earlier, if a new request arrives first. The time must lie
    /// strictly in the future of the decision instant, and a scheduler
    /// must make progress: the engine allows at most two consecutive
    /// `Wait` decisions with no new arrival in between and rejects the
    /// third with a service error, so a discipline must dispatch once
    /// its own deadline passes (a deadline-at-a-time wait like
    /// [`Batching`]'s never hits the limit: the engine wakes it at
    /// `min(deadline, next arrival)`, where it either dispatches or has
    /// admitted a new request).
    Wait(f64),
}

/// A member currently decoding inside a continuous batch, as shown to
/// [`Scheduler::admit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningMember {
    /// The request id of the member.
    pub id: u64,
    /// The member's workload.
    pub workload: Workload,
    /// Output tokens the member has produced so far (still zero while a
    /// chunked prefill is in flight).
    pub tokens_done: usize,
    /// When the member's request arrived, ms — the anchor for
    /// deadline-aware admission policies
    /// ([`ContinuousBatching::with_slo`]).
    pub arrival_ms: f64,
}

/// The cost/capacity oracle the engine hands to [`Scheduler::admit`] at
/// every token boundary: what an admission would *do* to the running
/// batch, answered by the executing backend.
///
/// Estimates come from the server's
/// [`ContinuousStepper`](crate::ContinuousStepper) (memoized, charging
/// nothing); capacity from the backend's
/// [`memory`](crate::Backend::memory) model. Backends without estimates
/// return 0 (policies then degrade to greedy admission); backends
/// without a memory model fit everything.
pub trait AdmissionProbe {
    /// Estimated serial prefill stall of admitting `workload` now, ms.
    fn prefill_ms(&mut self, workload: Workload) -> f64;

    /// Estimated cost of one decode step at a hypothetical live batch
    /// of `live` members, ms.
    fn step_ms(&mut self, live: usize) -> f64;

    /// Whether the K/V claims of `members` (running *and* joining — the
    /// caller passes the would-be resident set) fit the device's free
    /// HBM budget together. The granularity is the backend's: summed
    /// whole `input + output` claims on a reserved allocator, free
    /// *blocks* against the joiners' prompts on a paged one
    /// ([`ContinuousStepper::kv_fits_resident`](crate::ContinuousStepper::kv_fits_resident))
    /// — the same scheduler admits more aggressively on a paged backend
    /// without any code change here.
    fn kv_fits(&self, members: &[Workload]) -> bool;
}

/// An [`AdmissionProbe`] with no backend behind it: zero cost
/// estimates, infinite memory. What a probe-less test harness wants.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnboundedProbe;

impl AdmissionProbe for UnboundedProbe {
    fn prefill_ms(&mut self, _workload: Workload) -> f64 {
        0.0
    }

    fn step_ms(&mut self, _live: usize) -> f64 {
        0.0
    }

    fn kv_fits(&self, _members: &[Workload]) -> bool {
        true
    }
}

/// A queue discipline: decides which waiting request(s) a freed server
/// takes next.
///
/// The engine keeps the queue sorted by `(arrival, id)` and calls
/// [`pick_batch`] with every request that has arrived by `now_ms`. Most
/// disciplines dispatch one request at a time and only implement
/// [`pick`]; batching disciplines override [`pick_batch`] to coalesce
/// several queued requests into one backend invocation, or to wait for a
/// batch to fill; continuous disciplines additionally return `true`
/// from [`is_continuous`] and implement [`admit`], moving the engine to
/// token-boundary scheduling on backends that support it.
///
/// [`pick`]: Scheduler::pick
/// [`pick_batch`]: Scheduler::pick_batch
/// [`admit`]: Scheduler::admit
/// [`is_continuous`]: Scheduler::is_continuous
pub trait Scheduler {
    /// Discipline name for reports.
    fn name(&self) -> &str;

    /// Index into `queue` (never empty, sorted by arrival) of the single
    /// request to dispatch at `now_ms`.
    ///
    /// This is the single-dispatch path: the default [`pick_batch`]
    /// wraps the returned index in a one-element
    /// [`BatchDecision::Dispatch`], so a discipline that never batches
    /// only implements this method.
    ///
    /// [`pick_batch`]: Scheduler::pick_batch
    fn pick(&mut self, queue: &[Request], now_ms: f64) -> usize;

    /// Batching-aware entry point the engine calls on the static path:
    /// returns the *set* of queue indices to dispatch as one unit, or
    /// [`BatchDecision::Wait`] to hold the free server until a batch
    /// fills. Defaults to dispatching [`pick`]'s single choice.
    ///
    /// `feasible` is the executing backend's
    /// [`batch_feasible`](crate::Backend::batch_feasible) check: it
    /// answers whether a candidate set can run as one coalesced padded
    /// batch, so shape-aware disciplines ([`Batching`],
    /// [`ContinuousBatching`]) never coalesce members the backend would
    /// reject.
    ///
    /// [`pick`]: Scheduler::pick
    fn pick_batch(
        &mut self,
        queue: &[Request],
        now_ms: f64,
        feasible: &dyn Fn(&[Workload]) -> bool,
    ) -> BatchDecision {
        let _ = feasible;
        BatchDecision::Dispatch(vec![self.pick(queue, now_ms)])
    }

    /// The continuous-batching admission seam: at a token boundary of
    /// the batch running `running` members, returns the queue indices
    /// to admit now (each pays its prefill before decoding resumes).
    /// Indices must be unique and in range; an empty vector admits
    /// nobody. Only consulted when [`is_continuous`] is true and the
    /// backend has a stepper; the default admits nobody.
    ///
    /// `probe` is the executing server's cost/capacity oracle: memory-
    /// aware disciplines keep the joint K/V claim within
    /// [`AdmissionProbe::kv_fits`], and prefill-aware ones weigh
    /// [`AdmissionProbe::prefill_ms`] against the running members'
    /// deadlines before stalling their decode.
    ///
    /// [`is_continuous`]: Scheduler::is_continuous
    fn admit(
        &mut self,
        running: &[RunningMember],
        queue: &[Request],
        now_ms: f64,
        probe: &mut dyn AdmissionProbe,
    ) -> Vec<usize> {
        let _ = (running, queue, now_ms, probe);
        Vec::new()
    }

    /// The prefill chunk budget this discipline wants steppers to run
    /// with ([`ContinuousStepper::set_prefill_chunk`]); the engine
    /// applies it to every server's stepper before the token-boundary
    /// loop starts. `None` (the default) keeps whole-prefill admission.
    ///
    /// [`ContinuousStepper::set_prefill_chunk`]:
    ///     crate::ContinuousStepper::set_prefill_chunk
    fn prefill_chunk(&self) -> Option<usize> {
        None
    }

    /// Whether this discipline schedules at token boundaries via
    /// [`admit`](Scheduler::admit). The engine runs the token-boundary
    /// event loop only when this is true *and* every pooled backend has
    /// a [`ContinuousStepper`](crate::ContinuousStepper); otherwise it
    /// keeps the static [`pick_batch`](Scheduler::pick_batch) path.
    fn is_continuous(&self) -> bool {
        false
    }
}

/// First-in first-out: requests are served strictly in arrival order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl Scheduler for Fifo {
    fn name(&self) -> &str {
        "FIFO"
    }

    fn pick(&mut self, _queue: &[Request], _now_ms: f64) -> usize {
        0
    }
}

/// Shortest-job-first on the generated-output length: among everything
/// queued, serve the request with the fewest output tokens (ties broken
/// by arrival order). A deliberately simple second discipline proving
/// the scheduler seam is real; it trades worst-case sojourn for mean.
///
/// # Starvation and aging
///
/// Plain SJF ([`ShortestJobFirst::new`]) is not fair: under sustained
/// load, a long request can be overtaken indefinitely as shorter
/// requests keep arriving — its sojourn is unbounded even though the
/// system is stable. [`ShortestJobFirst::with_aging`] bounds that
/// starvation: once the oldest queued request has waited `max_age_ms`,
/// it is served next regardless of length, so no request waits more
/// than `max_age_ms` behind the shortest-first order while a server is
/// free.
#[derive(Debug, Clone)]
pub struct ShortestJobFirst {
    max_age_ms: Option<f64>,
    name: String,
}

impl Default for ShortestJobFirst {
    fn default() -> Self {
        ShortestJobFirst::new()
    }
}

impl ShortestJobFirst {
    /// Plain SJF, no aging (see the starvation caveat above).
    pub fn new() -> Self {
        ShortestJobFirst {
            max_age_ms: None,
            name: "SJF(output_len)".to_string(),
        }
    }

    /// SJF with aging: the oldest queued request preempts the
    /// shortest-first order once it has waited `max_age_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `max_age_ms` is negative or non-finite.
    pub fn with_aging(max_age_ms: f64) -> Self {
        assert!(
            max_age_ms.is_finite() && max_age_ms >= 0.0,
            "max_age_ms must be finite and non-negative"
        );
        ShortestJobFirst {
            max_age_ms: Some(max_age_ms),
            name: format!("SJF(output_len, age={max_age_ms}ms)"),
        }
    }
}

impl Scheduler for ShortestJobFirst {
    fn name(&self) -> &str {
        &self.name
    }

    fn pick(&mut self, queue: &[Request], now_ms: f64) -> usize {
        // The queue is sorted by arrival, so index 0 is the oldest.
        if let Some(max_age_ms) = self.max_age_ms {
            if !queue.is_empty() && now_ms - queue[0].arrival_ms >= max_age_ms {
                return 0;
            }
        }
        queue
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.workload.output_len)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Size-and-timeout batching in arrival order: coalesce up to
/// `max_batch` queued requests into one backend invocation, dispatching
/// early once the oldest queued request has waited `max_wait_ms`.
///
/// The two knobs span the paper's trade-off space (§III-A): a large
/// `max_batch` with a generous timeout is the GPU serving posture
/// (throughput first), `max_batch == 1` collapses to [`Fifo`] exactly —
/// making DFX's latency-first batch-1 service directly comparable in the
/// same engine.
///
/// The timeout guarantee is conditional on a free server: a request's
/// dispatch is delayed by the *scheduler* at most `max_wait_ms` past its
/// arrival; time spent with every server busy counts against capacity,
/// not against the batching window.
///
/// # Coalescing feasibility
///
/// A coalesced batch executes at the *padded* shape (the batch's
/// longest context and longest output), which a backend with a hard
/// sequence cap (the DFX appliance's `max_seq_len`) can reject even
/// when every member alone is valid. The discipline therefore grows
/// each batch through the backend's
/// [`batch_feasible`](crate::Backend::batch_feasible) hook: a member
/// whose addition would make the set infeasible is skipped (it stays
/// queued and anchors its own batch next round), so mixed streams like
/// [`chatbot_mix`](crate::chatbot_mix) on short-context models dispatch
/// without backend rejections.
#[derive(Debug, Clone)]
pub struct Batching {
    max_batch: usize,
    max_wait_ms: f64,
    name: String,
}

impl Batching {
    /// Creates the discipline.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero or `max_wait_ms` is negative or
    /// non-finite.
    pub fn new(max_batch: usize, max_wait_ms: f64) -> Self {
        assert!(max_batch > 0, "max_batch must be at least 1");
        assert!(
            max_wait_ms.is_finite() && max_wait_ms >= 0.0,
            "max_wait_ms must be finite and non-negative"
        );
        Batching {
            max_batch,
            max_wait_ms,
            name: format!("Batching(max={max_batch}, wait={max_wait_ms}ms)"),
        }
    }

    /// Maximum requests coalesced into one dispatch.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Longest the oldest queued request is held for batch-mates, ms.
    pub fn max_wait_ms(&self) -> f64 {
        self.max_wait_ms
    }
}

/// Grows a batch from the queue head in arrival order, skipping members
/// that would make the padded set infeasible for the backend. The head
/// itself is always included: a single-member "batch" the backend
/// rejects would be rejected as a lone dispatch too, and surfacing that
/// error beats queueing it forever.
fn grow_feasible(
    queue: &[Request],
    max_batch: usize,
    feasible: &dyn Fn(&[Workload]) -> bool,
) -> Vec<usize> {
    let mut picked = vec![0];
    let mut shapes = vec![queue[0].workload];
    for (i, r) in queue.iter().enumerate().skip(1) {
        if picked.len() == max_batch {
            break;
        }
        shapes.push(r.workload);
        if feasible(&shapes) {
            picked.push(i);
        } else {
            shapes.pop();
        }
    }
    picked
}

impl Scheduler for Batching {
    fn name(&self) -> &str {
        &self.name
    }

    fn pick(&mut self, _queue: &[Request], _now_ms: f64) -> usize {
        // Single-dispatch path (unused by the engine once `pick_batch`
        // is overridden): arrival order.
        0
    }

    fn pick_batch(
        &mut self,
        queue: &[Request],
        now_ms: f64,
        feasible: &dyn Fn(&[Workload]) -> bool,
    ) -> BatchDecision {
        let picked = grow_feasible(queue, self.max_batch, feasible);
        if picked.len() >= self.max_batch {
            return BatchDecision::Dispatch(picked);
        }
        // The queue is sorted by arrival, so index 0 is the oldest.
        let deadline = queue[0].arrival_ms + self.max_wait_ms;
        if now_ms >= deadline {
            BatchDecision::Dispatch(picked)
        } else {
            BatchDecision::Wait(deadline)
        }
    }
}

/// Continuous (iteration-level) batching: requests join and leave a
/// running batch at token boundaries, the discipline of Orca/vLLM-style
/// serving stacks.
///
/// On a backend with a [`ContinuousStepper`](crate::ContinuousStepper),
/// the engine runs its token-boundary loop and consults
/// [`admit`](Scheduler::admit) at every boundary: this discipline
/// admits queued requests in arrival order whenever the live batch has
/// a free slot (up to `max_batch`) *and* the joint K/V claim of the
/// running members plus the candidate fits the device's HBM budget
/// ([`AdmissionProbe::kv_fits`] — vacuously true on backends without a
/// [`memory`](crate::Backend::memory) model, block-granular on a
/// paged-K/V appliance, where prompts rather than whole claims gate
/// admission). It never holds a server
/// to let a batch fill — admission is greedy because a joining member
/// costs only its own prefill, not a padded re-run of the whole batch.
/// Members exit the moment they produce their last token, releasing
/// their claim.
///
/// With `max_batch == 1` the discipline degenerates to one request at a
/// time in arrival order — exactly the [`Fifo`] single-dispatch path,
/// which the serving invariants pin down.
///
/// On a backend *without* a stepper (the cloud TPU), the engine keeps
/// the static path and this discipline acts as an immediate-dispatch
/// coalescer: up to `max_batch` feasible requests per dispatch
/// (consulting [`batch_feasible`](crate::Backend::batch_feasible),
/// which covers both the padded shape and the joint K/V claim), zero
/// batching window.
///
/// # Prefill-aware admission ([`with_slo`](ContinuousBatching::with_slo))
///
/// On DFX the serial prefill is the dominant cost of joining a running
/// batch: every decoding member stalls for the newcomer's whole
/// summarization pass. With an SLO configured, a join is *deferred*
/// when the stall it injects would push any running member past its
/// deadline (`arrival + slo_ms`, projected as `now + pending prefills +
/// remaining tokens × step estimate`). A deferred candidate stays
/// queued and is reconsidered at the next boundary — typically joining
/// once a member retires. An idle server always admits (deferring
/// everybody forever would serve nobody).
///
/// # Chunked prefill ([`with_prefill_chunk`](ContinuousBatching::with_prefill_chunk))
///
/// Splits each admitted member's prefill into token-budgeted chunks
/// interleaved with decode steps (on steppers that support it — the
/// appliance does), bounding the per-step decode stall by one chunk
/// instead of one whole context. Total work is unchanged, so goodput
/// holds while the p99 inter-token gap of running members falls.
///
/// # Examples
///
/// ```
/// use dfx_model::{GptConfig, Workload};
/// use dfx_serve::{ArrivalProcess, ContinuousBatching, ServingEngine};
/// use dfx_sim::Appliance;
///
/// # fn main() -> Result<(), dfx_sim::SimError> {
/// let appliance = Appliance::timing_only(GptConfig::tiny(), 2)?;
/// let stream = vec![Workload::new(8, 8); 12];
/// let arrivals = ArrivalProcess::Poisson { rate_per_s: 50.0, seed: 7 };
/// let report = ServingEngine::new(&appliance)
///     .with_scheduler(Box::new(ContinuousBatching::new(4).with_prefill_chunk(4)))
///     .run(&stream, &arrivals)?;
/// assert_eq!(report.responses.len(), 12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ContinuousBatching {
    max_batch: usize,
    slo_ms: Option<f64>,
    prefill_chunk: Option<usize>,
    name: String,
}

impl ContinuousBatching {
    /// Creates the discipline with at most `max_batch` members decoding
    /// at once (greedy, memory-aware admission; no SLO deferral, whole
    /// prefills).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn new(max_batch: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be at least 1");
        let mut c = ContinuousBatching {
            max_batch,
            slo_ms: None,
            prefill_chunk: None,
            name: String::new(),
        };
        c.rename();
        c
    }

    /// Adds prefill-aware admission: defer a join when its prefill
    /// stall would push a running member past `arrival + slo_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `slo_ms` is non-positive or non-finite.
    #[must_use]
    pub fn with_slo(mut self, slo_ms: f64) -> Self {
        assert!(
            slo_ms.is_finite() && slo_ms > 0.0,
            "slo_ms must be finite and positive"
        );
        self.slo_ms = Some(slo_ms);
        self.rename();
        self
    }

    /// Adds a chunked-prefill budget of `tokens` context positions per
    /// step (applied to every server's stepper by the engine).
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is zero.
    #[must_use]
    pub fn with_prefill_chunk(mut self, tokens: usize) -> Self {
        assert!(tokens > 0, "a prefill chunk must be at least 1 token");
        self.prefill_chunk = Some(tokens);
        self.rename();
        self
    }

    /// Maximum members decoding at once.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    fn rename(&mut self) {
        let mut name = format!("Continuous(max={}", self.max_batch);
        if let Some(slo) = self.slo_ms {
            name.push_str(&format!(", slo={slo}ms"));
        }
        if let Some(chunk) = self.prefill_chunk {
            name.push_str(&format!(", chunk={chunk}"));
        }
        name.push(')');
        self.name = name;
    }
}

impl Scheduler for ContinuousBatching {
    fn name(&self) -> &str {
        &self.name
    }

    fn pick(&mut self, _queue: &[Request], _now_ms: f64) -> usize {
        0
    }

    fn pick_batch(
        &mut self,
        queue: &[Request],
        _now_ms: f64,
        feasible: &dyn Fn(&[Workload]) -> bool,
    ) -> BatchDecision {
        // Static fallback (no stepper): immediate greedy coalescing.
        BatchDecision::Dispatch(grow_feasible(queue, self.max_batch, feasible))
    }

    fn admit(
        &mut self,
        running: &[RunningMember],
        queue: &[Request],
        now_ms: f64,
        probe: &mut dyn AdmissionProbe,
    ) -> Vec<usize> {
        let slots = self.max_batch.saturating_sub(running.len());
        let mut picks = Vec::new();
        // The would-be resident set: running members plus accepted
        // candidates — the joint K/V claim each further admission must
        // fit next to.
        let mut resident: Vec<Workload> = running.iter().map(|m| m.workload).collect();
        // Members a further admission's stall must not push past their
        // deadline: `(arrival, remaining output tokens)` for the running
        // members *and* for candidates already picked at this boundary
        // (their own prefills are in `pending_stall_ms`; their whole
        // output is still ahead of them).
        let mut protected: Vec<(f64, usize)> = running
            .iter()
            .map(|m| {
                (
                    m.arrival_ms,
                    m.workload.output_len.saturating_sub(m.tokens_done),
                )
            })
            .collect();
        // Prefill stall already committed by this boundary's picks.
        let mut pending_stall_ms = 0.0;
        for (i, req) in queue.iter().enumerate() {
            if picks.len() == slots {
                break;
            }
            resident.push(req.workload);
            if !probe.kv_fits(&resident) {
                resident.pop();
                continue;
            }
            if let Some(slo) = self.slo_ms {
                // An idle server always admits its first candidate:
                // there is nobody to protect and deferring everybody
                // serves nobody.
                if !protected.is_empty() {
                    let stall = probe.prefill_ms(req.workload);
                    let step = probe.step_ms(running.len() + picks.len() + 1);
                    let blows_a_deadline = protected.iter().any(|&(arrival_ms, remaining)| {
                        let projected_finish =
                            now_ms + pending_stall_ms + stall + remaining as f64 * step;
                        projected_finish > arrival_ms + slo
                    });
                    if blows_a_deadline {
                        resident.pop();
                        continue;
                    }
                    // lint: order-sensitive — stalls charged in admission order
                    pending_stall_ms += stall;
                }
                protected.push((req.arrival_ms, req.workload.output_len));
            }
            picks.push(i);
        }
        picks
    }

    fn prefill_chunk(&self) -> Option<usize> {
        self.prefill_chunk
    }

    fn is_continuous(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfx_model::Workload;

    fn queue(arrivals: &[f64]) -> Vec<Request> {
        arrivals
            .iter()
            .enumerate()
            .map(|(i, &arrival_ms)| Request {
                id: i as u64,
                workload: Workload::new(8, 8),
                arrival_ms,
            })
            .collect()
    }

    const ANY: fn(&[Workload]) -> bool = |_| true;

    #[test]
    fn a_full_queue_dispatches_max_batch_in_arrival_order() {
        let mut b = Batching::new(3, 100.0);
        let q = queue(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(
            b.pick_batch(&q, 5.0, &ANY),
            BatchDecision::Dispatch(vec![0, 1, 2])
        );
    }

    #[test]
    fn a_partial_queue_waits_until_the_oldest_deadline() {
        let mut b = Batching::new(4, 100.0);
        let q = queue(&[10.0, 12.0]);
        assert_eq!(b.pick_batch(&q, 20.0, &ANY), BatchDecision::Wait(110.0));
        // At the deadline, flush whatever is queued.
        assert_eq!(
            b.pick_batch(&q, 110.0, &ANY),
            BatchDecision::Dispatch(vec![0, 1])
        );
    }

    #[test]
    fn max_batch_one_never_waits() {
        let mut b = Batching::new(1, 1_000.0);
        let q = queue(&[0.0]);
        assert_eq!(
            b.pick_batch(&q, 0.0, &ANY),
            BatchDecision::Dispatch(vec![0])
        );
    }

    #[test]
    fn zero_timeout_flushes_immediately() {
        let mut b = Batching::new(8, 0.0);
        let q = queue(&[5.0, 6.0]);
        assert_eq!(
            b.pick_batch(&q, 6.0, &ANY),
            BatchDecision::Dispatch(vec![0, 1])
        );
    }

    #[test]
    fn infeasible_members_are_skipped_not_coalesced() {
        // A feasibility oracle that rejects any pair containing both a
        // long-context and a long-output member (the padded-cap shape).
        let feasible = |ws: &[Workload]| {
            let input = ws.iter().map(|w| w.input_len).max().unwrap_or(0);
            let output = ws.iter().map(|w| w.output_len).max().unwrap_or(0);
            input + output <= 100
        };
        let mut q = queue(&[0.0, 1.0, 2.0]);
        q[0].workload = Workload::new(90, 2);
        q[1].workload = Workload::new(2, 90); // pads past the cap with q[0]
        q[2].workload = Workload::new(8, 8);
        let mut b = Batching::new(3, 0.0);
        assert_eq!(
            b.pick_batch(&q, 5.0, &feasible),
            BatchDecision::Dispatch(vec![0, 2])
        );
        // The skipped member anchors its own batch once it reaches the
        // head.
        let rest = vec![q[1]];
        assert_eq!(
            b.pick_batch(&rest, 6.0, &feasible),
            BatchDecision::Dispatch(vec![0])
        );
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_max_batch_panics() {
        let _ = Batching::new(0, 10.0);
    }

    #[test]
    fn default_pick_batch_wraps_pick() {
        let mut sjf = ShortestJobFirst::new();
        let mut q = queue(&[0.0, 1.0]);
        q[1].workload = Workload::new(8, 2);
        assert_eq!(
            sjf.pick_batch(&q, 2.0, &ANY),
            BatchDecision::Dispatch(vec![1])
        );
    }

    #[test]
    fn aged_sjf_prefers_the_oldest_once_it_is_stale() {
        let mut sjf = ShortestJobFirst::with_aging(50.0);
        let mut q = queue(&[0.0, 1.0]);
        q[1].workload = Workload::new(8, 2);
        // Fresh queue: shortest first.
        assert_eq!(sjf.pick(&q, 10.0), 1);
        // Past the age bound: the oldest wins regardless of length.
        assert_eq!(sjf.pick(&q, 50.0), 0);
        assert_eq!(sjf.name(), "SJF(output_len, age=50ms)");
    }

    fn member(id: u64, workload: Workload, tokens_done: usize, arrival_ms: f64) -> RunningMember {
        RunningMember {
            id,
            workload,
            tokens_done,
            arrival_ms,
        }
    }

    #[test]
    fn continuous_admits_up_to_the_free_slots_in_arrival_order() {
        let mut c = ContinuousBatching::new(4);
        let q = queue(&[0.0, 1.0, 2.0]);
        let running = [member(9, Workload::new(8, 8), 3, 0.0)];
        assert_eq!(
            c.admit(&running, &q, 5.0, &mut UnboundedProbe),
            vec![0, 1, 2]
        );
        let full: Vec<RunningMember> = (0..4)
            .map(|id| member(id, Workload::new(8, 8), 1, 0.0))
            .collect();
        assert_eq!(
            c.admit(&full, &q, 5.0, &mut UnboundedProbe),
            Vec::<usize>::new()
        );
        assert!(c.is_continuous());
        assert_eq!(c.prefill_chunk(), None);
    }

    /// A probe with fixed costs and a token-capacity K/V oracle.
    struct FixedProbe {
        prefill_ms: f64,
        step_ms: f64,
        kv_budget_tokens: usize,
    }

    impl AdmissionProbe for FixedProbe {
        fn prefill_ms(&mut self, _w: Workload) -> f64 {
            self.prefill_ms
        }
        fn step_ms(&mut self, _live: usize) -> f64 {
            self.step_ms
        }
        fn kv_fits(&self, members: &[Workload]) -> bool {
            members
                .iter()
                .map(|w| w.input_len + w.output_len)
                .sum::<usize>()
                <= self.kv_budget_tokens
        }
    }

    #[test]
    fn continuous_admission_respects_the_joint_kv_budget() {
        // Budget for 40 tokens; the running member claims 16, each
        // candidate 16: one fits, the second is skipped, the *third*
        // (smaller) still fits — the discipline packs around it.
        let mut c = ContinuousBatching::new(8);
        let mut q = queue(&[0.0, 1.0, 2.0]);
        q[2].workload = Workload::new(4, 4);
        let running = [member(9, Workload::new(8, 8), 1, 0.0)];
        let mut probe = FixedProbe {
            prefill_ms: 0.0,
            step_ms: 0.0,
            kv_budget_tokens: 40,
        };
        assert_eq!(c.admit(&running, &q, 5.0, &mut probe), vec![0, 2]);
    }

    #[test]
    fn slo_admission_defers_prefills_that_blow_running_deadlines() {
        // The running member arrived at t=0 with 4 tokens to go at
        // 1 ms/step; an SLO of 20 ms leaves ~6 ms of slack at t=10. A
        // 50 ms prefill blows it (deferred); a 2 ms prefill fits.
        let mut c = ContinuousBatching::new(8).with_slo(20.0);
        let q = queue(&[0.0]);
        let running = [member(9, Workload::new(8, 8), 4, 0.0)];
        let mut heavy = FixedProbe {
            prefill_ms: 50.0,
            step_ms: 1.0,
            kv_budget_tokens: usize::MAX,
        };
        assert_eq!(c.admit(&running, &q, 10.0, &mut heavy), Vec::<usize>::new());
        let mut light = FixedProbe {
            prefill_ms: 2.0,
            step_ms: 1.0,
            kv_budget_tokens: usize::MAX,
        };
        assert_eq!(c.admit(&running, &q, 10.0, &mut light), vec![0]);
        // An idle server admits even the heavy prefill: nobody to
        // protect.
        assert_eq!(c.admit(&[], &q, 10.0, &mut heavy), vec![0]);
        assert_eq!(c.name(), "Continuous(max=8, slo=20ms)");
    }

    #[test]
    fn slo_admission_protects_same_boundary_picks_too() {
        // Burst arrival on an idle server: the first (short) candidate
        // is admitted unconditionally, and the second's 50 ms prefill
        // is then weighed against the *first pick's* deadline — not
        // just against running members — so it is deferred.
        let mut c = ContinuousBatching::new(8).with_slo(20.0);
        let mut q = queue(&[0.0, 0.0]);
        q[0].workload = Workload::new(2, 8);
        q[1].workload = Workload::new(64, 2);
        let mut heavy = FixedProbe {
            prefill_ms: 50.0,
            step_ms: 1.0,
            kv_budget_tokens: usize::MAX,
        };
        assert_eq!(c.admit(&[], &q, 0.0, &mut heavy), vec![0]);
        // With a slack SLO the same burst is admitted whole.
        let mut relaxed = ContinuousBatching::new(8).with_slo(1_000.0);
        assert_eq!(relaxed.admit(&[], &q, 0.0, &mut heavy), vec![0, 1]);
    }

    #[test]
    fn the_prefill_chunk_knob_reaches_the_engine() {
        let c = ContinuousBatching::new(4).with_prefill_chunk(16);
        assert_eq!(c.prefill_chunk(), Some(16));
        assert_eq!(c.name(), "Continuous(max=4, chunk=16)");
    }

    #[test]
    fn continuous_static_fallback_dispatches_immediately() {
        let mut c = ContinuousBatching::new(2);
        let q = queue(&[0.0, 1.0, 2.0]);
        // No waiting, capped at max_batch.
        assert_eq!(
            c.pick_batch(&q, 0.0, &ANY),
            BatchDecision::Dispatch(vec![0, 1])
        );
    }
}

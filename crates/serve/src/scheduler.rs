//! Pluggable queue disciplines for the serving engine.
//!
//! A [`Scheduler`] decides *what a freed server executes next*: a single
//! request ([`Scheduler::pick`]) or, through the batching-aware seam
//! ([`Scheduler::pick_batch`]), a whole set of queued requests coalesced
//! into one backend invocation — or nothing yet ([`BatchDecision::Wait`]),
//! holding the server idle while a batch fills.

use crate::engine::Request;

/// What a scheduler tells the engine to do with a free server.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchDecision {
    /// Dispatch these queue indices as one coalesced batch (one
    /// [`Backend::serve_batch`](crate::Backend::serve_batch) call). The
    /// indices must be non-empty, unique and in range; the engine
    /// dispatches the members in queue (arrival) order.
    Dispatch(Vec<usize>),
    /// Hold the server idle and ask again at this absolute time (ms) —
    /// or earlier, if a new request arrives first. The time must lie
    /// strictly in the future of the decision instant, and a scheduler
    /// must make progress: the engine allows at most two consecutive
    /// `Wait` decisions with no new arrival in between and rejects the
    /// third with a service error, so a discipline must dispatch once
    /// its own deadline passes (a deadline-at-a-time wait like
    /// [`Batching`]'s never hits the limit: the engine wakes it at
    /// `min(deadline, next arrival)`, where it either dispatches or has
    /// admitted a new request).
    Wait(f64),
}

/// A queue discipline: decides which waiting request(s) a freed server
/// takes next.
///
/// The engine keeps the queue sorted by `(arrival, id)` and calls
/// [`pick_batch`] with every request that has arrived by `now_ms`. Most
/// disciplines dispatch one request at a time and only implement
/// [`pick`]; batching disciplines override [`pick_batch`] to coalesce
/// several queued requests into one backend invocation, or to wait for a
/// batch to fill.
///
/// [`pick`]: Scheduler::pick
/// [`pick_batch`]: Scheduler::pick_batch
pub trait Scheduler {
    /// Discipline name for reports.
    fn name(&self) -> &str;

    /// Index into `queue` (never empty, sorted by arrival) of the single
    /// request to dispatch at `now_ms`.
    ///
    /// This is the single-dispatch path: the default [`pick_batch`]
    /// wraps the returned index in a one-element
    /// [`BatchDecision::Dispatch`], so a discipline that never batches
    /// only implements this method.
    ///
    /// [`pick_batch`]: Scheduler::pick_batch
    fn pick(&mut self, queue: &[Request], now_ms: f64) -> usize;

    /// Batching-aware entry point the engine actually calls: returns the
    /// *set* of queue indices to dispatch as one unit, or
    /// [`BatchDecision::Wait`] to hold the free server until a batch
    /// fills. Defaults to dispatching [`pick`]'s single choice.
    ///
    /// [`pick`]: Scheduler::pick
    fn pick_batch(&mut self, queue: &[Request], now_ms: f64) -> BatchDecision {
        BatchDecision::Dispatch(vec![self.pick(queue, now_ms)])
    }
}

/// First-in first-out: requests are served strictly in arrival order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl Scheduler for Fifo {
    fn name(&self) -> &str {
        "FIFO"
    }

    fn pick(&mut self, _queue: &[Request], _now_ms: f64) -> usize {
        0
    }
}

/// Shortest-job-first on the generated-output length: among everything
/// queued, serve the request with the fewest output tokens (ties broken
/// by arrival order). A deliberately simple second discipline proving
/// the scheduler seam is real; it trades worst-case sojourn for mean.
///
/// # Starvation caveat
///
/// SJF is not fair: under sustained load, a long request can be
/// overtaken indefinitely as shorter requests keep arriving — its
/// sojourn is unbounded even though the system is stable. Use it for
/// mean-latency studies, not for service-level guarantees; there is no
/// aging mechanism.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestJobFirst;

impl Scheduler for ShortestJobFirst {
    fn name(&self) -> &str {
        "SJF(output_len)"
    }

    fn pick(&mut self, queue: &[Request], _now_ms: f64) -> usize {
        queue
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.workload.output_len)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Size-and-timeout batching in arrival order: coalesce up to
/// `max_batch` queued requests into one backend invocation, dispatching
/// early once the oldest queued request has waited `max_wait_ms`.
///
/// The two knobs span the paper's trade-off space (§III-A): a large
/// `max_batch` with a generous timeout is the GPU serving posture
/// (throughput first), `max_batch == 1` collapses to [`Fifo`] exactly —
/// making DFX's latency-first batch-1 service directly comparable in the
/// same engine.
///
/// The timeout guarantee is conditional on a free server: a request's
/// dispatch is delayed by the *scheduler* at most `max_wait_ms` past its
/// arrival; time spent with every server busy counts against capacity,
/// not against the batching window.
///
/// # Coalescing feasibility
///
/// A coalesced batch executes at the *padded* shape (the batch's
/// longest context and longest output), so a backend with a hard
/// sequence cap (the DFX appliance's `max_seq_len`) can reject a batch
/// whose members are each individually valid: pairing a long-context
/// member with a long-output member may pad past the cap, and the
/// backend error aborts the engine run. This discipline does not
/// inspect workload shapes; if a stream's longest context plus longest
/// output can exceed the backend's cap, partition the stream by shape
/// or keep `max_batch == 1` for the outsized requests.
/// [`chatbot_mix`](crate::chatbot_mix) streams are jointly coalescible
/// by construction.
#[derive(Debug, Clone)]
pub struct Batching {
    max_batch: usize,
    max_wait_ms: f64,
    name: String,
}

impl Batching {
    /// Creates the discipline.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero or `max_wait_ms` is negative or
    /// non-finite.
    pub fn new(max_batch: usize, max_wait_ms: f64) -> Self {
        assert!(max_batch > 0, "max_batch must be at least 1");
        assert!(
            max_wait_ms.is_finite() && max_wait_ms >= 0.0,
            "max_wait_ms must be finite and non-negative"
        );
        Batching {
            max_batch,
            max_wait_ms,
            name: format!("Batching(max={max_batch}, wait={max_wait_ms}ms)"),
        }
    }

    /// Maximum requests coalesced into one dispatch.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Longest the oldest queued request is held for batch-mates, ms.
    pub fn max_wait_ms(&self) -> f64 {
        self.max_wait_ms
    }
}

impl Scheduler for Batching {
    fn name(&self) -> &str {
        &self.name
    }

    fn pick(&mut self, _queue: &[Request], _now_ms: f64) -> usize {
        // Single-dispatch path (unused by the engine once `pick_batch`
        // is overridden): arrival order.
        0
    }

    fn pick_batch(&mut self, queue: &[Request], now_ms: f64) -> BatchDecision {
        if queue.len() >= self.max_batch {
            return BatchDecision::Dispatch((0..self.max_batch).collect());
        }
        // The queue is sorted by arrival, so index 0 is the oldest.
        let deadline = queue[0].arrival_ms + self.max_wait_ms;
        if now_ms >= deadline {
            BatchDecision::Dispatch((0..queue.len()).collect())
        } else {
            BatchDecision::Wait(deadline)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfx_model::Workload;

    fn queue(arrivals: &[f64]) -> Vec<Request> {
        arrivals
            .iter()
            .enumerate()
            .map(|(i, &arrival_ms)| Request {
                id: i as u64,
                workload: Workload::new(8, 8),
                arrival_ms,
            })
            .collect()
    }

    #[test]
    fn a_full_queue_dispatches_max_batch_in_arrival_order() {
        let mut b = Batching::new(3, 100.0);
        let q = queue(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(
            b.pick_batch(&q, 5.0),
            BatchDecision::Dispatch(vec![0, 1, 2])
        );
    }

    #[test]
    fn a_partial_queue_waits_until_the_oldest_deadline() {
        let mut b = Batching::new(4, 100.0);
        let q = queue(&[10.0, 12.0]);
        assert_eq!(b.pick_batch(&q, 20.0), BatchDecision::Wait(110.0));
        // At the deadline, flush whatever is queued.
        assert_eq!(b.pick_batch(&q, 110.0), BatchDecision::Dispatch(vec![0, 1]));
    }

    #[test]
    fn max_batch_one_never_waits() {
        let mut b = Batching::new(1, 1_000.0);
        let q = queue(&[0.0]);
        assert_eq!(b.pick_batch(&q, 0.0), BatchDecision::Dispatch(vec![0]));
    }

    #[test]
    fn zero_timeout_flushes_immediately() {
        let mut b = Batching::new(8, 0.0);
        let q = queue(&[5.0, 6.0]);
        assert_eq!(b.pick_batch(&q, 6.0), BatchDecision::Dispatch(vec![0, 1]));
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_max_batch_panics() {
        let _ = Batching::new(0, 10.0);
    }

    #[test]
    fn default_pick_batch_wraps_pick() {
        let mut sjf = ShortestJobFirst;
        let mut q = queue(&[0.0, 1.0]);
        q[1].workload = Workload::new(8, 2);
        assert_eq!(sjf.pick_batch(&q, 2.0), BatchDecision::Dispatch(vec![1]));
    }
}

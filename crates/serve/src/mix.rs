//! Canonical request mixes for service-level experiments.

use dfx_model::Workload;

/// The chatbot-mix request stream the serving experiments and examples
/// share: four sizes around the paper's 64:64 point, cycled
/// deterministically.
///
/// Workloads exceeding `max_seq_len` are replaced by a
/// `max_seq_len/2 : max_seq_len/4` point so short-context smoke
/// configurations stay valid.
///
/// Note for batching experiments: the mix's longest context plus
/// longest output is `192 + 96 = 288` tokens, so on any model with
/// `max_seq_len >= 288` (every paper configuration) *any subset* of the
/// stream can be coalesced into one padded batch without exceeding the
/// appliance's sequence cap. Below 288 the per-request clamp keeps
/// individual requests valid while a coalesced pair can still pad past
/// the cap — the batching disciplines handle that through the backend's
/// [`batch_feasible`](crate::Backend::batch_feasible) hook, skipping
/// members whose addition would make the padded set infeasible (see
/// [`Batching`](crate::Batching)); token-granular admission
/// ([`ContinuousBatching`](crate::ContinuousBatching) on a stepper
/// backend) is per-member feasible and needs no such check.
pub fn chatbot_mix(n_requests: usize, max_seq_len: usize) -> Vec<Workload> {
    let sizes = [16usize, 32, 64, 96];
    (0..n_requests)
        .map(|i| {
            let w = Workload::new(2 * sizes[i % 4], sizes[(i / 4) % 4]);
            if w.input_len + w.output_len > max_seq_len {
                Workload::new(max_seq_len / 2, max_seq_len / 4)
            } else {
                w
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_cycles_sixteen_distinct_sizes() {
        let mix = chatbot_mix(64, 1024);
        let distinct: std::collections::BTreeSet<Workload> = mix.iter().copied().collect();
        assert_eq!(distinct.len(), 16);
        assert!(mix.iter().all(|w| w.input_len + w.output_len <= 1024));
    }

    #[test]
    fn short_contexts_are_clamped() {
        let mix = chatbot_mix(32, 64);
        assert!(mix.iter().all(|w| w.input_len + w.output_len <= 64));
        assert!(mix.iter().all(|w| w.input_len > 0 && w.output_len > 0));
    }
}

//! The instruction-level timing engine.
//!
//! Walks a program in issue order and computes, per instruction, when it
//! can start (scoreboard dependencies, unit occupancy, in-order issue
//! rate) and how long it runs (tile counts, pipeline depths, accumulation
//! hazards, DMA streaming overlap, ring hops). Matrix instructions model
//! the paper's key property — the MPU consumes one `d × l` tile per cycle
//! when HBM keeps up, with `max(compute, stream)` overlap because weights
//! are *streamed* through double buffers rather than preloaded (§V-D).
//!
//! The engine is data-free: it never touches weights, so full-scale
//! models (345M…1.5B) are timed exactly as the paper's appliance ran
//! them, without materialising gigabytes of parameters.

use crate::params::CoreParams;
use crate::scoreboard::Scoreboard;
use dfx_hw::{Cycles, DmaModel, RingModel};
use dfx_isa::{
    DmaDir, Instr, OpClass, Program, ReduceKind, RouterOp, ScalarOpKind, TensorRef, VectorOpKind,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The execution units instructions occupy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Unit {
    /// DMA engine (DDR vector loads, token I/O, KV appends).
    Dma,
    /// Matrix processing unit (including its HBM weight stream).
    Mpu,
    /// Vector processing unit (vector, reduce and scalar instructions).
    Vpu,
    /// Ring-network router.
    Router,
}

impl Unit {
    /// All units.
    pub const ALL: [Unit; 4] = [Unit::Dma, Unit::Mpu, Unit::Vpu, Unit::Router];
}

/// Timing cost of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstrCost {
    /// The unit the instruction occupies.
    pub unit: Unit,
    /// Cycles the unit is occupied (back-to-back issue limit).
    pub occupancy: Cycles,
    /// Extra pipeline latency until the result is readable (chained
    /// consumers wait; independent successors do not).
    pub latency: Cycles,
}

/// Timing result of one token step on one core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepTiming {
    /// End-to-end cycles (makespan).
    pub total: Cycles,
    /// Makespan advancement attributed to each op class. Sums to
    /// [`StepTiming::total`]: work fully hidden behind another unit's
    /// occupancy contributes zero.
    pub by_class: BTreeMap<OpClass, Cycles>,
    /// Busy cycles per unit (can exceed `total` in sum — units overlap).
    pub unit_busy: BTreeMap<Unit, Cycles>,
    /// Number of instructions timed.
    pub instructions: usize,
}

impl StepTiming {
    /// Datapath activity estimate in `[0, 1]` for the power model: the
    /// MPU dominates dynamic power, the VPU and DMA contribute less.
    pub fn activity(&self) -> f64 {
        if self.total.0 == 0 {
            return 0.0;
        }
        let busy = |u: Unit| self.unit_busy.get(&u).map_or(0, |c| c.0) as f64;
        let t = self.total.0 as f64;
        ((busy(Unit::Mpu) * 0.85 + busy(Unit::Vpu) * 0.30 + busy(Unit::Dma) * 0.25) / t).min(1.0)
    }

    /// Merges another step into an accumulated total (used across tokens).
    pub fn accumulate(&mut self, other: &StepTiming) {
        self.total += other.total;
        for (k, v) in &other.by_class {
            *self.by_class.entry(*k).or_insert(Cycles::ZERO) += *v;
        }
        for (k, v) in &other.unit_busy {
            *self.unit_busy.entry(*k).or_insert(Cycles::ZERO) += *v;
        }
        self.instructions += other.instructions;
    }

    /// An empty accumulator.
    pub fn zero() -> StepTiming {
        StepTiming {
            total: Cycles::ZERO,
            by_class: BTreeMap::new(),
            unit_busy: BTreeMap::new(),
            instructions: 0,
        }
    }
}

/// The timing model of one core within a cluster.
///
/// # Examples
///
/// ```
/// use dfx_core::{CoreParams, TimingCore};
/// use dfx_isa::{ParallelConfig, ProgramBuilder};
/// use dfx_model::GptConfig;
///
/// let builder = ProgramBuilder::new(GptConfig::tiny(), ParallelConfig::new(0, 2)).unwrap();
/// let core = TimingCore::new(CoreParams::default(), 2);
/// let t = core.time_step(&builder.token_step(0, true));
/// assert!(t.total.0 > 0);
/// ```
#[derive(Debug, Clone)]
pub struct TimingCore {
    params: CoreParams,
    dma: DmaModel,
    ring: RingModel,
    scoreboard_enabled: bool,
    read_side_transpose: bool,
}

impl TimingCore {
    /// Creates the timing model for a cluster of `num_cores`.
    pub fn new(params: CoreParams, num_cores: u32) -> Self {
        TimingCore {
            params,
            dma: DmaModel::with_shape(params.shape),
            ring: RingModel::new(num_cores),
            scoreboard_enabled: true,
            read_side_transpose: false,
        }
    }

    /// Failure-injection variant: dependencies are ignored, demonstrating
    /// how much the scoreboard's hazard tracking costs/protects.
    pub fn without_scoreboard(mut self) -> Self {
        self.scoreboard_enabled = false;
        self
    }

    /// Ablation variant: the *conventional* transpose scheme the paper
    /// rejects (§V-B) — V is stored untransposed and every
    /// `Score × Value` read first transposes the whole `t × d_head`
    /// matrix in on-chip memory (~1 element/cycle), instead of DFX's
    /// write-side transpose hidden behind the K/Q projections.
    pub fn with_read_side_transpose(mut self) -> Self {
        self.read_side_transpose = true;
        self
    }

    /// The core parameters.
    pub fn params(&self) -> &CoreParams {
        &self.params
    }

    /// The DMA model in use.
    pub fn dma(&self) -> &DmaModel {
        &self.dma
    }

    /// Replaces the DMA model (sensitivity studies and tests).
    pub fn with_dma(mut self, dma: DmaModel) -> Self {
        self.dma = dma;
        self
    }

    /// The ring model in use.
    pub fn ring(&self) -> &RingModel {
        &self.ring
    }

    /// Times one token-step program.
    ///
    /// Equivalent to [`time_step_batched`] with a batch of one — the two
    /// entry points share one scheduling walk, so batch-1 results are
    /// bit-identical by construction.
    ///
    /// [`time_step_batched`]: TimingCore::time_step_batched
    pub fn time_step(&self, program: &Program) -> StepTiming {
        self.time_step_batched(program, 1)
    }

    /// Times one token-step program executed for `batch` requests at
    /// once.
    ///
    /// The batched cost model (ROADMAP: batching scheduler prerequisite)
    /// reuses the exact scheduling walk of the batch-1 path but charges
    /// every instruction its batched cost ([`batched_instr_cost`]): the
    /// per-request *work* (MAC passes, vector chunks, KV traffic,
    /// activation synchronisation) scales with the batch, while the
    /// *weight stream* is shared — the whole point of batching a
    /// memory-bound decoder. With `batch == 1` every cost is identical to
    /// [`instr_cost`], so this is a strict generalisation of
    /// [`time_step`].
    ///
    /// [`batched_instr_cost`]: TimingCore::batched_instr_cost
    /// [`instr_cost`]: TimingCore::instr_cost
    /// [`time_step`]: TimingCore::time_step
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn time_step_batched(&self, program: &Program, batch: u32) -> StepTiming {
        assert!(batch > 0, "batch must be at least 1");
        let mut sb = if self.scoreboard_enabled {
            Scoreboard::new()
        } else {
            Scoreboard::disabled()
        };
        let mut unit_free: BTreeMap<Unit, Cycles> = BTreeMap::new();
        let mut unit_busy: BTreeMap<Unit, Cycles> = BTreeMap::new();
        let mut by_class: BTreeMap<OpClass, Cycles> = BTreeMap::new();
        // K/V regions written this step (this token's appended rows) are
        // not readable by the matrix stream until the DMA store — and for
        // Values, the transpose unit — completes. This is the dependency
        // the paper's Value-first instruction order exists to hide (§V-B).
        let mut kv_ready: BTreeMap<TensorRef, Cycles> = BTreeMap::new();
        let mut issue_cursor = Cycles::ZERO;
        let mut makespan = Cycles::ZERO;

        for ai in program.instrs() {
            let cost = self.batched_instr_cost(&ai.instr, batch);
            let mut ready = sb.ready_time(&ai.instr);
            if let Instr::Matrix(m) = &ai.instr {
                if let Some(&region) = kv_ready.get(&m.weight) {
                    ready = ready.max(region);
                }
            }
            let free = unit_free.get(&cost.unit).copied().unwrap_or(Cycles::ZERO);
            let issue = ready.max(free).max(issue_cursor);
            // Instruction chaining (§IV-C): the unit frees after the
            // occupancy (streaming/processing) period; the *result*
            // becomes architecturally visible a pipeline latency later.
            // Independent successors start behind the occupancy only.
            let unit_done = issue + cost.occupancy;
            let finish = unit_done + cost.latency;

            sb.commit(&ai.instr, finish);
            if let Instr::Dma(d) = &ai.instr {
                if let (DmaDir::Store, TensorRef::Kv { .. }) = (d.dir, d.tensor) {
                    kv_ready.insert(d.tensor, finish);
                }
            }
            unit_free.insert(cost.unit, unit_done);
            *unit_busy.entry(cost.unit).or_insert(Cycles::ZERO) += cost.occupancy;
            issue_cursor = issue + Cycles(u64::from(self.params.issue_interval));

            let contribution = finish.saturating_sub(makespan);
            *by_class.entry(ai.class).or_insert(Cycles::ZERO) += contribution;
            makespan = makespan.max(finish);
        }

        StepTiming {
            total: makespan,
            by_class,
            unit_busy,
            instructions: program.len(),
        }
    }

    /// Cost of one instruction: the unit it occupies, the cycles it
    /// occupies it for, and the extra pipeline latency until its result
    /// is architecturally visible.
    ///
    /// Shorthand for [`batched_instr_cost`] with a batch of one.
    ///
    /// [`batched_instr_cost`]: TimingCore::batched_instr_cost
    pub fn instr_cost(&self, instr: &Instr) -> InstrCost {
        self.batched_instr_cost(instr, 1)
    }

    /// Cost of one instruction executed for `batch` requests at once.
    ///
    /// The batch dimension scales exactly the per-request terms and
    /// nothing else:
    ///
    /// - **Matrix**: the MAC array makes one pass over the operand tiles
    ///   *per request* (activations differ), so compute scales with the
    ///   batch — but a shared *weight* streams from HBM once, which is
    ///   the amortisation that makes batched decoding pay. Per-request
    ///   K/V operands (every request has its own cache) scale on both
    ///   sides of the `max(compute, stream)` overlap.
    /// - **Vector / Reduce / Scalar**: per-request activation work; the
    ///   element count scales with the batch while the per-instruction
    ///   overhead (operand collection, pipeline fill) is charged once.
    /// - **DMA**: per-request token I/O, DDR vectors and K/V appends
    ///   scale with the batch.
    /// - **Router**: the ring carries every request's partial
    ///   activations, so synchronisation bytes (and per-request argmax
    ///   reductions) scale with the batch.
    ///
    /// With `batch == 1` this is exactly [`instr_cost`].
    ///
    /// [`instr_cost`]: TimingCore::instr_cost
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero, like [`time_step_batched`].
    ///
    /// [`time_step_batched`]: TimingCore::time_step_batched
    pub fn batched_instr_cost(&self, instr: &Instr, batch: u32) -> InstrCost {
        assert!(batch > 0, "batch must be at least 1");
        let p = &self.params;
        let vw = p.vpu_width;
        let b = u64::from(batch);
        match instr {
            Instr::Matrix(m) => {
                let tiles = p.shape.tile_count(m.rows, m.cols);
                // One pass over the tiles per batch member.
                let compute = p.matrix_compute_cycles(tiles) * b;
                // Weights *and* K/V live in HBM as padded d × l tiles
                // ("the DMA stores and loads tiled weights, Key, and
                // Value", §V-B), so short operands stream padded bytes —
                // the Fig 8a utilisation cliff at d > 64 / l > 64.
                // Weight matrices are shared across the batch and stream
                // once; K/V regions are per-request and stream per
                // member.
                let stream = match m.weight {
                    TensorRef::Kv { .. } => {
                        let bytes = tiles * u64::from(p.shape.macs_per_cycle()) * 2;
                        self.dma.hbm.scattered_cycles(bytes * b, b).0
                    }
                    _ => self.dma.weight_stream_cycles(m.rows, m.cols).0,
                };
                // Conventional-scheme ablation: Value reads pay a full
                // on-chip transpose before the stream can feed the MACs
                // (per request — each member's V region is distinct).
                let transpose = match m.weight {
                    TensorRef::Kv {
                        kind: dfx_isa::KvKind::Value,
                        ..
                    } if self.read_side_transpose => u64::from(m.rows) * u64::from(m.cols) * b,
                    _ => 0,
                };
                InstrCost {
                    unit: Unit::Mpu,
                    occupancy: Cycles(
                        transpose + compute.max(stream) + u64::from(p.matrix_overhead),
                    ),
                    latency: Cycles(u64::from(p.matrix_pipeline_fill())),
                }
            }
            Instr::Vector(v) => {
                let chunks = u64::from(v.len.div_ceil(vw)) * b;
                let lat = match v.op {
                    VectorOpKind::Add
                    | VectorOpKind::Sub
                    | VectorOpKind::AddScalar
                    | VectorOpKind::SubScalar => p.fp_add_latency,
                    VectorOpKind::Mul | VectorOpKind::MulScalar => p.fp_mul_latency,
                    VectorOpKind::Exp => p.exp_latency,
                    // Loads/stores/copies use the bypass path (§V-C).
                    VectorOpKind::Copy => 1,
                };
                InstrCost {
                    unit: Unit::Vpu,
                    occupancy: Cycles(chunks + u64::from(p.vector_overhead)),
                    latency: Cycles(u64::from(lat)),
                }
            }
            Instr::Reduce(r) => {
                let chunks = u64::from(r.len.div_ceil(vw)) * b;
                let (step_lat, tree_lat) = match r.kind {
                    ReduceKind::Sum => (p.fp_add_latency, p.fp_add_latency),
                    ReduceKind::Max => (6, 6), // comparator tree
                };
                // Chunk partials accumulate serially through one FP adder.
                InstrCost {
                    unit: Unit::Vpu,
                    occupancy: Cycles(chunks * u64::from(step_lat) + u64::from(p.vector_overhead)),
                    latency: Cycles(u64::from(tree_lat) * u64::from(p.vpu_tree_depth())),
                }
            }
            Instr::Scalar(s) => {
                let lat = match s.op {
                    ScalarOpKind::Add => p.fp_add_latency,
                    ScalarOpKind::Mul => p.fp_mul_latency,
                    ScalarOpKind::Recip | ScalarOpKind::RecipSqrt => p.recip_latency,
                };
                InstrCost {
                    unit: Unit::Vpu,
                    occupancy: Cycles(8 * b),
                    latency: Cycles(u64::from(lat)),
                }
            }
            Instr::Dma(dm) => {
                let dur = match (dm.dir, dm.tensor) {
                    (_, TensorRef::TokenIo) => self.dma.token_io_cycles() * b,
                    (DmaDir::Load, _) => self.dma.ddr_vector_cycles((dm.bytes / 2) as u32) * b,
                    (DmaDir::Store, TensorRef::Kv { .. }) => {
                        let head_dim = (dm.bytes / 2) as u32;
                        if dm.transpose {
                            self.dma.kv_write_transposed_cycles(head_dim) * b
                        } else {
                            self.dma.kv_write_cycles(head_dim) * b
                        }
                    }
                    (DmaDir::Store, _) => self.dma.ddr_vector_cycles((dm.bytes / 2) as u32) * b,
                };
                InstrCost {
                    unit: Unit::Dma,
                    occupancy: dur,
                    latency: Cycles::ZERO,
                }
            }
            Instr::Router(r) => {
                let dur = match r.op {
                    RouterOp::AllGather => self.ring.allgather_cycles(r.bytes * b),
                    RouterOp::AllReduceArgMax => self.ring.argmax_reduce_cycles() * b,
                };
                InstrCost {
                    unit: Unit::Router,
                    occupancy: dur,
                    latency: Cycles::ZERO,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfx_isa::{ParallelConfig, ProgramBuilder};
    use dfx_model::GptConfig;

    fn time(cfg: &GptConfig, cores: u32, pos: usize, lm: bool) -> StepTiming {
        let b = ProgramBuilder::new(cfg.clone(), ParallelConfig::new(0, cores as usize)).unwrap();
        TimingCore::new(CoreParams::default(), cores).time_step(&b.token_step(pos, lm))
    }

    #[test]
    fn class_attribution_sums_to_total() {
        let t = time(&GptConfig::tiny(), 2, 3, true);
        let sum: u64 = t.by_class.values().map(|c| c.0).sum();
        assert_eq!(sum, t.total.0);
    }

    #[test]
    fn more_cores_make_a_step_faster_once_matrices_dominate() {
        // Needs production-scale matrices: on toy models the ring hops
        // outweigh the partitioning gain (the paper's scalability caveat
        // in §VII-B). One 345M-geometry layer is enough.
        let cfg = GptConfig::new("345m-1layer", 1024, 16, 2, 512, 64);
        let one = time(&cfg, 1, 0, false);
        let two = time(&cfg, 2, 0, false);
        assert!(
            two.total < one.total,
            "2 cores {} !< 1 core {}",
            two.total,
            one.total
        );
    }

    #[test]
    fn tiny_models_do_not_benefit_from_partitioning() {
        // Converse of the scalability property: with emb = 192 the four
        // per-layer ring synchronisations cost more than the matrix
        // savings — faithful to the paper's sync-overhead discussion.
        let cfg = GptConfig::small();
        let one = time(&cfg, 1, 0, false);
        let three = time(&cfg, 3, 0, false);
        assert!(three.total > one.total);
    }

    #[test]
    fn sync_class_appears_only_in_multicore_runs() {
        let single = time(&GptConfig::tiny(), 1, 0, false);
        let multi = time(&GptConfig::tiny(), 2, 0, false);
        assert!(!single.by_class.contains_key(&OpClass::Sync));
        assert!(multi.by_class.contains_key(&OpClass::Sync));
    }

    #[test]
    fn longer_context_costs_more() {
        let early = time(&GptConfig::tiny(), 2, 0, false);
        let late = time(&GptConfig::tiny(), 2, 100, false);
        assert!(late.total > early.total);
    }

    #[test]
    fn lm_head_step_costs_more_than_plain_step() {
        let plain = time(&GptConfig::tiny(), 2, 0, false);
        let with_head = time(&GptConfig::tiny(), 2, 0, true);
        assert!(with_head.total > plain.total);
    }

    #[test]
    fn disabled_scoreboard_underestimates_latency() {
        let cfg = GptConfig::tiny();
        let b = ProgramBuilder::new(cfg.clone(), ParallelConfig::new(0, 2)).unwrap();
        let p = b.token_step(0, false);
        let with = TimingCore::new(CoreParams::default(), 2).time_step(&p);
        let without = TimingCore::new(CoreParams::default(), 2)
            .without_scoreboard()
            .time_step(&p);
        assert!(
            without.total < with.total,
            "ignoring hazards must (unsafely) shorten the critical path"
        );
    }

    #[test]
    fn kv_reads_wait_for_this_steps_stores() {
        // The MM(Score x Value) of a step must not start before the V row
        // appended in the same step clears the transpose unit. Compare a
        // normal step against one where V-store costs are inflated.
        use dfx_isa::{BuilderOptions, QkvOrder};
        let cfg = GptConfig::tiny();
        let b = ProgramBuilder::with_options(
            cfg,
            ParallelConfig::new(0, 1),
            BuilderOptions {
                qkv_order: QkvOrder::ValueLast,
            },
        )
        .unwrap();
        let p = b.token_step(0, false);
        let normal = TimingCore::new(CoreParams::default(), 1).time_step(&p);
        // Triple the per-element transpose penalty through the DMA model.
        let slow = TimingCore::new(CoreParams::default(), 1);
        let mut dma = slow.dma().clone();
        dma.transpose_elem_overhead = dfx_hw::Cycles(64);
        let slow = slow.with_dma(dma);
        let slowed = slow.time_step(&p);
        assert!(
            slowed.total > normal.total,
            "inflated transpose must surface on the critical path: {} vs {}",
            slowed.total,
            normal.total
        );
    }

    #[test]
    fn activity_is_a_sane_fraction() {
        let t = time(&GptConfig::tiny(), 2, 0, true);
        let a = t.activity();
        assert!(a > 0.0 && a <= 1.0, "{a}");
    }

    #[test]
    fn batch_of_one_is_bit_identical_to_the_unbatched_path() {
        let cfg = GptConfig::tiny();
        let b = ProgramBuilder::new(cfg, ParallelConfig::new(0, 2)).unwrap();
        let engine = TimingCore::new(CoreParams::default(), 2);
        for pos in [0, 3, 7] {
            let p = b.token_step(pos, pos == 7);
            assert_eq!(engine.time_step(&p), engine.time_step_batched(&p, 1));
            for ai in p.instrs() {
                assert_eq!(
                    engine.instr_cost(&ai.instr),
                    engine.batched_instr_cost(&ai.instr, 1)
                );
            }
        }
    }

    #[test]
    fn batched_step_cost_is_monotone_in_batch_size() {
        let cfg = GptConfig::tiny();
        let b = ProgramBuilder::new(cfg, ParallelConfig::new(0, 2)).unwrap();
        let p = b.token_step(4, true);
        let engine = TimingCore::new(CoreParams::default(), 2);
        let mut prev = Cycles::ZERO;
        for batch in 1..=16 {
            let t = engine.time_step_batched(&p, batch);
            assert!(
                t.total >= prev,
                "batch {batch} got cheaper: {} < {prev}",
                t.total
            );
            prev = t.total;
        }
    }

    #[test]
    fn batching_amortises_the_weight_stream() {
        // A production-geometry step is weight-stream bound, so a batch
        // of B must cost far less than B independent steps: the whole
        // point of the batched cost model.
        let cfg = GptConfig::new("345m-1layer", 1024, 16, 2, 512, 64);
        let b = ProgramBuilder::new(cfg, ParallelConfig::new(0, 1)).unwrap();
        let p = b.token_step(0, false);
        let engine = TimingCore::new(CoreParams::default(), 1);
        let single = engine.time_step(&p).total.0;
        let batched = engine.time_step_batched(&p, 8).total.0;
        // Empirically ~4.5x: the shared weight stream amortises while the
        // per-request vector work still scales, so the per-member cost
        // drops to ~0.55x without ever reaching the full 8x.
        assert!(
            batched < 6 * single,
            "batch-8 step ({batched}) should amortise well below 8x the batch-1 step ({single})"
        );
        assert!(batched > single, "more work cannot be free");
    }

    #[test]
    #[should_panic(expected = "batch must be at least 1")]
    fn zero_batch_panics() {
        let b = ProgramBuilder::new(GptConfig::tiny(), ParallelConfig::new(0, 1)).unwrap();
        let _ =
            TimingCore::new(CoreParams::default(), 1).time_step_batched(&b.token_step(0, false), 0);
    }

    #[test]
    fn units_overlap_and_pipelines_chain() {
        // The makespan must beat the fully serialised schedule (every
        // instruction's occupancy + pipeline latency end to end).
        let cfg = GptConfig::tiny();
        let b = ProgramBuilder::new(cfg.clone(), ParallelConfig::new(0, 2)).unwrap();
        let p = b.token_step(2, true);
        let engine = TimingCore::new(CoreParams::default(), 2);
        let t = engine.time_step(&p);
        let serial: u64 = p
            .instrs()
            .iter()
            .map(|ai| {
                let c = engine.instr_cost(&ai.instr);
                c.occupancy.0 + c.latency.0
            })
            .sum();
        assert!(
            t.total.0 < serial,
            "makespan {} should beat serial bound {serial}",
            t.total.0
        );
    }
}

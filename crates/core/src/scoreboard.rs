//! The scoreboard (paper §V-A).
//!
//! The hardware scoreboard tracks source/destination addresses of
//! in-flight instructions with `stale`/`valid` bits so chained
//! instructions never read half-written registers. The simulator uses it
//! in two ways: the timing engine queries register-ready times to place
//! instruction start cycles, and tests disable it to demonstrate that the
//! hazard it guards against is real (failure injection).

use dfx_hw::Cycles;
use dfx_isa::{Instr, ReduceMax, RouterOp, SReg, VReg};

/// A register identifier across both files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegId {
    /// Vector register.
    V(u8),
    /// Scalar register.
    S(u8),
}

impl From<VReg> for RegId {
    fn from(r: VReg) -> RegId {
        RegId::V(r.0)
    }
}

impl From<SReg> for RegId {
    fn from(r: SReg) -> RegId {
        RegId::S(r.0)
    }
}

/// Registers an instruction reads.
pub fn instr_reads(instr: &Instr) -> Vec<RegId> {
    match instr {
        Instr::Matrix(m) => vec![m.src.reg.into()],
        Instr::Vector(v) => {
            let mut r: Vec<RegId> = vec![v.a.into()];
            if let Some(b) = v.b {
                r.push(b.into());
            }
            if let Some(s) = v.s {
                r.push(s.into());
            }
            r
        }
        Instr::Reduce(r) => vec![r.v.into()],
        Instr::Scalar(s) => {
            let mut r: Vec<RegId> = vec![s.a.into()];
            if let Some(b) = s.b {
                r.push(b.into());
            }
            r
        }
        Instr::Dma(d) => match (d.dir, d.reg) {
            (dfx_isa::DmaDir::Store, Some(slice)) => vec![slice.reg.into()],
            _ => Vec::new(),
        },
        Instr::Router(r) => match r.op {
            RouterOp::AllGather => vec![r.src.reg.into()],
            RouterOp::AllReduceArgMax => {
                let mut v = Vec::new();
                if let Some(i) = r.idx {
                    v.push(i.into());
                }
                if let Some(m) = r.max {
                    v.push(m.into());
                }
                v
            }
        },
    }
}

/// Registers an instruction writes.
pub fn instr_writes(instr: &Instr) -> Vec<RegId> {
    match instr {
        Instr::Matrix(m) => {
            let mut w: Vec<RegId> = vec![m.dst.reg.into()];
            match m.reduce_max {
                ReduceMax::None => {}
                ReduceMax::Max(s) => w.push(s.into()),
                ReduceMax::ArgMax { idx, max } => {
                    w.push(idx.into());
                    w.push(max.into());
                }
            }
            w
        }
        Instr::Vector(v) => vec![v.dst.into()],
        Instr::Reduce(r) => vec![r.dst.into()],
        Instr::Scalar(s) => vec![s.dst.into()],
        Instr::Dma(d) => match (d.dir, d.reg) {
            (dfx_isa::DmaDir::Load, Some(slice)) => vec![slice.reg.into()],
            _ => Vec::new(),
        },
        Instr::Router(r) => match r.op {
            RouterOp::AllGather => vec![r.dst.reg.into()],
            RouterOp::AllReduceArgMax => {
                let mut v = Vec::new();
                if let Some(i) = r.idx {
                    v.push(i.into());
                }
                if let Some(m) = r.max {
                    v.push(m.into());
                }
                v
            }
        },
    }
}

/// Number of architectural vector registers.
pub const NUM_VREGS: usize = 32;
/// Number of architectural scalar registers.
pub const NUM_SREGS: usize = 16;

/// Ready-time scoreboard used by the timing engine.
#[derive(Debug, Clone)]
pub struct Scoreboard {
    vreg_ready: [Cycles; NUM_VREGS],
    sreg_ready: [Cycles; NUM_SREGS],
    /// When disabled, hazards are ignored (failure-injection mode).
    enabled: bool,
}

impl Default for Scoreboard {
    fn default() -> Self {
        Scoreboard::new()
    }
}

impl Scoreboard {
    /// Creates a scoreboard with all registers ready at cycle 0.
    pub fn new() -> Self {
        Scoreboard {
            vreg_ready: [Cycles::ZERO; NUM_VREGS],
            sreg_ready: [Cycles::ZERO; NUM_SREGS],
            enabled: true,
        }
    }

    /// Creates a disabled scoreboard (no hazard tracking) for failure
    /// injection tests.
    pub fn disabled() -> Self {
        Scoreboard {
            enabled: false,
            ..Scoreboard::new()
        }
    }

    /// `true` if hazard tracking is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn ready_of(&self, reg: RegId) -> Cycles {
        match reg {
            RegId::V(i) => self.vreg_ready[i as usize],
            RegId::S(i) => self.sreg_ready[i as usize],
        }
    }

    /// Earliest cycle at which all of `instr`'s dependencies (RAW on
    /// sources, WAW on destinations) are satisfied.
    pub fn ready_time(&self, instr: &Instr) -> Cycles {
        if !self.enabled {
            return Cycles::ZERO;
        }
        let mut t = Cycles::ZERO;
        for r in instr_reads(instr) {
            t = t.max(self.ready_of(r));
        }
        for w in instr_writes(instr) {
            t = t.max(self.ready_of(w));
        }
        t
    }

    /// Marks `instr`'s destinations ready at `finish`.
    pub fn commit(&mut self, instr: &Instr, finish: Cycles) {
        for w in instr_writes(instr) {
            match w {
                RegId::V(i) => self.vreg_ready[i as usize] = finish,
                RegId::S(i) => self.sreg_ready[i as usize] = finish,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfx_isa::{VectorInstr, VectorOpKind};

    fn vadd(a: u8, b: u8, dst: u8) -> Instr {
        Instr::Vector(VectorInstr {
            op: VectorOpKind::Add,
            a: VReg(a),
            b: Some(VReg(b)),
            s: None,
            dst: VReg(dst),
            len: 8,
        })
    }

    #[test]
    fn raw_hazard_is_tracked() {
        let mut sb = Scoreboard::new();
        let producer = vadd(0, 1, 2);
        sb.commit(&producer, Cycles(100));
        let consumer = vadd(2, 3, 4);
        assert_eq!(sb.ready_time(&consumer), Cycles(100));
        let independent = vadd(5, 6, 7);
        assert_eq!(sb.ready_time(&independent), Cycles::ZERO);
    }

    #[test]
    fn waw_hazard_is_tracked() {
        let mut sb = Scoreboard::new();
        sb.commit(&vadd(0, 1, 2), Cycles(50));
        // Writing v2 again must wait for the previous write.
        assert_eq!(sb.ready_time(&vadd(3, 4, 2)), Cycles(50));
    }

    #[test]
    fn disabled_scoreboard_reports_everything_ready() {
        let mut sb = Scoreboard::disabled();
        sb.commit(&vadd(0, 1, 2), Cycles(100));
        assert_eq!(sb.ready_time(&vadd(2, 3, 4)), Cycles::ZERO);
        assert!(!sb.is_enabled());
    }

    #[test]
    fn reads_and_writes_cover_matrix_fusions() {
        use dfx_isa::{MatrixInstr, MatrixKind, ReduceMax, SReg, TensorRef, VSlice, WeightKind};
        let m = Instr::Matrix(MatrixInstr {
            kind: MatrixKind::Mm,
            src: VSlice::full(VReg(1), 4),
            weight: TensorRef::Weight {
                layer: 0,
                kind: WeightKind::LmHead,
            },
            bias: None,
            dst: VSlice::full(VReg(2), 4),
            rows: 4,
            cols: 4,
            valid_cols: 4,
            scale: None,
            gelu: false,
            reduce_max: ReduceMax::ArgMax {
                idx: SReg(4),
                max: SReg(5),
            },
        });
        assert_eq!(instr_reads(&m), vec![RegId::V(1)]);
        let writes = instr_writes(&m);
        assert!(writes.contains(&RegId::V(2)));
        assert!(writes.contains(&RegId::S(4)));
        assert!(writes.contains(&RegId::S(5)));
    }
}

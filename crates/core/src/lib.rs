//! # dfx-core — the DFX compute core
//!
//! The programmable core of the appliance (paper §V): control unit,
//! scheduler and scoreboard, register files with operand collection,
//! matrix processing unit (d × l MAC trees + SFU_M with masking, GELU
//! LUT and reduce-max), vector processing unit (d-wide FP16 ALU + SFU_V),
//! DMA-fed weight streaming and ring-router synchronisation.
//!
//! Two engines execute the same `dfx-isa` programs:
//!
//! - [`FunctionalCore`] — the bit-level data plane. Runs real FP16 math
//!   with MAC-tree reduction semantics on partitioned weights
//!   ([`CoreWeights`]) and the transpose-layout KV store. Used to
//!   validate the appliance against the `dfx-model` reference and for
//!   the accuracy experiments.
//! - [`TimingCore`] — the data-free cycle model. Places every instruction
//!   on its unit with scoreboard dependencies, issue-rate limits,
//!   accumulation hazards and `max(compute, stream)` DMA overlap. Used
//!   for every performance experiment.
//!
//! ```
//! use dfx_core::{CoreParams, TimingCore};
//! use dfx_isa::{ParallelConfig, ProgramBuilder};
//! use dfx_model::GptConfig;
//!
//! // Time one generation-stage token step of a 2-core cluster.
//! let builder = ProgramBuilder::new(GptConfig::tiny(), ParallelConfig::new(0, 2)).unwrap();
//! let engine = TimingCore::new(CoreParams::default(), 2);
//! let step = engine.time_step(&builder.token_step(8, true));
//! println!("{} µs", step.total.to_micros());
//! ```

#![warn(missing_docs)]

mod exec;
mod params;
mod scoreboard;
mod timing;
mod weights;

pub use exec::{CoreEvent, FunctionalCore};
pub use params::CoreParams;
pub use scoreboard::{instr_reads, instr_writes, RegId, Scoreboard, NUM_SREGS, NUM_VREGS};
pub use timing::{StepTiming, TimingCore, Unit};
pub use weights::{CoreLayerWeights, CoreWeights, HeadKv, KvStore};

//! Microarchitectural timing parameters of the DFX compute core.
//!
//! Published values (paper §V-C): FP16 multiplier 6 cycles / 1 DSP, FP16
//! adder 11 cycles / 2 DSPs, exponential 4 cycles / 2 DSPs; `d = 64`
//! MAC-tree fan-in, `l = 16` lanes; 200 MHz kernel clock. The remaining
//! constants (issue interval, per-instruction overheads) are calibration
//! knobs documented in DESIGN.md §5 — they are fitted once so the
//! simulator lands on the paper's per-token latencies and breakdown
//! shares, then held fixed for every experiment.

use dfx_hw::TileShape;
use serde::{Deserialize, Serialize};

/// Timing parameters of one core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreParams {
    /// Datapath geometry (d × l).
    pub shape: TileShape,
    /// FP16 multiplier pipeline latency (cycles).
    pub fp_mul_latency: u32,
    /// FP16 adder pipeline latency (cycles).
    pub fp_add_latency: u32,
    /// Exponential unit latency (cycles).
    pub exp_latency: u32,
    /// Reciprocal / reciprocal-sqrt DSP latency (cycles).
    pub recip_latency: u32,
    /// In-order issue interval: minimum cycles between consecutive
    /// instruction issues (scheduler + scoreboard + operand-collector
    /// microcode generation).
    pub issue_interval: u32,
    /// Fixed charge on every vector/scalar instruction (operand collector
    /// setup and writeback).
    pub vector_overhead: u32,
    /// Fixed charge on every matrix instruction in addition to the
    /// streaming/compute time (weight-buffer priming, first-tile fill).
    pub matrix_overhead: u32,
    /// Width of the vector processing unit's ALU (64 on DFX; independent
    /// of the MPU geometry — the Fig 8a sweep reshapes only the MPU).
    pub vpu_width: u32,
}

impl Default for CoreParams {
    fn default() -> Self {
        CoreParams {
            shape: TileShape::PAPER,
            fp_mul_latency: 6,
            fp_add_latency: 11,
            exp_latency: 4,
            recip_latency: 14,
            issue_interval: 40,
            vector_overhead: 36,
            matrix_overhead: 40,
            vpu_width: 64,
        }
    }
}

impl CoreParams {
    /// Parameters for a non-default geometry (Fig 8a sweep).
    pub fn with_shape(shape: TileShape) -> Self {
        CoreParams {
            shape,
            ..CoreParams::default()
        }
    }

    /// Depth of the MPU adder tree in stages.
    pub fn adder_tree_depth(&self) -> u32 {
        32 - (self.shape.d.max(2) - 1).leading_zeros()
    }

    /// Depth of the VPU/SFU_V adder tree in stages.
    pub fn vpu_tree_depth(&self) -> u32 {
        32 - (self.vpu_width.max(2) - 1).leading_zeros()
    }

    /// Pipeline fill of the matrix path: multiplier, adder tree, scalar
    /// bias add, SFU.
    pub fn matrix_pipeline_fill(&self) -> u32 {
        self.fp_mul_latency
            + self.fp_add_latency * self.adder_tree_depth()
            + self.fp_add_latency // bias / partial-sum add
            + 8 // SFU stage (mask / GELU LUT / vectorizer)
    }

    /// Sustained cycles to process `tiles` tiles: one tile issues per
    /// cycle (the MAC array consumes a full `d × l` tile per cycle when
    /// the HBM stream keeps up, §V-B). Partial-sum accumulation across
    /// row tiles is fully pipelined through the double-buffered
    /// accumulators (§V-D), so no stall term appears; edge padding is
    /// already charged through the `ceil` in tile counting, which is what
    /// produces the Fig 8a utilisation cliffs at d > 64 and l > 64.
    pub fn matrix_compute_cycles(&self, tiles: u64) -> u64 {
        tiles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_latencies_are_default() {
        let p = CoreParams::default();
        assert_eq!(p.fp_mul_latency, 6);
        assert_eq!(p.fp_add_latency, 11);
        assert_eq!(p.exp_latency, 4);
        assert_eq!(p.shape, TileShape::PAPER);
    }

    #[test]
    fn adder_tree_depth_is_log2_d() {
        assert_eq!(CoreParams::default().adder_tree_depth(), 6);
        assert_eq!(
            CoreParams::with_shape(TileShape { d: 8, l: 128 }).adder_tree_depth(),
            3
        );
    }

    #[test]
    fn compute_is_one_tile_per_cycle() {
        let p = CoreParams::default();
        assert_eq!(p.matrix_compute_cycles(2304), 2304);
    }

    #[test]
    fn padding_penalises_oversized_tiles() {
        // Fig 8a's utilisation cliffs come from tile padding: a 64x64
        // attention operand needs 2x the tiles (hence 2x the cycles and
        // streamed bytes) at d = 128 or l = 128.
        let paper = TileShape::PAPER.tile_count(64, 64);
        let wide = TileShape { d: 8, l: 128 }.tile_count(64, 64);
        let tall = TileShape { d: 128, l: 8 }.tile_count(64, 64);
        // paper: 1x4 tiles of 64x16; wide: 8x1 of 8x128 (half the lanes
        // idle); tall: 1x8 of 128x8 (half the tree idle).
        assert_eq!(paper, 4);
        assert_eq!(wide, 8);
        assert_eq!(tall, 8);
        let _ = CoreParams::default();
    }
}

//! Per-core weight partitions (paper Fig 6).
//!
//! The model partitioner slices the full GPT-2 parameter set for one
//! core: attention projections head-wise (contiguous column ranges, since
//! a head's columns are contiguous), FC/FFN matrices column-wise, and the
//! LM head by vocabulary range. LayerNorm parameters, embeddings and the
//! full-width FFN2 input rows are replicated on every core — exactly the
//! data the paper stores per-FPGA in DDR/HBM.

use dfx_isa::{KvKind, LnParam, ParallelConfig, TensorRef, WeightKind};
use dfx_model::{GptConfig, GptWeights, Matrix};
use dfx_num::F16;

/// One decoder layer's partition for a single core.
#[derive(Debug, Clone)]
pub struct CoreLayerWeights {
    /// Q projection slice, `(emb, part)`.
    pub w_q: Matrix<F16>,
    /// Q bias slice.
    pub b_q: Vec<F16>,
    /// K projection slice.
    pub w_k: Matrix<F16>,
    /// K bias slice.
    pub b_k: Vec<F16>,
    /// V projection slice.
    pub w_v: Matrix<F16>,
    /// V bias slice.
    pub b_v: Vec<F16>,
    /// Output projection slice, `(emb, part)`.
    pub w_attn_proj: Matrix<F16>,
    /// Output projection bias slice.
    pub b_attn_proj: Vec<F16>,
    /// FFN up slice, `(emb, ffn_part)`.
    pub w_ffn1: Matrix<F16>,
    /// FFN up bias slice.
    pub b_ffn1: Vec<F16>,
    /// FFN down slice, `(ffn, part)` — full rows, sliced columns.
    pub w_ffn2: Matrix<F16>,
    /// FFN down bias slice.
    pub b_ffn2: Vec<F16>,
    /// LayerNorm 1 γ (replicated).
    pub ln1_gamma: Vec<F16>,
    /// LayerNorm 1 β (replicated).
    pub ln1_beta: Vec<F16>,
    /// LayerNorm 2 γ (replicated).
    pub ln2_gamma: Vec<F16>,
    /// LayerNorm 2 β (replicated).
    pub ln2_beta: Vec<F16>,
}

/// All weights resident on one core.
#[derive(Debug, Clone)]
pub struct CoreWeights {
    /// Model configuration.
    pub cfg: GptConfig,
    /// This core's placement.
    pub par: ParallelConfig,
    /// Per-layer partitions.
    pub layers: Vec<CoreLayerWeights>,
    /// Full WTE (DDR-resident; used row-wise for embedding).
    pub wte: Matrix<F16>,
    /// Full WPE.
    pub wpe: Matrix<F16>,
    /// LM head slice: WTEᵀ columns for this core's vocabulary range,
    /// `(emb, vocab_part)`.
    pub lm_head: Matrix<F16>,
    /// First vocabulary id of this core's LM-head slice.
    pub vocab_offset: u32,
    /// Final LayerNorm γ.
    pub ln_f_gamma: Vec<F16>,
    /// Final LayerNorm β.
    pub ln_f_beta: Vec<F16>,
}

fn slice_vec(v: &[F16], start: usize, end: usize) -> Vec<F16> {
    v[start..end].to_vec()
}

impl CoreWeights {
    /// Partitions `weights` for the core at `par`.
    ///
    /// # Panics
    ///
    /// Panics if the model does not divide evenly over the cluster (use
    /// [`ParallelConfig::check`] first).
    pub fn partition(weights: &GptWeights<F16>, par: ParallelConfig) -> Self {
        let cfg = weights.config.clone();
        par.check(&cfg)
            .expect("model must divide across the cluster");
        let part = par.emb_part(&cfg);
        let ffn_part = par.ffn_part(&cfg);
        let c0 = par.core_id * part;
        let c1 = c0 + part;
        let f0 = par.core_id * ffn_part;
        let f1 = f0 + ffn_part;

        let layers = weights
            .layers
            .iter()
            .map(|lw| CoreLayerWeights {
                w_q: lw.w_q.col_slice(c0, c1),
                b_q: slice_vec(&lw.b_q, c0, c1),
                w_k: lw.w_k.col_slice(c0, c1),
                b_k: slice_vec(&lw.b_k, c0, c1),
                w_v: lw.w_v.col_slice(c0, c1),
                b_v: slice_vec(&lw.b_v, c0, c1),
                w_attn_proj: lw.w_attn_proj.col_slice(c0, c1),
                b_attn_proj: slice_vec(&lw.b_attn_proj, c0, c1),
                w_ffn1: lw.w_ffn1.col_slice(f0, f1),
                b_ffn1: slice_vec(&lw.b_ffn1, f0, f1),
                w_ffn2: lw.w_ffn2.col_slice(c0, c1),
                b_ffn2: slice_vec(&lw.b_ffn2, c0, c1),
                ln1_gamma: lw.ln1_gamma.clone(),
                ln1_beta: lw.ln1_beta.clone(),
                ln2_gamma: lw.ln2_gamma.clone(),
                ln2_beta: lw.ln2_beta.clone(),
            })
            .collect();

        let (v0, v1) = par.vocab_range(&cfg);
        // LM head = WTEᵀ: column v of the head is WTE row v.
        let emb = cfg.embedding_dim;
        let lm_head = Matrix::from_fn(emb, v1 - v0, |r, c| weights.wte[(v0 + c, r)]);

        CoreWeights {
            cfg,
            par,
            layers,
            wte: weights.wte.clone(),
            wpe: weights.wpe.clone(),
            lm_head,
            vocab_offset: v0 as u32,
            ln_f_gamma: weights.ln_f_gamma.clone(),
            ln_f_beta: weights.ln_f_beta.clone(),
        }
    }

    /// Resolves a weight reference to the matrix streamed by a matrix
    /// instruction (K/V cache references are resolved by the executor's
    /// KV store instead).
    ///
    /// # Panics
    ///
    /// Panics on K/V or non-weight references.
    pub fn weight_matrix(&self, tensor: TensorRef) -> &Matrix<F16> {
        match tensor {
            TensorRef::Weight { layer, kind } => {
                let l = &self.layers[layer as usize];
                match kind {
                    WeightKind::Query => &l.w_q,
                    WeightKind::Key => &l.w_k,
                    WeightKind::Value => &l.w_v,
                    WeightKind::AttnProj => &l.w_attn_proj,
                    WeightKind::Ffn1 => &l.w_ffn1,
                    WeightKind::Ffn2 => &l.w_ffn2,
                    WeightKind::LmHead => &self.lm_head,
                }
            }
            other => panic!("{other} is not a weight matrix"),
        }
    }

    /// Resolves a bias reference.
    ///
    /// # Panics
    ///
    /// Panics on non-bias references or the (bias-less) LM head.
    pub fn bias(&self, tensor: TensorRef) -> &[F16] {
        match tensor {
            TensorRef::Bias { layer, kind } => {
                let l = &self.layers[layer as usize];
                match kind {
                    WeightKind::Query => &l.b_q,
                    WeightKind::Key => &l.b_k,
                    WeightKind::Value => &l.b_v,
                    WeightKind::AttnProj => &l.b_attn_proj,
                    WeightKind::Ffn1 => &l.b_ffn1,
                    WeightKind::Ffn2 => &l.b_ffn2,
                    WeightKind::LmHead => panic!("the LM head has no bias"),
                }
            }
            other => panic!("{other} is not a bias"),
        }
    }

    /// Resolves a LayerNorm parameter vector.
    ///
    /// # Panics
    ///
    /// Panics on non-LayerNorm references.
    pub fn ln_param(&self, tensor: TensorRef) -> &[F16] {
        match tensor {
            TensorRef::Ln { layer, param } => match param {
                LnParam::Ln1Gamma => &self.layers[layer as usize].ln1_gamma,
                LnParam::Ln1Beta => &self.layers[layer as usize].ln1_beta,
                LnParam::Ln2Gamma => &self.layers[layer as usize].ln2_gamma,
                LnParam::Ln2Beta => &self.layers[layer as usize].ln2_beta,
                LnParam::LnFGamma => &self.ln_f_gamma,
                LnParam::LnFBeta => &self.ln_f_beta,
            },
            other => panic!("{other} is not a LayerNorm parameter"),
        }
    }
}

/// Growable per-head K/V cache with hardware layout: K row-major
/// (`t × dh`), V *transposed* (`dh × t`) as written by the DMA transpose
/// unit (paper §V-B), so the `Score × Value` read streams rows.
#[derive(Debug, Clone, Default)]
pub struct HeadKv {
    /// Keys: one row per cached token.
    pub keys: Vec<Vec<F16>>,
    /// Values, transposed: `values_t[c][j]` = `V[j][c]`.
    pub values_t: Vec<Vec<F16>>,
}

impl HeadKv {
    /// Creates an empty cache for `head_dim`-wide rows.
    pub fn new(head_dim: usize) -> Self {
        HeadKv {
            keys: Vec::new(),
            values_t: vec![Vec::new(); head_dim],
        }
    }

    /// Cached context length.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when no token has been cached.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Appends one K row.
    pub fn push_key(&mut self, row: &[F16]) {
        self.keys.push(row.to_vec());
    }

    /// Appends one V row through the transpose layout.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the head dimension.
    pub fn push_value(&mut self, row: &[F16]) {
        assert_eq!(row.len(), self.values_t.len(), "V row width mismatch");
        for (col, &x) in self.values_t.iter_mut().zip(row) {
            col.push(x);
        }
    }
}

/// The K/V store of one core: `[layer][local_head]`.
#[derive(Debug, Clone)]
pub struct KvStore {
    heads: Vec<Vec<HeadKv>>,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new(layers: usize, heads_per_core: usize, head_dim: usize) -> Self {
        KvStore {
            heads: (0..layers)
                .map(|_| (0..heads_per_core).map(|_| HeadKv::new(head_dim)).collect())
                .collect(),
        }
    }

    /// Borrow one head's cache.
    pub fn head(&self, layer: u16, head: u16) -> &HeadKv {
        &self.heads[layer as usize][head as usize]
    }

    /// Mutably borrow one head's cache.
    pub fn head_mut(&mut self, layer: u16, head: u16) -> &mut HeadKv {
        &mut self.heads[layer as usize][head as usize]
    }

    /// Context length (tokens cached so far).
    pub fn context_len(&self) -> usize {
        self.heads
            .first()
            .and_then(|l| l.first())
            .map_or(0, HeadKv::len)
    }

    /// Resolves a KV tensor reference for reading: returns the matrix the
    /// matrix unit streams — `Kᵀ` (`dh × t`) for keys, `V` as stored
    /// (`t × dh` mathematically, streamed from the transposed layout) for
    /// values.
    ///
    /// # Panics
    ///
    /// Panics on non-KV references.
    pub fn stream_matrix(&self, tensor: TensorRef) -> Matrix<F16> {
        match tensor {
            TensorRef::Kv { layer, head, kind } => {
                let hkv = self.head(layer, head);
                let t = hkv.len();
                match kind {
                    // MaskedMM computes q · Kᵀ: matrix (dh × t), element
                    // (r, c) = K[c][r].
                    KvKind::Key => {
                        let dh = hkv.keys.first().map_or(0, Vec::len);
                        Matrix::from_fn(dh, t, |r, c| hkv.keys[c][r])
                    }
                    // MM computes p · V: matrix (t × dh), element (r, c) =
                    // values_t[c][r].
                    KvKind::Value => {
                        let dh = hkv.values_t.len();
                        Matrix::from_fn(t, dh, |r, c| hkv.values_t[c][r])
                    }
                }
            }
            other => panic!("{other} is not a KV reference"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfx_model::Gpt2Model;

    fn weights16() -> GptWeights<F16> {
        GptWeights::synthetic(&GptConfig::tiny()).cast()
    }

    #[test]
    fn partitions_tile_the_full_matrices() {
        let w = weights16();
        let cfg = &w.config;
        let parts: Vec<CoreWeights> = (0..2)
            .map(|c| CoreWeights::partition(&w, ParallelConfig::new(c, 2)))
            .collect();
        // Column ranges reassemble w_q.
        for r in 0..cfg.embedding_dim {
            for c in 0..cfg.embedding_dim {
                let part = cfg.embedding_dim / 2;
                let got = parts[c / part].layers[0].w_q[(r, c % part)];
                assert_eq!(got.to_bits(), w.layers[0].w_q[(r, c)].to_bits());
            }
        }
    }

    #[test]
    fn ffn2_keeps_full_rows() {
        let w = weights16();
        let p = CoreWeights::partition(&w, ParallelConfig::new(0, 2));
        assert_eq!(p.layers[0].w_ffn2.rows(), w.config.ffn_dim);
        assert_eq!(p.layers[0].w_ffn2.cols(), w.config.embedding_dim / 2);
    }

    #[test]
    fn lm_head_is_wte_transposed_slice() {
        let w = weights16();
        let p = CoreWeights::partition(&w, ParallelConfig::new(1, 2));
        let (v0, _) = p.par.vocab_range(&p.cfg);
        assert_eq!(p.vocab_offset as usize, v0);
        for r in [0usize, 5, 63] {
            for c in [0usize, 3, 7] {
                assert_eq!(p.lm_head[(r, c)].to_bits(), w.wte[(v0 + c, r)].to_bits());
            }
        }
    }

    #[test]
    fn single_core_partition_is_identity() {
        let w = weights16();
        let p = CoreWeights::partition(&w, ParallelConfig::new(0, 1));
        assert_eq!(p.layers[0].w_q.shape(), w.layers[0].w_q.shape());
        assert_eq!(p.lm_head.cols(), w.config.vocab_size);
    }

    #[test]
    fn head_kv_transpose_roundtrip() {
        let mut kv = HeadKv::new(4);
        let row1: Vec<F16> = (0..4).map(|i| F16::from_f32(i as f32)).collect();
        let row2: Vec<F16> = (0..4).map(|i| F16::from_f32(10.0 + i as f32)).collect();
        kv.push_key(&row1);
        kv.push_value(&row1);
        kv.push_key(&row2);
        kv.push_value(&row2);
        assert_eq!(kv.len(), 2);
        // values_t[c][j] = V[j][c]
        assert_eq!(kv.values_t[3][1].to_f32(), 13.0);
    }

    #[test]
    fn kv_stream_matrices_have_hardware_shapes() {
        let mut store = KvStore::new(1, 1, 4);
        let r: Vec<F16> = (0..4).map(|i| F16::from_f32(i as f32)).collect();
        store.head_mut(0, 0).push_key(&r);
        store.head_mut(0, 0).push_value(&r);
        store.head_mut(0, 0).push_key(&r);
        store.head_mut(0, 0).push_value(&r);
        let kt = store.stream_matrix(TensorRef::Kv {
            layer: 0,
            head: 0,
            kind: KvKind::Key,
        });
        assert_eq!(kt.shape(), (4, 2)); // dh x t
        let v = store.stream_matrix(TensorRef::Kv {
            layer: 0,
            head: 0,
            kind: KvKind::Value,
        });
        assert_eq!(v.shape(), (2, 4)); // t x dh
        assert_eq!(v[(1, 2)].to_f32(), 2.0);
    }

    #[test]
    fn partitioned_lm_head_matches_reference_logits() {
        // Concatenating per-core logits equals the reference logits.
        let w32 = GptWeights::synthetic(&GptConfig::tiny());
        let w = w32.cast::<F16>();
        let model = Gpt2Model::new(w.clone());
        let hidden: Vec<F16> = (0..w.config.embedding_dim)
            .map(|i| F16::from_f32((i as f32 * 0.01).sin()))
            .collect();
        let reference = model.logits(&hidden);
        let mut stitched: Vec<F16> = Vec::new();
        for c in 0..2 {
            let p = CoreWeights::partition(&w, ParallelConfig::new(c, 2));
            stitched.extend(p.lm_head.vecmat(&hidden));
        }
        assert_eq!(stitched.len(), reference.len());
        for (a, b) in stitched.iter().zip(&reference) {
            assert_eq!(a.to_bits(), b.to_bits(), "logit mismatch");
        }
    }
}

//! The functional executor: runs DFX programs on real FP16 data.
//!
//! This is the bit-level model of the datapath: matrix instructions
//! execute tile-by-tile through `d`-input MAC trees (pairwise FP16
//! reduction), GELU goes through the 2048-entry lookup table, softmax and
//! LayerNorm run as the lowered vector/scalar sequences, and Values are
//! cached through the transpose layout. Router instructions suspend
//! execution and yield control to the cluster, which performs the
//! all-gather/argmax exchange and resumes each core — mirroring the
//! RX-buffer rendezvous of the hardware.

use crate::weights::{CoreWeights, KvStore};
use dfx_isa::{
    regs, DmaDir, EmbedTable, Instr, MatrixKind, Program, ReduceKind, ReduceMax, RouterInstr,
    RouterOp, SReg, ScalarOpKind, TensorRef, VReg, VSlice, VectorOpKind,
};
use dfx_model::Matrix;
use dfx_num::{reduce, SfuMath, F16};

/// Why the executor paused.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreEvent {
    /// An `AllGather` router instruction: the core contributes `partial`
    /// and waits for the gathered vector.
    AllGather {
        /// Index of the router instruction within the program.
        instr_index: usize,
        /// This core's partial vector.
        partial: Vec<F16>,
    },
    /// An `AllReduceArgMax` router instruction: the core contributes its
    /// (already globally indexed) argmax candidate.
    ArgMaxSync {
        /// Index of the router instruction within the program.
        instr_index: usize,
        /// Global vocabulary index of the local maximum.
        local_idx: u32,
        /// The local maximum logit.
        local_max: F16,
    },
    /// The program ran to completion.
    Done,
}

/// One core's functional state.
#[derive(Debug, Clone)]
pub struct FunctionalCore {
    weights: CoreWeights,
    kv: KvStore,
    vregs: Vec<Vec<F16>>,
    sregs: Vec<F16>,
    /// Integer side-channel for argmax indices (the hardware reduce-max
    /// unit carries the index as an integer payload, not as FP16 —
    /// vocabulary ids above 2048 are not exactly representable in half
    /// precision).
    sreg_idx: Vec<u32>,
    sfu: SfuMath,
    current_token: u32,
    out_token: Option<u32>,
}

impl FunctionalCore {
    /// Creates a core holding `weights`.
    pub fn new(weights: CoreWeights) -> Self {
        let kv = KvStore::new(
            weights.cfg.num_layers,
            weights.par.heads_per_core(&weights.cfg),
            weights.cfg.head_dim(),
        );
        FunctionalCore {
            weights,
            kv,
            vregs: vec![Vec::new(); crate::scoreboard::NUM_VREGS],
            sregs: vec![F16::ZERO; crate::scoreboard::NUM_SREGS],
            sreg_idx: vec![0; crate::scoreboard::NUM_SREGS],
            sfu: SfuMath::new(),
            current_token: 0,
            out_token: None,
        }
    }

    /// This core's weights.
    pub fn weights(&self) -> &CoreWeights {
        &self.weights
    }

    /// Current KV context length.
    pub fn context_len(&self) -> usize {
        self.kv.context_len()
    }

    /// Starts a token step: sets the input token and clears the output.
    pub fn begin_step(&mut self, token: u32) {
        self.current_token = token;
        self.out_token = None;
    }

    /// The token produced by the last LM-head step, if any.
    pub fn out_token(&self) -> Option<u32> {
        self.out_token
    }

    /// Reads a vector register (tests and cluster assertions).
    pub fn vreg(&self, reg: VReg) -> &[F16] {
        &self.vregs[reg.0 as usize]
    }

    /// Reads a scalar register.
    pub fn sreg(&self, reg: SReg) -> F16 {
        self.sregs[reg.0 as usize]
    }

    /// Executes `program` from instruction index `from` until a router
    /// instruction pauses it (returning the resume index and event) or it
    /// finishes.
    ///
    /// # Panics
    ///
    /// Panics on malformed programs (use [`Program::validate`] first) —
    /// the hardware would raise a fault the same way.
    pub fn run(&mut self, program: &Program, from: usize) -> (usize, CoreEvent) {
        let instrs = program.instrs();
        let mut i = from;
        while i < instrs.len() {
            match &instrs[i].instr {
                Instr::Router(r) => {
                    let event = self.router_event(i, r);
                    return (i, event);
                }
                other => self.execute(other, program),
            }
            i += 1;
        }
        (instrs.len(), CoreEvent::Done)
    }

    fn router_event(&self, instr_index: usize, r: &RouterInstr) -> CoreEvent {
        match r.op {
            RouterOp::AllGather => CoreEvent::AllGather {
                instr_index,
                partial: self.read_slice(r.src),
            },
            RouterOp::AllReduceArgMax => CoreEvent::ArgMaxSync {
                instr_index,
                local_idx: self.sreg_idx[r.idx.expect("argmax idx reg").0 as usize],
                local_max: self.sregs[r.max.expect("argmax max reg").0 as usize],
            },
        }
    }

    /// Completes a paused `AllGather` with the reordered full vector.
    ///
    /// # Panics
    ///
    /// Panics if `full` does not match the instruction's destination
    /// width.
    pub fn complete_allgather(&mut self, r: &RouterInstr, full: &[F16]) {
        assert_eq!(full.len(), r.dst.len as usize, "gathered vector width");
        self.write_slice(r.dst, full);
    }

    /// Completes a paused `AllReduceArgMax` with the global winner.
    pub fn complete_argmax(&mut self, r: &RouterInstr, global_idx: u32, global_max: F16) {
        self.sreg_idx[r.idx.expect("argmax idx reg").0 as usize] = global_idx;
        self.sregs[r.max.expect("argmax max reg").0 as usize] = global_max;
    }

    fn read_slice(&self, s: VSlice) -> Vec<F16> {
        let reg = &self.vregs[s.reg.0 as usize];
        let start = s.offset as usize;
        let end = start + s.len as usize;
        assert!(
            end <= reg.len(),
            "read of {}..{end} from {} holding {} elements",
            start,
            s.reg,
            reg.len()
        );
        reg[start..end].to_vec()
    }

    fn write_slice(&mut self, s: VSlice, data: &[F16]) {
        assert_eq!(data.len(), s.len as usize, "slice write width");
        let reg = &mut self.vregs[s.reg.0 as usize];
        let end = s.offset as usize + data.len();
        if reg.len() < end {
            reg.resize(end, F16::ZERO);
        }
        reg[s.offset as usize..end].copy_from_slice(data);
    }

    fn execute(&mut self, instr: &Instr, program: &Program) {
        match instr {
            Instr::Matrix(m) => self.exec_matrix(m),
            Instr::Vector(v) => self.exec_vector(v),
            Instr::Reduce(r) => self.exec_reduce(r),
            Instr::Scalar(s) => self.exec_scalar(s),
            Instr::Dma(d) => self.exec_dma(d, program),
            Instr::Router(_) => unreachable!("router instructions pause the executor"),
        }
    }

    /// Matrix-vector multiply through the MAC trees, tile-accurate:
    /// the input is consumed in `d`-row blocks, each block reduced by a
    /// pairwise tree, block partials accumulated in FP16.
    fn exec_matrix(&mut self, m: &dfx_isa::MatrixInstr) {
        let x = self.read_slice(m.src);
        // KV operands materialise a fresh stream view (they change every
        // step); weight matrices are borrowed in place.
        let kv_view;
        let w: &Matrix<F16> = match m.weight {
            TensorRef::Kv { .. } => {
                kv_view = self.kv.stream_matrix(m.weight);
                &kv_view
            }
            _ => self.weights.weight_matrix(m.weight),
        };
        assert_eq!(
            w.shape(),
            (m.rows as usize, m.cols as usize),
            "weight shape vs instruction geometry for {}",
            m.weight
        );
        let bias = m.bias.map(|b| self.weights.bias(b).to_vec());
        let d = 64usize; // MAC-tree fan-in (functional behaviour is d-block-wise)

        let mut out = vec![F16::ZERO; m.cols as usize];
        let mut wcol = [F16::ZERO; 64];
        for (c, o) in out.iter_mut().enumerate() {
            let mut acc = bias.as_ref().map_or(F16::ZERO, |b| b[c]);
            let mut r = 0usize;
            while r < x.len() {
                let end = (r + d).min(x.len());
                for (slot, i) in wcol.iter_mut().zip(r..end) {
                    *slot = w[(i, c)];
                }
                let partial = reduce::mac_tree(&x[r..end], &wcol[..end - r]);
                acc += partial;
                r = end;
            }
            *o = acc;
        }

        if let Some(scale) = m.scale {
            let s = F16::from_f32(scale);
            for o in &mut out {
                *o *= s;
            }
        }
        if m.kind == MatrixKind::MaskedMm {
            for o in out.iter_mut().skip(m.valid_cols as usize) {
                *o = F16::NEG_INFINITY;
            }
        }
        if m.gelu {
            for o in &mut out {
                *o = self.sfu.gelu(*o);
            }
        }
        match m.reduce_max {
            ReduceMax::None => {}
            ReduceMax::Max(sreg) => {
                let (_, max) = reduce::reduce_max(&out).expect("non-empty output");
                self.sregs[sreg.0 as usize] = max;
            }
            ReduceMax::ArgMax { idx, max } => {
                let (i, v) = reduce::reduce_max(&out).expect("non-empty output");
                // The index is globalised with the core's vocabulary
                // offset so single- and multi-core paths agree.
                self.sreg_idx[idx.0 as usize] = self.weights.vocab_offset + i as u32;
                self.sregs[idx.0 as usize] = F16::from_f64(i as f64);
                self.sregs[max.0 as usize] = v;
            }
        }
        self.write_slice(m.dst, &out);
    }

    fn exec_vector(&mut self, v: &dfx_isa::VectorInstr) {
        let len = v.len as usize;
        let a = self.read_slice(VSlice::full(v.a, v.len));
        let out: Vec<F16> = match v.op {
            VectorOpKind::Add | VectorOpKind::Sub | VectorOpKind::Mul => {
                let b = self.read_slice(VSlice::full(v.b.expect("vv operand"), v.len));
                a.iter()
                    .zip(&b)
                    .map(|(&x, &y)| match v.op {
                        VectorOpKind::Add => x + y,
                        VectorOpKind::Sub => x - y,
                        _ => x * y,
                    })
                    .collect()
            }
            VectorOpKind::AddScalar | VectorOpKind::SubScalar | VectorOpKind::MulScalar => {
                let s = self.sregs[v.s.expect("vs operand").0 as usize];
                a.iter()
                    .map(|&x| match v.op {
                        VectorOpKind::AddScalar => x + s,
                        VectorOpKind::SubScalar => x - s,
                        _ => x * s,
                    })
                    .collect()
            }
            VectorOpKind::Exp => a.iter().map(|&x| self.sfu.exp(x)).collect(),
            VectorOpKind::Copy => a.clone(),
        };
        debug_assert_eq!(out.len(), len);
        self.write_slice(VSlice::full(v.dst, v.len), &out);
    }

    /// Reduction through SFU_V: `d`-wide tree per chunk, chunks
    /// accumulated sequentially.
    fn exec_reduce(&mut self, r: &dfx_isa::ReduceInstr) {
        let v = self.read_slice(VSlice::full(r.v, r.len));
        let result = match r.kind {
            ReduceKind::Sum => v
                .chunks(64)
                .map(reduce::tree_sum)
                .fold(F16::ZERO, |acc, c| acc + c),
            ReduceKind::Max => reduce::reduce_max(&v).map_or(F16::NEG_INFINITY, |(_, m)| m),
        };
        self.sregs[r.dst.0 as usize] = result;
    }

    fn exec_scalar(&mut self, s: &dfx_isa::ScalarInstr) {
        let a = self.sregs[s.a.0 as usize];
        let b =
            s.b.map(|r| self.sregs[r.0 as usize])
                .or_else(|| s.imm.map(F16::from_f32));
        let out = match s.op {
            ScalarOpKind::Add => a + b.expect("add operand"),
            ScalarOpKind::Mul => a * b.expect("mul operand"),
            ScalarOpKind::Recip => self.sfu.recip(a),
            ScalarOpKind::RecipSqrt => self.sfu.recip_sqrt(a),
        };
        self.sregs[s.dst.0 as usize] = out;
    }

    fn exec_dma(&mut self, d: &dfx_isa::DmaInstr, program: &Program) {
        match (d.dir, d.tensor) {
            (DmaDir::Load, TensorRef::TokenIo) => {
                // The controller already latched `current_token` via
                // `begin_step`; nothing to model functionally.
            }
            (DmaDir::Store, TensorRef::TokenIo) => {
                self.out_token = Some(self.sreg_idx[regs::S_ARGMAX.0 as usize]);
            }
            (DmaDir::Load, TensorRef::Embed { table }) => {
                let row = match table {
                    EmbedTable::Wte => self.weights.wte.row(self.current_token as usize).to_vec(),
                    EmbedTable::Wpe => self.weights.wpe.row(d.row as usize).to_vec(),
                };
                let slice = d.reg.expect("embedding load destination");
                self.write_slice(slice, &row);
            }
            (DmaDir::Load, TensorRef::Ln { .. }) => {
                let row = self.weights.ln_param(d.tensor).to_vec();
                let slice = d.reg.expect("ln load destination");
                self.write_slice(slice, &row);
            }
            (DmaDir::Load, TensorRef::Bias { .. }) => {
                // Biases stream into the DMA bias buffer; the matrix
                // instruction reads them directly in this model.
            }
            (DmaDir::Store, TensorRef::Kv { layer, head, kind }) => {
                let row = self.read_slice(d.reg.expect("kv store source"));
                let hkv = self.kv.head_mut(layer, head);
                match kind {
                    dfx_isa::KvKind::Key => {
                        assert!(!d.transpose, "K rows are stored untransposed");
                        hkv.push_key(&row);
                    }
                    dfx_isa::KvKind::Value => {
                        assert!(d.transpose, "V rows go through the transpose unit");
                        hkv.push_value(&row);
                    }
                }
                // Each store must land at the row for this step.
                debug_assert_eq!(d.row, program.meta.token_pos);
            }
            (dir, tensor) => panic!("unsupported DMA {dir:?} of {tensor}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfx_isa::{ParallelConfig, ProgramBuilder};
    use dfx_model::{GptConfig, GptWeights};

    fn single_core() -> (FunctionalCore, ProgramBuilder) {
        let cfg = GptConfig::tiny();
        let w = GptWeights::synthetic(&cfg).cast::<F16>();
        let par = ParallelConfig::new(0, 1);
        let core = FunctionalCore::new(CoreWeights::partition(&w, par));
        let builder = ProgramBuilder::new(cfg, par).unwrap();
        (core, builder)
    }

    #[test]
    fn single_core_step_runs_to_done_and_emits_a_token() {
        let (mut core, builder) = single_core();
        let p = builder.token_step(0, true);
        core.begin_step(42);
        let (end, ev) = core.run(&p, 0);
        assert_eq!(ev, CoreEvent::Done);
        assert_eq!(end, p.len());
        assert!(core.out_token().is_some());
        assert_eq!(core.context_len(), 1, "one token cached");
    }

    #[test]
    fn step_without_lm_head_produces_no_token() {
        let (mut core, builder) = single_core();
        let p = builder.token_step(0, false);
        core.begin_step(7);
        let (_, ev) = core.run(&p, 0);
        assert_eq!(ev, CoreEvent::Done);
        assert!(core.out_token().is_none());
    }

    #[test]
    fn kv_cache_grows_per_step_and_context_matches() {
        let (mut core, builder) = single_core();
        for pos in 0..3 {
            let p = builder.token_step(pos, false);
            core.begin_step(pos as u32 + 1);
            let (_, ev) = core.run(&p, 0);
            assert_eq!(ev, CoreEvent::Done);
        }
        assert_eq!(core.context_len(), 3);
    }

    #[test]
    fn functional_step_matches_reference_model_hidden_state() {
        // One full token step vs the f32 reference narrowed to F16: the
        // residual register after the step should be close to the
        // reference's pre-ln_f hidden state.
        let cfg = GptConfig::tiny();
        let w32 = GptWeights::synthetic(&cfg);
        let w16 = w32.cast::<F16>();
        let reference = dfx_model::Gpt2Model::new(w16.clone());
        let mut cache = dfx_model::KvCache::new(cfg.num_layers);
        let ref_hidden = reference.forward_token(11, 0, &mut cache);

        let par = ParallelConfig::new(0, 1);
        let mut core = FunctionalCore::new(CoreWeights::partition(&w16, par));
        let builder = ProgramBuilder::new(cfg, par).unwrap();
        let p = builder.token_step(0, true);
        core.begin_step(11);
        let (_, ev) = core.run(&p, 0);
        assert_eq!(ev, CoreEvent::Done);

        let got = core.vreg(regs::LM_HIDDEN);
        assert_eq!(got.len(), ref_hidden.len());
        let mut max_err = 0f64;
        for (a, b) in got.iter().zip(&ref_hidden) {
            max_err = max_err.max((a.to_f64() - b.to_f64()).abs());
        }
        // Tree-vs-sequential accumulation and LUT GELU differ slightly.
        assert!(max_err < 0.05, "max |Δhidden| = {max_err}");
    }

    #[test]
    fn two_core_execution_pauses_at_allgather_with_matching_indices() {
        let cfg = GptConfig::tiny();
        let w = GptWeights::synthetic(&cfg).cast::<F16>();
        let mut cores: Vec<FunctionalCore> = (0..2)
            .map(|c| FunctionalCore::new(CoreWeights::partition(&w, ParallelConfig::new(c, 2))))
            .collect();
        let builders: Vec<ProgramBuilder> = (0..2)
            .map(|c| ProgramBuilder::new(cfg.clone(), ParallelConfig::new(c, 2)).unwrap())
            .collect();
        let programs: Vec<Program> = builders.iter().map(|b| b.token_step(0, false)).collect();

        let mut events = Vec::new();
        for (core, p) in cores.iter_mut().zip(&programs) {
            core.begin_step(5);
            events.push(core.run(p, 0));
        }
        let (i0, e0) = &events[0];
        let (i1, _e1) = &events[1];
        assert_eq!(i0, i1, "homogeneous cores pause at the same instruction");
        assert!(matches!(e0, CoreEvent::AllGather { .. }));
    }

    #[test]
    #[should_panic(expected = "read of")]
    fn reading_unwritten_register_slice_panics() {
        let (core, _) = single_core();
        // v5 has never been written; a 16-wide read must fault.
        let _ = core.read_slice(VSlice::full(VReg(5), 16));
    }
}

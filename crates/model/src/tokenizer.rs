//! A synthetic word-level tokenizer.
//!
//! The real GPT-2 BPE vocabulary is proprietary-adjacent data we do not
//! ship; examples only need a deterministic, invertible mapping between
//! words and token ids so generated ids can be rendered as text. Ids below
//! the base word list decode to common English words; higher ids decode to
//! synthetic `w<id>` forms.

use std::collections::HashMap;

/// Common words used for the low end of the vocabulary.
const BASE_WORDS: &[&str] = &[
    "the",
    "of",
    "and",
    "a",
    "to",
    "in",
    "is",
    "you",
    "that",
    "it",
    "he",
    "was",
    "for",
    "on",
    "are",
    "as",
    "with",
    "his",
    "they",
    "i",
    "at",
    "be",
    "this",
    "have",
    "from",
    "or",
    "one",
    "had",
    "by",
    "word",
    "but",
    "not",
    "what",
    "all",
    "were",
    "we",
    "when",
    "your",
    "can",
    "said",
    "there",
    "use",
    "an",
    "each",
    "which",
    "she",
    "do",
    "how",
    "their",
    "if",
    "will",
    "up",
    "other",
    "about",
    "out",
    "many",
    "then",
    "them",
    "these",
    "so",
    "some",
    "her",
    "would",
    "make",
    "like",
    "him",
    "into",
    "time",
    "has",
    "look",
    "two",
    "more",
    "write",
    "go",
    "see",
    "number",
    "no",
    "way",
    "could",
    "people",
    "my",
    "than",
    "first",
    "water",
    "been",
    "call",
    "who",
    "oil",
    "its",
    "now",
    "find",
    "long",
    "down",
    "day",
    "did",
    "get",
    "come",
    "made",
    "may",
    "part",
    "over",
    "new",
    "sound",
    "take",
    "only",
    "little",
    "work",
    "know",
    "place",
    "year",
    "live",
    "me",
    "back",
    "give",
    "most",
    "very",
    "after",
    "thing",
    "our",
    "just",
    "name",
    "good",
    "sentence",
    "man",
    "think",
    "say",
    "great",
    "where",
    "help",
    "through",
    "much",
    "before",
    "line",
    "right",
    "too",
    "mean",
    "old",
    "any",
    "same",
    "tell",
    "boy",
    "follow",
    "came",
    "want",
    "show",
    "also",
    "around",
    "form",
    "three",
    "small",
    "set",
    "put",
    "end",
    "does",
    "another",
    "well",
    "large",
    "must",
    "big",
    "even",
    "such",
    "because",
    "turn",
    "here",
    "why",
    "ask",
    "went",
    "men",
    "read",
    "need",
    "land",
    "different",
    "home",
    "us",
    "move",
    "try",
    "kind",
    "hand",
    "picture",
    "again",
    "change",
    "off",
    "play",
    "spell",
    "air",
    "away",
    "animal",
    "house",
    "point",
    "page",
    "letter",
    "mother",
    "answer",
    "found",
    "study",
    "still",
    "learn",
    "should",
    "america",
    "world",
    "hello",
    "james",
    "smith",
    "chat",
    "model",
    "token",
];

/// A deterministic word-level tokenizer over a fixed-size vocabulary.
///
/// # Examples
///
/// ```
/// use dfx_model::Tokenizer;
///
/// let tok = Tokenizer::new(512);
/// let ids = tok.encode("hello world");
/// assert_eq!(tok.decode(&ids), "hello world");
/// ```
#[derive(Debug, Clone)]
pub struct Tokenizer {
    vocab_size: usize,
    word_to_id: HashMap<String, u32>,
}

impl Tokenizer {
    /// Creates a tokenizer for a vocabulary of `vocab_size` ids.
    ///
    /// # Panics
    ///
    /// Panics if `vocab_size` is zero.
    pub fn new(vocab_size: usize) -> Self {
        assert!(vocab_size > 0, "vocabulary must be non-empty");
        let word_to_id = BASE_WORDS
            .iter()
            .take(vocab_size)
            .enumerate()
            .map(|(i, w)| ((*w).to_owned(), i as u32))
            .collect();
        Tokenizer {
            vocab_size,
            word_to_id,
        }
    }

    /// The vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Encodes whitespace-separated words. Unknown words map
    /// deterministically into the upper vocabulary range via FNV-1a.
    pub fn encode(&self, text: &str) -> Vec<u32> {
        text.split_whitespace()
            .map(|w| {
                let lower = w.to_lowercase();
                if let Some(&id) = self.word_to_id.get(&lower) {
                    return id;
                }
                // Synthetic `w<id>` forms decode from their embedded id.
                if let Some(rest) = lower.strip_prefix('w') {
                    if let Ok(id) = rest.parse::<u32>() {
                        if (id as usize) < self.vocab_size {
                            return id;
                        }
                    }
                }
                self.fallback_id(&lower)
            })
            .collect()
    }

    /// Decodes ids to a space-separated string.
    pub fn decode(&self, ids: &[u32]) -> String {
        ids.iter()
            .map(|&id| self.word(id))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// The word for a single id.
    pub fn word(&self, id: u32) -> String {
        let idx = id as usize;
        if idx < BASE_WORDS.len().min(self.vocab_size) {
            BASE_WORDS[idx].to_owned()
        } else {
            format!("w{id}")
        }
    }

    fn fallback_id(&self, word: &str) -> u32 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in word.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let base = BASE_WORDS.len().min(self.vocab_size);
        if base == self.vocab_size {
            (hash % self.vocab_size as u64) as u32
        } else {
            (base as u64 + hash % (self.vocab_size - base) as u64) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_words_roundtrip() {
        let tok = Tokenizer::new(512);
        let ids = tok.encode("hello my name is james");
        assert_eq!(tok.decode(&ids), "hello my name is james");
    }

    #[test]
    fn ids_stay_in_vocabulary() {
        let tok = Tokenizer::new(64);
        let ids = tok.encode("supercalifragilistic quantum chromodynamics");
        assert!(ids.iter().all(|&id| (id as usize) < 64));
    }

    #[test]
    fn unknown_words_encode_deterministically() {
        let tok = Tokenizer::new(512);
        assert_eq!(tok.encode("zyzzyva"), tok.encode("zyzzyva"));
    }

    #[test]
    fn synthetic_ids_roundtrip() {
        let tok = Tokenizer::new(512);
        let text = tok.decode(&[300, 400, 501]);
        assert_eq!(text, "w300 w400 w501");
        assert_eq!(tok.encode(&text), vec![300, 400, 501]);
    }

    #[test]
    fn case_insensitive_encoding() {
        let tok = Tokenizer::new(512);
        assert_eq!(tok.encode("Hello THE World"), tok.encode("hello the world"));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_vocab_rejected() {
        let _ = Tokenizer::new(0);
    }
}

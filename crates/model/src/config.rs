//! GPT-2 model configurations (paper Table I) and workload descriptors.

use serde::{Deserialize, Serialize};

/// Hyperparameters of a GPT-2-family decoder-only model.
///
/// The three published presets mirror Table I of the paper; the 1.5B
/// configuration uses 24 attention heads (the paper adjusts OpenAI's 25 to
/// 24 so the model parallelises evenly across devices).
///
/// # Examples
///
/// ```
/// use dfx_model::GptConfig;
///
/// let cfg = GptConfig::gpt2_1_5b();
/// assert_eq!(cfg.embedding_dim, 1536);
/// assert_eq!(cfg.head_dim(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GptConfig {
    /// Human-readable name, e.g. `"gpt2-1.5b"`.
    pub name: String,
    /// Embedding dimension (`emb` in the paper).
    pub embedding_dim: usize,
    /// Number of attention heads (`H`).
    pub num_heads: usize,
    /// Number of decoder layers (`N`).
    pub num_layers: usize,
    /// Feed-forward hidden dimension (4 × `emb` for GPT-2).
    pub ffn_dim: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Maximum sequence length supported by the position embedding.
    pub max_seq_len: usize,
    /// Seed for deterministic synthetic weight generation.
    pub seed: u64,
}

impl GptConfig {
    /// Builds a custom configuration.
    ///
    /// # Panics
    ///
    /// Panics if `embedding_dim` is not divisible by `num_heads`.
    pub fn new(
        name: impl Into<String>,
        embedding_dim: usize,
        num_heads: usize,
        num_layers: usize,
        vocab_size: usize,
        max_seq_len: usize,
    ) -> Self {
        assert!(
            num_heads > 0 && embedding_dim % num_heads == 0,
            "embedding_dim {embedding_dim} must be divisible by num_heads {num_heads}"
        );
        GptConfig {
            name: name.into(),
            embedding_dim,
            num_heads,
            num_layers,
            ffn_dim: embedding_dim * 4,
            vocab_size,
            max_seq_len,
            seed: 0xD0F5_0001,
        }
    }

    /// GPT-2 345M (Megatron-LM release): emb 1024, 16 heads, 24 layers.
    pub fn gpt2_345m() -> Self {
        GptConfig::new("gpt2-345m", 1024, 16, 24, 50257, 1024)
    }

    /// GPT-2 774M (OpenAI): emb 1280, 20 heads, 36 layers.
    pub fn gpt2_774m() -> Self {
        GptConfig::new("gpt2-774m", 1280, 20, 36, 50257, 1024)
    }

    /// GPT-2 1.5B (OpenAI, heads adjusted 25 → 24 as in the paper):
    /// emb 1536*, 24 heads, 48 layers.
    ///
    /// *The paper's Table I lists 1536 with head dimension 64; OpenAI's
    /// original 1.5B uses 1600/25 which does not split evenly across 4
    /// devices.
    pub fn gpt2_1_5b() -> Self {
        GptConfig::new("gpt2-1.5b", 1536, 24, 48, 50257, 1024)
    }

    /// GPT-3 6.7B (Brown et al.): emb 4096, 32 heads, 32 layers. The
    /// paper argues its GPT-2 acceleration strategies carry over to
    /// GPT-3 (§II-A); this preset supports that projection.
    pub fn gpt3_6_7b() -> Self {
        let mut cfg = GptConfig::new("gpt3-6.7b", 4096, 32, 32, 50257, 2048);
        cfg.seed = 0xD0F5_0003;
        cfg
    }

    /// GPT-3 13B (heads-aligned variant: emb 5120, 40 heads, 40 layers).
    pub fn gpt3_13b() -> Self {
        let mut cfg = GptConfig::new("gpt3-13b", 5120, 40, 40, 50257, 2048);
        cfg.seed = 0xD0F5_0004;
        cfg
    }

    /// A tiny configuration for functional tests: emb 64, 2 heads,
    /// 2 layers, 512-word vocabulary.
    pub fn tiny() -> Self {
        GptConfig::new("gpt2-tiny", 64, 2, 2, 512, 128)
    }

    /// A small configuration exercising multi-tile paths (emb 192 spans
    /// three 64-wide tiles): 3 heads, 3 layers.
    pub fn small() -> Self {
        GptConfig::new("gpt2-small-test", 192, 3, 3, 512, 128)
    }

    /// Dimension of one attention head.
    #[inline]
    pub fn head_dim(&self) -> usize {
        self.embedding_dim / self.num_heads
    }

    /// Total parameter count (embeddings + decoder stack + final norm),
    /// matching the standard GPT-2 accounting.
    pub fn num_parameters(&self) -> u64 {
        let e = self.embedding_dim as u64;
        let f = self.ffn_dim as u64;
        let v = self.vocab_size as u64;
        let s = self.max_seq_len as u64;
        let per_layer = 3 * (e * e + e) // Q, K, V projections
            + (e * e + e)               // attention output projection
            + (e * f + f)               // FFN up
            + (f * e + e)               // FFN down
            + 4 * e; // two layer norms (gamma + beta)
        v * e + s * e + per_layer * self.num_layers as u64 + 2 * e
    }

    /// Bytes of FP16 weights streamed per generated token (the decoder
    /// stack only — embeddings live in DDR and are indexed, not streamed).
    pub fn decoder_weight_bytes(&self) -> u64 {
        let e = self.embedding_dim as u64;
        let f = self.ffn_dim as u64;
        let per_layer = 3 * e * e + e * e + e * f + f * e;
        2 * per_layer * self.num_layers as u64
    }
}

/// A text-generation workload: `input_len` context tokens summarised, then
/// `output_len` tokens generated (paper notation `[input:output]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Workload {
    /// Number of input (context) tokens.
    pub input_len: usize,
    /// Number of output (generated) tokens.
    pub output_len: usize,
}

impl Workload {
    /// Creates a workload.
    pub const fn new(input_len: usize, output_len: usize) -> Self {
        Workload {
            input_len,
            output_len,
        }
    }

    /// The 15-point grid of Figure 14/16: inputs {32, 64, 128} ×
    /// outputs {1, 4, 16, 64, 256}.
    pub fn paper_grid() -> Vec<Workload> {
        let mut grid = Vec::new();
        for input in [32, 64, 128] {
            for output in [1, 4, 16, 64, 256] {
                grid.push(Workload::new(input, output));
            }
        }
        grid
    }

    /// The sweep of Figure 3: growing inputs `[128:1]`…`[32:1]`, then
    /// growing outputs `[32:2]`…`[32:4]`.
    pub fn fig3_sweep() -> Vec<Workload> {
        vec![
            Workload::new(128, 1),
            Workload::new(96, 1),
            Workload::new(64, 1),
            Workload::new(32, 1),
            Workload::new(32, 2),
            Workload::new(32, 3),
            Workload::new(32, 4),
        ]
    }

    /// The chatbot-representative 64:64 point used by Table II and Fig 17/18.
    pub const fn chatbot() -> Self {
        Workload::new(64, 64)
    }

    /// Total decoder invocations (token steps) this workload performs.
    pub fn total_steps(&self) -> usize {
        self.input_len + self.output_len
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}:{}]", self.input_len, self.output_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_configurations() {
        // Paper Table I.
        let m345 = GptConfig::gpt2_345m();
        assert_eq!(
            (
                m345.embedding_dim,
                m345.num_heads,
                m345.head_dim(),
                m345.num_layers
            ),
            (1024, 16, 64, 24)
        );
        let m774 = GptConfig::gpt2_774m();
        assert_eq!(
            (
                m774.embedding_dim,
                m774.num_heads,
                m774.head_dim(),
                m774.num_layers
            ),
            (1280, 20, 64, 36)
        );
        let m15 = GptConfig::gpt2_1_5b();
        assert_eq!(
            (
                m15.embedding_dim,
                m15.num_heads,
                m15.head_dim(),
                m15.num_layers
            ),
            (1536, 24, 64, 48)
        );
    }

    #[test]
    fn parameter_counts_are_in_the_advertised_ballpark() {
        // Decoder-stack-dominated counts should land near the model names.
        let close = |got: u64, want: f64| {
            let got = got as f64;
            (got - want).abs() / want < 0.25
        };
        assert!(
            close(GptConfig::gpt2_345m().num_parameters(), 345e6),
            "345M count: {}",
            GptConfig::gpt2_345m().num_parameters()
        );
        assert!(
            close(GptConfig::gpt2_774m().num_parameters(), 774e6),
            "774M count: {}",
            GptConfig::gpt2_774m().num_parameters()
        );
        assert!(
            close(GptConfig::gpt2_1_5b().num_parameters(), 1.5e9),
            "1.5B count: {}",
            GptConfig::gpt2_1_5b().num_parameters()
        );
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn heads_must_divide_embedding() {
        let _ = GptConfig::new("bad", 100, 3, 1, 10, 10);
    }

    #[test]
    fn paper_grid_has_15_workloads() {
        let grid = Workload::paper_grid();
        assert_eq!(grid.len(), 15);
        assert!(grid.contains(&Workload::new(32, 256)));
        assert_eq!(Workload::new(64, 64).to_string(), "[64:64]");
    }

    #[test]
    fn decoder_weight_bytes_match_param_accounting() {
        let cfg = GptConfig::gpt2_1_5b();
        // 12 * emb^2 per layer (QKV 3, proj 1, FFN 8), FP16.
        let expected = 12 * 1536u64 * 1536 * 48 * 2;
        assert_eq!(cfg.decoder_weight_bytes(), expected);
    }
}

//! # dfx-model — GPT-2 reference for the DFX simulator
//!
//! Model configurations matching the paper's Table I, deterministic
//! synthetic weights, a precision-generic reference implementation of
//! GPT-2 inference (summarization + generation with a KV cache, exactly
//! the token-by-token dataflow the DFX appliance executes), FLOP
//! accounting for the evaluation figures, and a synthetic tokenizer for
//! the examples.
//!
//! ```
//! use dfx_model::{Gpt2Model, GptConfig, GptWeights};
//!
//! let cfg = GptConfig::tiny();
//! let model = Gpt2Model::new(GptWeights::synthetic(&cfg));
//! let out = model.generate(&[1, 2, 3], 5);
//! assert_eq!(out.tokens.len(), 5);
//! ```

#![warn(missing_docs)]

mod config;
pub mod flops;
mod gpt2;
mod tensor;
mod tokenizer;
mod weights;

pub use config::{GptConfig, Workload};
pub use gpt2::{argmax, layer_norm, softmax, GenerationOutput, Gpt2Model, KvCache, LAYER_NORM_EPS};
pub use tensor::{dot, vec_add, vec_sub, Matrix};
pub use tokenizer::Tokenizer;
pub use weights::{GptWeights, LayerWeights};

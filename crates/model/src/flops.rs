//! Floating-point operation accounting for GPT-2 inference.
//!
//! Used by the GFLOPS comparison (paper Fig 17), the op-count breakdown
//! (Fig 4, right bar) and the analytic baselines. Multiply-accumulate
//! counts as two FLOPs, the usual convention.

use crate::config::{GptConfig, Workload};
use serde::{Deserialize, Serialize};

/// FLOPs attributed to each paper op class (Fig 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OpClassFlops {
    /// Layer normalisation (both per-layer norms and `ln_f`).
    pub layer_norm: f64,
    /// Self-attention: QKV projections, score/context matmuls, output
    /// projection, softmax.
    pub self_attention: f64,
    /// Residual additions.
    pub residual: f64,
    /// Feed-forward network (both projections and GELU).
    pub ffn: f64,
}

impl OpClassFlops {
    /// Total FLOPs across all classes.
    pub fn total(&self) -> f64 {
        self.layer_norm + self.self_attention + self.residual + self.ffn
    }

    /// Percentage share of each class, in Fig 4 order
    /// (LayerNorm, Self-Attention, Residual, FFN).
    pub fn shares_percent(&self) -> [f64; 4] {
        let t = self.total();
        [
            100.0 * self.layer_norm / t,
            100.0 * self.self_attention / t,
            100.0 * self.residual / t,
            100.0 * self.ffn / t,
        ]
    }
}

/// FLOPs for one decoder-stack pass over a single token with `context_len`
/// cached positions (including the current token), broken down by class.
pub fn token_step_flops(cfg: &GptConfig, context_len: usize) -> OpClassFlops {
    let e = cfg.embedding_dim as f64;
    let f = cfg.ffn_dim as f64;
    let t = context_len as f64;
    let n = cfg.num_layers as f64;

    // Per layer:
    // QKV projections: 3 GEMVs of (e × e), 2 FLOPs per MAC.
    let qkv = 3.0 * 2.0 * e * e;
    // Attention score (q·Kᵀ) and context (p·V): per head 2·t·dh each.
    let attn_mm = 2.0 * 2.0 * t * e;
    // Softmax: ~5 ops per score element.
    let softmax = 5.0 * t * cfg.num_heads as f64;
    // Output projection.
    let proj = 2.0 * e * e;
    // FFN: up (e×4e) + GELU (~8 ops/elem) + down (4e×e).
    let ffn = 2.0 * e * f + 8.0 * f + 2.0 * f * e;
    // Two LayerNorms: ~8 ops per element each.
    let ln = 2.0 * 8.0 * e;
    // Two residual adds.
    let residual = 2.0 * e;

    OpClassFlops {
        layer_norm: n * ln + 8.0 * e, // + final ln_f
        self_attention: n * (qkv + attn_mm + softmax + proj),
        residual: n * residual,
        ffn: n * ffn,
    }
}

/// FLOPs of the LM head (hidden · WTEᵀ).
pub fn lm_head_flops(cfg: &GptConfig) -> f64 {
    2.0 * cfg.embedding_dim as f64 * cfg.vocab_size as f64
}

/// FLOPs per stage of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageFlops {
    /// Summarization stage: all context tokens plus the first output token
    /// selection.
    pub summarization: f64,
    /// Generation stage: the remaining `output_len - 1` iterations.
    pub generation: f64,
}

impl StageFlops {
    /// Total across both stages.
    pub fn total(&self) -> f64 {
        self.summarization + self.generation
    }
}

/// Stage-level FLOPs for a workload (decoder stack + LM head per generated
/// token).
///
/// Convention (matching the paper's Fig 1): the summarization stage
/// processes the `input_len` context tokens and emits the first output
/// token; each generation iteration processes one token.
pub fn workload_flops(cfg: &GptConfig, workload: Workload) -> StageFlops {
    let mut summarization = 0.0;
    for pos in 0..workload.input_len {
        summarization += token_step_flops(cfg, pos + 1).total();
    }
    summarization += lm_head_flops(cfg);

    let mut generation = 0.0;
    for out in 1..workload.output_len {
        let ctx = workload.input_len + out;
        generation += token_step_flops(cfg, ctx).total() + lm_head_flops(cfg);
    }
    StageFlops {
        summarization,
        generation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_class_shares_match_fig4_right_bar() {
        // Paper Fig 4 (number of operations): LN 0.1%, SA 33.31%,
        // Residual 0.01%, FFN 66.59% for the 1.5B model in generation.
        let cfg = GptConfig::gpt2_1_5b();
        let fl = token_step_flops(&cfg, 64);
        let [ln, sa, res, ffn] = fl.shares_percent();
        assert!(ln < 0.5, "LN share {ln}%");
        assert!((sa - 33.3).abs() < 3.0, "SA share {sa}%");
        assert!(res < 0.1, "residual share {res}%");
        assert!((ffn - 66.6).abs() < 3.0, "FFN share {ffn}%");
    }

    #[test]
    fn flops_scale_with_model_size() {
        let small = token_step_flops(&GptConfig::gpt2_345m(), 32).total();
        let big = token_step_flops(&GptConfig::gpt2_1_5b(), 32).total();
        // ~2 × params per token: 1.5B/345M ≈ 4.2.
        let ratio = big / small;
        assert!(ratio > 3.5 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn token_flops_approximate_two_times_decoder_params() {
        let cfg = GptConfig::gpt2_1_5b();
        let fl = token_step_flops(&cfg, 1).total();
        let two_p = (cfg.decoder_weight_bytes() / 2) as f64 * 2.0;
        assert!((fl - two_p).abs() / two_p < 0.05, "fl {fl} vs 2P {two_p}");
    }

    #[test]
    fn workload_flops_split_between_stages() {
        let cfg = GptConfig::gpt2_345m();
        let w = Workload::new(64, 64);
        let st = workload_flops(&cfg, w);
        assert!(st.summarization > 0.0 && st.generation > 0.0);
        // 64 summarization steps vs 63 generation steps at slightly longer
        // context: stages should be within 10% of each other.
        let ratio = st.summarization / st.generation;
        assert!(ratio > 0.85 && ratio < 1.15, "ratio {ratio}");
    }

    #[test]
    fn generation_flops_zero_for_single_output() {
        let cfg = GptConfig::tiny();
        let st = workload_flops(&cfg, Workload::new(8, 1));
        assert_eq!(st.generation, 0.0);
        assert!(st.summarization > 0.0);
    }
}

//! A deliberately small dense-matrix library.
//!
//! The reference GPT-2 needs only row-major 2-D matrices and vectors of a
//! [`Scalar`] type. The matrix-vector product is implemented with a plain
//! sequential accumulator — the conventional CPU/GPU semantics the paper's
//! baseline uses — whereas the DFX functional executor in `dfx-core`
//! re-implements the same math with adder-tree semantics on tiles.

use dfx_num::Scalar;
use serde::{Deserialize, Serialize};

/// A row-major dense matrix.
///
/// # Examples
///
/// ```
/// use dfx_model::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0f32, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m.shape(), (2, 2));
/// assert_eq!(m[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<T>]) -> Self {
        let n_cols = rows.first().map_or(0, Vec::len);
        assert!(
            rows.iter().all(|r| r.len() == n_cols),
            "all rows must have the same length"
        );
        Matrix {
            rows: rows.len(),
            cols: n_cols,
            data: rows.concat(),
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size must match shape");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Extracts column `c` as an owned vector.
    pub fn col_vec(&self, c: usize) -> Vec<T> {
        assert!(c < self.cols, "col {c} out of bounds ({} cols)", self.cols);
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Returns the transposed matrix.
    pub fn transposed(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Extracts the sub-matrix of columns `[col_start, col_end)`.
    ///
    /// Used by the model partitioner for column-wise weight splits.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn col_slice(&self, col_start: usize, col_end: usize) -> Matrix<T> {
        assert!(
            col_start <= col_end && col_end <= self.cols,
            "invalid column range {col_start}..{col_end} for {} cols",
            self.cols
        );
        Matrix::from_fn(self.rows, col_end - col_start, |r, c| {
            self[(r, col_start + c)]
        })
    }

    /// Extracts the sub-matrix of rows `[row_start, row_end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn row_slice(&self, row_start: usize, row_end: usize) -> Matrix<T> {
        assert!(
            row_start <= row_end && row_end <= self.rows,
            "invalid row range {row_start}..{row_end} for {} rows",
            self.rows
        );
        Matrix::from_fn(row_end - row_start, self.cols, |r, c| {
            self[(row_start + r, c)]
        })
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()` (unless the matrix is empty, in
    /// which case the row defines the width).
    pub fn push_row(&mut self, row: &[T]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "row width mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Converts every element to another scalar precision through `f64`.
    pub fn cast<U: Scalar>(&self) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| U::from_f64(x.to_f64())).collect(),
        }
    }

    /// `y = x · self + b` — the GPT-2 `Conv1D` convention with `self`
    /// shaped `(in_dim, out_dim)`.
    ///
    /// Accumulation is sequential in `T` (conventional semantics).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows` or `bias.len() != cols`.
    pub fn vecmat_bias(&self, x: &[T], bias: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.rows, "input length must equal in_dim");
        assert_eq!(bias.len(), self.cols, "bias length must equal out_dim");
        let mut out = bias.to_vec();
        for (i, &xi) in x.iter().enumerate() {
            let row = self.row(i);
            for (j, o) in out.iter_mut().enumerate() {
                *o = o.add(xi.mul(row[j]));
            }
        }
        out
    }

    /// `y = x · self` without bias.
    pub fn vecmat(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.rows, "input length must equal in_dim");
        let mut out = vec![T::ZERO; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            let row = self.row(i);
            for (j, o) in out.iter_mut().enumerate() {
                *o = o.add(xi.mul(row[j]));
            }
        }
        out
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

/// Elementwise vector addition.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn vec_add<T: Scalar>(a: &[T], b: &[T]) -> Vec<T> {
    assert_eq!(a.len(), b.len(), "vector lengths must match");
    a.iter().zip(b).map(|(&x, &y)| x.add(y)).collect()
}

/// Elementwise vector subtraction `a - b`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn vec_sub<T: Scalar>(a: &[T], b: &[T]) -> Vec<T> {
    assert_eq!(a.len(), b.len(), "vector lengths must match");
    a.iter().zip(b).map(|(&x, &y)| x.sub(y)).collect()
}

/// Dot product with sequential accumulation.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot<T: Scalar>(a: &[T], b: &[T]) -> T {
    assert_eq!(a.len(), b.len(), "vector lengths must match");
    a.iter()
        .zip(b)
        .fold(T::ZERO, |acc, (&x, &y)| acc.add(x.mul(y)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfx_num::F16;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
        assert_eq!(m.col_vec(1), vec![1.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        let m = Matrix::<f32>::zeros(2, 2);
        let _ = m.row(2);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn col_and_row_slices_partition_the_matrix() {
        let m = Matrix::from_fn(4, 6, |r, c| (r * 6 + c) as f32);
        let left = m.col_slice(0, 3);
        let right = m.col_slice(3, 6);
        for r in 0..4 {
            for c in 0..3 {
                assert_eq!(left[(r, c)], m[(r, c)]);
                assert_eq!(right[(r, c)], m[(r, c + 3)]);
            }
        }
        let top = m.row_slice(0, 2);
        let bottom = m.row_slice(2, 4);
        assert_eq!(top.rows() + bottom.rows(), m.rows());
    }

    #[test]
    fn vecmat_bias_matches_manual_computation() {
        // W is (2 in, 3 out): y_j = sum_i x_i W[i][j] + b_j.
        let w = Matrix::from_rows(&[vec![1.0f32, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let y = w.vecmat_bias(&[10.0, 100.0], &[0.5, 0.5, 0.5]);
        assert_eq!(y, vec![410.5, 520.5, 630.5]);
    }

    #[test]
    #[should_panic(expected = "in_dim")]
    fn vecmat_rejects_bad_input_length() {
        let w = Matrix::<f32>::zeros(2, 3);
        let _ = w.vecmat(&[1.0; 3]);
    }

    #[test]
    fn push_row_grows_kv_style_matrix() {
        let mut m: Matrix<f32> = Matrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn cast_roundtrips_for_representable_values() {
        let m = Matrix::from_fn(3, 3, |r, c| (r as f32 + c as f32) * 0.25);
        let h: Matrix<F16> = m.cast();
        let back: Matrix<f32> = h.cast();
        assert_eq!(m, back);
    }

    #[test]
    fn helpers_add_sub_dot() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [0.5f32, 0.5, 0.5];
        assert_eq!(vec_add(&a, &b), vec![1.5, 2.5, 3.5]);
        assert_eq!(vec_sub(&a, &b), vec![0.5, 1.5, 2.5]);
        assert_eq!(dot(&a, &b), 3.0);
    }
}

//! Precision-generic reference implementation of GPT-2 inference.
//!
//! This is the golden model the DFX functional executor is validated
//! against. It follows the decoder structure of the paper's Figure 2 /
//! Algorithm 1: pre-LayerNorm, multi-head self-attention with a causal
//! mask and max-subtracted softmax, residual, pre-LayerNorm, FFN with
//! GELU, residual — plus GPT-2's final LayerNorm and the LM head (matmul
//! with WTEᵀ and argmax).
//!
//! Processing is strictly token-by-token with a KV cache, exactly the
//! matrix-vector dataflow DFX executes (the summarization stage runs the
//! same path once per context token).

use crate::config::GptConfig;
use crate::tensor::{dot, vec_add, Matrix};
use crate::weights::{GptWeights, LayerWeights};
use dfx_num::Scalar;

/// LayerNorm epsilon (GPT-2 uses 1e-5; the paper's formula omits it but
/// the hardware must avoid 1/σ overflow the same way).
pub const LAYER_NORM_EPS: f64 = 1e-5;

/// Per-layer key/value cache. Keys and values grow by one row per
/// processed token (paper §II-A: "the generation stage updates the Key and
/// Value matrices by appending a row").
#[derive(Debug, Clone)]
pub struct KvCache<T> {
    keys: Vec<Matrix<T>>,
    values: Vec<Matrix<T>>,
}

impl<T: Scalar> KvCache<T> {
    /// Creates an empty cache for `num_layers` layers.
    pub fn new(num_layers: usize) -> Self {
        KvCache {
            keys: (0..num_layers).map(|_| Matrix::zeros(0, 0)).collect(),
            values: (0..num_layers).map(|_| Matrix::zeros(0, 0)).collect(),
        }
    }

    /// Number of cached token positions (context length so far).
    pub fn len(&self) -> usize {
        self.keys.first().map_or(0, Matrix::rows)
    }

    /// `true` if no tokens have been processed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cached keys for `layer`, shape `(t, emb)`.
    pub fn keys(&self, layer: usize) -> &Matrix<T> {
        &self.keys[layer]
    }

    /// Cached values for `layer`, shape `(t, emb)`.
    pub fn values(&self, layer: usize) -> &Matrix<T> {
        &self.values[layer]
    }

    /// Appends this token's key and value rows for `layer`.
    pub fn push(&mut self, layer: usize, key_row: &[T], value_row: &[T]) {
        self.keys[layer].push_row(key_row);
        self.values[layer].push_row(value_row);
    }
}

/// Layer normalisation: `y_i = γ_i · (x_i − µ)/σ + β_i`.
///
/// The mean is computed with a multiply-by-reciprocal-constant, as the
/// hardware replaces division by the (compile-time constant) embedding
/// size with a multiplication (paper §V-C).
pub fn layer_norm<T: Scalar>(x: &[T], gamma: &[T], beta: &[T]) -> Vec<T> {
    let n = T::from_f64(1.0 / x.len() as f64);
    let mean = x.iter().fold(T::ZERO, |a, &b| a.add(b)).mul(n);
    let var = x
        .iter()
        .fold(T::ZERO, |a, &b| {
            let d = b.sub(mean);
            a.add(d.mul(d))
        })
        .mul(n);
    let rstd = var.add(T::from_f64(LAYER_NORM_EPS)).recip_sqrt();
    x.iter()
        .zip(gamma.iter().zip(beta))
        .map(|(&xi, (&g, &b))| xi.sub(mean).mul(rstd).mul(g).add(b))
        .collect()
}

/// Numerically stable softmax: `exp(x_i − max)/Σ exp(x_j − max)`, with the
/// division realised as multiply-by-reciprocal (paper §IV-C).
pub fn softmax<T: Scalar>(x: &[T]) -> Vec<T> {
    let max = x
        .iter()
        .fold(T::from_f64(f64::NEG_INFINITY), |m, &v| m.max_num(v));
    let exps: Vec<T> = x.iter().map(|&v| v.sub(max).exp()).collect();
    let sum = exps.iter().fold(T::ZERO, |a, &b| a.add(b));
    let rsum = sum.recip();
    exps.into_iter().map(|e| e.mul(rsum)).collect()
}

/// Index of the maximum element (first occurrence). Mirrors the DFX
/// reduce-max comparator tree.
pub fn argmax<T: Scalar>(x: &[T]) -> usize {
    let mut best = 0;
    for (i, v) in x.iter().enumerate().skip(1) {
        if *v > x[best] {
            best = i;
        }
    }
    best
}

/// Result of a full text-generation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerationOutput {
    /// The generated token ids (length = requested output length).
    pub tokens: Vec<u32>,
}

/// The reference GPT-2 model over any [`Scalar`] precision.
///
/// # Examples
///
/// ```
/// use dfx_model::{GptConfig, GptWeights, Gpt2Model};
///
/// let cfg = GptConfig::tiny();
/// let model = Gpt2Model::new(GptWeights::synthetic(&cfg));
/// let out = model.generate(&[1, 2, 3], 4);
/// assert_eq!(out.tokens.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Gpt2Model<T> {
    weights: GptWeights<T>,
}

impl<T: Scalar> Gpt2Model<T> {
    /// Wraps a weight set.
    pub fn new(weights: GptWeights<T>) -> Self {
        Gpt2Model { weights }
    }

    /// The model configuration.
    pub fn config(&self) -> &GptConfig {
        &self.weights.config
    }

    /// Borrows the weights (used by the partitioner).
    pub fn weights(&self) -> &GptWeights<T> {
        &self.weights
    }

    /// Token embedding: `WTE[token] + WPE[pos]` (paper §II-A).
    ///
    /// # Panics
    ///
    /// Panics if `token` is outside the vocabulary or `pos` exceeds the
    /// maximum sequence length.
    pub fn embed(&self, token: u32, pos: usize) -> Vec<T> {
        let wte_row = self.weights.wte.row(token as usize);
        let wpe_row = self.weights.wpe.row(pos);
        vec_add(wte_row, wpe_row)
    }

    /// Runs one decoder layer on a single token embedding, reading and
    /// appending to the KV cache. Follows Algorithm 1 of the paper.
    pub fn decoder_layer(&self, layer: usize, in_emb: &[T], cache: &mut KvCache<T>) -> Vec<T> {
        let cfg = &self.weights.config;
        let lw: &LayerWeights<T> = &self.weights.layers[layer];
        let h = cfg.num_heads;
        let dh = cfg.head_dim();

        // LayerNorm 1.
        let lnorm1 = layer_norm(in_emb, &lw.ln1_gamma, &lw.ln1_beta);

        // Q, K, V projections (Conv1D). The hardware computes Value first
        // to hide its transpose; numerically the order is irrelevant here.
        let value = lw.w_v.vecmat_bias(&lnorm1, &lw.b_v);
        let key = lw.w_k.vecmat_bias(&lnorm1, &lw.b_k);
        let query = lw.w_q.vecmat_bias(&lnorm1, &lw.b_q);

        // Concat K, V: append this token's rows to the cache.
        cache.push(layer, &key, &value);
        let t = cache.len(); // context length including current token

        // Multi-head attention. The current token is position t-1; the
        // causal mask admits all cached positions (MaskedMM masks only
        // *future* positions, none of which exist in the cache).
        let scale = T::from_f64(1.0 / (dh as f64).sqrt());
        let keys = cache.keys(layer);
        let values = cache.values(layer);
        let mut attn = vec![T::ZERO; cfg.embedding_dim];
        for head in 0..h {
            let c0 = head * dh;
            let q_h = &query[c0..c0 + dh];
            // Score row: q_h · K_h[j]ᵀ, scaled.
            let mut scores = Vec::with_capacity(t);
            for j in 0..t {
                let k_row = &keys.row(j)[c0..c0 + dh];
                scores.push(dot(q_h, k_row).mul(scale));
            }
            let probs = softmax(&scores);
            // attn_h = probs · V_h (1×t times t×dh).
            for (j, &p) in probs.iter().enumerate() {
                let v_row = &values.row(j)[c0..c0 + dh];
                for (k, &v) in v_row.iter().enumerate() {
                    attn[c0 + k] = attn[c0 + k].add(p.mul(v));
                }
            }
        }

        // Attention output projection + residual.
        let c_attn = lw.w_attn_proj.vecmat_bias(&attn, &lw.b_attn_proj);
        let c_attn = vec_add(&c_attn, in_emb);

        // LayerNorm 2, FFN with GELU, residual.
        let lnorm2 = layer_norm(&c_attn, &lw.ln2_gamma, &lw.ln2_beta);
        let ffn1: Vec<T> = lw
            .w_ffn1
            .vecmat_bias(&lnorm2, &lw.b_ffn1)
            .into_iter()
            .map(Scalar::gelu)
            .collect();
        let ffn2 = lw.w_ffn2.vecmat_bias(&ffn1, &lw.b_ffn2);
        vec_add(&ffn2, &c_attn)
    }

    /// Processes one token through the full decoder stack and the final
    /// LayerNorm, returning the output hidden state.
    pub fn forward_token(&self, token: u32, pos: usize, cache: &mut KvCache<T>) -> Vec<T> {
        let mut x = self.embed(token, pos);
        for layer in 0..self.weights.config.num_layers {
            x = self.decoder_layer(layer, &x, cache);
        }
        layer_norm(&x, &self.weights.ln_f_gamma, &self.weights.ln_f_beta)
    }

    /// LM head: logits = hidden · WTEᵀ (paper §II-A).
    pub fn logits(&self, hidden: &[T]) -> Vec<T> {
        (0..self.weights.config.vocab_size)
            .map(|v| dot(hidden, self.weights.wte.row(v)))
            .collect()
    }

    /// Greedy next-token selection (argmax over logits; the paper selects
    /// "the token ID with the highest probability value", and softmax is
    /// monotone, so argmax over logits is identical).
    pub fn next_token(&self, hidden: &[T]) -> u32 {
        argmax(&self.logits(hidden)) as u32
    }

    /// End-to-end text generation: summarises `input_tokens` one token at
    /// a time (building the KV cache), then generates `output_len` tokens
    /// greedily.
    ///
    /// # Panics
    ///
    /// Panics if `input_tokens` is empty or the total sequence exceeds the
    /// model's maximum length.
    pub fn generate(&self, input_tokens: &[u32], output_len: usize) -> GenerationOutput {
        assert!(
            !input_tokens.is_empty(),
            "context must contain at least one token"
        );
        let total = input_tokens.len() + output_len;
        assert!(
            total <= self.weights.config.max_seq_len,
            "sequence length {total} exceeds max {}",
            self.weights.config.max_seq_len
        );
        let mut cache = KvCache::new(self.weights.config.num_layers);

        // Summarization stage: only the *last* token's hidden state feeds
        // the LM head (paper §II-A: "Only the last row of the output
        // matrix is processed in LM head").
        let mut hidden = Vec::new();
        for (pos, &tok) in input_tokens.iter().enumerate() {
            hidden = self.forward_token(tok, pos, &mut cache);
        }

        let mut tokens = Vec::with_capacity(output_len);
        for pos in input_tokens.len()..input_tokens.len() + output_len {
            let next = self.next_token(&hidden);
            tokens.push(next);
            if tokens.len() == output_len {
                break;
            }
            hidden = self.forward_token(next, pos, &mut cache);
        }
        GenerationOutput { tokens }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::GptWeights;
    use dfx_num::F16;

    fn tiny_model() -> Gpt2Model<f32> {
        Gpt2Model::new(GptWeights::synthetic(&GptConfig::tiny()))
    }

    #[test]
    fn layer_norm_normalises() {
        let x = [1.0f32, 2.0, 3.0, 4.0];
        let gamma = [1.0f32; 4];
        let beta = [0.0f32; 4];
        let y = layer_norm(&x, &gamma, &beta);
        let mean: f32 = y.iter().sum::<f32>() / 4.0;
        let var: f32 = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_applies_gamma_beta() {
        let x = [0.0f32, 2.0];
        let y = layer_norm(&x, &[2.0, 2.0], &[10.0, 10.0]);
        // normalised x = [-1, 1] (up to eps), so y ≈ [8, 12].
        assert!((y[0] - 8.0).abs() < 1e-2, "{y:?}");
        assert!((y[1] - 12.0).abs() < 1e-2, "{y:?}");
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable_for_large_inputs() {
        let x = [1000.0f32, 1001.0, 1002.0];
        let p = softmax(&x);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3);
        assert!(p[2] > p[1] && p[1] > p[0]);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_of_masked_row_puts_zero_on_masked_positions() {
        let x = [0.5f32, f32::NEG_INFINITY, 0.5];
        let p = softmax(&x);
        assert_eq!(p[1], 0.0);
        assert!((p[0] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn generation_is_deterministic_and_sized() {
        let model = tiny_model();
        let a = model.generate(&[5, 10, 15], 6);
        let b = model.generate(&[5, 10, 15], 6);
        assert_eq!(a, b);
        assert_eq!(a.tokens.len(), 6);
        assert!(a
            .tokens
            .iter()
            .all(|&t| (t as usize) < model.config().vocab_size));
    }

    #[test]
    fn different_contexts_generally_diverge() {
        let model = tiny_model();
        let a = model.generate(&[1, 2, 3, 4], 4);
        let b = model.generate(&[100, 200, 300, 400], 4);
        // Random weights make collisions possible but vanishingly unlikely
        // across 4 greedy steps.
        assert_ne!(a.tokens, b.tokens);
    }

    #[test]
    fn kv_cache_grows_one_row_per_token() {
        let model = tiny_model();
        let mut cache = KvCache::new(model.config().num_layers);
        assert!(cache.is_empty());
        model.forward_token(1, 0, &mut cache);
        assert_eq!(cache.len(), 1);
        model.forward_token(2, 1, &mut cache);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.keys(0).shape(), (2, model.config().embedding_dim));
    }

    #[test]
    fn incremental_generation_matches_fresh_run_prefix() {
        // Greedy decoding is prefix-stable: generating 6 tokens and
        // generating 3 must agree on the first 3.
        let model = tiny_model();
        let six = model.generate(&[7, 8, 9], 6);
        let three = model.generate(&[7, 8, 9], 3);
        assert_eq!(&six.tokens[..3], &three.tokens[..]);
    }

    #[test]
    fn f16_model_agrees_with_f32_on_next_token() {
        // The FP16 instantiation (the GPU baseline's precision) should pick
        // the same greedy tokens as f32 on a well-conditioned tiny model.
        let cfg = GptConfig::tiny();
        let w32 = GptWeights::synthetic(&cfg);
        let m32 = Gpt2Model::new(w32.clone());
        let m16 = Gpt2Model::new(w32.cast::<F16>());
        let out32 = m32.generate(&[3, 1, 4, 1, 5], 4);
        let out16 = m16.generate(&[3, 1, 4, 1, 5], 4);
        // Agreement on at least the first token; full-sequence agreement is
        // typical but argmax near-ties may flip later tokens.
        assert_eq!(out32.tokens[0], out16.tokens[0]);
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn empty_context_is_rejected() {
        let model = tiny_model();
        let _ = model.generate(&[], 3);
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn overlong_sequence_is_rejected() {
        let model = tiny_model();
        let ctx: Vec<u32> = (0..100).collect();
        let _ = model.generate(&ctx, 100);
    }

    #[test]
    fn argmax_picks_first_of_ties() {
        assert_eq!(argmax(&[1.0f32, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0f32]), 0);
    }
}

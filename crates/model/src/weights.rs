//! Synthetic deterministic GPT-2 weights.
//!
//! We do not have the pretrained OpenAI/Megatron checkpoints (and latency,
//! throughput, energy and cost are weight-value independent). Weights are
//! generated deterministically from the config seed with the GPT-2
//! initialisation scale (σ ≈ 0.02, output projections scaled by 1/√(2N)),
//! so the reference model, the partitioner and the DFX functional executor
//! all see bit-identical parameters.

use crate::config::GptConfig;
use crate::tensor::Matrix;
use dfx_num::Scalar;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Weights of one decoder layer.
///
/// All projection matrices use the `Conv1D` convention: shape
/// `(in_dim, out_dim)`, applied as `y = x·W + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerWeights<T> {
    /// Pre-attention LayerNorm scale (γ_l1).
    pub ln1_gamma: Vec<T>,
    /// Pre-attention LayerNorm shift (β_l1).
    pub ln1_beta: Vec<T>,
    /// Query projection, `(emb, emb)`.
    pub w_q: Matrix<T>,
    /// Query bias.
    pub b_q: Vec<T>,
    /// Key projection, `(emb, emb)`.
    pub w_k: Matrix<T>,
    /// Key bias.
    pub b_k: Vec<T>,
    /// Value projection, `(emb, emb)`.
    pub w_v: Matrix<T>,
    /// Value bias.
    pub b_v: Vec<T>,
    /// Attention output projection (`W_a`), `(emb, emb)`.
    pub w_attn_proj: Matrix<T>,
    /// Attention output bias.
    pub b_attn_proj: Vec<T>,
    /// Pre-FFN LayerNorm scale (γ_l2).
    pub ln2_gamma: Vec<T>,
    /// Pre-FFN LayerNorm shift (β_l2).
    pub ln2_beta: Vec<T>,
    /// FFN up projection (`W_f1`), `(emb, 4·emb)`.
    pub w_ffn1: Matrix<T>,
    /// FFN up bias.
    pub b_ffn1: Vec<T>,
    /// FFN down projection (`W_f2`), `(4·emb, emb)`.
    pub w_ffn2: Matrix<T>,
    /// FFN down bias.
    pub b_ffn2: Vec<T>,
}

impl<T: Scalar> LayerWeights<T> {
    /// Converts the layer to another precision through `f64`.
    pub fn cast<U: Scalar>(&self) -> LayerWeights<U> {
        fn cv<T: Scalar, U: Scalar>(v: &[T]) -> Vec<U> {
            v.iter().map(|x| U::from_f64(x.to_f64())).collect()
        }
        LayerWeights {
            ln1_gamma: cv(&self.ln1_gamma),
            ln1_beta: cv(&self.ln1_beta),
            w_q: self.w_q.cast(),
            b_q: cv(&self.b_q),
            w_k: self.w_k.cast(),
            b_k: cv(&self.b_k),
            w_v: self.w_v.cast(),
            b_v: cv(&self.b_v),
            w_attn_proj: self.w_attn_proj.cast(),
            b_attn_proj: cv(&self.b_attn_proj),
            ln2_gamma: cv(&self.ln2_gamma),
            ln2_beta: cv(&self.ln2_beta),
            w_ffn1: self.w_ffn1.cast(),
            b_ffn1: cv(&self.b_ffn1),
            w_ffn2: self.w_ffn2.cast(),
            b_ffn2: cv(&self.b_ffn2),
        }
    }
}

/// Complete GPT-2 parameter set.
#[derive(Debug, Clone, PartialEq)]
pub struct GptWeights<T> {
    /// The configuration these weights were generated for.
    pub config: GptConfig,
    /// Word token embedding, `(vocab, emb)`. Also used (transposed) by the
    /// LM head.
    pub wte: Matrix<T>,
    /// Word position embedding, `(max_seq, emb)`.
    pub wpe: Matrix<T>,
    /// Decoder layers.
    pub layers: Vec<LayerWeights<T>>,
    /// Final LayerNorm scale (GPT-2's `ln_f`; the paper's Fig 2 omits it
    /// but the released models include it).
    pub ln_f_gamma: Vec<T>,
    /// Final LayerNorm shift.
    pub ln_f_beta: Vec<T>,
}

impl GptWeights<f32> {
    /// Generates deterministic synthetic weights for `config`.
    ///
    /// Generation draws from a uniform distribution with the standard
    /// deviation of the GPT-2 initialiser (0.02; residual-output
    /// projections scaled by 1/√(2N)). LayerNorm scales start at 1, shifts
    /// at 0, biases at 0 — exactly the published initialisation, so
    /// activations stay in a realistic range for FP16.
    ///
    /// Intended for test-scale configs; a 1.5B-parameter call allocates
    /// ~6 GB of `f32` and is rejected.
    ///
    /// # Panics
    ///
    /// Panics if the config exceeds 100M parameters (use the timing engine
    /// for full-scale models; it does not need materialised weights).
    pub fn synthetic(config: &GptConfig) -> Self {
        assert!(
            config.num_parameters() <= 100_000_000,
            "synthetic weights are for test-scale configs; {} has {} parameters",
            config.name,
            config.num_parameters()
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let e = config.embedding_dim;
        let f = config.ffn_dim;
        let sigma = 0.02f32;
        // Residual-path output projections are scaled down as in GPT-2.
        let resid_sigma = sigma / (2.0 * config.num_layers as f32).sqrt();

        // Uniform with matching standard deviation: U(-a, a), a = σ√3.
        let uniform = |rng: &mut StdRng, sigma: f32| -> f32 {
            let a = sigma * 3f32.sqrt();
            rng.gen_range(-a..a)
        };

        let matrix = |rng: &mut StdRng, rows: usize, cols: usize, s: f32| {
            let mut m = Matrix::zeros(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    m[(r, c)] = uniform(rng, s);
                }
            }
            m
        };

        let wte = matrix(&mut rng, config.vocab_size, e, sigma);
        let wpe = matrix(&mut rng, config.max_seq_len, e, 0.01);

        let layers = (0..config.num_layers)
            .map(|_| LayerWeights {
                ln1_gamma: vec![1.0; e],
                ln1_beta: vec![0.0; e],
                w_q: matrix(&mut rng, e, e, sigma),
                b_q: vec![0.0; e],
                w_k: matrix(&mut rng, e, e, sigma),
                b_k: vec![0.0; e],
                w_v: matrix(&mut rng, e, e, sigma),
                b_v: vec![0.0; e],
                w_attn_proj: matrix(&mut rng, e, e, resid_sigma),
                b_attn_proj: vec![0.0; e],
                ln2_gamma: vec![1.0; e],
                ln2_beta: vec![0.0; e],
                w_ffn1: matrix(&mut rng, e, f, sigma),
                b_ffn1: vec![0.0; f],
                w_ffn2: matrix(&mut rng, f, e, resid_sigma),
                b_ffn2: vec![0.0; e],
            })
            .collect();

        GptWeights {
            config: config.clone(),
            wte,
            wpe,
            layers,
            ln_f_gamma: vec![1.0; e],
            ln_f_beta: vec![0.0; e],
        }
    }
}

impl<T: Scalar> GptWeights<T> {
    /// Converts all weights to another precision through `f64`.
    pub fn cast<U: Scalar>(&self) -> GptWeights<U> {
        fn cv<T: Scalar, U: Scalar>(v: &[T]) -> Vec<U> {
            v.iter().map(|x| U::from_f64(x.to_f64())).collect()
        }
        GptWeights {
            config: self.config.clone(),
            wte: self.wte.cast(),
            wpe: self.wpe.cast(),
            layers: self.layers.iter().map(LayerWeights::cast).collect(),
            ln_f_gamma: cv(&self.ln_f_gamma),
            ln_f_beta: cv(&self.ln_f_beta),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfx_num::F16;

    #[test]
    fn synthetic_weights_are_deterministic() {
        let cfg = GptConfig::tiny();
        let a = GptWeights::synthetic(&cfg);
        let b = GptWeights::synthetic(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_weights() {
        let cfg = GptConfig::tiny();
        let mut cfg2 = cfg.clone();
        cfg2.seed ^= 0xdead_beef;
        let a = GptWeights::synthetic(&cfg);
        let b = GptWeights::synthetic(&cfg2);
        assert_ne!(a.wte, b.wte);
    }

    #[test]
    fn shapes_match_config() {
        let cfg = GptConfig::small();
        let w = GptWeights::synthetic(&cfg);
        assert_eq!(w.wte.shape(), (cfg.vocab_size, cfg.embedding_dim));
        assert_eq!(w.wpe.shape(), (cfg.max_seq_len, cfg.embedding_dim));
        assert_eq!(w.layers.len(), cfg.num_layers);
        let l = &w.layers[0];
        assert_eq!(l.w_q.shape(), (cfg.embedding_dim, cfg.embedding_dim));
        assert_eq!(l.w_ffn1.shape(), (cfg.embedding_dim, cfg.ffn_dim));
        assert_eq!(l.w_ffn2.shape(), (cfg.ffn_dim, cfg.embedding_dim));
        assert_eq!(l.b_ffn1.len(), cfg.ffn_dim);
    }

    #[test]
    fn weight_scale_is_fp16_friendly() {
        let cfg = GptConfig::tiny();
        let w = GptWeights::synthetic(&cfg);
        let max = w.wte.as_slice().iter().fold(0f32, |m, &x| m.max(x.abs()));
        assert!(max < 0.05, "init scale too large: {max}");
        // Casting to F16 must not lose any value to zero or infinity.
        let h: GptWeights<F16> = w.cast();
        assert!(h.wte.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    #[should_panic(expected = "test-scale")]
    fn full_scale_synthetic_is_rejected() {
        let _ = GptWeights::synthetic(&GptConfig::gpt2_345m());
    }
}

//! Criterion benches for the half-precision datapath primitives.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dfx_num::{reduce, GeluLut, F16};

fn bench_f16(c: &mut Criterion) {
    let mut g = c.benchmark_group("f16");
    g.bench_function("from_f32", |b| {
        b.iter(|| F16::from_f32(black_box(1.2345f32)))
    });
    let x = F16::from_f32(1.5);
    let y = F16::from_f32(2.25);
    g.bench_function("add", |b| b.iter(|| black_box(x) + black_box(y)));
    g.bench_function("mul", |b| b.iter(|| black_box(x) * black_box(y)));
    g.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduce");
    let v64: Vec<F16> = (0..64).map(|i| F16::from_f32(i as f32 * 0.01)).collect();
    let v4k: Vec<F16> = (0..4096)
        .map(|i| F16::from_f32((i % 97) as f32 * 0.01))
        .collect();
    let w64 = vec![F16::from_f32(0.5); 64];
    g.bench_function("tree_sum_64", |b| {
        b.iter(|| reduce::tree_sum(black_box(&v64)))
    });
    g.bench_function("tree_sum_4096", |b| {
        b.iter(|| reduce::tree_sum(black_box(&v4k)))
    });
    g.bench_function("mac_tree_64", |b| {
        b.iter(|| reduce::mac_tree(black_box(&v64), black_box(&w64)))
    });
    g.finish();
}

fn bench_gelu(c: &mut Criterion) {
    let lut = GeluLut::new();
    let x = F16::from_f32(0.7);
    c.bench_function("gelu_lut_eval", |b| b.iter(|| lut.eval(black_box(x))));
}

criterion_group!(benches, bench_f16, bench_reduce, bench_gelu);
criterion_main!(benches);

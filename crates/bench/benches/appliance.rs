//! Criterion benches for end-to-end experiment throughput: how long the
//! harness takes to regenerate paper data points.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dfx_baseline::{GpuModel, TpuModel};
use dfx_model::{Gpt2Model, GptConfig, GptWeights, Workload};
use dfx_sim::Appliance;

fn bench_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("baseline");
    let gpu = GpuModel::new(GptConfig::gpt2_1_5b(), 4);
    let tpu = TpuModel::new(GptConfig::gpt2_345m());
    g.bench_function("gpu_run_32_256", |b| {
        b.iter(|| gpu.run(black_box(Workload::new(32, 256))))
    });
    g.bench_function("tpu_run_64_64", |b| {
        b.iter(|| tpu.run(black_box(Workload::chatbot())))
    });
    g.finish();
}

fn bench_appliance(c: &mut Criterion) {
    let mut g = c.benchmark_group("appliance");
    g.sample_size(10);
    let appliance = Appliance::timing_only(GptConfig::gpt2_1_5b(), 4).unwrap();
    g.bench_function("generate_timed_1.5b_32_4", |b| {
        b.iter(|| {
            appliance
                .generate_timed(black_box(32), black_box(4))
                .unwrap()
        })
    });
    g.finish();
}

fn bench_reference_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("reference");
    g.sample_size(20);
    let model = Gpt2Model::new(GptWeights::synthetic(&GptConfig::tiny()));
    g.bench_function("generate_tiny_8_8", |b| {
        b.iter(|| model.generate(black_box(&[1, 2, 3, 4, 5, 6, 7, 8]), 8))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_baselines,
    bench_appliance,
    bench_reference_model
);
criterion_main!(benches);

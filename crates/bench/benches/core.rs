//! Criterion benches for the simulator engines themselves: how fast the
//! compiler, the timing engine and the functional executor run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dfx_core::{CoreParams, CoreWeights, FunctionalCore, TimingCore};
use dfx_isa::{ParallelConfig, ProgramBuilder};
use dfx_model::{GptConfig, GptWeights};
use dfx_num::F16;

fn bench_program_builder(c: &mut Criterion) {
    let mut g = c.benchmark_group("builder");
    for (name, cfg, cores) in [
        ("tiny_2core", GptConfig::tiny(), 2usize),
        ("1.5b_4core", GptConfig::gpt2_1_5b(), 4),
    ] {
        let b = ProgramBuilder::new(cfg, ParallelConfig::new(0, cores)).unwrap();
        g.bench_function(format!("token_step/{name}"), |bench| {
            bench.iter(|| b.token_step(black_box(63), true))
        });
    }
    g.finish();
}

fn bench_timing_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("timing");
    g.sample_size(20);
    for (name, cfg, cores) in [
        ("tiny_2core", GptConfig::tiny(), 2usize),
        ("1.5b_4core", GptConfig::gpt2_1_5b(), 4),
    ] {
        let b = ProgramBuilder::new(cfg, ParallelConfig::new(0, cores)).unwrap();
        let program = b.token_step(63, true);
        let engine = TimingCore::new(CoreParams::default(), cores as u32);
        g.bench_function(format!("time_step/{name}"), |bench| {
            bench.iter(|| engine.time_step(black_box(&program)))
        });
    }
    g.finish();
}

fn bench_functional_step(c: &mut Criterion) {
    let cfg = GptConfig::tiny();
    let weights = GptWeights::synthetic(&cfg).cast::<F16>();
    let par = ParallelConfig::new(0, 1);
    let builder = ProgramBuilder::new(cfg, par).unwrap();
    let program = builder.token_step(0, true);
    let core_weights = CoreWeights::partition(&weights, par);
    let mut g = c.benchmark_group("functional");
    g.sample_size(20);
    g.bench_function("token_step/tiny_1core", |bench| {
        bench.iter(|| {
            // A fresh core per iteration: the step mutates the KV cache.
            let mut core = FunctionalCore::new(core_weights.clone());
            core.begin_step(black_box(5));
            core.run(&program, 0)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_program_builder,
    bench_timing_engine,
    bench_functional_step
);
criterion_main!(benches);

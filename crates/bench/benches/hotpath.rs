//! Simulator hot-path throughput: the tracked perf trajectory.
//!
//! Not a criterion bench — this is a plain binary (`harness = false`)
//! that drives the serving engine's three hot paths at realistic scale,
//! measures wall-clock throughput, and writes one line-oriented JSON
//! record per shape to `BENCH_hotpath.json` at the repo root (schema
//! `dfx-hotpath-v1`, one JSON object per line):
//!
//! ```json
//! {"schema":"dfx-hotpath-v1"}
//! {"shape":"static-fifo","requests":100000,"wall_ms":...,"requests_per_sec":...,"events":...,"events_per_sec":...}
//! ```
//!
//! Shapes:
//!
//! - `static-fifo` — the static dispatch path: heap-ordered arrivals,
//!   memoized service times, 10⁵ requests through FIFO.
//! - `continuous-batching` — the token-boundary path: admission seam,
//!   per-token stepping, early exit, at max batch 8.
//! - `cluster-least-kv` — the routed tier: 10⁵ requests over 4
//!   memory-modelled replicas under `LeastKvLoaded`, every arrival
//!   snapshotting all replicas through incremental checkpoints (the
//!   sweep the old full-replay router could not finish in reasonable
//!   time).
//!
//! `events` counts engine dispatches (batch launches on the static
//! path; admissions + token steps on the continuous path), so
//! `events_per_sec` tracks raw event-loop throughput independent of
//! batch shape.
//!
//! Usage:
//!
//! ```text
//! cargo bench -p dfx-bench --bench hotpath            # run + write baseline
//! cargo bench -p dfx-bench --bench hotpath -- --check # compare against the
//!                                                     # committed baseline,
//!                                                     # exit 1 on >2x regression
//! cargo bench -p dfx-bench --bench hotpath -- --out /tmp/hp.json
//! ```
//!
//! Arrival rates derive from the model's own simulated service time
//! (60% of batch-1 capacity), so queues stay short and the measured
//! cost is the event loop, not backlog scanning; the simulated numbers
//! are deterministic — only the wall-clock columns vary across machines,
//! which is why the regression gate is a loose 2x.

use dfx_model::{GptConfig, Workload};
use dfx_serve::{
    ArrivalProcess, Backend, ClusterRouter, ContinuousBatching, Fifo, LeastKvLoaded, ServingEngine,
};
use dfx_sim::Appliance;

/// One measured shape, serialized as a single JSON line.
struct Entry {
    shape: &'static str,
    requests: usize,
    wall_ms: f64,
    events: usize,
}

impl Entry {
    fn to_json(&self) -> String {
        let wall_s = (self.wall_ms / 1e3).max(f64::MIN_POSITIVE);
        format!(
            "{{\"shape\":\"{}\",\"requests\":{},\"wall_ms\":{:.1},\"requests_per_sec\":{:.1},\
             \"events\":{},\"events_per_sec\":{:.1}}}",
            self.shape,
            self.requests,
            self.wall_ms,
            self.requests as f64 / wall_s,
            self.events,
            self.events as f64 / wall_s,
        )
    }
}

/// The benchmark's model: small enough that a 10⁵-request sweep is a
/// few wall-clock seconds, large enough that the timing math is real.
fn bench_cfg() -> GptConfig {
    GptConfig::new("hotpath", 64, 2, 2, 512, 640)
}

/// A short-decode request mix cycling a few shapes, so the static
/// memo sees repeats (its designed regime) and token counts stay small.
fn bench_mix(n: usize) -> Vec<Workload> {
    (0..n)
        .map(|i| Workload::new(16 + (i % 4) * 8, 4 + (i % 3) * 2))
        .collect()
}

/// 60% of one server's batch-1 capacity for the probe workload, req/s.
fn sustainable_rate(backend: &dyn Backend) -> f64 {
    let probe_ms = backend
        .serve(Workload::new(32, 8))
        .expect("probe workload serves")
        .total_ms();
    600.0 / probe_ms
}

fn run_static(n: usize) -> Entry {
    let appliance = Appliance::timing_only(bench_cfg(), 1).expect("partitionable");
    let mix = bench_mix(n);
    let arrivals = ArrivalProcess::Poisson {
        rate_per_s: sustainable_rate(&appliance),
        seed: 0x5EED,
    };
    // lint: allow(ambient-time, wall-clock throughput is this bench's measurement, not a simulated quantity)
    let start = std::time::Instant::now();
    let report = ServingEngine::new(&appliance)
        .with_scheduler(Box::new(Fifo))
        .run(&mix, &arrivals)
        .expect("static sweep runs");
    Entry {
        shape: "static-fifo",
        requests: n,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        events: report.dispatches,
    }
}

fn run_continuous(n: usize) -> Entry {
    let appliance = Appliance::timing_only(bench_cfg(), 1).expect("partitionable");
    let mix = bench_mix(n);
    let arrivals = ArrivalProcess::Poisson {
        rate_per_s: sustainable_rate(&appliance),
        seed: 0x5EED,
    };
    // lint: allow(ambient-time, wall-clock throughput is this bench's measurement, not a simulated quantity)
    let start = std::time::Instant::now();
    let report = ServingEngine::new(&appliance)
        .with_scheduler(Box::new(ContinuousBatching::new(8)))
        .run(&mix, &arrivals)
        .expect("continuous sweep runs");
    Entry {
        shape: "continuous-batching",
        requests: n,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        events: report.dispatches,
    }
}

fn run_cluster(n: usize) -> Entry {
    let replicas: Vec<Appliance> = (0..4)
        .map(|_| Appliance::timing_only(bench_cfg(), 1).expect("partitionable"))
        .collect();
    let mix = bench_mix(n);
    let arrivals = ArrivalProcess::Poisson {
        rate_per_s: 4.0 * sustainable_rate(&replicas[0]),
        seed: 0x5EED,
    };
    // lint: allow(ambient-time, wall-clock throughput is this bench's measurement, not a simulated quantity)
    let start = std::time::Instant::now();
    let servers: Vec<&dyn Backend> = replicas.iter().map(|a| a as &dyn Backend).collect();
    let report = ClusterRouter::uniform(servers, Box::new(LeastKvLoaded))
        .expect("non-empty pool")
        .with_scheduler_factory(|| Box::new(ContinuousBatching::new(8)))
        .run(&mix, &arrivals)
        .expect("cluster sweep runs");
    let events: usize = report
        .replicas
        .iter()
        .filter_map(|r| r.report.as_ref())
        .map(|r| r.dispatches)
        .sum();
    Entry {
        shape: "cluster-least-kv",
        requests: n,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        events,
    }
}

/// Pulls `"requests_per_sec":<f64>` out of one baseline JSON line.
fn parse_rps(line: &str) -> Option<f64> {
    let rest = line.split("\"requests_per_sec\":").nth(1)?;
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Pulls `"shape":"<name>"` out of one baseline JSON line.
fn parse_shape(line: &str) -> Option<&str> {
    let rest = line.split("\"shape\":\"").nth(1)?;
    Some(&rest[..rest.find('"')?])
}

fn main() {
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    let mut check = false;
    let mut out_path = default_path.to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            // cargo-bench forwards its own flags (e.g. --bench); ignore.
            _ => {}
        }
    }

    let entries = [
        run_static(100_000),
        run_continuous(50_000),
        run_cluster(100_000),
    ];
    let mut doc = String::from("{\"schema\":\"dfx-hotpath-v1\"}\n");
    for e in &entries {
        let line = e.to_json();
        eprintln!("[hotpath] {line}");
        doc.push_str(&line);
        doc.push('\n');
    }

    if check {
        let baseline = std::fs::read_to_string(default_path).expect("committed baseline exists");
        let mut regressed = false;
        for e in &entries {
            let Some(base_rps) = baseline
                .lines()
                .find(|l| parse_shape(l) == Some(e.shape))
                .and_then(parse_rps)
            else {
                eprintln!("[hotpath] no baseline entry for {} — skipping", e.shape);
                continue;
            };
            let rps = e.requests as f64 / (e.wall_ms / 1e3).max(f64::MIN_POSITIVE);
            if rps * 2.0 < base_rps {
                eprintln!(
                    "[hotpath] REGRESSION: {} at {rps:.1} req/s, baseline {base_rps:.1} (>2x slower)",
                    e.shape
                );
                regressed = true;
            } else {
                eprintln!(
                    "[hotpath] {} ok: {rps:.1} req/s vs baseline {base_rps:.1}",
                    e.shape
                );
            }
        }
        if regressed {
            std::process::exit(1);
        }
    } else {
        std::fs::write(&out_path, doc).expect("write benchmark output");
        eprintln!("[hotpath] wrote {out_path}");
    }
}

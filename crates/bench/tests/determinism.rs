//! Cross-run determinism: the dynamic twin of lint rules R1/R2.
//!
//! `dfx-lint` bans the *sources* of nondeterminism (randomized
//! iteration order, wall clocks, ambient RNGs) statically; this harness
//! pins the *property* those bans exist for — identical seeds produce
//! bit-identical reports. Every comparison below is `==` on the full
//! report structure, so a single differing bit in any cell, note or
//! metric fails.

use dfx_bench::{experiments, observability};
use dfx_model::{GptConfig, Workload};
use dfx_serve::{ArrivalProcess, ContinuousBatching, ServingEngine};
use dfx_sim::Appliance;

#[test]
fn continuous_sweep_is_bit_identical_across_runs() {
    let run = || {
        let cfg = GptConfig::new("continuous-smoke", 64, 2, 2, 512, 640);
        experiments::continuous_setup(cfg, 1, 24, &[1, 4], &[5.0, 50.0], 20.0)
    };
    let first = run();
    let second = run();
    assert_eq!(
        first, second,
        "two in-process continuous sweeps with identical seeds diverged"
    );
}

#[test]
fn memory_sweep_is_bit_identical_across_runs() {
    let run = || {
        let cfg = GptConfig::new("memory-smoke", 64, 2, 2, 512, 640);
        experiments::memory_setup(cfg, 1, 12, &[1, 2], &[8], &[5.0, 50.0], 4)
    };
    let first = run();
    let second = run();
    assert_eq!(
        first, second,
        "two in-process memory sweeps with identical seeds diverged"
    );
}

#[test]
fn cluster_sweep_is_bit_identical_across_runs() {
    let run = || {
        let cfg = GptConfig::new("cluster-smoke", 64, 2, 2, 512, 640);
        experiments::cluster_setup(cfg, 2, 16, 200.0, 320, 4, &[1, 2])
    };
    let first = run();
    let second = run();
    assert_eq!(
        first, second,
        "two in-process cluster sweeps with identical seeds diverged"
    );
}

#[test]
fn sweeps_are_bit_identical_with_the_worker_pool_off() {
    // The experiment sweeps fan independent cells out over the
    // rayon-lite pool; `with_max_threads(1)` forces the same sweep
    // fully serial on the calling thread. Any divergence means a cell
    // read something it shouldn't (shared memo, accumulation order,
    // thread identity) — results must not depend on the thread count.
    let continuous = || {
        let cfg = GptConfig::new("continuous-smoke", 64, 2, 2, 512, 640);
        experiments::continuous_setup(cfg, 1, 24, &[1, 4], &[5.0, 50.0], 20.0)
    };
    let memory = || {
        let cfg = GptConfig::new("memory-smoke", 64, 2, 2, 512, 640);
        experiments::memory_setup(cfg, 1, 12, &[1, 2], &[8], &[5.0, 50.0], 4)
    };
    let cluster = || {
        let cfg = GptConfig::new("cluster-smoke", 64, 2, 2, 512, 640);
        experiments::cluster_setup(cfg, 2, 16, 200.0, 320, 4, &[1, 2])
    };
    let (pooled_c, pooled_m, pooled_k) = (continuous(), memory(), cluster());
    let serial_c = rayon_lite::with_max_threads(1, continuous);
    let serial_m = rayon_lite::with_max_threads(1, memory);
    let serial_k = rayon_lite::with_max_threads(1, cluster);
    assert_eq!(pooled_c, serial_c, "continuous sweep depends on the pool");
    assert_eq!(pooled_m, serial_m, "memory sweep depends on the pool");
    assert_eq!(pooled_k, serial_k, "cluster sweep depends on the pool");
}

#[test]
fn telemetry_dumps_are_byte_identical_across_runs() {
    // The acceptance property for `reproduce --metrics/--trace`: two
    // in-process captures of the same serving id produce byte-identical
    // Prometheus exposition text and Chrome trace JSON. Every serving id
    // is pinned, not just the headline `continuous` one.
    for id in observability::SERVING_IDS {
        let run = || {
            let cfg = GptConfig::new("telemetry-smoke", 64, 2, 2, 512, 640);
            observability::capture_setup(id, cfg, 1, 16, 50.0).expect("capture succeeds")
        };
        let first = run();
        let second = run();
        assert_eq!(
            first.metrics_text, second.metrics_text,
            "{id}: metrics text diverged between identical runs"
        );
        assert_eq!(
            first.trace_json, second.trace_json,
            "{id}: trace JSON diverged between identical runs"
        );
        assert_eq!(first, second, "{id}: dump metadata diverged");
    }
}

#[test]
fn service_reports_are_bit_identical_across_engine_runs() {
    // Below the sweep tables: the raw ServiceReport (every response's
    // timing, utilization, queue depths) from a seeded Poisson stream
    // through the continuous scheduler, twice.
    let run = || {
        let cfg = GptConfig::new("det-smoke", 64, 2, 2, 512, 640);
        let appliance = Appliance::timing_only(cfg, 1)?;
        let workloads: Vec<Workload> = (0..24)
            .map(|i| Workload::new(8 + (i % 5) * 4, 4 + (i % 3) * 2))
            .collect();
        let arrivals = ArrivalProcess::Poisson {
            rate_per_s: 40.0,
            seed: 7,
        };
        ServingEngine::new(&appliance)
            .with_scheduler(Box::new(ContinuousBatching::new(4)))
            .run(&workloads, &arrivals)
    };
    let first = run().expect("first run succeeds");
    let second = run().expect("second run succeeds");
    assert_eq!(first, second, "seeded engine runs diverged bit for bit");
}

//! Smoke tests for the paper harness: every experiment runner must
//! complete and produce a well-formed, non-degenerate report so that
//! regressions in `crates/bench/src/experiments/` are caught by
//! `cargo test`, not first noticed when someone reruns `reproduce`.

use dfx_bench::experiments;
use dfx_bench::table::ExperimentReport;
use dfx_model::GptConfig;
use dfx_sim::AccuracyTask;

/// A report is well-formed when it carries the expected id, at least one
/// table with at least one row, and renders to markdown free of NaN/inf
/// artifacts (a degenerate number in any cell is a harness regression).
fn assert_well_formed(report: &ExperimentReport, id: &str) {
    assert_eq!(report.id, id, "report id mismatch");
    assert!(!report.title.is_empty(), "{id}: empty title");
    assert!(!report.tables.is_empty(), "{id}: no tables");
    let md = report.to_markdown();
    assert!(md.contains('|'), "{id}: markdown has no table rows");
    // A degenerate float formats as `NaN`, `inf` or `-inf`; scan table
    // cells token-wise so prose like "buffer-infeasible" doesn't trip it.
    for line in md.lines().filter(|l| l.starts_with('|')) {
        for cell in line.split('|') {
            for token in cell.split_whitespace() {
                let token = token.trim_matches(|c: char| "()+%x,".contains(c));
                assert!(
                    !matches!(token, "NaN" | "-NaN" | "inf" | "-inf"),
                    "{id}: degenerate value in row: {line}"
                );
            }
        }
    }
}

#[test]
fn motivation_experiments_produce_reports() {
    assert_well_formed(&experiments::fig3(), "fig3");
    assert_well_formed(&experiments::fig4(), "fig4");
}

#[test]
fn design_experiments_produce_reports() {
    assert_well_formed(&experiments::fig8(), "fig8");
    assert_well_formed(&experiments::fig13(), "fig13");
}

#[test]
fn evaluation_experiments_produce_reports() {
    assert_well_formed(&experiments::fig15(), "fig15");
    assert_well_formed(&experiments::fig16(), "fig16");
    assert_well_formed(&experiments::fig17(), "fig17");
    assert_well_formed(&experiments::fig18(), "fig18");
    assert_well_formed(&experiments::table2(), "table2");
}

#[test]
fn table_experiments_produce_reports() {
    assert_well_formed(&experiments::table1(), "table1");
    // Micro task sets: the accuracy harness runs the bit-level functional
    // simulator per item, so even quick mode (~500 items) takes minutes
    // in debug builds. A handful of items per task exercises the same
    // path; `reproduce accuracy [--full]` covers the real sizes.
    let micro: Vec<AccuracyTask> = ["WSC", "CBT-CN", "CBT-NE"]
        .iter()
        .map(|name| AccuracyTask {
            name: (*name).into(),
            items: 5,
            context_len: 8,
        })
        .collect();
    assert_well_formed(&experiments::accuracy_with_tasks(&micro), "accuracy");
}

#[test]
fn ablation_experiment_produces_report() {
    assert_well_formed(&experiments::ablation(), "ablation");
}

#[test]
fn serving_experiment_produces_report_on_a_tiny_config() {
    // The headline sweep (`reproduce serving`) runs the 1.5B appliance;
    // this smoke config exercises the same engine/report machinery at
    // test speed. The in-module 345M unit test covers the qualitative
    // divergence shape.
    let cfg = GptConfig::new("serving-smoke", 64, 2, 2, 512, 640);
    let report = experiments::serving_setup(cfg, 1, 24, &[5.0, 50.0]);
    assert_well_formed(&report, "serving");
    assert_eq!(report.tables[0].rows.len(), 2);
}

#[test]
fn batching_experiment_produces_report_on_a_tiny_config() {
    // The headline sweep (`reproduce batching`) runs the 1.5B appliance;
    // this smoke config exercises the batched engine/report machinery at
    // test speed. The in-module tests cover the batch-1 == `serving`
    // identity and the GPU goodput shape.
    let cfg = GptConfig::new("batching-smoke", 64, 2, 2, 512, 640);
    let report = experiments::batching_setup(cfg, 1, 24, &[1, 4], &[5.0, 50.0], 20.0);
    assert_well_formed(&report, "batching");
    // 2 appliances x 2 batch sizes x 2 rates.
    assert_eq!(report.tables[0].rows.len(), 8);
}

#[test]
fn continuous_experiment_produces_report_on_a_tiny_config() {
    // The headline sweep (`reproduce continuous`) runs the 1.5B
    // appliance; this smoke config exercises the token-boundary
    // engine/report machinery at test speed. The in-module tests cover
    // the continuous batch-1 == `serving` identity and the
    // continuous-dominates-static shape.
    let cfg = GptConfig::new("continuous-smoke", 64, 2, 2, 512, 640);
    let report = experiments::continuous_setup(cfg, 1, 24, &[1, 4], &[5.0, 50.0], 20.0);
    assert_well_formed(&report, "continuous");
    // 2 appliances x (1 batch-1 + 2x2 discipline/batch) x 2 rates.
    assert_eq!(report.tables[0].rows.len(), 20);
}

#[test]
fn memory_experiment_produces_report_on_a_tiny_config() {
    // The headline sweep (`reproduce memory`) runs the 1.5B appliance;
    // this smoke config exercises the capacity/chunk/policy machinery
    // at test speed. The in-module tests cover the capacity-bounded
    // peak-batch shape, the chunked-prefill stall win and the PR-4
    // row-identity guarantee.
    let cfg = GptConfig::new("memory-smoke", 64, 2, 2, 512, 640);
    let report = experiments::memory_setup(cfg, 1, 12, &[1, 2], &[8], &[5.0, 50.0], 4);
    assert_well_formed(&report, "memory");
    assert_eq!(report.tables.len(), 4);
    // 2 capacities + the unbounded row.
    assert_eq!(report.tables[0].rows.len(), 3);
    // 2 rates x (whole + 1 chunk budget).
    assert_eq!(report.tables[1].rows.len(), 4);
    // greedy, slo-deferral, slo + chunk.
    assert_eq!(report.tables[2].rows.len(), 3);
    // 3 paged-sweep capacities x 4 allocators.
    assert_eq!(report.tables[3].rows.len(), 12);
}

#[test]
fn cluster_experiment_produces_report_on_a_tiny_config() {
    // The headline sweep (`reproduce cluster`) routes across four 1.5B
    // replicas; this smoke config exercises the router/report machinery
    // at test speed. The in-module tests cover the three acceptance
    // shapes: K/V-aware placement beating round-robin's resonant p99,
    // session affinity lifting prefix hits, and the disaggregated
    // topology's nonzero transfer cost.
    let cfg = GptConfig::new("cluster-smoke", 64, 2, 2, 512, 640);
    let report = experiments::cluster_setup(cfg, 2, 16, 200.0, 320, 4, &[1, 2]);
    assert_well_formed(&report, "cluster");
    assert_eq!(report.tables.len(), 4);
    // round-robin, least-outstanding, least-kv-loaded.
    assert_eq!(report.tables[0].rows.len(), 3);
    // sprayed vs pinned.
    assert_eq!(report.tables[1].rows.len(), 2);
    // unified vs disaggregated.
    assert_eq!(report.tables[2].rows.len(), 2);
    // one row per shard width.
    assert_eq!(report.tables[3].rows.len(), 2);
}

#[test]
fn every_catalog_id_is_runnable_and_vice_versa() {
    // The catalog is the single source of truth for `reproduce` — ids,
    // descriptions and dispatch live in one table, so an id cannot
    // exist without a runner. This pins the expected id set.
    let ids: Vec<&str> = experiments::CATALOG.iter().map(|e| e.id).collect();
    for required in [
        "table1",
        "fig3",
        "fig4",
        "fig8",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "table2",
        "accuracy",
        "ablation",
        "serving",
        "batching",
        "continuous",
        "memory",
        "cluster",
    ] {
        assert!(ids.contains(&required), "catalog is missing `{required}`");
    }
    assert_eq!(ids.len(), 18, "unexpected catalog entries: {ids:?}");
}

#[test]
fn fig14_grid_runs_on_a_tiny_config() {
    // The full fig14 report spans three paper-scale models; this tiny
    // model exercises the same grid machinery at test speed. The paper
    // grid reaches input 256 + output 256 tokens, so the smoke config
    // needs a longer context than `GptConfig::tiny()`'s 128.
    let cfg = GptConfig::new("fig14-smoke", 64, 2, 2, 512, 640);
    let grid = experiments::run_model(cfg, 1);
    assert_eq!(grid.gpu_ms.len(), grid.dfx_ms.len());
    assert!(!grid.gpu_ms.is_empty(), "empty fig14 grid");
    for (g, d) in grid.gpu_ms.iter().zip(&grid.dfx_ms) {
        assert!(g.is_finite() && *g > 0.0, "GPU latency degenerate: {g}");
        assert!(d.is_finite() && *d > 0.0, "DFX latency degenerate: {d}");
    }
    let speedup = grid.average_speedup();
    assert!(
        speedup.is_finite() && speedup > 0.0,
        "degenerate average speedup: {speedup}"
    );
}

// The full fig14 report simulates the complete 15-point grid on all three
// paper models (up to 256 generated tokens per point) — minutes in debug
// builds. The grid machinery is covered at test speed by
// `fig14_grid_runs_on_a_tiny_config` and by the in-module 345M unit test;
// run this one with `cargo test -- --ignored` or via `reproduce fig14`.
#[test]
#[ignore = "paper-scale grid; covered by the tiny-config test above"]
fn fig14_full_report_is_well_formed() {
    assert_well_formed(&experiments::fig14(), "fig14");
}

//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! reproduce <id>... [--full] [--write <path>] [--metrics <path>] [--trace <path>]
//!   ids: see `reproduce --help` (driven by `experiments::CATALOG`),
//!        or `all` to run everything
//!   --full     accuracy task sets at paper sizes (slow)
//!   --write    also write the combined markdown to <path>
//!   --metrics  write Prometheus metrics for the first serving id to <path>
//!   --trace    write a Chrome trace for the first serving id to <path>
//! ```
//!
//! `--metrics` / `--trace` run one traced, representative configuration
//! of the first selected serving-capable id (see
//! `dfx_bench::observability::SERVING_IDS`) and validate both dumps
//! in-process before writing; every timestamp is simulated time, so the
//! files are bit-identical across runs.

use dfx_bench::experiments::CATALOG;
use dfx_bench::observability::{self, SERVING_IDS};
use dfx_bench::table::ExperimentReport;
use std::io::Write as _;

fn run_one(id: &str, full: bool) -> ExperimentReport {
    // Dispatch through the catalog, so an id cannot exist without a
    // runner (and vice versa).
    match CATALOG.iter().find(|e| e.id == id) {
        Some(e) => (e.run)(full),
        None => {
            eprintln!("unknown experiment `{id}`; known ids:");
            eprint_catalog();
            std::process::exit(2);
        }
    }
}

fn eprint_catalog() {
    let width = CATALOG.iter().map(|e| e.id.len()).max().unwrap_or(0);
    for e in CATALOG {
        eprintln!("  {:width$}  {}", e.id, e.what);
    }
    eprintln!("  {:width$}  every id above, in order", "all");
}

fn usage() {
    eprintln!(
        "usage: reproduce <id|all>... [--full] [--write <path>] [--metrics <path>] \
         [--trace <path>]"
    );
    eprintln!("  --full     accuracy task sets at paper sizes (slow)");
    eprintln!("  --write    also write the combined markdown to <path>");
    eprintln!("  --metrics  write Prometheus metrics for the first serving id to <path>");
    eprintln!("  --trace    write a Chrome trace for the first serving id to <path>");
    eprintln!("known ids:");
    eprint_catalog();
}

/// Captures and writes the telemetry dumps for the first serving-capable
/// id among `selected`. Exits nonzero if no serving id was selected or
/// the capture fails its in-process validation.
fn write_observability(
    selected: &[&str],
    full: bool,
    metrics_path: Option<&str>,
    trace_path: Option<&str>,
) {
    let Some(id) = selected.iter().find(|id| SERVING_IDS.contains(id)) else {
        eprintln!(
            "[reproduce] --metrics/--trace need a serving id; known serving ids: {SERVING_IDS:?}"
        );
        std::process::exit(2);
    };
    eprintln!("[reproduce] capturing telemetry for {id}...");
    let dump = match observability::capture(id, full) {
        Ok(dump) => dump,
        Err(e) => {
            eprintln!("[reproduce] telemetry capture for {id} failed: {e}");
            std::process::exit(1);
        }
    };
    if let Some(path) = metrics_path {
        std::fs::write(path, &dump.metrics_text).expect("write metrics file");
        eprintln!(
            "[reproduce] wrote {path} ({} samples, validated)",
            dump.metric_samples
        );
    }
    if let Some(path) = trace_path {
        std::fs::write(path, &dump.trace_json).expect("write trace file");
        eprintln!(
            "[reproduce] wrote {path} ({} trace events, round-tripped)",
            dump.trace_events
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return;
    }
    let full = args.iter().any(|a| a == "--full");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let write_path = flag_value("--write");
    let metrics_path = flag_value("--metrics");
    let trace_path = flag_value("--trace");
    let flag_values = [&write_path, &metrics_path, &trace_path];
    let ids: Vec<String> = args
        .iter()
        .filter(|a| {
            !a.starts_with("--") && !flag_values.iter().any(|v| v.as_deref() == Some(a.as_str()))
        })
        .cloned()
        .collect();
    if ids.is_empty() {
        usage();
        std::process::exit(2);
    }

    let selected: Vec<&str> = if ids.iter().any(|i| i == "all") {
        CATALOG.iter().map(|e| e.id).collect()
    } else {
        ids.iter().map(String::as_str).collect()
    };

    let mut combined = String::from(
        "# DFX — regenerated evaluation\n\nEvery table is produced by \
         `cargo run -p dfx-bench --release --bin reproduce -- <id>`; \"paper\" columns quote \
         the published values for comparison.\n\n",
    );
    for &id in &selected {
        eprintln!("[reproduce] running {id}...");
        // lint: allow(ambient-time, progress display only; no simulated quantity depends on it)
        let start = std::time::Instant::now();
        let report = run_one(id, full);
        let md = report.to_markdown();
        println!("{md}");
        combined.push_str(&md);
        eprintln!(
            "[reproduce] {id} done in {:.1}s",
            start.elapsed().as_secs_f32()
        );
    }

    if let Some(path) = write_path {
        let mut f = std::fs::File::create(&path).expect("create output file");
        f.write_all(combined.as_bytes()).expect("write output file");
        eprintln!("[reproduce] wrote {path}");
    }

    if metrics_path.is_some() || trace_path.is_some() {
        write_observability(
            &selected,
            full,
            metrics_path.as_deref(),
            trace_path.as_deref(),
        );
    }
}

//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! reproduce <id>... [--full] [--write <path>]
//!   ids: see `reproduce --help` (driven by `experiments::CATALOG`),
//!        or `all` to run everything
//!   --full   accuracy task sets at paper sizes (slow)
//!   --write  also write the combined markdown to <path>
//! ```

use dfx_bench::experiments::CATALOG;
use dfx_bench::table::ExperimentReport;
use std::io::Write as _;

fn run_one(id: &str, full: bool) -> ExperimentReport {
    // Dispatch through the catalog, so an id cannot exist without a
    // runner (and vice versa).
    match CATALOG.iter().find(|e| e.id == id) {
        Some(e) => (e.run)(full),
        None => {
            eprintln!("unknown experiment `{id}`; known ids:");
            eprint_catalog();
            std::process::exit(2);
        }
    }
}

fn eprint_catalog() {
    let width = CATALOG.iter().map(|e| e.id.len()).max().unwrap_or(0);
    for e in CATALOG {
        eprintln!("  {:width$}  {}", e.id, e.what);
    }
    eprintln!("  {:width$}  every id above, in order", "all");
}

fn usage() {
    eprintln!("usage: reproduce <id|all>... [--full] [--write <path>]");
    eprintln!("  --full   accuracy task sets at paper sizes (slow)");
    eprintln!("  --write  also write the combined markdown to <path>");
    eprintln!("known ids:");
    eprint_catalog();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        return;
    }
    let full = args.iter().any(|a| a == "--full");
    let write_path = args
        .iter()
        .position(|a| a == "--write")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let ids: Vec<String> = args
        .into_iter()
        .filter(|a| !a.starts_with("--") && Some(a) != write_path.as_ref())
        .collect();
    if ids.is_empty() {
        usage();
        std::process::exit(2);
    }

    let selected: Vec<&str> = if ids.iter().any(|i| i == "all") {
        CATALOG.iter().map(|e| e.id).collect()
    } else {
        ids.iter().map(String::as_str).collect()
    };

    let mut combined = String::from(
        "# DFX — regenerated evaluation\n\nEvery table is produced by \
         `cargo run -p dfx-bench --release --bin reproduce -- <id>`; \"paper\" columns quote \
         the published values for comparison.\n\n",
    );
    for id in selected {
        eprintln!("[reproduce] running {id}...");
        // lint: allow(ambient-time, progress display only; no simulated quantity depends on it)
        let start = std::time::Instant::now();
        let report = run_one(id, full);
        let md = report.to_markdown();
        println!("{md}");
        combined.push_str(&md);
        eprintln!(
            "[reproduce] {id} done in {:.1}s",
            start.elapsed().as_secs_f32()
        );
    }

    if let Some(path) = write_path {
        let mut f = std::fs::File::create(&path).expect("create output file");
        f.write_all(combined.as_bytes()).expect("write output file");
        eprintln!("[reproduce] wrote {path}");
    }
}

//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! reproduce <id> [--full] [--write <path>]
//!   ids: table1 fig3 fig4 fig8 fig13 fig14 fig15 fig16 fig17 fig18
//!        table2 accuracy ablation serving all
//!   --full   accuracy task sets at paper sizes (slow)
//!   --write  also write the combined markdown to <path>
//! ```

use dfx_bench::experiments;
use dfx_bench::table::ExperimentReport;
use std::io::Write as _;

const IDS: [&str; 14] = [
    "table1", "fig3", "fig4", "fig8", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
    "table2", "accuracy", "ablation", "serving",
];

fn run_one(id: &str, full: bool) -> ExperimentReport {
    match id {
        "table1" => experiments::table1(),
        "fig3" => experiments::fig3(),
        "fig4" => experiments::fig4(),
        "fig8" => experiments::fig8(),
        "fig13" => experiments::fig13(),
        "fig14" => experiments::fig14(),
        "fig15" => experiments::fig15(),
        "fig16" => experiments::fig16(),
        "fig17" => experiments::fig17(),
        "fig18" => experiments::fig18(),
        "table2" => experiments::table2(),
        "accuracy" => experiments::accuracy(full),
        "ablation" => experiments::ablation(),
        "serving" => experiments::serving(),
        other => {
            eprintln!("unknown experiment `{other}`; known: {IDS:?} or `all`");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let write_path = args
        .iter()
        .position(|a| a == "--write")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let ids: Vec<String> = args
        .into_iter()
        .filter(|a| !a.starts_with("--") && Some(a) != write_path.as_ref())
        .collect();
    if ids.is_empty() {
        eprintln!("usage: reproduce <id|all> [--full] [--write <path>]");
        eprintln!("known ids: {IDS:?}");
        std::process::exit(2);
    }

    let selected: Vec<&str> = if ids.iter().any(|i| i == "all") {
        IDS.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };

    let mut combined = String::from(
        "# DFX — regenerated evaluation\n\nEvery table is produced by \
         `cargo run -p dfx-bench --release --bin reproduce -- <id>`; \"paper\" columns quote \
         the published values for comparison.\n\n",
    );
    for id in selected {
        eprintln!("[reproduce] running {id}...");
        let start = std::time::Instant::now();
        let report = run_one(id, full);
        let md = report.to_markdown();
        println!("{md}");
        combined.push_str(&md);
        eprintln!(
            "[reproduce] {id} done in {:.1}s",
            start.elapsed().as_secs_f32()
        );
    }

    if let Some(path) = write_path {
        let mut f = std::fs::File::create(&path).expect("create output file");
        f.write_all(combined.as_bytes()).expect("write output file");
        eprintln!("[reproduce] wrote {path}");
    }
}

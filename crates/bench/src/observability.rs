//! Telemetry capture for the serving experiments.
//!
//! The `reproduce` harness's `--metrics <path>` / `--trace <path>` flags
//! are backed by this module: for a serving-capable catalog id it runs
//! one representative traced configuration, records the report into a
//! [`MetricsRegistry`], assembles the per-request [`RunTrace`], and
//! validates both rendered formats in-process (Prometheus text
//! line-by-line, Chrome trace JSON by a parse → render round-trip)
//! before handing them back. Everything downstream of the seeded
//! arrival process is simulated time, so both dumps are bit-identical
//! across runs — `crates/bench/tests/determinism.rs` pins that.

use dfx_model::GptConfig;
use dfx_serve::telemetry::{self, Json, Labels, MetricsRegistry, RunTrace};
use dfx_serve::{
    chatbot_mix, ArrivalProcess, Batching, ClusterRouter, ContinuousBatching, Fifo, RoundRobin,
    Scheduler, ServingEngine,
};
use dfx_sim::{Appliance, SimError};

/// One rendered observability dump: both export formats plus the counts
/// the harness prints so a CI log shows the capture was non-trivial.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservabilityDump {
    /// The catalog id the capture ran for.
    pub id: String,
    /// Prometheus text exposition, already validated line-by-line.
    pub metrics_text: String,
    /// Chrome trace-event JSON, already validated by a parse → render
    /// round-trip through the vendored parser.
    pub trace_json: String,
    /// Number of metric samples in [`metrics_text`](Self::metrics_text).
    pub metric_samples: usize,
    /// Number of events in the trace's `traceEvents` array.
    pub trace_events: usize,
}

/// The catalog ids that accept `--metrics` / `--trace`: the ones whose
/// experiment is a [`ServingEngine`] (or cluster) request stream rather
/// than a batch latency grid.
pub const SERVING_IDS: &[&str] = &["serving", "batching", "continuous", "memory", "cluster"];

/// Captures the telemetry dump for `id` at the headline scale the
/// `reproduce` harness uses: GPT-2 1.5B on 4 devices, a seeded Poisson
/// chatbot-mix stream (`--full` lengthens the stream to the paper-sized
/// 200 requests).
pub fn capture(id: &str, full: bool) -> Result<ObservabilityDump, SimError> {
    let n_requests = if full { 200 } else { 64 };
    capture_setup(id, GptConfig::gpt2_1_5b(), 4, n_requests, 1.0)
}

/// Parameterized capture: one traced representative run per serving id
/// on the given model/cluster scale. The determinism tests call this at
/// smoke scale so two in-process runs can be byte-compared in debug
/// builds.
pub fn capture_setup(
    id: &str,
    cfg: GptConfig,
    devices: usize,
    n_requests: usize,
    rate_per_s: f64,
) -> Result<ObservabilityDump, SimError> {
    let stream = chatbot_mix(n_requests, cfg.max_seq_len);
    let arrivals = ArrivalProcess::Poisson {
        rate_per_s,
        seed: 0x5EED,
    };
    let extra = Labels::new().with("experiment", id);
    let mut reg = MetricsRegistry::new();
    let trace = match id {
        "cluster" => {
            // Two appliance replicas behind a round-robin router: the
            // cluster tier has no per-token stepping seam, so the trace
            // carries the coarse queued/service spans.
            let a = Appliance::timing_only(cfg.clone(), devices)?;
            let b = Appliance::timing_only(cfg, devices)?;
            let mut router = ClusterRouter::uniform(vec![&a, &b], Box::new(RoundRobin::new()))?;
            let report = router.run(&stream, &arrivals)?;
            telemetry::record_cluster_report(&mut reg, &report, &extra);
            RunTrace::from_responses(&report.placement, &report.scheduler, &report.responses)
        }
        "serving" | "batching" | "continuous" | "memory" => {
            let dfx = Appliance::timing_only(cfg, devices)?;
            // The discipline each experiment is about: FIFO for the
            // batch-1 serving reference, the padded coalescer for the
            // batching and memory sweeps, token-boundary admission for
            // continuous.
            let scheduler: Box<dyn Scheduler> = match id {
                "serving" => Box::new(Fifo),
                "batching" | "memory" => Box::new(Batching::new(8, 500.0)),
                _ => Box::new(ContinuousBatching::new(8)),
            };
            let (report, trace) = ServingEngine::new(&dfx)
                .with_scheduler(scheduler)
                .run_traced(&stream, &arrivals)?;
            telemetry::record_service_report(&mut reg, &report, &extra);
            trace
        }
        other => {
            return Err(SimError::Service(format!(
                "experiment `{other}` has no serving telemetry capture; \
                 serving ids: {SERVING_IDS:?}"
            )))
        }
    };

    let metrics_text = reg.render();
    let metric_samples =
        telemetry::validate_prometheus(&metrics_text).map_err(SimError::Service)?;
    trace.validate().map_err(SimError::Service)?;
    let trace_json = trace.to_chrome_json();
    let parsed = Json::parse(&trace_json).map_err(SimError::Service)?;
    if parsed.render() != trace_json {
        return Err(SimError::Service(
            "trace JSON does not round-trip through the vendored parser".into(),
        ));
    }
    Ok(ObservabilityDump {
        id: id.to_string(),
        metrics_text,
        trace_json,
        metric_samples,
        trace_events: count_trace_events(&parsed),
    })
}

fn count_trace_events(doc: &Json) -> usize {
    if let Json::Obj(fields) = doc {
        for (key, value) in fields {
            if key == "traceEvents" {
                if let Json::Arr(events) = value {
                    return events.len();
                }
            }
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke(id: &str) -> ObservabilityDump {
        capture_setup(
            id,
            GptConfig::new("obs-smoke", 64, 2, 2, 512, 640),
            1,
            16,
            50.0,
        )
        .expect("capture succeeds")
    }

    #[test]
    fn every_serving_id_captures_a_valid_dump() {
        for id in SERVING_IDS {
            let dump = smoke(id);
            assert!(dump.metric_samples > 0, "{id}: no metric samples");
            assert!(dump.trace_events > 0, "{id}: no trace events");
            assert!(
                dump.metrics_text.contains("dfx_ttft_ms"),
                "{id}: TTFT percentiles missing from the metrics dump"
            );
            assert!(dump.metrics_text.contains("dfx_itl_ms"), "{id}: no ITL");
            assert!(
                dump.metrics_text.contains(&format!("experiment=\"{id}\"")),
                "{id}: experiment label missing"
            );
        }
    }

    #[test]
    fn non_serving_ids_are_a_typed_error() {
        let err = capture_setup(
            "fig14",
            GptConfig::new("obs-smoke", 64, 2, 2, 512, 640),
            1,
            4,
            50.0,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::Service(m) if m.contains("no serving telemetry")));
    }

    #[test]
    fn continuous_capture_records_energy_and_token_events() {
        let dump = smoke("continuous");
        // The appliance models board power, so energy reaches the
        // metrics dump; the continuous path traces per-token instants.
        assert!(dump.metrics_text.contains("dfx_energy_joules"));
        assert!(dump.trace_json.contains("\"ph\":\"i\""));
    }
}

//! # dfx-bench — the benchmark harness
//!
//! Regenerates every table and figure of the paper's evaluation section
//! from the simulator and the calibrated baselines, printing the same
//! rows/series the paper reports side by side with the published values.
//!
//! Run `cargo run -p dfx-bench --release --bin reproduce -- all` to
//! regenerate everything, or pass an individual id (`fig14`, `table2`,
//! `batching`, ...). [`experiments::CATALOG`] lists every id with what
//! it regenerates (also printed by `reproduce --help`); see
//! `ARCHITECTURE.md` at the repository root for the paper-section ↔
//! crate map. Criterion benches (`cargo bench`) measure the simulator's
//! own component performance.
//!
//! Experiments produce [`table::ExperimentReport`]s — plain data that
//! renders to GitHub-flavoured markdown:
//!
//! ```
//! use dfx_bench::experiments::CATALOG;
//! use dfx_bench::table::{fmt, ExperimentReport, MdTable};
//!
//! // Every reproduce id is documented...
//! assert!(CATALOG.iter().any(|e| e.id == "batching"));
//!
//! // ...and every experiment returns the same report shape.
//! let mut report = ExperimentReport::new("demo", "A demo report");
//! let mut table = MdTable::new("One row", &["x", "y"]);
//! table.push_row(vec![fmt(1.0, 1), fmt(2.5, 1)]);
//! report.table(table);
//! assert!(report.to_markdown().contains("| 1.0 | 2.5 |"));
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod observability;
pub mod paper;
pub mod table;

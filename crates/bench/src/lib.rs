//! # dfx-bench — the benchmark harness
//!
//! Regenerates every table and figure of the paper's evaluation section
//! from the simulator and the calibrated baselines, printing the same
//! rows/series the paper reports side by side with the published values.
//!
//! Run `cargo run -p dfx-bench --release --bin reproduce -- all` to
//! regenerate everything, or pass an individual id (`fig14`, `table2`,
//! ...). Criterion benches (`cargo bench`) measure the simulator's own
//! component performance.

#![warn(missing_docs)]

pub mod experiments;
pub mod paper;
pub mod table;

//! Published reference values from the paper, used as comparison columns
//! in the regenerated tables (values transcribed from the figures' data
//! labels; averages cross-checked against the headline speedups).

/// The Fig 14/16 workload grid in row order: inputs {32, 64, 128} ×
/// outputs {1, 4, 16, 64, 256}.
pub const GRID: [(usize, usize); 15] = [
    (32, 1),
    (32, 4),
    (32, 16),
    (32, 64),
    (32, 256),
    (64, 1),
    (64, 4),
    (64, 16),
    (64, 64),
    (64, 256),
    (128, 1),
    (128, 4),
    (128, 16),
    (128, 64),
    (128, 256),
];

/// Fig 14, GPU appliance latency (ms), 345M on 1 V100.
pub const FIG14_GPU_345M: [f64; 15] = [
    38.1, 150.1, 592.4, 2370.4, 9506.4, 39.7, 151.1, 593.9, 2362.1, 9554.8, 40.1, 152.0, 595.0,
    2378.6, 9449.7,
];

/// Fig 14, GPU appliance latency (ms), 774M on 2 V100s.
pub const FIG14_GPU_774M: [f64; 15] = [
    66.5, 250.5, 984.6, 3915.8, 15877.4, 67.0, 248.5, 982.8, 3903.6, 15558.7, 67.7, 251.2, 979.3,
    4150.8, 17692.3,
];

/// Fig 14, GPU appliance latency (ms), 1.5B on 4 V100s.
pub const FIG14_GPU_1_5B: [f64; 15] = [
    86.7, 310.3, 1276.4, 5232.2, 19873.6, 100.5, 357.6, 1187.5, 4921.2, 19072.1, 89.1, 311.7,
    1313.5, 5193.2, 22869.4,
];

/// Fig 14, DFX latency (ms), 345M on 1 U280.
pub const FIG14_DFX_345M: [f64; 15] = [
    177.2, 193.4, 257.8, 515.6, 1546.8, 349.1, 365.2, 429.7, 1031.2, 1718.7, 692.8, 709.0, 773.4,
    1031.2, 2062.4,
];

/// Fig 14, DFX latency (ms), 774M on 2 U280s.
pub const FIG14_DFX_774M: [f64; 15] = [
    224.2, 244.6, 326.1, 652.3, 1956.8, 441.6, 462.0, 543.6, 869.7, 2174.2, 876.5, 896.9, 978.4,
    1304.5, 2609.1,
];

/// Fig 14, DFX latency (ms), 1.5B on 4 U280s.
pub const FIG14_DFX_1_5B: [f64; 15] = [
    227.0, 247.6, 330.2, 660.4, 1981.1, 447.1, 467.8, 550.3, 880.5, 2201.2, 887.4, 908.0, 990.6,
    1320.7, 2641.5,
];

/// Fig 14 headline average speedups (345M, 774M, 1.5B).
pub const FIG14_SPEEDUPS: [f64; 3] = [3.20, 4.46, 5.58];

/// Fig 15: DFX latency breakdown on the 1.5B model, percent —
/// Self-Attention, FFN, Synchronization, LayerNorm, Residual.
pub const FIG15_SHARES: [f64; 5] = [43.0, 29.6, 17.3, 9.3, 0.8];

/// Fig 16 averages: throughput ratio and energy-efficiency ratio.
pub const FIG16_THROUGHPUT_RATIO: f64 = 3.78;
/// Fig 16 energy-efficiency ratio.
pub const FIG16_ENERGY_RATIO: f64 = 3.99;

/// Fig 17 GFLOPS (345M, 64:64): GPU summarization/generation/total.
pub const FIG17_GPU: [f64; 3] = [1632.1, 40.6, 80.4];
/// Fig 17 GFLOPS: TPU.
pub const FIG17_TPU: [f64; 3] = [674.5, 8.2, 16.1];
/// Fig 17 GFLOPS: DFX (1 FPGA).
pub const FIG17_DFX: [f64; 3] = [185.6, 181.8, 184.1];

/// Fig 18: DFX tokens/s on the 345M model at 64:64 for 1/2/4 FPGAs.
pub const FIG18_TOKENS_PER_S: [f64; 3] = [93.10, 146.25, 207.56];

/// Fig 4 latency shares on the GPU: LayerNorm, Self-Attention, Residual,
/// FFN.
pub const FIG4_LATENCY_SHARES: [f64; 4] = [9.9, 56.5, 12.9, 20.7];
/// Fig 4 operation-count shares: LayerNorm, Self-Attention, Residual,
/// FFN.
pub const FIG4_OP_SHARES: [f64; 4] = [0.1, 33.31, 0.01, 66.59];

/// Fig 3 headline: average extra latency per output token on the GPU.
pub const FIG3_MS_PER_OUTPUT_TOKEN: f64 = 75.45;
/// Fig 3 headline: average extra latency per input token on the GPU.
pub const FIG3_MS_PER_INPUT_TOKEN: f64 = 0.02;

/// Table II: GPU appliance throughput (tokens/s).
pub const TABLE2_GPU_TPS: f64 = 13.01;
/// Table II: DFX throughput (tokens/s).
pub const TABLE2_DFX_TPS: f64 = 72.68;
/// Table II: cost-effectiveness advantage.
pub const TABLE2_ADVANTAGE: f64 = 8.21;

/// Fig 13 totals: device utilisation percentages (LUT, FF, BRAM, URAM,
/// DSP).
pub const FIG13_TOTAL_PERCENT: [f64; 5] = [39.93, 42.52, 59.13, 10.83, 39.15];

/// §VII-A accuracy deltas vs the GPU (WSC, CBT-CN, CBT-NE), percent.
pub const ACCURACY_DELTAS: [f64; 3] = [0.0, -0.3, 0.15];

//! Minimal report/table rendering shared by all experiment runners.

use serde::{Deserialize, Serialize};

/// A markdown table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MdTable {
    /// Optional caption printed above the table.
    pub caption: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl MdTable {
    /// Creates a table with a caption and header.
    pub fn new(caption: impl Into<String>, header: &[&str]) -> Self {
        MdTable {
            caption: caption.into(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.caption.is_empty() {
            out.push_str(&format!("**{}**\n\n", self.caption));
        }
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.header.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// A complete experiment report: tables plus explanatory notes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Short id, e.g. `"fig14"`.
    pub id: String,
    /// Title, e.g. `"Figure 14: inference latency"`.
    pub title: String,
    /// Free-form notes (substitutions, calibration remarks, paper
    /// inconsistencies).
    pub notes: Vec<String>,
    /// The tables.
    pub tables: Vec<MdTable>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        ExperimentReport {
            id: id.into(),
            title: title.into(),
            notes: Vec::new(),
            tables: Vec::new(),
        }
    }

    /// Adds a note.
    pub fn note(&mut self, text: impl Into<String>) -> &mut Self {
        self.notes.push(text.into());
        self
    }

    /// Adds a table.
    pub fn table(&mut self, table: MdTable) -> &mut Self {
        self.tables.push(table);
        self
    }

    /// Renders the whole report as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {}\n\n", self.title);
        for n in &self.notes {
            out.push_str(&format!("- {n}\n"));
        }
        if !self.notes.is_empty() {
            out.push('\n');
        }
        for t in &self.tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimals.
pub fn fmt(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Formats a ratio as `N.NNx`.
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = MdTable::new("Demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = MdTable::new("", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn report_rendering() {
        let mut r = ExperimentReport::new("fig0", "Figure 0");
        r.note("a note");
        r.table(MdTable::new("t", &["x"]));
        let md = r.to_markdown();
        assert!(md.starts_with("## Figure 0"));
        assert!(md.contains("- a note"));
    }
}

//! Figures 3 and 4: the motivation experiments on the GPU appliance.
//!
//! [`fig3`] regenerates Figure 3 — GPU text-generation latency as the
//! input grows (`[128:1]`…`[32:1]`) and the output grows
//! (`[32:2]`…`[32:4]`) on GPT-2 1.5B across 4 V100s; its only knob is
//! the fixed [`Workload::fig3_sweep`] grid, and it emits one table with
//! a row per workload split into summarization/generation/total ms.
//! [`fig4`] regenerates Figure 4 — the per-layer latency shares of the
//! four decoder op classes next to their FLOP shares, one table with a
//! row per class (simulated share, paper share, FLOP share), showing the
//! kernel-overhead domination that motivates DFX.

use crate::paper;
use crate::table::{fmt, ExperimentReport, MdTable};
use dfx_baseline::GpuModel;
use dfx_model::{flops, GptConfig, Workload};

/// Figure 3: GPU latency as input tokens grow (leftward) and output
/// tokens grow (rightward) for the 1.5B model.
pub fn fig3() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig3",
        "Figure 3: GPU text-generation latency vs input/output size (GPT-2 1.5B)",
    );
    let gpu = GpuModel::new(GptConfig::gpt2_1_5b(), 4);
    let mut t = MdTable::new(
        "Latency split by stage",
        &["[in:out]", "summarization ms", "generation ms", "total ms"],
    );
    for w in Workload::fig3_sweep() {
        let r = gpu.run(w);
        t.push_row(vec![
            w.to_string(),
            fmt(r.summarization_ms, 1),
            fmt(r.generation_ms, 1),
            fmt(r.total_ms(), 1),
        ]);
    }
    report.table(t);

    // Headline slopes.
    let out_slope = {
        let a = gpu.run(Workload::new(32, 1)).total_ms();
        let b = gpu.run(Workload::new(32, 4)).total_ms();
        (b - a) / 3.0
    };
    let in_slope = {
        let a = gpu.run(Workload::new(32, 1)).total_ms();
        let b = gpu.run(Workload::new(128, 1)).total_ms();
        (b - a) / 96.0
    };
    report.note(format!(
        "Per-output-token slope: {:.2} ms (paper: {:.2} ms); per-input-token slope: {:.3} ms \
         (paper: {:.2} ms).",
        out_slope,
        paper::FIG3_MS_PER_OUTPUT_TOKEN,
        in_slope,
        paper::FIG3_MS_PER_INPUT_TOKEN
    ));
    report
}

/// Figure 4: GPU latency breakdown vs operation-count breakdown.
pub fn fig4() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig4",
        "Figure 4: GPT-2 latency and operation-count breakdown on the GPU",
    );
    report.note(
        "Demonstrates the paper's motivation: LayerNorm + Residual consume ~22.8% of GPU time \
         at ~0.11% of the operations.",
    );
    let gpu = GpuModel::new(GptConfig::gpt2_1_5b(), 4);
    let lat = gpu.layer_breakdown(64).shares_percent();
    let ops = flops::token_step_flops(&GptConfig::gpt2_1_5b(), 64).shares_percent();

    let mut t = MdTable::new(
        "Shares per op class (generation stage, 1.5B)",
        &[
            "class",
            "latency % (sim)",
            "latency % (paper)",
            "operations % (sim)",
            "operations % (paper)",
        ],
    );
    let names = [
        "LayerNorm",
        "Self-Attention",
        "Residual",
        "Feed-Forward Network",
    ];
    for i in 0..4 {
        t.push_row(vec![
            names[i].into(),
            fmt(lat[i], 1),
            fmt(paper::FIG4_LATENCY_SHARES[i], 1),
            fmt(ops[i], 2),
            fmt(paper::FIG4_OP_SHARES[i], 2),
        ]);
    }
    report.table(t);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_report_has_seven_rows_and_slopes() {
        let r = fig3();
        assert_eq!(r.tables[0].rows.len(), 7);
        assert!(r.notes[0].contains("slope"));
    }

    #[test]
    fn fig4_shares_are_percentages() {
        let r = fig4();
        let sum: f64 = r.tables[0]
            .rows
            .iter()
            .map(|row| row[1].parse::<f64>().unwrap())
            .sum();
        assert!((sum - 100.0).abs() < 0.5, "{sum}");
    }
}

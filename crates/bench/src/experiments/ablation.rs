//! Ablations of the paper's design choices (DESIGN.md §4).
//!
//! Not paper figures — these quantify claims the paper makes in prose:
//!
//! 1. **Transpose scheme** (§V-B): DFX's write-side Value transpose
//!    (plus the Value-first instruction order) against the conventional
//!    read-side on-chip transpose the paper rejects.
//! 2. **Intra-layer vs pipelined parallelism** (§IV-B): pipelining cannot
//!    reduce text-generation latency because of the feedback loop.
//! 3. **Scoreboard hazard tracking** (§V-A): how much of the critical
//!    path the RAW/WAW dependencies account for (failure injection).
//! 4. **Tiling direction** (§V-B, Fig 9): buffering vs input-reuse
//!    trade-off of horizontal/vertical/zigzag weight traversal.
//!
//! No knobs — each ablation compares the paper's choice against its
//! rejected alternative at a fixed operating point. Output shape: one
//! table per ablation, one row per design variant, with latency (or
//! buffer/reuse figures) and the ratio to the paper's design.

use crate::table::{fmt, fmt_ratio, ExperimentReport, MdTable};
use dfx_core::{CoreParams, TimingCore};
use dfx_isa::{BuilderOptions, ParallelConfig, ProgramBuilder, QkvOrder};
use dfx_model::{GptConfig, Workload};
use dfx_sim::{pipelined_generate_timed, Appliance};

/// Times one generation-stage token step under a QKV emission order.
fn step_ms(cfg: &GptConfig, cores: usize, order: QkvOrder) -> f64 {
    let builder = ProgramBuilder::with_options(
        cfg.clone(),
        ParallelConfig::new(0, cores),
        BuilderOptions { qkv_order: order },
    )
    .expect("partitionable");
    let engine = TimingCore::new(CoreParams::default(), cores as u32);
    engine
        .time_step(&builder.token_step(64, true))
        .total
        .to_millis()
}

/// Runs all ablations.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new("ablation", "Ablations of the paper's design choices");

    // 1. Transpose scheme.
    let mut t1 = MdTable::new(
        "Value transpose scheme (§V-B) — one generation step at context 64",
        &[
            "model",
            "cores",
            "DFX: write-side + Value-first ms",
            "write-side, naive Q,K,V order ms",
            "conventional read-side transpose ms",
        ],
    );
    for (cfg, cores) in [
        (GptConfig::gpt2_345m(), 1usize),
        (GptConfig::gpt2_1_5b(), 4),
    ] {
        let paper_scheme = step_ms(&cfg, cores, QkvOrder::ValueFirst);
        let naive_order = step_ms(&cfg, cores, QkvOrder::ValueLast);
        let read_side = {
            let builder = ProgramBuilder::new(cfg.clone(), ParallelConfig::new(0, cores))
                .expect("partitionable");
            let engine =
                TimingCore::new(CoreParams::default(), cores as u32).with_read_side_transpose();
            engine
                .time_step(&builder.token_step(64, true))
                .total
                .to_millis()
        };
        t1.push_row(vec![
            cfg.name.clone(),
            cores.to_string(),
            fmt(paper_scheme, 3),
            fmt(naive_order, 3),
            format!(
                "{} (+{:.0}%)",
                fmt(read_side, 3),
                100.0 * (read_side - paper_scheme) / paper_scheme
            ),
        ]);
    }
    report.note(
        "The write-side transpose removes the read-side cost entirely; once it exists, the          Value-first reordering is cheap insurance (the per-head write transposes finish          behind the K/Q projections in either order at these sizes, so the two orders differ          by under 2%). The *conventional* scheme the paper rejects — transposing each head's          t x d_head Value block in on-chip memory at read time — is the expensive one.",
    );
    report.table(t1);

    // 2. Intra-layer vs pipelined parallelism.
    let mut t2 = MdTable::new(
        "Intra-layer vs pipelined parallelism (§IV-B), 4 devices, [32:32]",
        &[
            "model",
            "single device ms",
            "pipelined (4 stages) ms",
            "intra-layer (4-way) ms",
            "intra-layer advantage",
        ],
    );
    let w = Workload::new(32, 32);
    for cfg in [GptConfig::gpt2_345m(), GptConfig::gpt2_1_5b()] {
        let single = Appliance::timing_only(cfg.clone(), 1)
            .expect("1 device")
            .generate_timed(w.input_len, w.output_len)
            .expect("workload")
            .total_latency_ms();
        let pipe = pipelined_generate_timed(&cfg, 4, w).expect("4 stages");
        let intra = Appliance::timing_only(cfg.clone(), 4)
            .expect("4 devices")
            .generate_timed(w.input_len, w.output_len)
            .expect("workload")
            .total_latency_ms();
        t2.push_row(vec![
            cfg.name.clone(),
            fmt(single, 1),
            fmt(pipe.latency_ms, 1),
            fmt(intra, 1),
            fmt_ratio(pipe.latency_ms / intra),
        ]);
    }
    report.note(
        "Pipelined parallelism adds inter-stage hops without reducing per-token latency (the \
         generation feedback loop defeats pipelining), while intra-layer parallelism divides \
         the matrix work — the paper's reason for choosing the latter.",
    );
    report.table(t2);

    // 3. Scoreboard failure injection.
    let mut t3 = MdTable::new(
        "Scoreboard hazard tracking (§V-A) — one generation step, 1.5B / 4 cores",
        &["configuration", "step ms", "note"],
    );
    let cfg = GptConfig::gpt2_1_5b();
    let builder = ProgramBuilder::new(cfg.clone(), ParallelConfig::new(0, 4)).expect("4-way");
    let program = builder.token_step(64, true);
    let with = TimingCore::new(CoreParams::default(), 4).time_step(&program);
    let without = TimingCore::new(CoreParams::default(), 4)
        .without_scoreboard()
        .time_step(&program);
    t3.push_row(vec![
        "scoreboard enabled".into(),
        fmt(with.total.to_millis(), 3),
        "correct execution".into(),
    ]);
    t3.push_row(vec![
        "scoreboard disabled".into(),
        fmt(without.total.to_millis(), 3),
        "ignores RAW/WAW — unsafe lower bound".into(),
    ]);
    report.note(format!(
        "Dependency stalls account for {:.1}% of the step's critical path — work the \
         chaining/bypass design keeps, and the scoreboard keeps *correct*.",
        100.0 * (with.total.to_millis() - without.total.to_millis()) / with.total.to_millis()
    ));
    report.table(t3);

    // 4. Tiling direction (Fig 9 discussion).
    let mut t4 = MdTable::new(
        "Weight traversal direction (§V-B, Fig 9) — FFN1 partition 1536x1536, d=64 l=16",
        &[
            "direction",
            "live partial-sum groups",
            "input fetches per d-block",
            "verdict",
        ],
    );
    use dfx_hw::{TileShape, WalkOrder};
    for (order, verdict) in [
        (
            WalkOrder::Horizontal,
            "max reuse; buffer-infeasible on-chip",
        ),
        (WalkOrder::Vertical, "one buffer; register-file traffic x24"),
        (WalkOrder::Zigzag, "the paper's balance (d x d blocks)"),
    ] {
        let a = order.analysis(TileShape::PAPER, 1536, 1536);
        t4.push_row(vec![
            format!("{order:?}"),
            a.partial_sum_groups.to_string(),
            a.input_fetches_per_block.to_string(),
            verdict.into(),
        ]);
    }
    report.table(t4);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_side_transpose_beats_read_side() {
        let cfg = GptConfig::gpt2_345m();
        let paper_scheme = step_ms(&cfg, 1, QkvOrder::ValueFirst);
        let naive_order = step_ms(&cfg, 1, QkvOrder::ValueLast);
        // Ordering is near-neutral once the transpose is on the write
        // side...
        assert!((naive_order - paper_scheme).abs() / paper_scheme < 0.05);
        // ...but the conventional read-side transpose costs real time.
        let builder = ProgramBuilder::new(cfg.clone(), ParallelConfig::new(0, 1)).unwrap();
        let read_side = TimingCore::new(CoreParams::default(), 1)
            .with_read_side_transpose()
            .time_step(&builder.token_step(64, true))
            .total
            .to_millis();
        assert!(
            read_side > 1.05 * paper_scheme,
            "read-side {read_side} vs write-side {paper_scheme}"
        );
    }

    #[test]
    fn ablation_report_has_four_tables() {
        let r = run();
        assert_eq!(r.tables.len(), 4);
    }
}

//! Batched serving experiment: the latency/throughput trade-off of
//! §III-A, measured instead of asserted.
//!
//! Not a paper figure — the paper *argues* that GPUs need batching to
//! reach throughput while datacenter text generation cannot afford the
//! wait, and evaluates only batch-1 latency. This experiment closes that
//! loop with the batched cost models: the same seeded Poisson stream of
//! chatbot-mix requests runs through a [`Batching`] scheduler (max batch
//! size × max-wait timeout) on both appliances, sweeping **batch size ×
//! arrival rate**. Knobs: model/devices, request count, the batch-size
//! and rate grids, and the batching timeout. Output shape: one table
//! with a row per (appliance, max batch, arrival rate) carrying sojourn
//! percentiles, utilization, goodput and the realized mean batch size.
//! Rows with `max batch = 1` are identical to the [`serving`](super::serving)
//! experiment's numbers at the same rate — batch-1 through the batching
//! seam is bit-for-bit the engine's single-dispatch path.

use crate::table::{fmt, ExperimentReport, MdTable};
use dfx_baseline::GpuModel;
use dfx_model::GptConfig;
use dfx_serve::{chatbot_mix, ArrivalProcess, Backend, Batching, ServingEngine};
use dfx_sim::Appliance;

/// Runs the sweep on one model/cluster setup. `batch_sizes` is the
/// [`Batching`] scheduler's maximum batch; `max_wait_ms` is how long the
/// oldest queued request may be held while a batch fills.
pub fn run_setup(
    cfg: GptConfig,
    devices: usize,
    n_requests: usize,
    batch_sizes: &[usize],
    rates_per_s: &[f64],
    max_wait_ms: f64,
) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "batching",
        "Batched serving (SIII-A): batch size x arrival rate on DFX and the GPU appliance",
    );
    let dfx = Appliance::timing_only(cfg.clone(), devices).expect("partitionable");
    let gpu = GpuModel::new(cfg.clone(), devices);
    report.note(format!(
        "{n_requests} chatbot-mix requests on {} vs {}, one shared seed per rate, Batching \
         scheduler (max-wait {max_wait_ms} ms). max batch = 1 is exactly the `serving` \
         experiment's FIFO numbers; larger batches trade each member's sojourn for goodput — \
         the GPU recovers throughput by batching (its per-kernel overheads amortise) while \
         DFX's batch-1 latency is already near its floor.",
        Backend::name(&dfx),
        Backend::name(&gpu),
    ));
    let stream = chatbot_mix(n_requests, cfg.max_seq_len);

    let mut t = MdTable::new(
        "Sojourn percentiles, utilization and goodput by batch size and arrival rate",
        &[
            "appliance",
            "max batch",
            "arrival/s",
            "p50 ms",
            "p99 ms",
            "util %",
            "goodput tok/s",
            "mean batch",
        ],
    );
    for (label, backend) in [("DFX", &dfx as &dyn Backend), ("GPU", &gpu)] {
        for &max_batch in batch_sizes {
            // One engine per (appliance, batch size): the service-time
            // memo persists across the rate sweep, so each distinct
            // workload/batch composition is cost-modeled once.
            let mut engine = ServingEngine::new(backend)
                .with_scheduler(Box::new(Batching::new(max_batch, max_wait_ms)));
            for &rate_per_s in rates_per_s {
                let arrivals = ArrivalProcess::Poisson {
                    rate_per_s,
                    seed: 0x5EED,
                };
                let r = engine.run(&stream, &arrivals).expect("valid stream");
                t.push_row(vec![
                    label.into(),
                    max_batch.to_string(),
                    fmt(rate_per_s, 2),
                    fmt(r.p50_sojourn_ms, 0),
                    fmt(r.p99_sojourn_ms, 0),
                    fmt(100.0 * r.utilization, 1),
                    fmt(r.goodput_tps, 1),
                    fmt(r.mean_batch_size(), 2),
                ]);
            }
        }
    }
    report.table(t);
    report
}

/// The headline sweep: GPT-2 1.5B on 4 devices per appliance, the same
/// stream/rates as the `serving` experiment, batch sizes 1–8 with a
/// 500 ms batching window.
pub fn run() -> ExperimentReport {
    run_setup(
        GptConfig::gpt2_1_5b(),
        4,
        200,
        &[1, 2, 4, 8],
        &[0.25, 0.5, 1.0, 2.0],
        500.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg() -> GptConfig {
        GptConfig::new("batching-smoke", 64, 2, 2, 512, 640)
    }

    #[test]
    fn batch_one_rows_match_the_serving_experiment_exactly() {
        // The acceptance property of the batching seam: max batch = 1
        // reproduces the `serving` experiment's single-request numbers
        // cell for cell (same stream, same seeds, same formatting).
        let rates = [5.0, 50.0];
        let serving = super::super::serving_setup(smoke_cfg(), 1, 24, &rates);
        let batching = run_setup(smoke_cfg(), 1, 24, &[1, 2], &rates, 20.0);
        let s = &serving.tables[0];
        let b = &batching.tables[0];
        for (i, _rate) in rates.iter().enumerate() {
            // serving columns: rate, DFX p50, DFX p99, DFX util, GPU p50,
            // GPU p99, GPU util. batching rows are (appliance, batch,
            // rate, p50, p99, util, goodput, mean batch) with DFX batch-1
            // rows first.
            let dfx_row = &b.rows[i];
            assert_eq!(dfx_row[0], "DFX");
            assert_eq!(dfx_row[1], "1");
            assert_eq!(dfx_row[2], s.rows[i][0], "rate column mismatch");
            assert_eq!(&dfx_row[3..6], &s.rows[i][1..4], "DFX batch-1 differs");
            let gpu_row: &Vec<String> = b
                .rows
                .iter()
                .find(|r| r[0] == "GPU" && r[1] == "1" && r[2] == s.rows[i][0])
                .expect("GPU batch-1 row");
            assert_eq!(&gpu_row[3..6], &s.rows[i][4..7], "GPU batch-1 differs");
        }
    }

    #[test]
    fn batching_raises_gpu_goodput_under_saturation() {
        // At a rate well past the GPU's batch-1 capacity, an 8-way batch
        // must deliver clearly more goodput than batch-1.
        let cfg = smoke_cfg();
        let gpu = GpuModel::new(cfg.clone(), 1);
        let stream = chatbot_mix(32, cfg.max_seq_len);
        let arrivals = ArrivalProcess::Poisson {
            rate_per_s: 200.0,
            seed: 0x5EED,
        };
        let run_at = |max_batch: usize| {
            ServingEngine::new(&gpu)
                .with_scheduler(Box::new(Batching::new(max_batch, 10.0)))
                .run(&stream, &arrivals)
                .expect("valid stream")
        };
        let one = run_at(1);
        let eight = run_at(8);
        assert!(
            eight.goodput_tps > 1.5 * one.goodput_tps,
            "batch-8 goodput {} !> 1.5x batch-1 {}",
            eight.goodput_tps,
            one.goodput_tps
        );
        assert!(eight.mean_batch_size() > 2.0);
    }
}

//! Continuous-batching experiment: the serving frontier the paper's
//! §III-A argument implies, measured across all three disciplines.
//!
//! Not a paper figure — modern serving stacks (Orca, vLLM, TGI) batch at
//! *token* boundaries: requests join a running batch between decode
//! steps and leave the moment they finish, so a low-latency appliance
//! must be compared against continuous batching, not only against the
//! static padded batching of [`batching`](super::batching). This
//! experiment runs the same seeded Poisson stream of chatbot-mix
//! requests through three disciplines on both appliances, sweeping
//! **arrival rate × max batch**: `batch-1` (the FIFO reference — the
//! [`serving`](super::serving) experiment's numbers), `static`
//! ([`Batching`]: size + timeout, padded units) and `continuous`
//! ([`ContinuousBatching`]: token-boundary admission, per-member early
//! exit). Knobs: model/devices, request count, the batch-size and rate
//! grids, and the static batching timeout. Output shape: one table with
//! a row per (appliance, discipline, max batch, rate) carrying p50/p99
//! sojourn, utilization, goodput, p95 TTFT/ITL and total energy (ITL is
//! zero on the static disciplines, which model no intra-batch token
//! timing). Continuous rows with `max batch =
//! 1` are identical to the `serving` experiment's cells — token-boundary
//! scheduling at batch 1 degenerates to the single-dispatch FIFO path.

use crate::table::{fmt, ExperimentReport, MdTable};
use dfx_baseline::GpuModel;
use dfx_model::GptConfig;
use dfx_serve::{
    chatbot_mix, ArrivalProcess, Backend, Batching, ContinuousBatching, Scheduler, ServiceReport,
    ServingEngine,
};
use dfx_sim::Appliance;

/// Runs the sweep on one model/cluster setup. `batch_sizes` bounds both
/// the static coalescer and the continuous live batch; `max_wait_ms` is
/// the static discipline's batching window (continuous batching never
/// waits — admission is greedy at token boundaries).
pub fn run_setup(
    cfg: GptConfig,
    devices: usize,
    n_requests: usize,
    batch_sizes: &[usize],
    rates_per_s: &[f64],
    max_wait_ms: f64,
) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "continuous",
        "Continuous batching: token-boundary scheduling vs static batching vs batch-1",
    );
    let dfx = Appliance::timing_only(cfg.clone(), devices).expect("partitionable");
    let gpu = GpuModel::new(cfg.clone(), devices);
    report.note(format!(
        "{n_requests} chatbot-mix requests on {} vs {}, one shared seed per rate. batch-1 is \
         the `serving` FIFO reference; static is the `batching` discipline (padded units, \
         {max_wait_ms} ms window); continuous admits at token boundaries and exits members \
         early, so it recovers the GPU's batched goodput without the padded batch's sojourn — \
         the frontier modern serving stacks hold DFX's batch-1 design against. Continuous rows \
         at max batch 1 are the `serving` numbers exactly.",
        Backend::name(&dfx),
        Backend::name(&gpu),
    ));
    let stream = chatbot_mix(n_requests, cfg.max_seq_len);

    let mut t = MdTable::new(
        "Sojourn percentiles, utilization and goodput by discipline, batch size and arrival rate",
        &[
            "appliance",
            "discipline",
            "max batch",
            "arrival/s",
            "p50 ms",
            "p99 ms",
            "util %",
            "goodput tok/s",
            "p95 ttft ms",
            "p95 itl ms",
            "energy J",
        ],
    );
    // One engine per (appliance, discipline, batch size): the static
    // path's service-time memo persists across the rate sweep. Groups
    // share nothing, so they fan out over the work-stealing pool; the
    // rate loop inside a group stays sequential (it reuses the memo)
    // and `par_map` returns row blocks in group order, keeping the
    // table bit-identical to a serial sweep.
    let mut groups: Vec<(bool, &str, usize)> = Vec::new();
    for is_gpu in [false, true] {
        groups.push((is_gpu, "batch-1", 1));
        for &max_batch in batch_sizes {
            groups.push((is_gpu, "static", max_batch));
            groups.push((is_gpu, "continuous", max_batch));
        }
    }
    let row_blocks: Vec<Vec<Vec<String>>> =
        rayon_lite::par_map(&groups, |&(is_gpu, discipline, max_batch)| {
            let (label, backend): (&str, &dyn Backend) =
                if is_gpu { ("GPU", &gpu) } else { ("DFX", &dfx) };
            let scheduler: Box<dyn Scheduler> = match discipline {
                "batch-1" => Box::new(dfx_serve::Fifo),
                "static" => Box::new(Batching::new(max_batch, max_wait_ms)),
                _ => Box::new(ContinuousBatching::new(max_batch)),
            };
            let mut engine = ServingEngine::new(backend).with_scheduler(scheduler);
            rates_per_s
                .iter()
                .map(|&rate_per_s| {
                    let arrivals = ArrivalProcess::Poisson {
                        rate_per_s,
                        seed: 0x5EED,
                    };
                    let r: ServiceReport = engine.run(&stream, &arrivals).expect("valid stream");
                    vec![
                        label.into(),
                        discipline.into(),
                        max_batch.to_string(),
                        fmt(rate_per_s, 2),
                        fmt(r.p50_sojourn_ms, 0),
                        fmt(r.p99_sojourn_ms, 0),
                        fmt(100.0 * r.utilization, 1),
                        fmt(r.goodput_tps, 1),
                        fmt(r.p95_ttft_ms, 0),
                        fmt(r.p95_itl_ms, 2),
                        match r.energy_j {
                            Some(e) => fmt(e, 1),
                            None => "-".into(),
                        },
                    ]
                })
                .collect()
        });
    for block in row_blocks {
        for row in block {
            t.push_row(row);
        }
    }
    report.table(t);
    report
}

/// The headline sweep: GPT-2 1.5B on 4 devices per appliance, the same
/// stream/rates as the `serving` and `batching` experiments, batch
/// sizes 1/4/8 with the 500 ms static batching window.
pub fn run() -> ExperimentReport {
    run_setup(
        GptConfig::gpt2_1_5b(),
        4,
        200,
        &[1, 4, 8],
        &[0.25, 0.5, 1.0, 2.0],
        500.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg() -> GptConfig {
        GptConfig::new("continuous-smoke", 64, 2, 2, 512, 640)
    }

    #[test]
    fn continuous_batch_one_rows_match_the_serving_experiment_exactly() {
        // The tentpole acceptance property: continuous batching at
        // max batch 1 reproduces the `serving` experiment's FIFO numbers
        // cell for cell (same stream, same seeds, same formatting).
        let rates = [5.0, 50.0];
        let serving = super::super::serving_setup(smoke_cfg(), 1, 24, &rates);
        let continuous = run_setup(smoke_cfg(), 1, 24, &[1], &rates, 20.0);
        let s = &serving.tables[0];
        let c = &continuous.tables[0];
        for (i, _rate) in rates.iter().enumerate() {
            // serving columns: rate, DFX p50, DFX p99, DFX util, GPU
            // p50, GPU p99, GPU util. continuous rows are (appliance,
            // discipline, batch, rate, p50, p99, util, goodput).
            for (appliance, s_cols) in [("DFX", 1..4), ("GPU", 4..7)] {
                let row: &Vec<String> = c
                    .rows
                    .iter()
                    .find(|r| {
                        r[0] == appliance
                            && r[1] == "continuous"
                            && r[2] == "1"
                            && r[3] == s.rows[i][0]
                    })
                    .expect("continuous batch-1 row");
                assert_eq!(
                    &row[4..7],
                    &s.rows[i][s_cols],
                    "{appliance} continuous batch-1 differs from serving"
                );
                // The batch-1 FIFO reference rows agree too.
                let b1: &Vec<String> = c
                    .rows
                    .iter()
                    .find(|r| r[0] == appliance && r[1] == "batch-1" && r[3] == s.rows[i][0])
                    .expect("batch-1 row");
                assert_eq!(&b1[4..7], &row[4..7]);
            }
        }
    }

    #[test]
    fn continuous_dominates_static_batching_under_saturation() {
        // The acceptance criterion: at some swept arrival rate,
        // continuous batching delivers strictly more goodput at equal
        // or better p99 than static batching with the same max batch.
        let cfg = smoke_cfg();
        let gpu = GpuModel::new(cfg.clone(), 1);
        let stream = chatbot_mix(32, cfg.max_seq_len);
        let arrivals = ArrivalProcess::Poisson {
            rate_per_s: 200.0,
            seed: 0x5EED,
        };
        let stat = ServingEngine::new(&gpu)
            .with_scheduler(Box::new(Batching::new(8, 10.0)))
            .run(&stream, &arrivals)
            .expect("valid stream");
        let cont = ServingEngine::new(&gpu)
            .with_scheduler(Box::new(ContinuousBatching::new(8)))
            .run(&stream, &arrivals)
            .expect("valid stream");
        assert!(
            cont.goodput_tps > stat.goodput_tps,
            "continuous goodput {} !> static {}",
            cont.goodput_tps,
            stat.goodput_tps
        );
        assert!(
            cont.p99_sojourn_ms <= stat.p99_sojourn_ms,
            "continuous p99 {} !<= static {}",
            cont.p99_sojourn_ms,
            stat.p99_sojourn_ms
        );
    }

    #[test]
    fn continuous_helps_dfx_goodput_without_wrecking_its_tail() {
        // DFX's pitch is batch-1 latency; continuous batching should
        // still add goodput under backlog while keeping the tail close
        // to the batch-1 service floor (no padded batches, no windows).
        let cfg = smoke_cfg();
        let dfx = Appliance::timing_only(cfg.clone(), 1).expect("single core");
        let stream = chatbot_mix(24, cfg.max_seq_len);
        // Past the smoke appliance's batch-1 capacity, so a backlog
        // forms and shared decoding actually shortens the makespan.
        let arrivals = ArrivalProcess::Poisson {
            rate_per_s: 2_000.0,
            seed: 0x5EED,
        };
        let fifo = ServingEngine::new(&dfx)
            .run(&stream, &arrivals)
            .expect("valid stream");
        let cont = ServingEngine::new(&dfx)
            .with_scheduler(Box::new(ContinuousBatching::new(4)))
            .run(&stream, &arrivals)
            .expect("valid stream");
        assert!(
            cont.goodput_tps > fifo.goodput_tps,
            "continuous goodput {} !> batch-1 {}",
            cont.goodput_tps,
            fifo.goodput_tps
        );
        assert!(cont.p99_sojourn_ms < fifo.p99_sojourn_ms);
    }
}

//! Figures 15–18 and Table II: the DFX evaluation experiments.
//!
//! Each runner regenerates one artifact at the paper's operating point
//! (GPT-2 1.5B or 345M at the 64:64 chatbot workload; the workload and
//! cluster sizes are fixed by the figure, so there are no knobs):
//! [`fig15`] — DFX latency shares over the five decoder op classes, one
//! row per class against the paper's shares; [`fig16`] — tokens/s and
//! tokens/J of DFX vs the GPU appliance per workload row; [`fig17`] —
//! summarization/generation/total GFLOPS for GPU, TPU and DFX, one row
//! per platform; [`fig18`] — latency and throughput across 1/2/4-FPGA
//! clusters, one row per cluster size; [`table2`] — the cost analysis
//! (USD, tokens/s, tokens/s per million USD) with the paper's 8.21×
//! cost-effectiveness headline.

use crate::paper;
use crate::table::{fmt, fmt_ratio, ExperimentReport, MdTable};
use dfx_baseline::{GpuModel, TpuModel};
use dfx_model::{GptConfig, Workload};
use dfx_serve::{Backend, RunReport};
use dfx_sim::{dfx_stage_gflops, Appliance, CostComparison};

/// Figure 15: latency breakdown of 4 FPGAs on the 1.5B model.
pub fn fig15() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig15",
        "Figure 15: DFX latency breakdown (GPT-2 1.5B, 4 FPGAs)",
    );
    report.note(
        "Shares over the five decoder classes, excluding embedding and LM head (which the \
         paper's figure does not break out).",
    );
    let appliance = Appliance::timing_only(GptConfig::gpt2_1_5b(), 4).expect("4-way split");
    let run = appliance.generate_timed(64, 64).expect("chatbot workload");
    let shares = run.breakdown().fig15_shares();

    let mut t = MdTable::new(
        "Breakdown at the 64:64 workload",
        &["class", "share % (sim)", "share % (paper)"],
    );
    for (i, (class, share)) in shares.iter().enumerate() {
        t.push_row(vec![
            class.name().into(),
            fmt(*share, 1),
            fmt(paper::FIG15_SHARES[i], 1),
        ]);
    }
    report.table(t);
    report
}

/// Figure 16: throughput and energy efficiency on the 1.5B model.
pub fn fig16() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig16",
        "Figure 16: Throughput and energy efficiency, DFX vs GPU (GPT-2 1.5B)",
    );
    let cfg = GptConfig::gpt2_1_5b();
    let gpu = GpuModel::new(cfg.clone(), 4);
    let dfx = Appliance::timing_only(cfg, 4).expect("4-way split");

    // Both platforms behind the unified Backend API: one report shape.
    let rows: Vec<(RunReport, RunReport)> = std::thread::scope(|s| {
        let handles: Vec<_> = paper::GRID
            .iter()
            .map(|&(input, output)| {
                let gpu = &gpu;
                let dfx = &dfx;
                s.spawn(move || {
                    let w = Workload::new(input, output);
                    (
                        gpu.serve(w).expect("valid workload"),
                        dfx.serve(w).expect("valid workload"),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });

    let mut t = MdTable::new(
        "Per-workload throughput and energy efficiency",
        &[
            "[in:out]",
            "GPU tok/s",
            "DFX tok/s",
            "ratio",
            "GPU tok/J",
            "DFX tok/J",
            "energy ratio",
        ],
    );
    let mut tp_ratio_sum = 0.0;
    let mut en_ratio_sum = 0.0;
    for (g, d) in &rows {
        let (gtps, dtps) = (g.tokens_per_second(), d.tokens_per_second());
        let gtpj = g.tokens_per_joule().expect("calibrated GPU power");
        let dtpj = d.tokens_per_joule().expect("calibrated DFX power");
        tp_ratio_sum += dtps / gtps;
        en_ratio_sum += dtpj / gtpj;
        t.push_row(vec![
            g.workload.to_string(),
            fmt(gtps, 2),
            fmt(dtps, 2),
            fmt_ratio(dtps / gtps),
            fmt(gtpj, 3),
            fmt(dtpj, 3),
            fmt_ratio(dtpj / gtpj),
        ]);
    }
    let n = rows.len() as f64;
    report.note(format!(
        "Average throughput ratio {:.2}x (paper {:.2}x); average energy-efficiency ratio {:.2}x \
         (paper {:.2}x).",
        tp_ratio_sum / n,
        paper::FIG16_THROUGHPUT_RATIO,
        en_ratio_sum / n,
        paper::FIG16_ENERGY_RATIO
    ));
    report.table(t);
    report
}

/// Figure 17: GFLOPS of GPU, TPU and DFX on the 345M model at 64:64.
pub fn fig17() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig17",
        "Figure 17: GFLOPS of GPU, TPU and DFX (345M, 64:64)",
    );
    report.note(
        "The defining shape: GPU/TPU collapse by 1-2 orders of magnitude in the generation \
         stage; DFX sustains nearly identical GFLOPS in both stages. (The paper's absolute GPU \
         GFLOPS imply a lower per-token latency than its own Fig 14; we note the inconsistency \
         and report our model's accounting.)",
    );
    let cfg = GptConfig::gpt2_345m();
    let w = Workload::chatbot();

    let gpu = GpuModel::new(cfg.clone(), 1).stage_gflops(w);
    let tpu = TpuModel::new(cfg.clone()).stage_gflops(w);
    let dfx_run = Appliance::timing_only(cfg.clone(), 1)
        .expect("single core")
        .generate_timed(w.input_len, w.output_len)
        .expect("valid workload");
    let dfx = dfx_stage_gflops(&cfg, &dfx_run);

    let mut t = MdTable::new(
        "Average GFLOPS per stage",
        &[
            "platform",
            "summarization (sim)",
            "generation (sim)",
            "total (sim)",
            "summarization (paper)",
            "generation (paper)",
            "total (paper)",
        ],
    );
    for (name, got, want) in [
        ("GPU (1x V100)", (gpu.0, gpu.1, gpu.2), paper::FIG17_GPU),
        ("TPU", (tpu.0, tpu.1, tpu.2), paper::FIG17_TPU),
        (
            "DFX (1x U280)",
            (dfx.summarization, dfx.generation, dfx.total),
            paper::FIG17_DFX,
        ),
    ] {
        t.push_row(vec![
            name.into(),
            fmt(got.0, 1),
            fmt(got.1, 1),
            fmt(got.2, 1),
            fmt(want[0], 1),
            fmt(want[1], 1),
            fmt(want[2], 1),
        ]);
    }
    report.table(t);
    report
}

/// Figure 18: DFX scalability on the 345M model at 64:64.
pub fn fig18() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig18",
        "Figure 18: DFX scalability (345M, 64:64, 1/2/4 FPGAs)",
    );
    report.note(
        "The paper's Fig 18 throughputs (93.10 tok/s at 1 FPGA) are internally inconsistent \
         with its Fig 14 latencies (1031.2 ms for 64 tokens ≈ 62 tok/s); we calibrate to Fig 14 \
         and compare scaling *factors*, which is the figure's point.",
    );
    let cfg = GptConfig::gpt2_345m();
    let mut t = MdTable::new(
        "Throughput scaling",
        &[
            "FPGAs",
            "tok/s (sim)",
            "tok/s (paper)",
            "scaling vs previous (sim)",
            "scaling vs previous (paper)",
        ],
    );
    let mut prev: Option<f64> = None;
    let paper_scaling = [f64::NAN, 146.25 / 93.10, 207.56 / 146.25];
    for (i, fpgas) in [1usize, 2, 4].into_iter().enumerate() {
        let run = Appliance::timing_only(cfg.clone(), fpgas)
            .expect("divisible")
            .serve(Workload::chatbot())
            .expect("valid workload");
        let tps = run.tokens_per_second();
        let scale = prev.map(|p| tps / p);
        t.push_row(vec![
            fpgas.to_string(),
            fmt(tps, 2),
            fmt(paper::FIG18_TOKENS_PER_S[i], 2),
            scale.map_or("-".into(), fmt_ratio),
            if i == 0 {
                "-".into()
            } else {
                fmt_ratio(paper_scaling[i])
            },
        ]);
        prev = Some(tps);
    }
    report.table(t);
    report
}

/// Table II: cost analysis.
pub fn table2() -> ExperimentReport {
    let mut report = ExperimentReport::new("table2", "Table II: Appliance cost analysis");
    let cfg = GptConfig::gpt2_1_5b();
    let w = Workload::chatbot();
    let gpu_tps = GpuModel::new(cfg.clone(), 4)
        .serve(w)
        .expect("valid workload")
        .tokens_per_second();
    let dfx_tps = Appliance::timing_only(cfg, 4)
        .expect("4-way split")
        .serve(w)
        .expect("valid workload")
        .tokens_per_second();
    let cmp = CostComparison::from_throughput(gpu_tps, dfx_tps);

    let mut t = MdTable::new(
        "Cost-effectiveness at 1.5B, 64:64 (accelerator retail prices only)",
        &[
            "appliance",
            "tok/s (sim)",
            "tok/s (paper)",
            "cost $",
            "tok/s per M$ (sim)",
            "tok/s per M$ (paper)",
        ],
    );
    t.push_row(vec![
        cmp.gpu.name.clone(),
        fmt(cmp.gpu.tokens_per_second, 2),
        fmt(paper::TABLE2_GPU_TPS, 2),
        fmt(cmp.gpu.total_cost_usd(), 0),
        fmt(cmp.gpu.tokens_per_second_per_million_usd(), 2),
        "283.86".into(),
    ]);
    t.push_row(vec![
        cmp.dfx.name.clone(),
        fmt(cmp.dfx.tokens_per_second, 2),
        fmt(paper::TABLE2_DFX_TPS, 2),
        fmt(cmp.dfx.total_cost_usd(), 0),
        fmt(cmp.dfx.tokens_per_second_per_million_usd(), 2),
        "2330.98".into(),
    ]);
    report.note(format!(
        "Cost-effectiveness advantage: {:.2}x (paper {:.2}x); upfront saving ${:.0} (paper \
         $14,652).",
        cmp.dfx_advantage(),
        paper::TABLE2_ADVANTAGE,
        cmp.upfront_saving_usd()
    ));
    report.table(t);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15_shares_resemble_paper_bands() {
        let r = fig15();
        let get = |row: usize| r.tables[0].rows[row][1].parse::<f64>().unwrap();
        let sa = get(0);
        let ffn = get(1);
        let sync = get(2);
        let ln = get(3);
        let res = get(4);
        assert!((sa - 43.0).abs() < 12.0, "SA {sa}%");
        assert!((ffn - 29.6).abs() < 12.0, "FFN {ffn}%");
        assert!((sync - 17.3).abs() < 9.0, "Sync {sync}%");
        assert!((ln - 9.3).abs() < 6.0, "LN {ln}%");
        assert!(res < 4.0, "Residual {res}%");
    }

    #[test]
    fn fig18_scaling_is_sublinear_but_positive() {
        let r = fig18();
        let tps: Vec<f64> = r.tables[0]
            .rows
            .iter()
            .map(|row| row[1].parse::<f64>().unwrap())
            .collect();
        assert!(tps[1] > tps[0] && tps[2] > tps[1], "{tps:?}");
        let s12 = tps[1] / tps[0];
        let s24 = tps[2] / tps[1];
        assert!(s12 > 1.2 && s12 < 2.0, "1->2 scaling {s12}");
        assert!(s24 > 1.1 && s24 < 2.0, "2->4 scaling {s24}");
        assert!(s24 < s12 + 0.3, "diminishing returns expected");
    }
}

//! Figure 14: end-to-end inference latency, DFX vs the GPU appliance, on
//! 345M/774M/1.5B with matched device counts.
//!
//! [`run`] walks the paper's 15-point workload grid (inputs {32, 64,
//! 128} × outputs {1, 4, 16, 64, 256}) for each published model/cluster
//! pairing (345M×1, 774M×2, 1.5B×4) and emits one table per model — a
//! row per grid point with GPU ms, DFX ms and the speedup — plus the
//! grid-average speedup against the paper's headline (~5.6× on 1.5B).
//! [`run_model`] exposes the per-model grid as data ([`ModelGrid`]) with
//! the model configuration and device count as knobs; the smoke tests
//! drive it with a tiny configuration.

use crate::paper;
use crate::table::{fmt, fmt_ratio, ExperimentReport, MdTable};
use dfx_baseline::GpuModel;
use dfx_model::{GptConfig, Workload};
use dfx_serve::Backend;
use dfx_sim::Appliance;

/// One model's regenerated grid.
pub struct ModelGrid {
    /// Model configuration.
    pub cfg: GptConfig,
    /// Devices used on both platforms.
    pub devices: usize,
    /// Simulated GPU latency per grid point, ms.
    pub gpu_ms: Vec<f64>,
    /// Simulated DFX latency per grid point, ms.
    pub dfx_ms: Vec<f64>,
}

impl ModelGrid {
    /// Average speedup over the grid (mean of per-workload ratios is not
    /// what the paper reports; it uses the ratio of average latencies).
    pub fn average_speedup(&self) -> f64 {
        let g: f64 = self.gpu_ms.iter().sum::<f64>() / self.gpu_ms.len() as f64;
        let d: f64 = self.dfx_ms.iter().sum::<f64>() / self.dfx_ms.len() as f64;
        g / d
    }
}

/// End-to-end latency of every grid point on one [`Backend`], ms.
/// Workloads are independent; fan out over the work-stealing pool
/// (results come back in grid order regardless of thread count).
pub fn grid_latencies_ms(backend: &(impl Backend + Sync)) -> Vec<f64> {
    rayon_lite::par_map(&paper::GRID, |&(input, output)| {
        backend
            .serve(Workload::new(input, output))
            .expect("valid workload")
            .total_ms()
    })
}

/// Simulates the full grid for one model.
pub fn run_model(cfg: GptConfig, devices: usize) -> ModelGrid {
    let gpu = GpuModel::new(cfg.clone(), devices);
    let dfx = Appliance::timing_only(cfg.clone(), devices).expect("partitionable");

    ModelGrid {
        cfg,
        devices,
        gpu_ms: grid_latencies_ms(&gpu),
        dfx_ms: grid_latencies_ms(&dfx),
    }
}

/// Regenerates Figure 14.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig14",
        "Figure 14: Inference latency of DFX vs the GPU appliance",
    );
    report.note(
        "GPU latencies come from the calibrated V100/Megatron model; DFX latencies from the \
         cycle-level appliance simulator. Paper columns are the figure's data labels.",
    );

    let setups = [
        (
            GptConfig::gpt2_345m(),
            1usize,
            &paper::FIG14_GPU_345M,
            &paper::FIG14_DFX_345M,
        ),
        (
            GptConfig::gpt2_774m(),
            2,
            &paper::FIG14_GPU_774M,
            &paper::FIG14_DFX_774M,
        ),
        (
            GptConfig::gpt2_1_5b(),
            4,
            &paper::FIG14_GPU_1_5B,
            &paper::FIG14_DFX_1_5B,
        ),
    ];

    for (i, (cfg, devices, paper_gpu, paper_dfx)) in setups.into_iter().enumerate() {
        let grid = run_model(cfg.clone(), devices);
        let mut t = MdTable::new(
            format!("{} — {} device(s) per appliance", cfg.name, devices),
            &[
                "[in:out]",
                "GPU ms (sim)",
                "GPU ms (paper)",
                "DFX ms (sim)",
                "DFX ms (paper)",
                "speedup (sim)",
                "speedup (paper)",
            ],
        );
        for (j, &(input, output)) in paper::GRID.iter().enumerate() {
            t.push_row(vec![
                format!("[{input}:{output}]"),
                fmt(grid.gpu_ms[j], 1),
                fmt(paper_gpu[j], 1),
                fmt(grid.dfx_ms[j], 1),
                fmt(paper_dfx[j], 1),
                fmt_ratio(grid.gpu_ms[j] / grid.dfx_ms[j]),
                fmt_ratio(paper_gpu[j] / paper_dfx[j]),
            ]);
        }
        t.push_row(vec![
            "**average**".into(),
            fmt(grid.gpu_ms.iter().sum::<f64>() / 15.0, 1),
            fmt(paper_gpu.iter().sum::<f64>() / 15.0, 1),
            fmt(grid.dfx_ms.iter().sum::<f64>() / 15.0, 1),
            fmt(paper_dfx.iter().sum::<f64>() / 15.0, 1),
            fmt_ratio(grid.average_speedup()),
            fmt_ratio(paper::FIG14_SPEEDUPS[i]),
        ]);
        report.table(t);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_speedup_shape_holds_for_345m() {
        // Shape assertions on the smallest model to keep test time down:
        // DFX wins on generation-heavy points, the GPU wins at [128:1],
        // and the average speedup lands near the paper's 3.20x.
        let grid = run_model(GptConfig::gpt2_345m(), 1);
        let idx =
            |inp: usize, out: usize| paper::GRID.iter().position(|&p| p == (inp, out)).unwrap();
        assert!(
            grid.gpu_ms[idx(128, 1)] < grid.dfx_ms[idx(128, 1)],
            "GPU should win the summarization-only corner"
        );
        assert!(
            grid.dfx_ms[idx(32, 256)] * 3.0 < grid.gpu_ms[idx(32, 256)],
            "DFX should win the generation-heavy corner by a wide margin"
        );
        let s = grid.average_speedup();
        assert!(
            (s - 3.20).abs() / 3.20 < 0.35,
            "average speedup {s} too far from the paper's 3.20x"
        );
    }
}

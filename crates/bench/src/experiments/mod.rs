//! One runner per paper table/figure (plus the service-level
//! experiments the paper argues but never measures).
//!
//! Every public runner returns an [`ExperimentReport`]; the `reproduce`
//! binary maps experiment ids onto them via [`CATALOG`], which is the
//! single source of truth for what ids exist, what they regenerate,
//! and which runner executes them ([`CatalogEntry::run`]).
//!
//! [`ExperimentReport`]: crate::table::ExperimentReport

use crate::table::ExperimentReport;

mod ablation;
mod batching;
mod cluster;
mod continuous;
mod design;
mod evaluation;
mod fig14;
mod memory;
mod motivation;
mod serving;
mod tables;

pub use ablation::run as ablation;
pub use batching::{run as batching, run_setup as batching_setup};
pub use cluster::{run as cluster, run_setup as cluster_setup};
pub use continuous::{run as continuous, run_setup as continuous_setup};
pub use design::{fig13, fig8};
pub use evaluation::{fig15, fig16, fig17, fig18, table2};
pub use fig14::{grid_latencies_ms, run as fig14, run_model, ModelGrid};
pub use memory::{run as memory, run_setup as memory_setup};
pub use motivation::{fig3, fig4};
pub use serving::{run as serving, run_setup as serving_setup};
pub use tables::{accuracy, accuracy_with_tasks, table1};

/// One `reproduce` experiment: its command-line id, the paper artifact
/// (or service-level question) it regenerates, and the runner the
/// binary dispatches to.
pub struct CatalogEntry {
    /// The id accepted on the `reproduce` command line.
    pub id: &'static str,
    /// What the experiment regenerates.
    pub what: &'static str,
    /// Runs the experiment. The flag is `--full` (paper-size task
    /// sets); only the accuracy experiment consults it.
    pub run: fn(bool) -> ExperimentReport,
}

/// Every experiment the `reproduce` binary accepts — the single source
/// of truth: ids, descriptions *and* dispatch. `--help` and unknown-id
/// errors print this list, and the binary runs experiments through
/// [`CatalogEntry::run`], so an id cannot exist without a runner.
pub const CATALOG: &[CatalogEntry] = &[
    CatalogEntry {
        id: "table1",
        what: "Table I: GPT-2 model configurations",
        run: |_| table1(),
    },
    CatalogEntry {
        id: "fig3",
        what: "Figure 3: GPU text-generation latency vs input/output size",
        run: |_| fig3(),
    },
    CatalogEntry {
        id: "fig4",
        what: "Figure 4: GPU per-layer latency and operation-count breakdown",
        run: |_| fig4(),
    },
    CatalogEntry {
        id: "fig8",
        what: "Figure 8: tile-dimension/lane-count design-space exploration",
        run: |_| fig8(),
    },
    CatalogEntry {
        id: "fig13",
        what: "Figure 13: FPGA resource utilisation (Alveo U280)",
        run: |_| fig13(),
    },
    CatalogEntry {
        id: "fig14",
        what: "Figure 14: end-to-end latency grid, DFX vs the GPU appliance",
        run: |_| fig14(),
    },
    CatalogEntry {
        id: "fig15",
        what: "Figure 15: DFX latency breakdown (1.5B, 4 FPGAs)",
        run: |_| fig15(),
    },
    CatalogEntry {
        id: "fig16",
        what: "Figure 16: throughput and energy efficiency, DFX vs GPU",
        run: |_| fig16(),
    },
    CatalogEntry {
        id: "fig17",
        what: "Figure 17: GFLOPS of GPU, TPU and DFX by stage",
        run: |_| fig17(),
    },
    CatalogEntry {
        id: "fig18",
        what: "Figure 18: DFX scalability across 1/2/4 FPGAs",
        run: |_| fig18(),
    },
    CatalogEntry {
        id: "table2",
        what: "Table II: appliance cost analysis",
        run: |_| table2(),
    },
    CatalogEntry {
        id: "accuracy",
        what: "SVII-A: inference accuracy, FP16 DFX vs the FP32 reference",
        run: accuracy,
    },
    CatalogEntry {
        id: "ablation",
        what: "Design-choice ablations: transpose scheme, pipelining, scoreboard, tiling",
        run: |_| ablation(),
    },
    CatalogEntry {
        id: "serving",
        what: "SIII-A service level: tail latency under a Poisson stream, DFX vs GPU",
        run: |_| serving(),
    },
    CatalogEntry {
        id: "batching",
        what: "Batched serving: batch size x arrival rate, Batching scheduler on both appliances",
        run: |_| batching(),
    },
    CatalogEntry {
        id: "continuous",
        what: "Continuous batching: token-boundary scheduling vs static batching vs batch-1",
        run: |_| continuous(),
    },
    CatalogEntry {
        id: "memory",
        what: "HBM/KV memory subsystem: capacity-bounded admission and chunked prefill",
        run: |_| memory(),
    },
    CatalogEntry {
        id: "cluster",
        what: "Cluster tier: placement policy, session affinity, disaggregation, wide sharding",
        run: |_| cluster(),
    },
];

#[cfg(test)]
mod catalog_tests {
    use super::CATALOG;

    #[test]
    fn catalog_ids_are_unique_and_nonempty() {
        let mut ids: Vec<&str> = CATALOG.iter().map(|e| e.id).collect();
        assert!(!ids.is_empty());
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), CATALOG.len(), "duplicate catalog id");
        assert!(CATALOG
            .iter()
            .all(|e| !e.id.is_empty() && !e.what.is_empty()));
    }
}

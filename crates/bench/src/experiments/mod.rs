//! One runner per paper table/figure.

mod ablation;
mod design;
mod evaluation;
mod fig14;
mod motivation;
mod serving;
mod tables;

pub use ablation::run as ablation;
pub use design::{fig13, fig8};
pub use evaluation::{fig15, fig16, fig17, fig18, table2};
pub use fig14::{grid_latencies_ms, run as fig14, run_model, ModelGrid};
pub use motivation::{fig3, fig4};
pub use serving::{run as serving, run_setup as serving_setup};
pub use tables::{accuracy, accuracy_with_tasks, table1};

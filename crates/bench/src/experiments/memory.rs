//! Memory-subsystem experiment: HBM capacity as the continuous-batching
//! admission constraint, and chunked prefill as the stall cure.
//!
//! Not a paper figure — the paper's appliance serves batch-1, so its 8 GB
//! of HBM per U280 (§IV-A) only ever holds the weight shard plus *one*
//! request's K/V cache. The moment the serving layer batches
//! continuously, every live request claims `kv bytes/token × (input +
//! output)` next to the weights, and capacity — not padded shape —
//! bounds the live batch ([`Backend::memory`],
//! [`dfx_sim::KvPool`](dfx_sim::KvPool)). This experiment measures that
//! memory layer end to end on the DFX appliance, in three sweeps:
//!
//! 1. **HBM capacity × saturating backlog** — the peak live batch
//!    tracks how many K/V claims fit next to the weight shard, not the
//!    scheduler's max batch;
//! 2. **prefill chunk budget × arrival rate** — chunking a joiner's
//!    prefill into token budgets interleaved with decode
//!    ([`ContinuousBatching::with_prefill_chunk`]) cuts the p99
//!    inter-token stall running members feel, at equal goodput (the
//!    same total work, redistributed);
//! 3. **admission policy** — prefill-aware deferral
//!    ([`ContinuousBatching::with_slo`]) vs greedy admission under
//!    load: the guard refuses joins whose prefill stall would blow the
//!    running members' deadlines.
//!
//! Knobs: model/devices, request count, the capacity grid (in
//! concurrent chatbot-claims), the chunk-budget grid, the rate grid and
//! the continuous max batch. With the real 8 GiB capacity and no chunk
//! budget, every number in the `serving`/`batching`/`continuous`
//! experiments is unchanged — the in-module identity test pins that.
//!
//! [`Backend::memory`]: dfx_serve::Backend::memory
//! [`ContinuousBatching::with_prefill_chunk`]:
//!     dfx_serve::ContinuousBatching::with_prefill_chunk
//! [`ContinuousBatching::with_slo`]: dfx_serve::ContinuousBatching::with_slo

use crate::table::{fmt, ExperimentReport, MdTable};
use dfx_model::{GptConfig, Workload};
use dfx_serve::{
    chatbot_mix, ArrivalProcess, Backend, ContinuousBatching, Scheduler, ServingEngine,
};
use dfx_sim::Appliance;

/// The uniform per-request shape of the capacity sweep: the paper's
/// chatbot point, clamped for short-context smoke configurations.
fn claim_point(cfg: &GptConfig) -> Workload {
    let w = Workload::chatbot();
    if w.input_len + w.output_len > cfg.max_seq_len {
        Workload::new(cfg.max_seq_len / 2, cfg.max_seq_len / 4)
    } else {
        w
    }
}

/// Runs the three sweeps on one model/cluster setup. `capacity_claims`
/// lists HBM capacities as "weight shard + k concurrent chatbot-point
/// K/V claims"; `chunk_budgets` the prefill chunk sizes (tokens) swept
/// against unchunked admission; `max_batch` bounds the continuous live
/// batch everywhere.
pub fn run_setup(
    cfg: GptConfig,
    devices: usize,
    n_requests: usize,
    capacity_claims: &[usize],
    chunk_budgets: &[usize],
    rates_per_s: &[f64],
    max_batch: usize,
) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "memory",
        "HBM/KV memory subsystem: capacity-bounded admission and chunked prefill",
    );
    let dfx = Appliance::timing_only(cfg.clone(), devices).expect("partitionable");
    let memory = dfx.memory_model();
    let point = claim_point(&cfg);
    let claim_tokens = (point.input_len + point.output_len) as u64;
    report.note(format!(
        "{} per device: {:.0} MiB weight shard resident in {:.1} GiB of HBM, {:.1} KiB of K/V \
         per context token ({} tokens of K/V budget). Every live request claims its full \
         input+output K/V up front (admission fails when it does not fit), so capacity bounds \
         the live batch; chunked prefill then bounds the decode stall an admission injects.",
        Backend::name(&dfx),
        memory.weight_bytes as f64 / (1 << 20) as f64,
        memory.capacity_bytes as f64 / (1 << 30) as f64,
        memory.kv_bytes_per_token as f64 / 1024.0,
        memory.max_resident_tokens(),
    ));

    // --- 1. Capacity sweep: HBM size caps the live batch -------------
    let mut cap_table = MdTable::new(
        format!(
            "Capacity sweep: {n_requests} saturating {point} requests, continuous max batch \
             {max_batch}; the peak live batch tracks how many {claim_tokens}-token K/V claims \
             fit next to the weight shard"
        ),
        &[
            "HBM GiB",
            "KV budget (tokens)",
            "claims that fit",
            "peak live batch",
            "p99 ms",
            "goodput tok/s",
        ],
    );
    let stream = vec![point; n_requests];
    let backlog = ArrivalProcess::Trace(vec![0.0; n_requests]);
    for &claims in capacity_claims {
        let capacity =
            memory.weight_bytes + claims as u64 * claim_tokens * memory.kv_bytes_per_token;
        let capped = Appliance::timing_only(cfg.clone(), devices)
            .expect("partitionable")
            .with_hbm_capacity(capacity)
            .expect("capacity holds the shard");
        let r = ServingEngine::new(&capped)
            .with_scheduler(Box::new(ContinuousBatching::new(max_batch)))
            .run(&stream, &backlog)
            .expect("valid stream");
        cap_table.push_row(vec![
            fmt(capacity as f64 / (1 << 30) as f64, 3),
            capped.memory_model().max_resident_tokens().to_string(),
            claims.to_string(),
            r.peak_live_batch.to_string(),
            fmt(r.p99_sojourn_ms, 0),
            fmt(r.goodput_tps, 1),
        ]);
    }
    let r = ServingEngine::new(&dfx)
        .with_scheduler(Box::new(ContinuousBatching::new(max_batch)))
        .run(&stream, &backlog)
        .expect("valid stream");
    cap_table.push_row(vec![
        fmt(memory.capacity_bytes as f64 / (1 << 30) as f64, 3),
        memory.max_resident_tokens().to_string(),
        "unbounded".into(),
        r.peak_live_batch.to_string(),
        fmt(r.p99_sojourn_ms, 0),
        fmt(r.goodput_tps, 1),
    ]);
    report.table(cap_table);

    // --- 2. Chunked prefill: stall vs goodput -------------------------
    let mut chunk_table = MdTable::new(
        format!(
            "Chunked prefill: {n_requests} chatbot-mix requests at the default 8 GiB, \
             continuous max batch {max_batch}; the p99 inter-token gap is the decode stall \
             running members feel when a joiner prefills"
        ),
        &[
            "arrival/s",
            "prefill chunk",
            "p99 token gap ms",
            "p50 ms",
            "p99 ms",
            "goodput tok/s",
        ],
    );
    let mix = chatbot_mix(n_requests, cfg.max_seq_len);
    for &rate_per_s in rates_per_s {
        let arrivals = ArrivalProcess::Poisson {
            rate_per_s,
            seed: 0x5EED,
        };
        let mut sweep = |label: String, scheduler: Box<dyn Scheduler>| {
            let r = ServingEngine::new(&dfx)
                .with_scheduler(scheduler)
                .run(&mix, &arrivals)
                .expect("valid stream");
            chunk_table.push_row(vec![
                fmt(rate_per_s, 2),
                label,
                fmt(r.p99_token_gap_ms, 1),
                fmt(r.p50_sojourn_ms, 0),
                fmt(r.p99_sojourn_ms, 0),
                fmt(r.goodput_tps, 1),
            ]);
        };
        sweep("whole".into(), Box::new(ContinuousBatching::new(max_batch)));
        for &chunk in chunk_budgets {
            sweep(
                chunk.to_string(),
                Box::new(ContinuousBatching::new(max_batch).with_prefill_chunk(chunk)),
            );
        }
    }
    report.table(chunk_table);

    // --- 3. Admission policy: greedy vs prefill-aware -----------------
    let rate_per_s = rates_per_s.last().copied().unwrap_or(1.0);
    let slo_ms = 4.0 * dfx.serve(point).expect("valid point").total_ms();
    let mut policy_table = MdTable::new(
        format!(
            "Admission policy at {rate_per_s} req/s: greedy admission vs prefill-aware \
             deferral (SLO {slo_ms:.0} ms from arrival) vs deferral + chunking"
        ),
        &[
            "policy",
            "p99 token gap ms",
            "p50 ms",
            "p99 ms",
            "goodput tok/s",
        ],
    );
    let arrivals = ArrivalProcess::Poisson {
        rate_per_s,
        seed: 0x5EED,
    };
    let chunk = chunk_budgets.first().copied();
    let mut policies: Vec<(&str, Box<dyn Scheduler>)> = vec![
        ("greedy", Box::new(ContinuousBatching::new(max_batch))),
        (
            "slo-deferral",
            Box::new(ContinuousBatching::new(max_batch).with_slo(slo_ms)),
        ),
    ];
    if let Some(chunk) = chunk {
        policies.push((
            "slo + chunk",
            Box::new(
                ContinuousBatching::new(max_batch)
                    .with_slo(slo_ms)
                    .with_prefill_chunk(chunk),
            ),
        ));
    }
    for (label, scheduler) in policies {
        let r = ServingEngine::new(&dfx)
            .with_scheduler(scheduler)
            .run(&mix, &arrivals)
            .expect("valid stream");
        policy_table.push_row(vec![
            label.into(),
            fmt(r.p99_token_gap_ms, 1),
            fmt(r.p50_sojourn_ms, 0),
            fmt(r.p99_sojourn_ms, 0),
            fmt(r.goodput_tps, 1),
        ]);
    }
    report.table(policy_table);
    report
}

/// The headline sweep: GPT-2 1.5B on 4 FPGAs — capacities holding 1 to
/// 16 concurrent chatbot claims next to the ~0.7 GiB weight shard,
/// prefill chunks of 16 and 64 tokens, the serving experiments' rate
/// grid, continuous max batch 16.
pub fn run() -> ExperimentReport {
    run_setup(
        GptConfig::gpt2_1_5b(),
        4,
        96,
        &[1, 2, 4, 8, 16],
        &[16, 64],
        &[0.5, 1.0, 2.0],
        16,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg() -> GptConfig {
        GptConfig::new("memory-smoke", 64, 2, 2, 512, 640)
    }

    #[test]
    fn the_peak_live_batch_tracks_the_hbm_capacity() {
        // The acceptance shape of sweep 1: under a saturating backlog
        // the peak live batch equals the number of claims that fit,
        // up to the scheduler's max batch.
        let report = run_setup(smoke_cfg(), 1, 12, &[1, 2, 4], &[8], &[50.0], 4);
        let rows = &report.tables[0].rows;
        assert_eq!(rows.len(), 4); // 3 capacities + unbounded
        for (row, want) in rows.iter().zip(["1", "2", "4", "4"]) {
            assert_eq!(row[3], want, "claims {} -> peak {}", row[2], row[3]);
        }
    }

    #[test]
    fn chunked_prefill_cuts_the_stall_at_equal_goodput() {
        // The acceptance criterion of sweep 2, asserted on the raw
        // reports: a chunk budget strictly improves the p99 inter-token
        // gap while goodput stays within 5%.
        let cfg = smoke_cfg();
        let dfx = Appliance::timing_only(cfg.clone(), 1).unwrap();
        let mix = chatbot_mix(24, cfg.max_seq_len);
        let arrivals = ArrivalProcess::Poisson {
            rate_per_s: 200.0,
            seed: 0x5EED,
        };
        let run = |scheduler: Box<dyn Scheduler>| {
            ServingEngine::new(&dfx)
                .with_scheduler(scheduler)
                .run(&mix, &arrivals)
                .unwrap()
        };
        let whole = run(Box::new(ContinuousBatching::new(4)));
        let chunked = run(Box::new(ContinuousBatching::new(4).with_prefill_chunk(8)));
        assert!(
            chunked.p99_token_gap_ms < whole.p99_token_gap_ms,
            "chunked p99 gap {} !< whole {}",
            chunked.p99_token_gap_ms,
            whole.p99_token_gap_ms
        );
        assert!(
            (chunked.goodput_tps - whole.goodput_tps).abs() < 0.05 * whole.goodput_tps,
            "goodput moved: chunked {} vs whole {}",
            chunked.goodput_tps,
            whole.goodput_tps
        );
    }

    #[test]
    fn default_capacity_and_no_chunking_reproduce_the_pr4_rows() {
        // The backwards-compatibility acceptance: at the real 8 GiB
        // (where chatbot-scale claims never bind) with whole prefills,
        // the memory-aware engine is bit-identical to the plain
        // continuous discipline — so the `serving`/`batching`/
        // `continuous` experiment rows are unchanged by this subsystem.
        let cfg = smoke_cfg();
        let dfx = Appliance::timing_only(cfg.clone(), 1).unwrap();
        let huge = Appliance::timing_only(cfg.clone(), 1)
            .unwrap()
            .with_hbm_capacity(1 << 40)
            .unwrap();
        let mix = chatbot_mix(24, cfg.max_seq_len);
        let arrivals = ArrivalProcess::Poisson {
            rate_per_s: 50.0,
            seed: 0x5EED,
        };
        let a = ServingEngine::new(&dfx)
            .with_scheduler(Box::new(ContinuousBatching::new(4)))
            .run(&mix, &arrivals)
            .unwrap();
        let b = ServingEngine::new(&huge)
            .with_scheduler(Box::new(ContinuousBatching::new(4)))
            .run(&mix, &arrivals)
            .unwrap();
        assert_eq!(a.responses, b.responses);
        assert_eq!(a.p99_sojourn_ms, b.p99_sojourn_ms);
        assert_eq!(a.goodput_tps, b.goodput_tps);
    }
}

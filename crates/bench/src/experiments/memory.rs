//! Memory-subsystem experiment: HBM capacity as the continuous-batching
//! admission constraint, and chunked prefill as the stall cure.
//!
//! Not a paper figure — the paper's appliance serves batch-1, so its 8 GB
//! of HBM per U280 (§IV-A) only ever holds the weight shard plus *one*
//! request's K/V cache. The moment the serving layer batches
//! continuously, every live request claims `kv bytes/token × (input +
//! output)` next to the weights, and capacity — not padded shape —
//! bounds the live batch ([`Backend::memory`],
//! [`dfx_sim::KvPool`](dfx_sim::KvPool)). This experiment measures that
//! memory layer end to end on the DFX appliance, in four sweeps:
//!
//! 1. **HBM capacity × saturating backlog** — the peak live batch
//!    tracks how many K/V claims fit next to the weight shard, not the
//!    scheduler's max batch;
//! 2. **prefill chunk budget × arrival rate** — chunking a joiner's
//!    prefill into token budgets interleaved with decode
//!    ([`ContinuousBatching::with_prefill_chunk`]) cuts the p99
//!    inter-token stall running members feel, at equal goodput (the
//!    same total work, redistributed);
//! 3. **admission policy** — prefill-aware deferral
//!    ([`ContinuousBatching::with_slo`]) vs greedy admission under
//!    load: the guard refuses joins whose prefill stall would blow the
//!    running members' deadlines;
//! 4. **paged vs reserved allocation** — at equal (tight) HBM, the
//!    block-table allocator ([`dfx_sim::BlockPool`]) admits on prompt
//!    *blocks* and grows page-by-page instead of reserving the full
//!    input+output claim up front, recovering live batch and goodput;
//!    with a shared system prompt, the ref-counted prefix cache skips
//!    redundant prefill and the sweep reports the hit rate.
//!
//! Knobs: model/devices, request count, the capacity grid (in
//! concurrent chatbot-claims), the chunk-budget grid, the rate grid and
//! the continuous max batch. With the real 8 GiB capacity and no chunk
//! budget, every number in the `serving`/`batching`/`continuous`
//! experiments is unchanged — the in-module identity test pins that.
//!
//! [`Backend::memory`]: dfx_serve::Backend::memory
//! [`ContinuousBatching::with_prefill_chunk`]:
//!     dfx_serve::ContinuousBatching::with_prefill_chunk
//! [`ContinuousBatching::with_slo`]: dfx_serve::ContinuousBatching::with_slo

use crate::table::{fmt, ExperimentReport, MdTable};
use dfx_model::{GptConfig, Workload};
use dfx_serve::{
    chatbot_mix, ArrivalProcess, Backend, ContinuousBatching, Scheduler, ServingEngine,
};
use dfx_sim::{Appliance, PagedKvConfig, PreemptionPolicy};

/// The uniform per-request shape of the capacity sweep: the paper's
/// chatbot point, clamped for short-context smoke configurations.
fn claim_point(cfg: &GptConfig) -> Workload {
    let w = Workload::chatbot();
    if w.input_len + w.output_len > cfg.max_seq_len {
        Workload::new(cfg.max_seq_len / 2, cfg.max_seq_len / 4)
    } else {
        w
    }
}

/// Runs the three sweeps on one model/cluster setup. `capacity_claims`
/// lists HBM capacities as "weight shard + k concurrent chatbot-point
/// K/V claims"; `chunk_budgets` the prefill chunk sizes (tokens) swept
/// against unchunked admission; `max_batch` bounds the continuous live
/// batch everywhere.
pub fn run_setup(
    cfg: GptConfig,
    devices: usize,
    n_requests: usize,
    capacity_claims: &[usize],
    chunk_budgets: &[usize],
    rates_per_s: &[f64],
    max_batch: usize,
) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "memory",
        "HBM/KV memory subsystem: capacity-bounded admission and chunked prefill",
    );
    let dfx = Appliance::timing_only(cfg.clone(), devices).expect("partitionable");
    let memory = dfx.memory_model();
    let point = claim_point(&cfg);
    let claim_tokens = (point.input_len + point.output_len) as u64;
    report.note(format!(
        "{} per device: {:.0} MiB weight shard resident in {:.1} GiB of HBM, {:.1} KiB of K/V \
         per context token ({} tokens of K/V budget). Every live request claims its full \
         input+output K/V up front (admission fails when it does not fit), so capacity bounds \
         the live batch; chunked prefill then bounds the decode stall an admission injects.",
        Backend::name(&dfx),
        memory.weight_bytes as f64 / (1 << 20) as f64,
        memory.capacity_bytes as f64 / (1 << 30) as f64,
        memory.kv_bytes_per_token as f64 / 1024.0,
        memory.max_resident_tokens(),
    ));

    // --- 1. Capacity sweep: HBM size caps the live batch -------------
    let mut cap_table = MdTable::new(
        format!(
            "Capacity sweep: {n_requests} saturating {point} requests, continuous max batch \
             {max_batch}; the peak live batch tracks how many {claim_tokens}-token K/V claims \
             fit next to the weight shard"
        ),
        &[
            "HBM GiB",
            "KV budget (tokens)",
            "claims that fit",
            "peak live batch",
            "p99 ms",
            "goodput tok/s",
        ],
    );
    let stream = vec![point; n_requests];
    let backlog = ArrivalProcess::Trace(vec![0.0; n_requests]);
    // Each capacity cell builds its own appliance and engine, so the
    // cells fan out over the work-stealing pool; `par_map` returns
    // rows in sweep order, keeping the table bit-identical.
    let cap_rows = rayon_lite::par_map(capacity_claims, |&claims| {
        let capacity =
            memory.weight_bytes + claims as u64 * claim_tokens * memory.kv_bytes_per_token;
        let capped = Appliance::timing_only(cfg.clone(), devices)
            .expect("partitionable")
            .with_hbm_capacity(capacity)
            .expect("capacity holds the shard");
        let r = ServingEngine::new(&capped)
            .with_scheduler(Box::new(ContinuousBatching::new(max_batch)))
            .run(&stream, &backlog)
            .expect("valid stream");
        vec![
            fmt(capacity as f64 / (1 << 30) as f64, 3),
            capped.memory_model().max_resident_tokens().to_string(),
            claims.to_string(),
            r.peak_live_batch.to_string(),
            fmt(r.p99_sojourn_ms, 0),
            fmt(r.goodput_tps, 1),
        ]
    });
    for row in cap_rows {
        cap_table.push_row(row);
    }
    let r = ServingEngine::new(&dfx)
        .with_scheduler(Box::new(ContinuousBatching::new(max_batch)))
        .run(&stream, &backlog)
        .expect("valid stream");
    cap_table.push_row(vec![
        fmt(memory.capacity_bytes as f64 / (1 << 30) as f64, 3),
        memory.max_resident_tokens().to_string(),
        "unbounded".into(),
        r.peak_live_batch.to_string(),
        fmt(r.p99_sojourn_ms, 0),
        fmt(r.goodput_tps, 1),
    ]);
    report.table(cap_table);

    // --- 2. Chunked prefill: stall vs goodput -------------------------
    let mut chunk_table = MdTable::new(
        format!(
            "Chunked prefill: {n_requests} chatbot-mix requests at the default 8 GiB, \
             continuous max batch {max_batch}; the p99 inter-token gap is the decode stall \
             running members feel when a joiner prefills"
        ),
        &[
            "arrival/s",
            "prefill chunk",
            "p99 token gap ms",
            "p50 ms",
            "p99 ms",
            "goodput tok/s",
        ],
    );
    let mix = chatbot_mix(n_requests, cfg.max_seq_len);
    // Every (rate, chunk) cell runs its own engine: fan out, collect
    // rows in sweep order.
    let mut chunk_cells: Vec<(f64, Option<usize>)> = Vec::new();
    for &rate_per_s in rates_per_s {
        chunk_cells.push((rate_per_s, None));
        for &chunk in chunk_budgets {
            chunk_cells.push((rate_per_s, Some(chunk)));
        }
    }
    let chunk_rows = rayon_lite::par_map(&chunk_cells, |&(rate_per_s, chunk)| {
        let arrivals = ArrivalProcess::Poisson {
            rate_per_s,
            seed: 0x5EED,
        };
        let (label, scheduler): (String, Box<dyn Scheduler>) = match chunk {
            None => ("whole".into(), Box::new(ContinuousBatching::new(max_batch))),
            Some(chunk) => (
                chunk.to_string(),
                Box::new(ContinuousBatching::new(max_batch).with_prefill_chunk(chunk)),
            ),
        };
        let r = ServingEngine::new(&dfx)
            .with_scheduler(scheduler)
            .run(&mix, &arrivals)
            .expect("valid stream");
        vec![
            fmt(rate_per_s, 2),
            label,
            fmt(r.p99_token_gap_ms, 1),
            fmt(r.p50_sojourn_ms, 0),
            fmt(r.p99_sojourn_ms, 0),
            fmt(r.goodput_tps, 1),
        ]
    });
    for row in chunk_rows {
        chunk_table.push_row(row);
    }
    report.table(chunk_table);

    // --- 3. Admission policy: greedy vs prefill-aware -----------------
    let rate_per_s = rates_per_s.last().copied().unwrap_or(1.0);
    let slo_ms = 4.0 * dfx.serve(point).expect("valid point").total_ms();
    let mut policy_table = MdTable::new(
        format!(
            "Admission policy at {rate_per_s} req/s: greedy admission vs prefill-aware \
             deferral (SLO {slo_ms:.0} ms from arrival) vs deferral + chunking"
        ),
        &[
            "policy",
            "p99 token gap ms",
            "p50 ms",
            "p99 ms",
            "goodput tok/s",
        ],
    );
    let arrivals = ArrivalProcess::Poisson {
        rate_per_s,
        seed: 0x5EED,
    };
    let chunk = chunk_budgets.first().copied();
    let mut policies: Vec<(&str, Box<dyn Scheduler>)> = vec![
        ("greedy", Box::new(ContinuousBatching::new(max_batch))),
        (
            "slo-deferral",
            Box::new(ContinuousBatching::new(max_batch).with_slo(slo_ms)),
        ),
    ];
    if let Some(chunk) = chunk {
        policies.push((
            "slo + chunk",
            Box::new(
                ContinuousBatching::new(max_batch)
                    .with_slo(slo_ms)
                    .with_prefill_chunk(chunk),
            ),
        ));
    }
    for (label, scheduler) in policies {
        let r = ServingEngine::new(&dfx)
            .with_scheduler(scheduler)
            .run(&mix, &arrivals)
            .expect("valid stream");
        policy_table.push_row(vec![
            label.into(),
            fmt(r.p99_token_gap_ms, 1),
            fmt(r.p50_sojourn_ms, 0),
            fmt(r.p99_sojourn_ms, 0),
            fmt(r.goodput_tps, 1),
        ]);
    }
    report.table(policy_table);

    // --- 4. Paged vs reserved K/V at equal HBM ------------------------
    // Block size and system-prompt length for the paged configurations.
    // The chatbot mix's largest claim is 288 tokens (2.25 chatbot
    // points), so 3 claim-points is the tightest capacity at which the
    // reserved allocator can still admit every request solo.
    let block_tokens = 16;
    let shared_prefix = 32;
    let paged_claims = [3usize, 4, 6];
    let mut paged_table = MdTable::new(
        format!(
            "Paged vs reserved K/V at equal HBM: {n_requests} saturating chatbot-mix requests, \
             continuous max batch {max_batch}; reserved admission claims the full input+output \
             up front, paged admission ({block_tokens}-token blocks) gates on prompt blocks and \
             grows page-by-page, preempting on exhaustion"
        ),
        &[
            "HBM (claims)",
            "allocator",
            "peak live batch",
            "preempt",
            "prefix hit",
            "p99 ms",
            "goodput tok/s",
            "vs reserved",
        ],
    );
    let backlog_mix = ArrivalProcess::Trace(vec![0.0; mix.len()]);
    // The "vs reserved" column ties each allocator row to the reserved
    // goodput of the *same* claims group, so a group is the unit of
    // parallelism: its four allocator runs stay sequential inside one
    // worker, groups fan out, and the cross-group headline maxima fold
    // afterwards in group order (bit-identical to the serial sweep).
    struct PagedGroup {
        rows: Vec<Vec<String>>,
        retain_gain: f64,
        prefix_gain: f64,
        prefix_hit: f64,
    }
    let groups = rayon_lite::par_map(&paged_claims, |&claims| {
        let capacity =
            memory.weight_bytes + claims as u64 * claim_tokens * memory.kv_bytes_per_token;
        let capped = || {
            Appliance::timing_only(cfg.clone(), devices)
                .expect("partitionable")
                .with_hbm_capacity(capacity)
                .expect("capacity holds the shard")
        };
        let run = |appliance: &Appliance| {
            ServingEngine::new(appliance)
                .with_scheduler(Box::new(ContinuousBatching::new(max_batch)))
                .run(&mix, &backlog_mix)
                .expect("valid stream")
        };
        let allocators: Vec<(&str, Appliance)> = vec![
            ("reserved", capped()),
            (
                "paged/recompute",
                capped()
                    .with_kv_paging(PagedKvConfig::new(block_tokens))
                    .expect("block size fits"),
            ),
            (
                "paged/retain",
                capped()
                    .with_kv_paging(
                        PagedKvConfig::new(block_tokens).with_policy(PreemptionPolicy::Retain),
                    )
                    .expect("block size fits"),
            ),
            (
                "paged/retain+prefix",
                capped()
                    .with_kv_paging(
                        PagedKvConfig::new(block_tokens)
                            .with_policy(PreemptionPolicy::Retain)
                            .with_shared_prefix(shared_prefix),
                    )
                    .expect("block size fits"),
            ),
        ];
        let mut group = PagedGroup {
            rows: Vec::new(),
            retain_gain: 0.0,
            prefix_gain: 0.0,
            prefix_hit: 0.0,
        };
        let mut reserved_goodput = 0.0;
        for (label, appliance) in &allocators {
            let r = run(appliance);
            let (preempt, hit) = match &r.paging {
                Some(s) => (
                    s.preemptions.to_string(),
                    format!("{:.1}%", s.hit_rate() * 100.0),
                ),
                None => ("-".into(), "-".into()),
            };
            let vs = if *label == "reserved" {
                reserved_goodput = r.goodput_tps;
                "-".into()
            } else {
                let gain = 100.0 * (r.goodput_tps / reserved_goodput - 1.0);
                match *label {
                    "paged/retain" => group.retain_gain = gain,
                    "paged/retain+prefix" => {
                        group.prefix_gain = gain;
                        group.prefix_hit = r.paging.as_ref().map_or(0.0, |s| s.hit_rate());
                    }
                    _ => {}
                }
                format!("{gain:+.1}%")
            };
            group.rows.push(vec![
                claims.to_string(),
                (*label).into(),
                r.peak_live_batch.to_string(),
                preempt,
                hit,
                fmt(r.p99_sojourn_ms, 0),
                fmt(r.goodput_tps, 1),
                vs,
            ]);
        }
        group
    });
    let mut headline: Option<(f64, f64, f64)> = None;
    for group in groups {
        for row in group.rows {
            paged_table.push_row(row);
        }
        let h = headline.get_or_insert((group.retain_gain, 0.0, 0.0));
        h.0 = h.0.max(group.retain_gain);
        h.1 = h.1.max(group.prefix_gain);
        h.2 = h.2.max(group.prefix_hit);
    }
    report.table(paged_table);
    if let Some((gain, prefix_gain, hit)) = headline {
        report.note(format!(
            "Paged allocation ({block_tokens}-token blocks, retain preemption) recovers up to \
             {gain:+.1}% goodput over max-claim reservation at equal HBM; sharing a \
             {shared_prefix}-token system prompt through the prefix cache lifts that to \
             {prefix_gain:+.1}% with {:.1}% of shared-prefix prompt tokens served from cached \
             blocks instead of recomputed.",
            hit * 100.0,
        ));
    }
    report
}

/// The headline sweep: GPT-2 1.5B on 4 FPGAs — capacities holding 1 to
/// 16 concurrent chatbot claims next to the ~0.7 GiB weight shard,
/// prefill chunks of 16 and 64 tokens, the serving experiments' rate
/// grid, continuous max batch 16.
pub fn run() -> ExperimentReport {
    run_setup(
        GptConfig::gpt2_1_5b(),
        4,
        96,
        &[1, 2, 4, 8, 16],
        &[16, 64],
        &[0.5, 1.0, 2.0],
        16,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg() -> GptConfig {
        GptConfig::new("memory-smoke", 64, 2, 2, 512, 640)
    }

    #[test]
    fn the_peak_live_batch_tracks_the_hbm_capacity() {
        // The acceptance shape of sweep 1: under a saturating backlog
        // the peak live batch equals the number of claims that fit,
        // up to the scheduler's max batch.
        let report = run_setup(smoke_cfg(), 1, 12, &[1, 2, 4], &[8], &[50.0], 4);
        let rows = &report.tables[0].rows;
        assert_eq!(rows.len(), 4); // 3 capacities + unbounded
        for (row, want) in rows.iter().zip(["1", "2", "4", "4"]) {
            assert_eq!(row[3], want, "claims {} -> peak {}", row[2], row[3]);
        }
    }

    #[test]
    fn chunked_prefill_cuts_the_stall_at_equal_goodput() {
        // The acceptance criterion of sweep 2, asserted on the raw
        // reports: a chunk budget strictly improves the p99 inter-token
        // gap while goodput stays within 5%.
        let cfg = smoke_cfg();
        let dfx = Appliance::timing_only(cfg.clone(), 1).unwrap();
        let mix = chatbot_mix(24, cfg.max_seq_len);
        let arrivals = ArrivalProcess::Poisson {
            rate_per_s: 200.0,
            seed: 0x5EED,
        };
        let run = |scheduler: Box<dyn Scheduler>| {
            ServingEngine::new(&dfx)
                .with_scheduler(scheduler)
                .run(&mix, &arrivals)
                .unwrap()
        };
        let whole = run(Box::new(ContinuousBatching::new(4)));
        let chunked = run(Box::new(ContinuousBatching::new(4).with_prefill_chunk(8)));
        assert!(
            chunked.p99_token_gap_ms < whole.p99_token_gap_ms,
            "chunked p99 gap {} !< whole {}",
            chunked.p99_token_gap_ms,
            whole.p99_token_gap_ms
        );
        assert!(
            (chunked.goodput_tps - whole.goodput_tps).abs() < 0.05 * whole.goodput_tps,
            "goodput moved: chunked {} vs whole {}",
            chunked.goodput_tps,
            whole.goodput_tps
        );
    }

    #[test]
    fn paged_allocation_recovers_goodput_over_reservation_at_tight_capacity() {
        // The acceptance criterion of sweep 4: at equal (tight) HBM,
        // block-granular admission strictly beats max-claim reservation
        // on peak live batch and goodput, and the shared-prefix cache
        // serves a non-zero fraction of prompt tokens.
        let cfg = smoke_cfg();
        let dfx = Appliance::timing_only(cfg.clone(), 1).unwrap();
        let memory = dfx.memory_model();
        let point = claim_point(&cfg);
        let claim_tokens = (point.input_len + point.output_len) as u64;
        let capacity = memory.weight_bytes + 3 * claim_tokens * memory.kv_bytes_per_token;
        let capped = || {
            Appliance::timing_only(cfg.clone(), 1)
                .unwrap()
                .with_hbm_capacity(capacity)
                .unwrap()
        };
        let mix = chatbot_mix(16, cfg.max_seq_len);
        let backlog = ArrivalProcess::Trace(vec![0.0; mix.len()]);
        let run = |appliance: &Appliance| {
            ServingEngine::new(appliance)
                .with_scheduler(Box::new(ContinuousBatching::new(8)))
                .run(&mix, &backlog)
                .unwrap()
        };
        let reserved = run(&capped());
        let paged = run(&capped()
            .with_kv_paging(PagedKvConfig::new(16).with_policy(PreemptionPolicy::Retain))
            .unwrap());
        assert!(
            paged.peak_live_batch > reserved.peak_live_batch,
            "paged peak {} !> reserved peak {}",
            paged.peak_live_batch,
            reserved.peak_live_batch
        );
        assert!(
            paged.goodput_tps > reserved.goodput_tps,
            "paged goodput {} !> reserved {}",
            paged.goodput_tps,
            reserved.goodput_tps
        );
        let cached = run(&capped()
            .with_kv_paging(
                PagedKvConfig::new(16)
                    .with_policy(PreemptionPolicy::Retain)
                    .with_shared_prefix(32),
            )
            .unwrap());
        let stats = cached.paging.expect("paged run reports stats");
        assert!(stats.hit_rate() > 0.0, "prefix cache never hit: {stats:?}");
        assert!(
            cached.goodput_tps > reserved.goodput_tps,
            "prefix-cached goodput {} !> reserved {}",
            cached.goodput_tps,
            reserved.goodput_tps
        );
    }

    #[test]
    fn default_capacity_and_no_chunking_reproduce_the_pr4_rows() {
        // The backwards-compatibility acceptance: at the real 8 GiB
        // (where chatbot-scale claims never bind) with whole prefills,
        // the memory-aware engine is bit-identical to the plain
        // continuous discipline — so the `serving`/`batching`/
        // `continuous` experiment rows are unchanged by this subsystem.
        let cfg = smoke_cfg();
        let dfx = Appliance::timing_only(cfg.clone(), 1).unwrap();
        let huge = Appliance::timing_only(cfg.clone(), 1)
            .unwrap()
            .with_hbm_capacity(1 << 40)
            .unwrap();
        let mix = chatbot_mix(24, cfg.max_seq_len);
        let arrivals = ArrivalProcess::Poisson {
            rate_per_s: 50.0,
            seed: 0x5EED,
        };
        let a = ServingEngine::new(&dfx)
            .with_scheduler(Box::new(ContinuousBatching::new(4)))
            .run(&mix, &arrivals)
            .unwrap();
        let b = ServingEngine::new(&huge)
            .with_scheduler(Box::new(ContinuousBatching::new(4)))
            .run(&mix, &arrivals)
            .unwrap();
        assert_eq!(a.responses, b.responses);
        assert_eq!(a.p99_sojourn_ms, b.p99_sojourn_ms);
        assert_eq!(a.goodput_tps, b.goodput_tps);
    }
}

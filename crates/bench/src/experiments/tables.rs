//! Table I (model configurations) and the §VII-A accuracy experiment.
//!
//! [`table1`] prints the GPT-2 configurations of Table I (one row per
//! model: parameters, embedding dim, heads, head dim, layers) straight
//! from [`GptConfig`]; no knobs — it is the contract the other
//! experiments build on. [`accuracy`] reruns the §VII-A comparison: the
//! bit-level FP16 functional simulator against the FP32 reference on
//! the paper's task list (WSC, CBT-CN, CBT-NE, …), one row per task
//! with both accuracies and their gap (paper: ≤0.1%). Knobs: `full`
//! switches between quick (~500-item) and paper-size task sets, and
//! [`accuracy_with_tasks`] accepts arbitrary [`AccuracyTask`] lists for
//! the smoke tests.

use crate::paper;
use crate::table::{fmt, ExperimentReport, MdTable};
use dfx_model::GptConfig;
use dfx_sim::{paper_tasks, quick_tasks, run_accuracy, AccuracyTask, Appliance};

/// Table I: GPT-2 model configuration.
pub fn table1() -> ExperimentReport {
    let mut report = ExperimentReport::new("table1", "Table I: GPT-2 model configuration");
    let mut t = MdTable::new(
        "",
        &[
            "model",
            "parameters",
            "embedding dim",
            "attention heads",
            "head dim",
            "layers",
        ],
    );
    for cfg in [
        GptConfig::gpt2_345m(),
        GptConfig::gpt2_774m(),
        GptConfig::gpt2_1_5b(),
    ] {
        t.push_row(vec![
            cfg.name.clone(),
            format!("{:.0}M", cfg.num_parameters() as f64 / 1e6),
            cfg.embedding_dim.to_string(),
            cfg.num_heads.to_string(),
            cfg.head_dim().to_string(),
            cfg.num_layers.to_string(),
        ]);
    }
    report.note(
        "Parameter counts include embeddings; the 1.5B configuration uses the paper's \
         24-head adjustment.",
    );
    report.table(t);

    // HBM provisioning at each model's published cluster size (§IV-A:
    // 8 GB of HBM2 per U280), cross-checking the memory model the
    // `memory` experiment builds on: the resident FP16 weight shard,
    // the K/V bytes one context token costs per device, and how many
    // context tokens of K/V the remaining budget holds.
    let mut m = MdTable::new(
        "HBM capacity per device (the memory model behind the `memory` experiment)",
        &[
            "model",
            "FPGAs",
            "HBM GiB/device",
            "weight shard MiB",
            "KV bytes/token",
            "KV budget (tokens)",
        ],
    );
    for (cfg, devices) in [
        (GptConfig::gpt2_345m(), 1),
        (GptConfig::gpt2_774m(), 2),
        (GptConfig::gpt2_1_5b(), 4),
    ] {
        let appliance = Appliance::timing_only(cfg.clone(), devices).expect("partitionable");
        let memory = appliance.memory_model();
        m.push_row(vec![
            cfg.name.clone(),
            devices.to_string(),
            fmt(memory.capacity_bytes as f64 / (1 << 30) as f64, 0),
            fmt(memory.weight_bytes as f64 / (1 << 20) as f64, 0),
            memory.kv_bytes_per_token.to_string(),
            memory.max_resident_tokens().to_string(),
        ]);
    }
    report.table(m);
    report
}

/// §VII-A: inference accuracy of the FP16 DFX datapath.
pub fn accuracy(full: bool) -> ExperimentReport {
    let tasks = if full { paper_tasks() } else { quick_tasks() };
    let mut report = accuracy_with_tasks(&tasks);
    if !full {
        report.note("Quick mode: item counts scaled to 10% (run with --full for paper sizes).");
    }
    report
}

/// §VII-A on an arbitrary task set. The paper runner delegates here; the
/// smoke tests pass micro task sets so the functional simulation stays
/// fast in debug builds.
pub fn accuracy_with_tasks(tasks: &[AccuracyTask]) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "accuracy",
        "Section VII-A: Inference accuracy (FP16 DFX vs FP32 reference)",
    );
    report.note(
        "Substitution: without the pretrained checkpoints and licensed datasets, task sets are \
         synthetic next-token-selection items of the paper's sizes; the measured property — \
         FP16 DFX selects the same token as the reference — is preserved (DESIGN.md).",
    );
    let results = run_accuracy(&GptConfig::tiny(), 2, tasks, 0xACC0).expect("accuracy harness");

    let mut t = MdTable::new(
        "Agreement with the FP32 reference (greedy next-token)",
        &[
            "task",
            "items",
            "DFX FP16 agreement %",
            "GPU FP16 agreement %",
            "delta pp (sim)",
            "delta % (paper)",
        ],
    );
    for (i, r) in results.iter().enumerate() {
        t.push_row(vec![
            r.name.clone(),
            r.items.to_string(),
            fmt(100.0 * r.dfx_agreement, 2),
            fmt(100.0 * r.gpu_fp16_agreement, 2),
            fmt(r.delta_percent(), 2),
            fmt(paper::ACCURACY_DELTAS[i.min(2)], 2),
        ]);
    }
    report.table(t);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let r = table1();
        assert_eq!(r.tables[0].rows.len(), 3);
        assert_eq!(r.tables[0].rows[2][2], "1536");
        assert_eq!(r.tables[0].rows[2][5], "48");
    }

    #[test]
    fn table1_hbm_line_matches_the_paper_hardware() {
        // §IV-A: 8 GB of HBM2 per U280; the 1.5B shard on 4 devices
        // costs 72 KiB of K/V per context token
        // (48 layers x 6 local heads x 64 dims x 2 x 2 B).
        let r = table1();
        let hbm = &r.tables[1];
        assert_eq!(hbm.rows.len(), 3);
        for row in &hbm.rows {
            assert_eq!(row[2], "8");
        }
        assert_eq!(hbm.rows[2][4], (48u64 * 6 * 64 * 2 * 2).to_string());
    }
}

//! Table I (model configurations) and the §VII-A accuracy experiment.
//!
//! [`table1`] prints the GPT-2 configurations of Table I (one row per
//! model: parameters, embedding dim, heads, head dim, layers) straight
//! from [`GptConfig`]; no knobs — it is the contract the other
//! experiments build on. [`accuracy`] reruns the §VII-A comparison: the
//! bit-level FP16 functional simulator against the FP32 reference on
//! the paper's task list (WSC, CBT-CN, CBT-NE, …), one row per task
//! with both accuracies and their gap (paper: ≤0.1%). Knobs: `full`
//! switches between quick (~500-item) and paper-size task sets, and
//! [`accuracy_with_tasks`] accepts arbitrary [`AccuracyTask`] lists for
//! the smoke tests.

use crate::paper;
use crate::table::{fmt, ExperimentReport, MdTable};
use dfx_model::GptConfig;
use dfx_sim::{paper_tasks, quick_tasks, run_accuracy, AccuracyTask};

/// Table I: GPT-2 model configuration.
pub fn table1() -> ExperimentReport {
    let mut report = ExperimentReport::new("table1", "Table I: GPT-2 model configuration");
    let mut t = MdTable::new(
        "",
        &[
            "model",
            "parameters",
            "embedding dim",
            "attention heads",
            "head dim",
            "layers",
        ],
    );
    for cfg in [
        GptConfig::gpt2_345m(),
        GptConfig::gpt2_774m(),
        GptConfig::gpt2_1_5b(),
    ] {
        t.push_row(vec![
            cfg.name.clone(),
            format!("{:.0}M", cfg.num_parameters() as f64 / 1e6),
            cfg.embedding_dim.to_string(),
            cfg.num_heads.to_string(),
            cfg.head_dim().to_string(),
            cfg.num_layers.to_string(),
        ]);
    }
    report.note(
        "Parameter counts include embeddings; the 1.5B configuration uses the paper's \
         24-head adjustment.",
    );
    report.table(t);
    report
}

/// §VII-A: inference accuracy of the FP16 DFX datapath.
pub fn accuracy(full: bool) -> ExperimentReport {
    let tasks = if full { paper_tasks() } else { quick_tasks() };
    let mut report = accuracy_with_tasks(&tasks);
    if !full {
        report.note("Quick mode: item counts scaled to 10% (run with --full for paper sizes).");
    }
    report
}

/// §VII-A on an arbitrary task set. The paper runner delegates here; the
/// smoke tests pass micro task sets so the functional simulation stays
/// fast in debug builds.
pub fn accuracy_with_tasks(tasks: &[AccuracyTask]) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "accuracy",
        "Section VII-A: Inference accuracy (FP16 DFX vs FP32 reference)",
    );
    report.note(
        "Substitution: without the pretrained checkpoints and licensed datasets, task sets are \
         synthetic next-token-selection items of the paper's sizes; the measured property — \
         FP16 DFX selects the same token as the reference — is preserved (DESIGN.md).",
    );
    let results = run_accuracy(&GptConfig::tiny(), 2, tasks, 0xACC0).expect("accuracy harness");

    let mut t = MdTable::new(
        "Agreement with the FP32 reference (greedy next-token)",
        &[
            "task",
            "items",
            "DFX FP16 agreement %",
            "GPU FP16 agreement %",
            "delta pp (sim)",
            "delta % (paper)",
        ],
    );
    for (i, r) in results.iter().enumerate() {
        t.push_row(vec![
            r.name.clone(),
            r.items.to_string(),
            fmt(100.0 * r.dfx_agreement, 2),
            fmt(100.0 * r.gpu_fp16_agreement, 2),
            fmt(r.delta_percent(), 2),
            fmt(paper::ACCURACY_DELTAS[i.min(2)], 2),
        ]);
    }
    report.table(t);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let r = table1();
        assert_eq!(r.tables[0].rows.len(), 3);
        assert_eq!(r.tables[0].rows[2][2], "1536");
        assert_eq!(r.tables[0].rows[2][5], "48");
    }
}

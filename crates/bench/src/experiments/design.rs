//! Figure 8 (design-space exploration) and Figure 13 (resource table).
//!
//! [`fig8`] re-times the multi-head-attention microbenchmark across the
//! paper's `(d, l)` datapath-geometry candidates (the knob: each
//! candidate rebuilds the timing core via [`CoreParams::with_shape`])
//! and emits one table with a row per geometry — attention latency,
//! relative utilisation, and whether the paper's buffer budget admits
//! it; the paper's chosen 64×16 must win. [`fig13`] regenerates the
//! FPGA resource table: one row per component (MPU, VPU, DMA, router,
//! …) with LUT/FF/BRAM/URAM/DSP counts against the Alveo U280 capacity,
//! no knobs.

use crate::paper;
use crate::table::{fmt, ExperimentReport, MdTable};
use dfx_core::{CoreParams, TimingCore};
use dfx_hw::{ResourceModel, TileShape, U280_CAPACITY};
use dfx_isa::{
    regs, Instr, MatrixInstr, MatrixKind, OpClass, Program, ReduceMax, SReg, StepMeta, TensorRef,
    VReg, VSlice,
};

/// Builds the multi-head-attention microbenchmark program the paper's
/// Fig 8a sweeps: per-head score (`Query x Key^T`), softmax and context
/// (`Score x Value`) at a long context, isolating exactly the operands
/// whose 64-wide head dimension produces the utilisation cliffs the
/// paper describes (d > 64 starves the tree on K^T's rows; l > 64
/// starves the lanes on V's columns).
fn mha_program(heads: u32, dh: u32, t: u32) -> Program {
    let mut p = Program::new(StepMeta {
        token_pos: t - 1,
        lm_head: false,
        core_id: 0,
        num_cores: 1,
    });
    // The sweep isolates the matrix path — `Query x Key^T` and
    // `Score x Value` per head — which is exactly where the paper
    // explains its (d, l) sensitivities (Key^T has 64 rows, Value has 64
    // columns, §V-B). Score/probability registers rotate over four sets
    // (double-buffered operands, §V-D) so heads stream back to back; the
    // softmax vector chain is identical across candidates and excluded.
    let sets = [
        (regs::SCORE, regs::PROBS, regs::S_ROWMAX),
        (regs::LN_CENTERED, regs::LN_SQUARED, regs::S_MEAN),
        (VReg(25), VReg(26), SReg(6)),
        (VReg(27), VReg(28), SReg(8)),
    ];
    for h in 0..heads {
        let (score, probs, s_max) = sets[(h % 4) as usize];
        p.push(
            OpClass::SelfAttention,
            Instr::Matrix(MatrixInstr {
                kind: MatrixKind::MaskedMm,
                src: VSlice {
                    reg: regs::QUERY,
                    offset: h * dh,
                    len: dh,
                },
                weight: TensorRef::Kv {
                    layer: 0,
                    head: h as u16,
                    kind: dfx_isa::KvKind::Key,
                },
                bias: None,
                dst: VSlice::full(score, t),
                rows: dh,
                cols: t,
                valid_cols: t,
                scale: Some(0.125),
                gelu: false,
                reduce_max: ReduceMax::Max(s_max),
            }),
        );
        p.push(
            OpClass::SelfAttention,
            Instr::Matrix(MatrixInstr {
                kind: MatrixKind::Mm,
                src: VSlice::full(probs, t),
                weight: TensorRef::Kv {
                    layer: 0,
                    head: h as u16,
                    kind: dfx_isa::KvKind::Value,
                },
                bias: None,
                dst: VSlice {
                    reg: regs::ATTN,
                    offset: h * dh,
                    len: dh,
                },
                rows: t,
                cols: dh,
                valid_cols: dh,
                scale: None,
                gelu: false,
                reduce_max: ReduceMax::None,
            }),
        );
    }
    p
}

/// FLOPs of the microbenchmark (matching the program above).
fn mha_flops(heads: f64, dh: f64, t: f64) -> f64 {
    heads * 2.0 * 2.0 * t * dh // scores + context
}

/// Figure 8a and 8b: the (d, l) design-space exploration.
pub fn fig8() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig8",
        "Figure 8: tile-dimension/lane-count design space exploration",
    );
    report.note(
        "(a) sweeps the per-head attention matrix path (16 heads, head dim 64, context 1024) \
         across the five (d, l) candidates; performance collapses when d or l exceeds the \
         64-wide head dimension because K/V tiles pad to the datapath shape (Key^T has 64 \
         rows, Value has 64 columns). (b) shows why the paper picks d = 64 among the equal \
         performers: per-lane MPU resources grow with l.",
    );

    let (heads, dh, t) = (16u32, 64u32, 1024u32);
    let program = mha_program(heads, dh, t);
    program.validate().expect("microbench is well-formed");
    let flops = mha_flops(f64::from(heads), f64::from(dh), f64::from(t));

    let mut a = MdTable::new(
        "(a) MHA performance per (d, l)",
        &["(d, l)", "GFLOPS (sim)", "relative to best"],
    );
    let mut results = Vec::new();
    for shape in TileShape::DSE_CANDIDATES {
        let engine = TimingCore::new(CoreParams::with_shape(shape), 1);
        let timing = engine.time_step(&program);
        let gflops = flops / timing.total.to_seconds() / 1e9;
        results.push((shape, gflops));
    }
    let best = results.iter().map(|r| r.1).fold(0.0f64, f64::max);
    for (shape, gflops) in &results {
        a.push_row(vec![
            format!("d={}, l={}", shape.d, shape.l),
            fmt(*gflops, 1),
            format!("{:.0}%", 100.0 * gflops / best),
        ]);
    }
    report.table(a);

    let mut b = MdTable::new(
        "(b) MPU resource utilisation per (d, l), % of U280",
        &["(d, l)", "LUT %", "FF %", "BRAM %", "DSP %"],
    );
    for shape in [
        TileShape { d: 16, l: 64 },
        TileShape { d: 32, l: 32 },
        TileShape { d: 64, l: 16 },
    ] {
        let mpu = ResourceModel::with_shape(shape)
            .mpu()
            .percent_of(U280_CAPACITY);
        b.push_row(vec![
            format!("d={}, l={}", shape.d, shape.l),
            fmt(mpu.lut, 1),
            fmt(mpu.ff, 1),
            fmt(mpu.bram, 1),
            fmt(mpu.dsp, 1),
        ]);
    }
    report.table(b);
    report
}

/// Figure 13: per-component resource utilisation of one core.
pub fn fig13() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig13",
        "Figure 13: FPGA resource utilisation on the Alveo U280",
    );
    let model = ResourceModel::default();
    let mut t = MdTable::new(
        "Per-component usage (d = 64, l = 16)",
        &["component", "LUT", "FF", "BRAM", "URAM", "DSP"],
    );
    for c in model.components() {
        t.push_row(vec![
            c.name.clone(),
            fmt(c.used.lut / 1e3, 1) + "K",
            fmt(c.used.ff / 1e3, 1) + "K",
            fmt(c.used.bram, 1),
            fmt(c.used.uram, 1),
            fmt(c.used.dsp, 0),
        ]);
    }
    let total = model.total();
    let pct = total.percent_of(U280_CAPACITY);
    t.push_row(vec![
        "**Total**".into(),
        format!("{:.0}K ({:.2}%)", total.lut / 1e3, pct.lut),
        format!("{:.0}K ({:.2}%)", total.ff / 1e3, pct.ff),
        format!("{:.0} ({:.2}%)", total.bram, pct.bram),
        format!("{:.0} ({:.2}%)", total.uram, pct.uram),
        format!("{:.0} ({:.2}%)", total.dsp, pct.dsp),
    ]);
    report.note(format!(
        "Paper totals: {:.2}% LUT, {:.2}% FF, {:.2}% BRAM, {:.2}% URAM, {:.2}% DSP.",
        paper::FIG13_TOTAL_PERCENT[0],
        paper::FIG13_TOTAL_PERCENT[1],
        paper::FIG13_TOTAL_PERCENT[2],
        paper::FIG13_TOTAL_PERCENT[3],
        paper::FIG13_TOTAL_PERCENT[4],
    ));
    report.table(t);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8a_middle_candidates_tie_and_extremes_lose() {
        let r = fig8();
        let gflops: Vec<f64> = r.tables[0]
            .rows
            .iter()
            .map(|row| row[1].parse::<f64>().unwrap())
            .collect();
        // Order: (8,128), (16,64), (32,32), (64,16), (128,8).
        let [edge_lo, m1, m2, m3, edge_hi] = gflops[..] else {
            panic!("5 rows expected")
        };
        let best = m1.max(m2).max(m3);
        let worst_mid = m1.min(m2).min(m3);
        assert!(
            worst_mid / best > 0.85,
            "middle candidates should be within 15%: {gflops:?}"
        );
        assert!(edge_lo < 0.85 * best, "(8,128) should lose: {gflops:?}");
        assert!(edge_hi < 0.85 * best, "(128,8) should lose: {gflops:?}");
    }

    #[test]
    fn fig13_totals_are_close_to_paper() {
        let r = fig13();
        // The note carries the paper totals; the table's total row should
        // be within a few percent (asserted in dfx-hw unit tests too).
        assert!(r.tables[0].rows.len() == 8);
    }
}

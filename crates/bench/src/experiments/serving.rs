//! Service-level experiment: the §III-A claim, quantified.
//!
//! Not a paper figure — the paper *motivates* DFX with non-batched
//! datacenter request streams (§III-A) but only evaluates per-request
//! latency. This experiment closes the loop: the same seeded Poisson
//! stream of chatbot-mix requests through the DFX appliance and the GPU
//! appliance via the unified `Backend`/`ServingEngine` API, sweeping the
//! arrival rate across the GPU appliance's saturation point. Knobs
//! ([`run_setup`]): model/cluster size, request count and the rate grid.
//! Output shape: one table with a row per arrival rate carrying p50/p99
//! sojourn and utilization for both appliances — the batch-1 reference
//! the [`batching`](super::batching) experiment is measured against.

use crate::table::{fmt, ExperimentReport, MdTable};
use dfx_baseline::GpuModel;
use dfx_model::GptConfig;
use dfx_serve::{chatbot_mix, ArrivalProcess, Backend, ServingEngine};
use dfx_sim::Appliance;

/// Runs the sweep on one model/cluster setup. `rates_per_s` should
/// straddle the GPU appliance's capacity so the divergence is visible.
pub fn run_setup(
    cfg: GptConfig,
    devices: usize,
    n_requests: usize,
    rates_per_s: &[f64],
) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "serving",
        "Service-level view (SIII-A): tail latency under a Poisson request stream",
    );
    let dfx = Appliance::timing_only(cfg.clone(), devices).expect("partitionable");
    let gpu = GpuModel::new(cfg.clone(), devices);
    report.note(format!(
        "{n_requests} chatbot-mix requests on {} vs the {}-GPU appliance, one shared seed per \
         rate, FIFO queue. Sojourn = queueing + service; the paper's per-request speedup becomes \
         a tail-latency cliff once the arrival rate crosses the GPU appliance's capacity.",
        dfx.name(),
        devices
    ));
    let stream = chatbot_mix(n_requests, cfg.max_seq_len);
    // One engine per backend across the whole sweep: the service-time
    // memo persists, so each distinct workload is cycle-modeled once.
    let mut dfx_engine = ServingEngine::new(&dfx);
    let mut gpu_engine = ServingEngine::new(&gpu);

    let mut t = MdTable::new(
        "Sojourn percentiles and utilization by arrival rate",
        &[
            "arrival/s",
            "DFX p50 ms",
            "DFX p99 ms",
            "DFX util %",
            "GPU p50 ms",
            "GPU p99 ms",
            "GPU util %",
        ],
    );
    for &rate_per_s in rates_per_s {
        let arrivals = ArrivalProcess::Poisson {
            rate_per_s,
            seed: 0x5EED,
        };
        let d = dfx_engine.run(&stream, &arrivals).expect("valid stream");
        let g = gpu_engine.run(&stream, &arrivals).expect("valid stream");
        t.push_row(vec![
            fmt(rate_per_s, 2),
            fmt(d.p50_sojourn_ms, 0),
            fmt(d.p99_sojourn_ms, 0),
            fmt(100.0 * d.utilization, 1),
            fmt(g.p50_sojourn_ms, 0),
            fmt(g.p99_sojourn_ms, 0),
            fmt(100.0 * g.utilization, 1),
        ]);
    }
    report.table(t);
    report
}

/// The headline sweep: GPT-2 1.5B on 4 devices per appliance.
pub fn run() -> ExperimentReport {
    run_setup(GptConfig::gpt2_1_5b(), 4, 200, &[0.25, 0.5, 1.0, 2.0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfx_model::Workload;
    use dfx_serve::ServiceReport;

    #[test]
    fn dfx_tail_stays_interactive_where_gpu_diverges() {
        // The old hand-rolled `service_sim` result through the new API,
        // at paper scale but debug-test cost: 345M on one device, a
        // single distinct workload (one memoized cycle-model run), rates
        // straddling the GPU appliance's ~0.41 req/s capacity while DFX
        // (~0.97 req/s) still has headroom.
        let cfg = GptConfig::gpt2_345m();
        let dfx = Appliance::timing_only(cfg.clone(), 1).expect("single core");
        let gpu = GpuModel::new(cfg, 1);
        let stream = vec![Workload::chatbot(); 60];
        let run = |backend: &dyn Backend, rate_per_s: f64| -> ServiceReport {
            let arrivals = ArrivalProcess::Poisson {
                rate_per_s,
                seed: 0x5EED,
            };
            ServingEngine::new(backend)
                .run(&stream, &arrivals)
                .expect("valid stream")
        };

        let (dfx_low, gpu_low) = (run(&dfx, 0.2), run(&gpu, 0.2));
        let (dfx_high, gpu_high) = (run(&dfx, 0.7), run(&gpu, 0.7));
        // Low load: both interactive, gap ~ the per-request speedup.
        assert!(gpu_low.p99_sojourn_ms < 20.0 * dfx_low.p99_sojourn_ms);
        // High load: the GPU queue diverges, DFX degrades gracefully.
        assert!(
            gpu_high.p99_sojourn_ms > 5.0 * dfx_high.p99_sojourn_ms,
            "GPU p99 {} vs DFX {}",
            gpu_high.p99_sojourn_ms,
            dfx_high.p99_sojourn_ms
        );
        assert!(
            dfx_high.p99_sojourn_ms < 10.0 * dfx_low.p99_sojourn_ms,
            "DFX should stay near its service time: {} vs {}",
            dfx_high.p99_sojourn_ms,
            dfx_low.p99_sojourn_ms
        );
        assert!(gpu_high.utilization > dfx_high.utilization);
        // Determinism: identical seeds reproduce identical reports.
        assert_eq!(run(&dfx, 0.7), dfx_high);
        assert_eq!(run(&gpu, 0.7), gpu_high);
    }
}
